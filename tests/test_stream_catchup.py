"""Tests for the online monitor's vectorized batch catch-up path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SeriesError
from repro.metrics.store import MetricStore
from repro.stream.monitor import MonitorConfig, OnlineMonitor, replay_bundle
from repro.stream.store import StreamingMetricStore


def make_store(num_machines: int = 4, num_samples: int = 24,
               seed: int = 0) -> MetricStore:
    rng = np.random.default_rng(seed)
    ids = [f"m{i}" for i in range(num_machines)]
    store = MetricStore(ids, np.arange(num_samples) * 60.0)
    store.data[:] = rng.uniform(10.0, 70.0, store.data.shape)
    # machine 0 crosses the threshold twice, machine 1 once (to the end)
    store.metric_block("cpu")[0, 5:8] = 97.0
    store.metric_block("cpu")[0, 15:17] = 95.0
    store.metric_block("mem")[1, 10:] = 99.0
    return store


class TestAppendBlock:
    def test_bulk_matches_sequential(self):
        store = make_store()
        seq = StreamingMetricStore(store.machine_ids, window_samples=64)
        for idx, timestamp in enumerate(store.timestamps):
            seq.append(float(timestamp),
                       {mid: {m: float(store.data[i, j, idx])
                              for j, m in enumerate(store.metrics)}
                        for i, mid in enumerate(store.machine_ids)})
        bulk = StreamingMetricStore(store.machine_ids, window_samples=64)
        bulk.append_block(store.timestamps, store.data)
        np.testing.assert_array_equal(seq.snapshot_store().data,
                                      bulk.snapshot_store().data)
        assert seq.snapshot_store().timestamps.tolist() == \
            bulk.snapshot_store().timestamps.tolist()

    def test_rejects_bad_shape(self):
        stream = StreamingMetricStore(["a"], window_samples=8)
        with pytest.raises(SeriesError):
            stream.append_block(np.arange(3.0), np.zeros((2, 3, 3)))

    def test_rejects_non_increasing_timestamps(self):
        stream = StreamingMetricStore(["a"], window_samples=8)
        with pytest.raises(SeriesError):
            stream.append_block(np.array([0.0, 0.0]), np.zeros((1, 3, 2)))

    def test_rejects_timestamps_before_existing(self):
        stream = StreamingMetricStore(["a"], window_samples=8)
        stream.append(100.0, {"a": {"cpu": 1.0}})
        with pytest.raises(SeriesError):
            stream.append_block(np.array([50.0]), np.zeros((1, 3, 1)))

    def test_rejects_out_of_range_values(self):
        stream = StreamingMetricStore(["a"], window_samples=8)
        block = np.full((1, 3, 2), 120.0)
        with pytest.raises(SeriesError):
            stream.append_block(np.array([0.0, 60.0]), block)

    def test_window_still_bounded(self):
        stream = StreamingMetricStore(["a"], window_samples=4)
        stream.append_block(np.arange(10) * 60.0,
                            np.zeros((1, 3, 10)))
        assert len(stream) == 4
        assert stream.latest_timestamp == 9 * 60.0

    def test_oversized_block_does_not_pin_full_history(self):
        # the store must not hold the whole catch-up block alive: its
        # storage is a preallocated mirrored ring of 2 x window frames,
        # and the window it serves shares that ring, not the input block
        stream = StreamingMetricStore(["a", "b"], window_samples=4)
        block = np.zeros((2, 3, 1000))
        stream.append_block(np.arange(1000) * 60.0, block)
        max_ring = 2 * 4 * 2 * 3 * 8  # mirrored window frames of float64
        assert stream._buffer.nbytes <= max_ring
        view = stream.window_view()
        assert np.shares_memory(view.data, stream._buffer)
        assert not np.shares_memory(view.data, block)

    def test_oversized_block_values_correct(self):
        stream = StreamingMetricStore(["a"], window_samples=3)
        block = np.arange(10, dtype=np.float64).reshape(1, 1, 10) * np.ones(
            (1, 3, 1))
        stream.append_block(np.arange(10) * 60.0, block)
        snap = stream.snapshot_store()
        assert snap.timestamps.tolist() == [420.0, 480.0, 540.0]
        assert snap.series("a", "cpu").values.tolist() == [7.0, 8.0, 9.0]


class TestCatchUp:
    def test_threshold_alerts_identical_to_sequential(self):
        store = make_store()
        config = MonitorConfig(utilisation_threshold=92.0)
        sequential = OnlineMonitor(store.machine_ids, config=config,
                                   window_samples=64)
        for idx, timestamp in enumerate(store.timestamps):
            sequential.observe(float(timestamp),
                               {mid: {m: float(store.data[i, j, idx])
                                      for j, m in enumerate(store.metrics)}
                                for i, mid in enumerate(store.machine_ids)})
        batch = OnlineMonitor(store.machine_ids, config=config,
                              window_samples=64)
        batch.catch_up(store)
        assert (batch.alerts_of_kind("threshold")
                == sequential.alerts_of_kind("threshold"))
        assert len(batch.alerts_of_kind("threshold")) == 3
        assert batch._over_threshold == sequential._over_threshold

    def test_catch_up_resumes_open_episode(self):
        store = make_store()
        config = MonitorConfig(utilisation_threshold=92.0)
        monitor = OnlineMonitor(store.machine_ids, config=config,
                                window_samples=64)
        # machine 1 mem is over threshold from sample 10 to the end; feed the
        # first 12 samples one by one, then catch up on the rest — the open
        # episode must not re-alert at the block boundary.
        for idx in range(12):
            monitor.observe(float(store.timestamps[idx]),
                            {mid: {m: float(store.data[i, j, idx])
                                   for j, m in enumerate(store.metrics)}
                             for i, mid in enumerate(store.machine_ids)})
        before = len(monitor.alerts_of_kind("threshold"))
        tail = store.window(float(store.timestamps[12]),
                            float(store.timestamps[-1]))
        alerts = monitor.catch_up(tail)
        threshold_alerts = [a for a in alerts if a.kind == "threshold"]
        # only machine 0's second excursion (t=15..16) is new
        assert [a.subject for a in threshold_alerts] == ["m0"]
        assert len(monitor.alerts_of_kind("threshold")) == before + 1

    def test_catch_up_runs_regime_and_thrashing_once(self):
        store = make_store(num_machines=6, num_samples=32, seed=3)
        monitor = OnlineMonitor(store.machine_ids, window_samples=64)
        monitor.catch_up(store)
        assert monitor.current_regime is not None
        assert monitor._samples_seen == store.num_samples

    def test_catch_up_empty_store_is_noop(self):
        store = MetricStore(["a"], np.array([]))
        monitor = OnlineMonitor(["a"])
        assert monitor.catch_up(store) == []

    def test_catch_up_missing_machine_rejected(self):
        store = make_store()
        monitor = OnlineMonitor(store.machine_ids + ["ghost"])
        with pytest.raises(SeriesError):
            monitor.catch_up(store)

    def test_catch_up_reorders_machines(self):
        store = make_store()
        monitor = OnlineMonitor(list(reversed(store.machine_ids)),
                                config=MonitorConfig(utilisation_threshold=92.0))
        monitor.catch_up(store)
        assert {a.subject for a in monitor.alerts_of_kind("threshold")} == \
            {"m0", "m1"}


class TestBatchReplay:
    def test_replay_bundle_batch_threshold_parity(self, thrashing_bundle):
        sequential = replay_bundle(thrashing_bundle)
        batch = replay_bundle(thrashing_bundle, batch=True)
        assert (batch.alerts_of_kind("threshold")
                == sequential.alerts_of_kind("threshold"))
        # batch mode still lands on a regime assessment
        assert batch.current_regime is not None
