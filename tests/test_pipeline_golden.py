"""Golden equivalence: ``Pipeline.run()`` must be a transparent wrapper.

The pipeline replaced every hand-wired detection consumer; these tests pin
the contract that made the rewiring safe:

* for every registered detector × every registered scenario, the batch
  pipeline's events are *identical* (same intervals, same scores, same
  order) to calling :meth:`~repro.analysis.engine.DetectionEngine.run`
  directly;
* the pipeline's ``score`` sink is bit-identical to calling
  :func:`repro.scenarios.scoring.score_bundle` directly;
* streaming catch-up through the pipeline raises exactly the alerts of a
  directly-driven :class:`~repro.stream.monitor.OnlineMonitor`;
* specs round-trip: ``Pipeline.from_spec(p.to_spec()) == p``;
* ``Pipeline.from_spec`` drives all three source modes end to end
  (trace-dir batch, synthetic scored batch, streaming catch-up).
"""

from __future__ import annotations

import pytest

from repro.analysis.engine import DetectionEngine
from repro.pipeline import Pipeline, default_detector_names
from repro.scenarios import scenario_names
from repro.scenarios.scoring import score_bundle
from repro.stream.monitor import MonitorConfig, OnlineMonitor
from repro.trace.synthetic import generate_trace
from repro.trace.writer import write_trace

from tests.conftest import fast_config

SEED = 404

#: Scenarios whose manifests exercise several scoring runners at once.
SCORED_SCENARIOS = (
    "machine-failure+network-storm",
    "maintenance-drain+load-imbalance",
    "hot-job+memory-thrash",
)


@pytest.fixture(scope="module")
def bundles():
    """One fast bundle per registered scenario (shared across tests)."""
    return {scenario: generate_trace(fast_config(scenario, seed=SEED))
            for scenario in scenario_names()}


@pytest.mark.parametrize("scenario", scenario_names())
def test_pipeline_events_identical_to_engine(scenario, bundles):
    bundle = bundles[scenario]
    store = bundle.usage
    engine = DetectionEngine()
    result = Pipeline.from_bundle(bundle, sinks=()).run()
    assert [run.label for run in result.detections] == default_detector_names()
    total = 0
    for run in result.detections:
        direct = engine.run(store, run.name, metric="cpu")
        assert run.result.events() == direct.events(), (
            f"{scenario}: {run.name} diverged from the raw engine")
        assert run.result.flagged_machines() == direct.flagged_machines()
        total += run.result.num_events
    assert result.num_events == total


@pytest.mark.parametrize("spec", SCORED_SCENARIOS)
def test_pipeline_scores_identical_to_score_bundle(spec):
    bundle = generate_trace(fast_config(spec, seed=SEED))
    result = Pipeline.from_bundle(bundle, plans=(), sinks=("score",)).run()
    direct = score_bundle(bundle)
    assert list(result.scores) == direct
    assert len(direct) >= 2, f"{spec}: scoring must not be vacuous"


@pytest.mark.parametrize("scenario", ("thrashing", "network-storm"))
def test_pipeline_streaming_identical_to_catch_up(scenario, bundles):
    bundle = bundles[scenario]
    result = Pipeline.from_bundle(bundle, mode="streaming", sinks=()).run()
    monitor = OnlineMonitor(bundle.usage.machine_ids,
                            config=MonitorConfig(utilisation_threshold=92.0),
                            window_samples=128)
    assert list(result.alerts) == monitor.catch_up(bundle.usage)


# -- spec round-trips ---------------------------------------------------------
ROUND_TRIP_SPECS = (
    {"source": {"kind": "synthetic", "scenario": "hotjob", "seed": 7}},
    {"source": {"kind": "synthetic", "scenario": "diurnal+network-storm",
                "seed": 3, "config": {"num_machines": 8}},
     "detectors": "threshold(threshold=85)+flatline",
     "metrics": ["cpu", "disk"],
     "sinks": ["score", {"kind": "report", "path": "out.md"}]},
    {"source": {"kind": "trace-dir", "path": "some/trace"},
     "mode": "streaming",
     "streaming": {"threshold": 88.0, "window_samples": 64,
                   "cadence": "sample"}},
)


@pytest.mark.parametrize("spec", ROUND_TRIP_SPECS,
                         ids=("minimal", "batch-full", "streaming"))
def test_spec_round_trip(spec):
    pipeline = Pipeline.from_spec(spec)
    respun = Pipeline.from_spec(pipeline.to_spec())
    assert respun == pipeline
    assert respun.to_spec() == pipeline.to_spec()


def test_equality_distinguishes_specs():
    base = Pipeline.from_spec({"source": {"kind": "synthetic",
                                          "scenario": "hotjob"}})
    other = Pipeline.from_spec({"source": {"kind": "synthetic",
                                           "scenario": "thrashing"}})
    assert base != other
    assert base == Pipeline.from_spec(base.to_spec())


# -- from_spec drives all three modes end to end ------------------------------
class TestFromSpecEndToEnd:
    def test_trace_dir_batch(self, tmp_path, thrashing_bundle):
        write_trace(thrashing_bundle, tmp_path)
        result = Pipeline.from_spec({
            "source": {"kind": "trace-dir", "path": str(tmp_path)},
            "detectors": "threshold(threshold=90)",
            "sinks": [],
        }).run()
        engine_events = DetectionEngine().run(
            thrashing_bundle.usage, "threshold").events()
        # the written/reloaded trace quantises floats, so compare shape-level
        assert result.num_events > 0
        assert len(result.events()) == len(engine_events)
        assert result.machine_ids \
            == tuple(thrashing_bundle.usage.machine_ids)

    def test_synthetic_scored_batch(self):
        result = Pipeline.from_spec({
            "source": {"kind": "synthetic",
                       "scenario": "machine-failure+network-storm",
                       "seed": 5,
                       "config": {"num_machines": 12, "num_jobs": 10,
                                  "horizon_s": 7200, "resolution_s": 120}},
            "detectors": "flatline",
            "sinks": ["score", "json"],
        }).run()
        assert result.num_events > 0
        kinds = {scored.entry.kind for scored in result.scores}
        assert kinds == {"machine-failure", "network-storm"}
        assert result.outputs["json"]["scores"]

    def test_streaming_catch_up(self):
        result = Pipeline.from_spec({
            "source": {"kind": "synthetic", "scenario": "memory-thrash",
                       "seed": 5,
                       "config": {"num_machines": 12, "num_jobs": 10,
                                  "horizon_s": 7200, "resolution_s": 120}},
            "mode": "streaming",
            "streaming": {"threshold": 90.0},
            "sinks": ["alerts"],
        }).run()
        assert result.mode == "streaming"
        assert result.monitor is not None
        assert result.alerts_by_kind() == result.outputs["alerts"]
        assert result.monitor.current_regime is not None
