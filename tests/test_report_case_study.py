"""Tests for the structured case-study reports."""

import pytest

from repro.report.case_study import (
    CaseStudyFindings,
    build_case_study,
    build_full_case_study,
    render_case_study,
)

from tests.conftest import mid_timestamp


@pytest.fixture(scope="module")
def healthy_findings(healthy_bundle):
    return build_case_study(healthy_bundle, mid_timestamp(healthy_bundle))


@pytest.fixture(scope="module")
def hotjob_findings(hotjob_bundle):
    return build_case_study(hotjob_bundle, mid_timestamp(hotjob_bundle))


@pytest.fixture(scope="module")
def thrashing_findings(thrashing_bundle):
    window = thrashing_bundle.meta["thrashing"]["window"]
    return build_case_study(thrashing_bundle, (window[0] + window[1]) / 2.0)


class TestBuildCaseStudy:
    def test_scenario_and_timestamp_recorded(self, healthy_findings, healthy_bundle):
        assert healthy_findings.scenario == "healthy"
        assert healthy_findings.timestamp == pytest.approx(mid_timestamp(healthy_bundle))

    def test_jobs_are_active_jobs(self, healthy_findings, healthy_bundle):
        active = set(healthy_bundle.active_jobs(healthy_findings.timestamp))
        assert {job.job_id for job in healthy_findings.jobs} <= active

    def test_max_jobs_respected(self, healthy_bundle):
        findings = build_case_study(healthy_bundle, mid_timestamp(healthy_bundle),
                                    max_jobs=2)
        assert len(findings.jobs) <= 2

    def test_hot_job_identified(self, hotjob_findings, hotjob_bundle):
        assert hotjob_findings.hot_job is not None
        assert hotjob_findings.hot_job.job_id == hotjob_bundle.meta["hot_job_id"]

    def test_healthy_scenario_has_no_hot_job(self, healthy_findings):
        assert healthy_findings.hot_job is None

    def test_thrashing_evidence_present(self, thrashing_findings):
        assert thrashing_findings.thrashing_machines
        assert thrashing_findings.thrashing_window is not None
        start, end = thrashing_findings.thrashing_window
        assert end > start

    def test_healthy_scenario_mostly_clean(self, healthy_findings,
                                            thrashing_findings):
        assert (len(healthy_findings.thrashing_machines)
                <= len(thrashing_findings.thrashing_machines))

    def test_sla_summary_covers_all_jobs(self, healthy_findings, healthy_bundle):
        assert healthy_findings.sla is not None
        assert healthy_findings.sla.total_jobs == len(healthy_bundle.job_ids())

    def test_regime_matches_scenario_shape(self, healthy_findings,
                                           thrashing_findings):
        assert healthy_findings.regime.mean_cpu <= thrashing_findings.regime.mean_cpu


class TestBuildFullCaseStudy:
    def test_all_scenarios_covered(self, healthy_bundle, hotjob_bundle,
                                   thrashing_bundle):
        bundles = {"healthy": healthy_bundle, "hotjob": hotjob_bundle,
                   "thrashing": thrashing_bundle}
        findings = build_full_case_study(bundles)
        assert set(findings) == set(bundles)
        assert all(isinstance(f, CaseStudyFindings) for f in findings.values())

    def test_explicit_timestamps_honoured(self, healthy_bundle):
        timestamp = mid_timestamp(healthy_bundle)
        findings = build_full_case_study({"healthy": healthy_bundle},
                                         timestamps={"healthy": timestamp})
        assert findings["healthy"].timestamp == pytest.approx(timestamp)

    def test_thrashing_defaults_to_injected_window(self, thrashing_bundle):
        findings = build_full_case_study({"thrashing": thrashing_bundle})
        window = thrashing_bundle.meta["thrashing"]["window"]
        assert window[0] <= findings["thrashing"].timestamp <= window[1]


class TestRenderCaseStudy:
    def test_single_findings_render(self, healthy_findings):
        text = render_case_study(healthy_findings)
        assert text.startswith("# BatchLens case study")
        assert "healthy" in text
        assert "| job |" in text or "0 job(s) shown" in text

    def test_multi_scenario_render_contains_all(self, healthy_bundle,
                                                thrashing_bundle):
        findings = build_full_case_study({"healthy": healthy_bundle,
                                          "thrashing": thrashing_bundle})
        text = render_case_study(findings, title="Full case study")
        assert text.startswith("# Full case study")
        assert "`healthy`" in text
        assert "`thrashing`" in text

    def test_thrashing_render_mentions_thrashing(self, thrashing_findings):
        text = render_case_study(thrashing_findings)
        assert "Thrashing" in text

    def test_hot_job_render_mentions_hot_job(self, hotjob_findings):
        text = render_case_study(hotjob_findings)
        assert "Hot job" in text
