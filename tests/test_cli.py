"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.trace.loader import load_trace
from repro.trace.writer import write_trace


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("generate", "validate", "stats", "dashboard",
                        "report", "figures"):
            assert command in text

    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestGenerateAndLoad:
    def test_generate_writes_loadable_trace(self, tmp_path, capsys):
        out = tmp_path / "trace"
        code = main(["generate", "--output-dir", str(out), "--scenario", "healthy",
                     "--seed", "3"])
        assert code == 0
        output = capsys.readouterr().out
        assert "batch_task" in output
        bundle = load_trace(out)
        assert bundle.tasks

    def test_validate_on_generated_trace(self, tmp_path, healthy_bundle, capsys):
        write_trace(healthy_bundle, tmp_path)
        assert main(["validate", str(tmp_path)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_validate_reports_errors(self, tmp_path, capsys):
        (tmp_path / "batch_task.csv").write_text(
            "0,100,j1,t1,0,Terminated,10,20\n")  # instance_num=0 is invalid
        assert main(["validate", str(tmp_path)]) == 1
        assert "ERROR" in capsys.readouterr().out


class TestScenarioSpecs:
    def test_scenarios_subcommand_lists_injectors(self, capsys):
        assert main(["scenarios"]) == 0
        output = capsys.readouterr().out
        for name in ("network-storm", "cascading-failure", "maintenance-drain",
                     "load-imbalance", "diurnal", "memory-thrash"):
            assert name in output

    def test_generate_accepts_composed_spec(self, tmp_path, capsys):
        out = tmp_path / "trace"
        code = main(["generate", "--output-dir", str(out),
                     "--scenario", "diurnal(amplitude=35)+network-storm",
                     "--seed", "3"])
        assert code == 0
        assert "server_usage" in capsys.readouterr().out
        assert load_trace(out).tasks

    def test_stats_accepts_injector_scenario(self, capsys):
        assert main(["stats", "--synthetic",
                     "--scenario", "load-imbalance"]) == 0
        assert "jobs" in capsys.readouterr().out

    def test_unknown_scenario_is_a_clean_error(self, tmp_path, capsys):
        code = main(["generate", "--output-dir", str(tmp_path / "x"),
                     "--scenario", "wormhole"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestSyntheticCommands:
    def test_stats_synthetic(self, capsys):
        assert main(["stats", "--synthetic", "--scenario", "healthy",
                     "--seed", "4"]) == 0
        output = capsys.readouterr().out
        assert "num_jobs" in output
        assert "single_task_job_fraction" in output

    def test_dashboard_synthetic(self, tmp_path, capsys):
        target = tmp_path / "dash.html"
        assert main(["dashboard", "--synthetic", "--scenario", "hotjob",
                     "--seed", "4", "--output", str(target),
                     "--max-line-panels", "1"]) == 0
        assert target.exists()
        assert "panel-bubble" in target.read_text()

    def test_report_synthetic(self, capsys):
        assert main(["report", "--synthetic", "--scenario", "thrashing",
                     "--seed", "4"]) == 0
        output = capsys.readouterr().out
        assert "Load balance" in output

    def test_figures_synthetic_default_job(self, tmp_path, capsys):
        assert main(["figures", "--synthetic", "--scenario", "healthy",
                     "--seed", "4", "--output-dir", str(tmp_path)]) == 0
        assert list(tmp_path.glob("*_cpu_overview.svg"))

    def test_error_exit_code(self, tmp_path):
        # an empty directory is not a trace: BatchLensError -> exit code 2
        assert main(["stats", str(tmp_path)]) == 2
