"""Tests for SLA evaluation."""

import pytest

from repro.analysis.sla import (
    SlaPolicy,
    cluster_sla_report,
    evaluate_job_sla,
    jobs_at_risk,
    summarize_sla,
)
from repro.cluster.hierarchy import BatchHierarchy
from repro.errors import ConfigError
from repro.trace.records import BatchInstanceRecord, BatchTaskRecord, TraceBundle

from tests.conftest import mid_timestamp


def make_bundle(instance_rows, task_rows=None):
    """Build a minimal bundle from simplified instance tuples."""
    instances = [
        BatchInstanceRecord(
            start_timestamp=start, end_timestamp=end, job_id=job, task_id=task,
            machine_id=machine, status=status, seq_no=i, total_seq_no=len(instance_rows),
            cpu_avg=50.0)
        for i, (job, task, machine, start, end, status) in enumerate(instance_rows)]
    if task_rows is None:
        seen = {}
        for inst in instances:
            key = (inst.job_id, inst.task_id)
            seen.setdefault(key, []).append(inst)
        task_rows = [
            BatchTaskRecord(
                create_timestamp=min(i.start_timestamp for i in group),
                modify_timestamp=max(i.end_timestamp for i in group),
                job_id=job, task_id=task, instance_num=len(group),
                status="Terminated")
            for (job, task), group in seen.items()]
    return TraceBundle(tasks=task_rows, instances=instances)


class TestSlaPolicy:
    def test_default_policy_valid(self):
        SlaPolicy().validate()

    @pytest.mark.parametrize("kwargs", [
        {"max_runtime_stretch": 0.5},
        {"saturation_level": 0.0},
        {"saturation_level": 150.0},
        {"max_saturated_fraction": 1.5},
        {"saturation_metrics": ()},
    ])
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            SlaPolicy(**kwargs).validate()


class TestRuntimeStretch:
    def test_uniform_instances_do_not_violate(self):
        bundle = make_bundle([
            ("j1", "t1", "m1", 0, 600, "Terminated"),
            ("j1", "t1", "m2", 0, 620, "Terminated"),
            ("j1", "t1", "m3", 0, 610, "Terminated"),
        ])
        report = evaluate_job_sla(bundle, "j1")
        assert not report.violated
        assert report.runtime_stretch < 1.2

    def test_straggler_instance_violates(self):
        bundle = make_bundle([
            ("j1", "t1", "m1", 0, 600, "Terminated"),
            ("j1", "t1", "m2", 0, 600, "Terminated"),
            ("j1", "t1", "m3", 0, 3000, "Terminated"),
        ])
        report = evaluate_job_sla(bundle, "j1")
        assert report.violated
        kinds = {v.kind for v in report.violations}
        assert "runtime-stretch" in kinds
        assert report.runtime_stretch == pytest.approx(5.0)

    def test_stretch_limit_tunable(self):
        bundle = make_bundle([
            ("j1", "t1", "m1", 0, 600, "Terminated"),
            ("j1", "t1", "m2", 0, 600, "Terminated"),
            ("j1", "t1", "m3", 0, 1500, "Terminated"),
        ])
        strict = evaluate_job_sla(bundle, "j1", policy=SlaPolicy(max_runtime_stretch=1.5))
        lax = evaluate_job_sla(bundle, "j1", policy=SlaPolicy(max_runtime_stretch=4.0))
        assert strict.violated
        assert not lax.violated


class TestIncompleteInstances:
    def test_running_instance_flagged(self):
        bundle = make_bundle([
            ("j1", "t1", "m1", 0, 600, "Terminated"),
            ("j1", "t1", "m2", 0, 600, "Running"),
        ])
        report = evaluate_job_sla(bundle, "j1")
        assert report.incomplete_instances == 1
        assert any(v.kind == "incomplete" for v in report.violations)

    def test_all_terminated_clean(self):
        bundle = make_bundle([
            ("j1", "t1", "m1", 0, 600, "Terminated"),
            ("j1", "t1", "m2", 0, 600, "Terminated"),
        ])
        report = evaluate_job_sla(bundle, "j1")
        assert report.incomplete_instances == 0


class TestHostSaturation:
    def test_saturated_hosts_detected_on_thrashing_scenario(self, thrashing_bundle):
        reports = cluster_sla_report(
            thrashing_bundle,
            policy=SlaPolicy(saturation_level=85.0, max_saturated_fraction=0.1))
        assert reports
        saturated = [r for r in reports.values()
                     if any(v.kind == "host-saturation" for v in r.violations)]
        assert saturated, "thrashing scenario should saturate at least one job's hosts"

    def test_healthy_scenario_mostly_clean(self, healthy_bundle):
        reports = cluster_sla_report(healthy_bundle)
        violated = [r for r in reports.values()
                    if any(v.kind == "host-saturation" for v in r.violations)]
        assert len(violated) <= len(reports) // 4


class TestClusterReportAndSummary:
    def test_every_job_reported(self, healthy_bundle):
        reports = cluster_sla_report(healthy_bundle)
        assert set(reports) == set(healthy_bundle.job_ids())

    def test_summary_counts_match(self):
        bundle = make_bundle([
            ("j1", "t1", "m1", 0, 600, "Terminated"),
            ("j1", "t1", "m2", 0, 620, "Terminated"),
            ("j1", "t1", "m4", 0, 3000, "Terminated"),
            ("j2", "t1", "m3", 0, 600, "Running"),
        ])
        reports = cluster_sla_report(bundle)
        summary = summarize_sla(reports)
        assert summary.total_jobs == 2
        assert summary.violated_jobs == 2
        assert summary.violation_rate == pytest.approx(1.0)
        assert summary.worst_job in {"j1", "j2"}
        assert sum(summary.violations_by_kind.values()) >= 2

    def test_summary_of_clean_reports(self):
        bundle = make_bundle([
            ("j1", "t1", "m1", 0, 600, "Terminated"),
            ("j1", "t1", "m2", 0, 620, "Terminated"),
        ])
        summary = summarize_sla(cluster_sla_report(bundle))
        assert summary.violated_jobs == 0
        assert summary.violation_rate == 0.0
        assert summary.worst_job is None


class TestJobsAtRisk:
    def test_active_jobs_ordered_violations_first(self, thrashing_bundle):
        hierarchy = BatchHierarchy.from_bundle(thrashing_bundle)
        timestamp = mid_timestamp(thrashing_bundle)
        reports = jobs_at_risk(thrashing_bundle, hierarchy, timestamp,
                               policy=SlaPolicy(saturation_level=80.0,
                                                max_saturated_fraction=0.05))
        active_ids = {job.job_id for job in hierarchy.jobs_at(timestamp)}
        assert {r.job_id for r in reports} == active_ids
        flags = [r.violated for r in reports]
        assert flags == sorted(flags, reverse=True)
