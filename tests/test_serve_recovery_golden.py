"""Golden suite: crash recovery is invisible — restarted == never crashed.

The durability contract of ``repro serve --state-dir``: kill the server at
*any* point — mid journal append, mid snapshot write, at the snapshot
commit rename, between rename and journal truncate, or with plain SIGKILL
from outside — restart it on the same state dir, resume the feed, and the
final tenant state (alerts including seq ids, detector events, summary)
is **bit-identical** to a server that never crashed.

Three layers pin this:

* kill-anywhere goldens drive the registry's durable ingest path directly
  with :mod:`repro.testing.faults` raising at every persistence fault
  point in turn — deterministic, exhaustive over crash sites, no
  subprocesses;
* torn-tail goldens physically truncate the journal mid-record before
  recovery — the torn record reads as absent and the resume re-feeds it;
* the subprocess test SIGKILLs a real ``repro serve`` process at an exact
  journal write (via the ``REPRO_FAULTS`` environment plan), restarts it,
  and resumes over HTTP — no fixed ports, no sleeps.

The resume protocol is the client's: ask the recovered tenant for
``num_samples`` and re-feed from that offset with the original batch size
(:meth:`ServeClient.resume_stream_store`).  Batches the journal kept are
never sent twice; the batch the crash swallowed is sent again.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import ServeError
from repro.pipeline import default_detector_spec
from repro.serve import DetectionServer, ServeClient
from repro.serve.persist import ServerStateDir
from repro.serve.tenants import TenantRegistry
from repro.serve.wire import store_to_payloads
from repro.testing import faults
from repro.testing.faults import FAULTS_ENV, InjectedFault
from repro.trace.synthetic import generate_trace

from tests.conftest import fast_config
from tests.test_serve_golden import local_streaming_run

REPO_ROOT = Path(__file__).resolve().parent.parent

SEED = 808
SCENARIOS = ("thrashing", "machine-failure+network-storm")
BATCH = 4
#: Snapshot cadence chosen so a fast-config scenario crosses several
#: snapshot commits mid-stream — every crash window (append before apply,
#: rename before truncate, ...) actually occurs during the feed.
SNAPSHOT_EVERY = 24

FAULT_POINTS = (
    "persist.journal.append",
    "persist.snapshot.write",
    "persist.snapshot.rename",
    "persist.journal.truncate",
)


@pytest.fixture(scope="module")
def bundles():
    return {scenario: generate_trace(fast_config(scenario, seed=SEED))
            for scenario in SCENARIOS}


def reference_run(bundle):
    """Final alerts/events/summary of a never-crashed durable-less tenant."""
    registry = TenantRegistry()
    tenant = registry.create({"id": "ref",
                              "machines": bundle.usage.machine_ids})
    alerts = []
    for payload in store_to_payloads(bundle.usage, BATCH):
        alerts.extend(tenant.ingest(payload)["alerts"])
    return {"alerts": alerts, "events": tenant.events(),
            "summary": tenant.summary()}


def feed_until_crash(registry, tenant, payloads):
    """Feed batches until an injected fault aborts one; returns the acks."""
    acked = []
    for payload in payloads:
        try:
            acked.append(tenant.ingest(payload))
        except InjectedFault:
            return acked, True
    return acked, False


def recover_and_resume(state_root, bundle):
    """The restart: recover the registry, resume the feed by num_samples."""
    registry = TenantRegistry(
        state=ServerStateDir(state_root, snapshot_every=SNAPSHOT_EVERY))
    assert registry.recover() == ["ref"]
    assert registry.skipped == []
    tenant = registry.get("ref")
    target = tenant.num_samples   # durable batches; resume after them
    alerts = []
    done = 0
    for payload in store_to_payloads(bundle.usage, BATCH):
        size = len(payload["timestamps"])
        if done + size <= target:
            done += size
            continue
        assert done >= target, (
            "recovered sample count is not a batch boundary")
        alerts.extend(tenant.ingest(payload)["alerts"])
    return tenant, alerts


class TestKillAnywhere:
    """Injected crashes at every persistence seam, several hits each."""

    @pytest.mark.parametrize("scenario", SCENARIOS)
    @pytest.mark.parametrize("point", FAULT_POINTS)
    @pytest.mark.parametrize("hit", (1, 2))
    def test_recovery_is_bit_identical(self, tmp_path, bundles, scenario,
                                       point, hit, request):
        bundle = bundles[scenario]
        reference = reference_run(bundle)
        payloads = list(store_to_payloads(bundle.usage, BATCH))

        registry = TenantRegistry(
            state=ServerStateDir(tmp_path, snapshot_every=SNAPSHOT_EVERY))
        tenant = registry.create({"id": "ref",
                                  "machines": bundle.usage.machine_ids})
        with faults.inject({point: {"at": hit}}) as injector:
            acked, crashed = feed_until_crash(registry, tenant, payloads)
        if not crashed:
            pytest.skip(f"{point} is reached fewer than {hit} times at this "
                        f"scenario scale")
        assert injector.fired == [(point, hit)]

        # The crash: the old objects are abandoned, the disk is the truth.
        recovered, resumed_alerts = recover_and_resume(tmp_path, bundle)

        # The durable alert log is the contract: bit-identical to a run
        # that never crashed, dense seqs included.  (The ack of the very
        # batch that crashed may be lost even though the batch itself is
        # journaled — that is exactly why subscribers use log cursors.)
        log = recovered.alerts(cursor=0, view="log")["alerts"]
        assert log == reference["alerts"], (
            f"{scenario} killed at {point}#{hit}: alert stream diverged")
        # Every ack the client *did* receive must agree with the log, and
        # the post-recovery acks must form its tail.
        for entry in (e for ack in acked for e in ack["alerts"]):
            assert log[entry["seq"] - 1] == entry
        if resumed_alerts:
            assert log[-len(resumed_alerts):] == resumed_alerts
        assert recovered.events() == reference["events"], (
            f"{scenario} killed at {point}#{hit}: detector events diverged")
        assert recovered.summary() == reference["summary"], (
            f"{scenario} killed at {point}#{hit}: summary diverged")
        # The golden covers every default detector, not a lucky subset.
        covered = {d["label"] for d in recovered.events()["detections"]}
        assert covered == set(default_detector_spec().split("+"))

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_torn_journal_tail_reads_as_absent(self, tmp_path, bundles,
                                               scenario):
        """Physically tear the last journal record; recovery must fall
        back to the previous batch boundary and the resume must heal it."""
        bundle = bundles[scenario]
        reference = reference_run(bundle)
        payloads = list(store_to_payloads(bundle.usage, BATCH))

        registry = TenantRegistry(
            state=ServerStateDir(tmp_path, snapshot_every=0))
        tenant = registry.create({"id": "ref",
                                  "machines": bundle.usage.machine_ids})
        sizes = []
        journal_path = registry.state.tenant_root("ref") / "journal.wal"
        for payload in payloads[:5]:
            tenant.ingest(payload)
            sizes.append(journal_path.stat().st_size)
        # Cut mid-way through the 5th record (crash mid-write).
        torn_size = (sizes[3] + sizes[4]) // 2
        raw = journal_path.read_bytes()
        journal_path.write_bytes(raw[:torn_size])

        recovered, resumed_alerts = recover_and_resume(tmp_path, bundle)
        assert recovered.events() == reference["events"]
        assert recovered.summary() == reference["summary"]

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_recovery_without_any_crash_is_identity(self, tmp_path, bundles,
                                                    scenario):
        """A clean drain + restart (no kill at all) is also bit-identical."""
        bundle = bundles[scenario]
        reference = reference_run(bundle)
        payloads = list(store_to_payloads(bundle.usage, BATCH))

        registry = TenantRegistry(
            state=ServerStateDir(tmp_path, snapshot_every=SNAPSHOT_EVERY))
        tenant = registry.create({"id": "ref",
                                  "machines": bundle.usage.machine_ids})
        for payload in payloads:
            tenant.ingest(payload)
        registry.close_all()

        recovered, resumed = recover_and_resume(tmp_path, bundle)
        assert resumed == []
        assert recovered.events() == reference["events"]
        assert recovered.summary() == reference["summary"]


class TestAlertCursorAcrossRecovery:
    def test_managed_seq_ids_stay_dense_across_restart(self, tmp_path,
                                                       bundles):
        """An ``alerts_since`` subscriber crossing a crash sees every
        managed record exactly once: seqs stay dense and monotonic, the
        pre-crash cursor resumes re-delivery-free."""
        bundle = bundles["thrashing"]
        payloads = list(store_to_payloads(bundle.usage, BATCH))
        registry = TenantRegistry(
            state=ServerStateDir(tmp_path, snapshot_every=SNAPSHOT_EVERY))
        tenant = registry.create({"id": "ref",
                                  "machines": bundle.usage.machine_ids})
        for payload in payloads[:8]:
            tenant.ingest(payload)
        before = tenant.alerts(cursor=0, view="managed")
        cursor = before["cursor"]
        assert before["alerts"], "scenario produced no managed alerts"

        recovered, _ = recover_and_resume(tmp_path, bundle)
        after = recovered.alerts(cursor=cursor, view="managed")
        seqs = ([entry["seq"] for entry in before["alerts"]]
                + [entry["seq"] for entry in after["alerts"]])
        full = recovered.alerts(cursor=0, view="managed")
        assert seqs == [entry["seq"] for entry in full["alerts"]], (
            "resumed subscriber missed or re-read managed records")
        assert seqs == list(range(1, len(seqs) + 1)), (
            "managed seq ids are not dense and monotonic across recovery")


class TestServerRestartOverHTTP:
    def test_drain_restart_resume_matches_local_pipeline(self, tmp_path,
                                                         bundles):
        """Real servers, real wire: feed half, drain, restart on the same
        state dir, resume with the client's resume protocol; the final
        alerts and events match the local streaming pipeline golden."""
        bundle = bundles["thrashing"]
        store = bundle.usage
        local = local_streaming_run(bundle, BATCH)
        payloads = list(store_to_payloads(store, BATCH))

        with DetectionServer(port=0, state_dir=tmp_path,
                             snapshot_every=SNAPSHOT_EVERY) as server:
            with ServeClient(server.host, server.port) as client:
                client.create_tenant({"id": "t", "machines":
                                      store.machine_ids})
                for payload in payloads[:len(payloads) // 2]:
                    client._request("POST", "/tenants/t/frames", payload)

        with DetectionServer(port=0, state_dir=tmp_path,
                             snapshot_every=SNAPSHOT_EVERY) as server:
            assert server.recovered == ["t"]
            with ServeClient(server.host, server.port) as client:
                client.resume_stream_store("t", store, batch_size=BATCH)
                alerts = [entry["alert"]
                          for entry in client.alerts("t")["alerts"]]
                events = {d["label"]: d["events"]
                          for d in client.events("t")["detections"]}
        assert alerts == local["alerts"]
        assert events == local["events"]

    def test_deleted_tenant_stays_deleted_across_restart(self, tmp_path,
                                                         bundles):
        store = bundles["thrashing"].usage
        with DetectionServer(port=0, state_dir=tmp_path) as server:
            with ServeClient(server.host, server.port) as client:
                client.create_tenant({"id": "gone",
                                      "machines": store.machine_ids})
                client.create_tenant({"id": "kept",
                                      "machines": store.machine_ids})
                client.delete_tenant("gone")
        with DetectionServer(port=0, state_dir=tmp_path) as server:
            assert server.recovered == ["kept"]


def start_serve(*extra_args: str, extra_env: dict | None = None):
    """Launch ``repro serve --port 0 ...``; returns (proc, port, banner)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["PYTHONUNBUFFERED"] = "1"
    env.pop(FAULTS_ENV, None)
    env.update(extra_env or {})
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    banner = []
    while True:
        line = proc.stdout.readline()
        if not line:
            proc.kill()
            raise AssertionError(
                f"server failed to start: {''.join(banner)!r}")
        banner.append(line)
        if "serving on" in line:
            break
    port = int(line.split("serving on ")[1].split()[0].rsplit(":", 1)[1])
    return proc, port, "".join(banner)


class TestSubprocessSigkill:
    def test_sigkill_mid_ingest_then_restart_resumes_golden(self, tmp_path,
                                                            bundles):
        """The real crash: a ``repro serve`` subprocess is SIGKILLed *by
        itself* at an exact journal append (REPRO_FAULTS kill action — no
        signal-timing races), restarted on the same state dir, and the
        resumed feed must land bit-identical to the local pipeline."""
        bundle = bundles["thrashing"]
        store = bundle.usage
        local = local_streaming_run(bundle, BATCH)
        state_dir = tmp_path / "state"

        plan = '{"persist.journal.append": {"at": 6, "action": "kill"}}'
        proc, port, _ = start_serve(
            "--state-dir", str(state_dir), "--backend", "threads",
            "--workers", "2", extra_env={FAULTS_ENV: plan})
        try:
            with ServeClient("127.0.0.1", port) as client:
                client.create_tenant({"id": "t",
                                      "machines": store.machine_ids})
                with pytest.raises(ServeError):
                    client.stream_store("t", store, batch_size=BATCH)
            assert proc.wait(timeout=30.0) == -signal.SIGKILL
        finally:
            proc.kill()
            proc.communicate()

        proc, port, banner = start_serve(
            "--state-dir", str(state_dir), "--backend", "threads",
            "--workers", "2")
        try:
            assert "recovered 1 tenant(s)" in banner
            with ServeClient("127.0.0.1", port) as client:
                assert client.tenants() == ["t"]
                done = client.summary("t")["num_samples"]
                # The killed append (hit 6) was never applied; exactly the
                # five journaled batches survive.
                assert done == 5 * BATCH
                client.resume_stream_store("t", store, batch_size=BATCH)
                alerts = [entry["alert"]
                          for entry in client.alerts("t")["alerts"]]
                events = {d["label"]: d["events"]
                          for d in client.events("t")["detections"]}
            assert alerts == local["alerts"]
            assert events == local["events"]
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                output, _ = proc.communicate(timeout=30.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.communicate()
                raise
        assert proc.returncode == 0, f"restarted serve exited: {output!r}"
