"""Golden suite: the wire is invisible — server verdicts == local pipeline.

A tenant fed an offline scenario over HTTP, in any frame batching, must
produce **bit-identical** alerts and detector events to a local
``Pipeline(mode="streaming")`` run of the same spec with the matching
chunk size (detector events are furthermore chunk-invariant, so they are
also pinned identical *across* batch sizes).  JSON's shortest-repr float
encoding round-trips every IEEE double exactly, so "bit-identical" here
is literal equality of the decoded dicts.
"""

from __future__ import annotations

import threading

import pytest

from repro.pipeline import Pipeline, StreamingOptions, default_detector_spec
from repro.serve import DetectionServer, ServeClient
from repro.trace.synthetic import generate_trace

from tests.conftest import fast_config

SEED = 808
SCENARIOS = ("thrashing", "machine-failure+network-storm")
BATCH_SIZES = (1, 16)


@pytest.fixture(scope="module")
def bundles():
    return {scenario: generate_trace(fast_config(scenario, seed=SEED))
            for scenario in SCENARIOS}


@pytest.fixture(scope="module")
def server():
    with DetectionServer(port=0, backend="threads", workers=2) as srv:
        yield srv


def local_streaming_run(bundle, chunk: int):
    """The reference: a local streaming pipeline at the given chunk size."""
    result = Pipeline.from_bundle(
        bundle, mode="streaming", sinks=(),
        streaming=StreamingOptions(chunk=chunk)).run()
    return {
        "alerts": [alert.to_dict() for alert in result.alerts],
        "events": {run.label: [e.to_dict() for e in run.result.events()]
                   for run in result.detections},
    }


def wire_run(server, bundle, tenant_id: str, batch_size: int):
    """The same spec × scenario, fed frame batches through the server."""
    store = bundle.usage
    with ServeClient(server.host, server.port) as client:
        client.create_tenant({"id": tenant_id,
                              "machines": store.machine_ids,
                              "detectors": default_detector_spec()})
        client.stream_store(tenant_id, store, batch_size=batch_size)
        alerts = [entry["alert"]
                  for entry in client.alerts(tenant_id)["alerts"]]
        events = {d["label"]: d["events"]
                  for d in client.events(tenant_id)["detections"]}
        client.delete_tenant(tenant_id)
    return {"alerts": alerts, "events": events}


class TestWireEqualsLocal:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_alerts_and_events_bit_identical(self, scenario, batch_size,
                                             bundles, server):
        bundle = bundles[scenario]
        local = local_streaming_run(bundle, batch_size)
        wire = wire_run(server, bundle, f"g-{scenario}-{batch_size}",
                        batch_size)
        assert wire["alerts"] == local["alerts"], (
            f"{scenario}@batch={batch_size}: wire alerts diverged from the "
            f"local streaming pipeline")
        assert wire["events"] == local["events"], (
            f"{scenario}@batch={batch_size}: wire events diverged from the "
            f"local streaming pipeline")
        # Every registered default detector must actually be covered.
        assert set(wire["events"]) == set(
            default_detector_spec().split("+"))

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_events_invariant_across_batch_sizes(self, scenario, bundles,
                                                 server):
        """Request batching is pure transport: detector verdicts identical."""
        bundle = bundles[scenario]
        runs = [wire_run(server, bundle, f"inv-{scenario}-{size}", size)
                for size in BATCH_SIZES]
        for other in runs[1:]:
            assert other["events"] == runs[0]["events"], (
                f"{scenario}: batch size changed detector events")


class TestConcurrentTenantIsolation:
    def test_interleaved_ingest_matches_serial_local_runs(self, bundles,
                                                          server):
        """N tenants fed from N threads: each verdict == its serial run.

        Tenants get different scenarios and batch sizes, so any
        cross-tenant state bleed (shared ring, shared detector state,
        mixed-up alert logs) breaks at least one golden comparison.
        """
        jobs = [(f"iso-{scenario}-{size}", scenario, size)
                for scenario in SCENARIOS for size in BATCH_SIZES]
        errors: list = []

        def feed(tenant_id: str, scenario: str, batch_size: int) -> None:
            try:
                store = bundles[scenario].usage
                with ServeClient(server.host, server.port) as client:
                    client.create_tenant({"id": tenant_id,
                                          "machines": store.machine_ids})
                    client.stream_store(tenant_id, store,
                                        batch_size=batch_size)
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append((tenant_id, exc))

        threads = [threading.Thread(target=feed, args=job) for job in jobs]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        with ServeClient(server.host, server.port) as client:
            for tenant_id, scenario, batch_size in jobs:
                local = local_streaming_run(bundles[scenario], batch_size)
                alerts = [entry["alert"]
                          for entry in client.alerts(tenant_id)["alerts"]]
                events = {d["label"]: d["events"]
                          for d in client.events(tenant_id)["detections"]}
                assert alerts == local["alerts"], (
                    f"{tenant_id}: concurrent ingest changed alerts")
                assert events == local["events"], (
                    f"{tenant_id}: concurrent ingest changed events")
                client.delete_tenant(tenant_id)
