"""Tests for anomaly injection and the case-study scenarios."""

import numpy as np
import pytest

from repro.cluster.anomalies import (
    BackgroundLoad,
    HotJob,
    MachineFailure,
    SCENARIOS,
    Straggler,
    Thrashing,
    get_scenario,
)
from repro.cluster.simulator import ClusterSimulator
from repro.errors import SimulationError
from repro.trace import schema
from tests.conftest import fast_config


class TestScenarioRegistry:
    def test_expected_scenarios_present(self):
        assert {"none", "healthy", "hotjob", "thrashing"} <= set(SCENARIOS)

    def test_get_scenario_unknown(self):
        with pytest.raises(SimulationError):
            get_scenario("nope")

    def test_describe_is_serializable(self):
        import json

        for scenario in SCENARIOS.values():
            json.dumps(scenario.describe())


class TestBackgroundLoad:
    def test_raises_mean_utilisation(self):
        none_bundle = ClusterSimulator(fast_config("none", seed=3)).run()
        healthy_bundle = ClusterSimulator(fast_config("healthy", seed=3)).run()
        assert (healthy_bundle.usage.aggregate("cpu").mean()
                > none_bundle.usage.aggregate("cpu").mean() + 5.0)

    def test_requires_usage_store(self):
        from repro.cluster.context import SimulationContext

        ctx = SimulationContext(config=fast_config(), rng=np.random.default_rng(0),
                                machines=[])
        with pytest.raises(SimulationError):
            BackgroundLoad().mutate_usage(ctx)


class TestHotJob:
    def test_marks_largest_job(self, hotjob_bundle):
        hot_id = hotjob_bundle.meta["hot_job_id"]
        counts = {}
        for inst in hotjob_bundle.instances:
            counts[inst.job_id] = counts.get(inst.job_id, 0) + 1
        # the hot job is among the largest jobs of the workload
        assert counts[hot_id] >= np.percentile(list(counts.values()), 75)

    def test_hot_job_machines_are_hotter(self, hotjob_bundle):
        hot_id = hotjob_bundle.meta["hot_job_id"]
        hot_machines = set(hotjob_bundle.machines_of_job(hot_id))
        other_machines = [m for m in hotjob_bundle.usage.machine_ids
                          if m not in hot_machines]
        store = hotjob_bundle.usage
        hot_peak = np.mean([store.series(m, "cpu").max() for m in hot_machines])
        if other_machines:
            other_peak = np.mean([store.series(m, "cpu").max()
                                  for m in other_machines])
            assert hot_peak > other_peak
        else:
            # on tiny test clusters the hot job touches every machine; the
            # post-completion boost must still push the peak near capacity
            assert hot_peak >= 85.0

    def test_explicit_missing_job_rejected(self):
        config = fast_config("none")
        scenario_anomaly = HotJob(job_id="job_does_not_exist")
        simulator = ClusterSimulator(config)
        ctx = simulator._build_context()
        simulator._generate_workload(ctx)
        with pytest.raises(SimulationError):
            scenario_anomaly.mutate_workload(ctx)


class TestThrashing:
    def test_window_fraction_validation(self):
        with pytest.raises(SimulationError):
            Thrashing(start_fraction=0.8, end_fraction=0.4).window(1000)

    def test_metadata_recorded(self, thrashing_bundle):
        meta = thrashing_bundle.meta["thrashing"]
        assert meta["window"][0] < meta["window"][1]
        assert len(meta["machines"]) >= 1
        assert meta["survivor_job_id"] not in meta["terminated_jobs"]

    def test_memory_saturates_and_cpu_collapses(self, thrashing_bundle):
        meta = thrashing_bundle.meta["thrashing"]
        t0, t1 = meta["window"]
        store = thrashing_bundle.usage
        machine_id = meta["machines"][0]
        mem = store.series(machine_id, "mem").slice(t0, t1)
        cpu = store.series(machine_id, "cpu")
        late_window = cpu.slice(t0 + 0.8 * (t1 - t0), t1)
        before = cpu.slice(t0 - (t1 - t0) * 0.5, t0)
        assert mem.max() >= 90.0
        assert late_window.mean() < before.mean()

    def test_terminated_jobs_marked_failed(self, thrashing_bundle):
        terminated = set(thrashing_bundle.meta["thrashing"]["terminated_jobs"])
        if not terminated:
            pytest.skip("no jobs were active in the thrash window for this seed")
        failed_jobs = {inst.job_id for inst in thrashing_bundle.instances
                       if inst.status == schema.STATUS_FAILED}
        assert terminated <= failed_jobs

    def test_relaunched_instances_start_after_window(self, thrashing_bundle):
        meta = thrashing_bundle.meta["thrashing"]
        _, t1 = meta["window"]
        terminated = set(meta["terminated_jobs"])
        if not terminated:
            pytest.skip("no jobs were terminated for this seed")
        relaunched = [inst for inst in thrashing_bundle.instances
                      if inst.job_id in terminated and inst.start_timestamp > t1]
        assert relaunched, "expected relaunched instances after the thrash window"


class TestStraggler:
    def test_extends_a_fraction_of_instances(self):
        from dataclasses import replace

        config = fast_config("none", seed=21)
        simulator = ClusterSimulator(config)
        ctx = simulator._build_context()
        simulator._generate_workload(ctx)
        simulator._place(ctx)
        before = [p.end_s for p in ctx.placements]
        Straggler(fraction=0.3, slowdown=2.0).mutate_placements(ctx)
        after = [p.end_s for p in ctx.placements]
        extended = sum(1 for b, a in zip(before, after) if a > b)
        assert extended >= 1
        assert all(a <= config.horizon_s for a in after)

    def test_invalid_parameters(self):
        from repro.cluster.context import SimulationContext

        ctx = SimulationContext(config=fast_config(), rng=np.random.default_rng(0),
                                machines=[])
        with pytest.raises(SimulationError):
            Straggler(fraction=0.0).mutate_placements(ctx)
        with pytest.raises(SimulationError):
            Straggler(slowdown=0.5).mutate_placements(ctx)


class TestMachineFailure:
    def test_usage_drops_to_zero_after_failure(self):
        from repro.cluster.anomalies import Scenario

        config = fast_config("none", seed=5)
        scenario = Scenario(name="failure", description="one machine dies",
                            anomalies=(MachineFailure(count=1, time_fraction=0.5),))
        bundle = ClusterSimulator(config, scenario=scenario).run()
        failed = bundle.meta["failed_machines"]
        assert len(failed) == 1
        failure_time = bundle.meta["failure_time"]
        series = bundle.usage.series(failed[0], "cpu")
        after = series.slice(failure_time + 1)
        assert after.max() == 0.0
        hard_errors = [e for e in bundle.machine_events
                       if e.event_type == schema.EVENT_HARD_ERROR]
        assert len(hard_errors) == 1

    def test_invalid_parameters(self):
        config = fast_config("none")
        from repro.cluster.anomalies import Scenario

        bad_count = Scenario(name="x", description="",
                             anomalies=(MachineFailure(count=0),))
        with pytest.raises(SimulationError):
            ClusterSimulator(config, scenario=bad_count).run()
