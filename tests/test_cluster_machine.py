"""Tests for machine construction and machine events."""

import pytest

from repro.cluster.machine import (
    Machine,
    failure_event,
    machine_add_events,
    machine_id_for,
    make_machines,
)
from repro.config import ClusterConfig
from repro.errors import ConfigError
from repro.trace import schema


class TestMachineIds:
    def test_zero_padded(self):
        assert machine_id_for(0) == "m_0000"
        assert machine_id_for(1299) == "m_1299"

    def test_lexicographic_order_matches_numeric(self):
        ids = [machine_id_for(i) for i in range(250)]
        assert ids == sorted(ids)


class TestMakeMachines:
    def test_count_and_uniqueness(self):
        machines = make_machines(ClusterConfig(num_machines=25))
        assert len(machines) == 25
        assert len({m.machine_id for m in machines}) == 25

    def test_capacities_copied_from_config(self):
        config = ClusterConfig(num_machines=2, cpu_cores=32, memory_gb=128.0)
        machines = make_machines(config)
        assert machines[0].cpu_cores == 32
        assert machines[0].memory_gb == 128.0

    def test_baseline_lookup(self):
        machine = make_machines(ClusterConfig(num_machines=1))[0]
        assert machine.baseline("cpu") == ClusterConfig().baseline_cpu
        assert machine.baseline("mem") == ClusterConfig().baseline_mem
        assert machine.baseline("disk") == ClusterConfig().baseline_disk
        with pytest.raises(KeyError):
            machine.baseline("gpu")

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            make_machines(ClusterConfig(num_machines=0))


class TestMachineEvents:
    def test_add_events(self):
        machines = make_machines(ClusterConfig(num_machines=3))
        events = machine_add_events(machines, timestamp=0)
        assert len(events) == 3
        assert all(e.event_type == schema.EVENT_ADD for e in events)
        assert events[0].capacity_cpu == float(machines[0].cpu_cores)

    def test_failure_event_kinds(self):
        machine = make_machines(ClusterConfig(num_machines=1))[0]
        hard = failure_event(machine, 100, hard=True, detail="disk died")
        soft = failure_event(machine, 100, hard=False)
        assert hard.event_type == schema.EVENT_HARD_ERROR
        assert soft.event_type == schema.EVENT_SOFT_ERROR
        assert hard.event_detail == "disk died"
        assert hard.timestamp == 100
