"""Tests for co-allocation and correlation analysis."""

import numpy as np
import pytest

from repro.analysis.correlation import (
    coallocation_edges,
    coallocation_matrix,
    correlation_matrix,
    job_synchronisation,
    pearson,
)
from repro.cluster.hierarchy import BatchHierarchy
from repro.errors import SeriesError
from repro.metrics.series import TimeSeries
from repro.metrics.store import MetricStore
from repro.trace.records import BatchInstanceRecord, BatchTaskRecord, TraceBundle


class TestPearson:
    def test_perfect_correlation(self):
        a = TimeSeries([0, 1, 2, 3], [1, 2, 3, 4])
        b = TimeSeries([0, 1, 2, 3], [2, 4, 6, 8])
        assert pearson(a, b) == pytest.approx(1.0)

    def test_anti_correlation(self):
        a = TimeSeries([0, 1, 2, 3], [1, 2, 3, 4])
        b = TimeSeries([0, 1, 2, 3], [4, 3, 2, 1])
        assert pearson(a, b) == pytest.approx(-1.0)

    def test_constant_series_gives_zero(self):
        a = TimeSeries([0, 1, 2], [5, 5, 5])
        b = TimeSeries([0, 1, 2], [1, 2, 3])
        assert pearson(a, b) == 0.0

    def test_unaligned_rejected(self):
        with pytest.raises(SeriesError):
            pearson(TimeSeries([0, 1], [1, 2]), TimeSeries([0, 2], [1, 2]))


class TestCorrelationMatrix:
    def test_shape_and_diagonal(self):
        series = [TimeSeries([0, 1, 2], [1, 2, 3]),
                  TimeSeries([0, 1, 2], [3, 2, 1]),
                  TimeSeries([0, 1, 2], [1, 3, 2])]
        matrix = correlation_matrix(series)
        assert matrix.shape == (3, 3)
        np.testing.assert_allclose(np.diag(matrix), 1.0)
        np.testing.assert_allclose(matrix, matrix.T)


class TestJobSynchronisation:
    def test_synchronised_machines(self):
        store = MetricStore(["a", "b", "c"], np.arange(0, 600, 60, dtype=float))
        base = np.sin(np.linspace(0, 3, 10)) * 20 + 50
        for mid in ("a", "b", "c"):
            store.set_series(mid, "cpu", base + np.random.default_rng(0).normal(0, 0.1, 10))
        assert job_synchronisation(store, ["a", "b", "c"]) > 0.9

    def test_unsynchronised_machines(self):
        store = MetricStore(["a", "b"], np.arange(0, 600, 60, dtype=float))
        store.set_series("a", "cpu", np.linspace(0, 100, 10))
        store.set_series("b", "cpu", np.linspace(100, 0, 10))
        assert job_synchronisation(store, ["a", "b"]) < -0.9

    def test_single_machine_is_trivially_synchronised(self):
        store = MetricStore(["a"], np.array([0.0, 1.0]))
        assert job_synchronisation(store, ["a"]) == 1.0

    def test_hot_job_is_synchronised_in_generated_trace(self, hotjob_bundle):
        hot_id = hotjob_bundle.meta["hot_job_id"]
        machines = hotjob_bundle.machines_of_job(hot_id)
        instances = hotjob_bundle.instances_of_job(hot_id)
        window = (min(i.start_timestamp for i in instances),
                  max(i.end_timestamp for i in instances))
        sync = job_synchronisation(hotjob_bundle.usage, machines, window=window)
        assert sync > 0.3


def coallocation_bundle() -> TraceBundle:
    tasks = [BatchTaskRecord(0, 100, "j1", "t", 2, "Terminated"),
             BatchTaskRecord(0, 100, "j2", "t", 2, "Terminated"),
             BatchTaskRecord(200, 300, "j3", "t", 1, "Terminated")]
    instances = [
        BatchInstanceRecord(0, 100, "j1", "t", "m1", "Terminated", 1, 2),
        BatchInstanceRecord(0, 100, "j1", "t", "m2", "Terminated", 2, 2),
        BatchInstanceRecord(0, 100, "j2", "t", "m1", "Terminated", 1, 2),
        BatchInstanceRecord(0, 100, "j2", "t", "m2", "Terminated", 2, 2),
        BatchInstanceRecord(200, 300, "j3", "t", "m1", "Terminated", 1, 1),
    ]
    return TraceBundle(tasks=tasks, instances=instances)


class TestCoAllocation:
    def test_edges_weighted_by_shared_machines(self):
        hierarchy = BatchHierarchy.from_bundle(coallocation_bundle())
        edges = coallocation_edges(hierarchy)
        assert edges[0].job_a == "j1" and edges[0].job_b == "j2"
        assert edges[0].weight == 2
        pairs = {(e.job_a, e.job_b) for e in edges}
        assert ("j1", "j3") in pairs  # share m1 across time

    def test_timestamp_restriction(self):
        hierarchy = BatchHierarchy.from_bundle(coallocation_bundle())
        edges = coallocation_edges(hierarchy, timestamp=50)
        pairs = {(e.job_a, e.job_b) for e in edges}
        assert pairs == {("j1", "j2")}

    def test_matrix_symmetry(self):
        hierarchy = BatchHierarchy.from_bundle(coallocation_bundle())
        job_ids, matrix = coallocation_matrix(hierarchy)
        assert matrix.shape == (3, 3)
        np.testing.assert_array_equal(matrix, matrix.T)
        i, j = job_ids.index("j1"), job_ids.index("j2")
        assert matrix[i, j] == 2
