"""Tests for thrashing detection."""

import numpy as np
import pytest

from repro.analysis.thrashing import (
    ThrashingConfig,
    cluster_thrashing_report,
    detect_thrashing,
    thrashing_fraction,
)
from repro.errors import SeriesError
from repro.metrics.series import TimeSeries


def thrashing_pair(n=60, onset=30):
    """CPU collapses while memory saturates after ``onset``."""
    timestamps = np.arange(n) * 60.0
    cpu = np.full(n, 70.0)
    mem = np.full(n, 60.0)
    cpu[onset:] = np.linspace(65, 8, n - onset)
    mem[onset:] = np.linspace(88, 99, n - onset)
    return TimeSeries(timestamps, cpu), TimeSeries(timestamps, mem)


def healthy_pair(n=60):
    timestamps = np.arange(n) * 60.0
    return (TimeSeries(timestamps, np.full(n, 50.0)),
            TimeSeries(timestamps, np.full(n, 40.0)))


class TestDetectThrashing:
    def test_detects_collapse(self):
        cpu, mem = thrashing_pair()
        windows = detect_thrashing(cpu, mem, machine_id="m1")
        assert len(windows) >= 1
        window = windows[0]
        assert window.machine_id == "m1"
        assert window.peak_mem >= 90.0
        assert window.min_cpu <= 20.0
        assert window.cpu_drop > 20.0
        assert window.start >= 30 * 60.0

    def test_healthy_machine_clean(self):
        cpu, mem = healthy_pair()
        assert detect_thrashing(cpu, mem) == []

    def test_high_memory_with_high_cpu_is_not_thrashing(self):
        n = 40
        timestamps = np.arange(n) * 60.0
        cpu = TimeSeries(timestamps, np.full(n, 85.0))
        mem = TimeSeries(timestamps, np.full(n, 95.0))
        assert detect_thrashing(cpu, mem) == []

    def test_min_duration_filter(self):
        cpu, mem = thrashing_pair(onset=57)
        config = ThrashingConfig(min_duration_s=600)
        assert detect_thrashing(cpu, mem, config=config) == []

    def test_mismatched_series_rejected(self):
        cpu, _ = thrashing_pair()
        other = TimeSeries([0, 1], [1, 2])
        with pytest.raises(SeriesError):
            detect_thrashing(cpu, other)

    def test_empty_series(self):
        assert detect_thrashing(TimeSeries.empty(), TimeSeries.empty()) == []

    def test_invalid_config(self):
        with pytest.raises(SeriesError):
            ThrashingConfig(mem_watermark=0).validate()
        with pytest.raises(SeriesError):
            ThrashingConfig(cpu_drop_fraction=1.5).validate()
        with pytest.raises(SeriesError):
            ThrashingConfig(reference_window=0).validate()


class TestClusterReport:
    def test_report_on_thrashing_scenario(self, thrashing_bundle):
        report = cluster_thrashing_report(thrashing_bundle.usage)
        assert len(report) >= 1
        injected = set(thrashing_bundle.meta["thrashing"]["machines"])
        detected = set(report)
        # at least half of the injected machines are recovered by the detector
        assert len(detected & injected) >= max(1, len(injected) // 2)

    def test_report_on_healthy_scenario_is_mostly_clean(self, healthy_bundle):
        report = cluster_thrashing_report(healthy_bundle.usage)
        assert len(report) <= max(1, healthy_bundle.usage.num_machines // 4)

    def test_thrashing_fraction_inside_window(self, thrashing_bundle):
        t0, t1 = thrashing_bundle.meta["thrashing"]["window"]
        inside = thrashing_fraction(thrashing_bundle.usage, (t0 + t1) / 2 + (t1 - t0) / 4)
        before = thrashing_fraction(thrashing_bundle.usage, t0 - (t1 - t0))
        assert inside >= before
        assert 0.0 <= inside <= 1.0


class TestBlockScanParity:
    """The vectorized cluster scan is bit-identical to per-series calls."""

    def _random_store(self, seed, num_machines, num_samples):
        from repro.metrics.store import MetricStore

        rng = np.random.default_rng(seed)
        ids = [f"m{i}" for i in range(num_machines)]
        store = MetricStore(ids, np.arange(num_samples) * 60.0)
        store.data[:] = rng.uniform(0.0, 100.0, store.data.shape)
        for row in range(num_machines):
            if rng.random() < 0.6 and num_samples > 8:
                lo = int(rng.integers(0, num_samples - 6))
                span = int(rng.integers(3, 6))
                store.data[row, 1, lo:lo + span] = 96.0
                store.data[row, 0, lo:lo + span] = 4.0
        return store

    @pytest.mark.parametrize("seed", range(6))
    def test_report_equals_per_series_detection(self, seed):
        store = self._random_store(seed, num_machines=9,
                                   num_samples=10 + seed * 13)
        config = ThrashingConfig(reference_window=(seed % 3) * 5 + 1)
        report = cluster_thrashing_report(store, config=config)
        for machine_id in store.machine_ids:
            direct = detect_thrashing(store.series(machine_id, "cpu"),
                                      store.series(machine_id, "mem"),
                                      machine_id=machine_id, config=config)
            assert report.get(machine_id, []) == direct, machine_id

    def test_min_duration_filter_matches(self):
        store = self._random_store(3, num_machines=6, num_samples=40)
        config = ThrashingConfig(min_duration_s=120.0)
        report = cluster_thrashing_report(store, config=config)
        for machine_id in store.machine_ids:
            direct = detect_thrashing(store.series(machine_id, "cpu"),
                                      store.series(machine_id, "mem"),
                                      machine_id=machine_id, config=config)
            assert report.get(machine_id, []) == direct

    def test_empty_store_reports_nothing(self):
        from repro.metrics.store import MetricStore

        assert cluster_thrashing_report(MetricStore(["a"], np.array([]))) == {}
        assert cluster_thrashing_report(MetricStore([], np.array([0.0]))) == {}

    def test_mask_block_shape(self):
        from repro.analysis.thrashing import thrashing_mask_block

        store = self._random_store(1, num_machines=4, num_samples=20)
        mask, reference = thrashing_mask_block(store.timestamps,
                                               store.metric_block("cpu"),
                                               store.metric_block("mem"))
        assert mask.shape == (4, 20)
        assert reference.shape == (4, 20)
        assert mask.dtype == bool
