"""Tests for the SVG document model."""

import pytest

from repro.errors import RenderError
from repro.vis.svg import (
    Element,
    PathBuilder,
    SVGDocument,
    circle,
    group,
    line,
    polyline_path,
    rect,
    text,
    title,
)


class TestElement:
    def test_set_and_get(self):
        element = Element("rect")
        element.set("x", 1.5).set("fill", "#fff")
        assert element.get("x") == "1.50"
        assert element.get("fill") == "#fff"
        assert element.get("missing", "default") == "default"

    def test_float_formatting_trims_integers(self):
        element = Element("rect").set("width", 10.0)
        assert element.get("width") == "10"

    def test_add_and_iter(self):
        parent = group()
        child = parent.add(circle(0, 0, 5))
        grandchild = child.add(title("hi"))
        tags = [e.tag for e in parent.iter()]
        assert tags == ["g", "circle", "title"]
        assert list(parent.iter("title")) == [grandchild]

    def test_find_all_by_attribute(self):
        parent = group()
        parent.add(circle(0, 0, 1, cls="node", data_machine="m1"))
        parent.add(circle(0, 0, 1, cls="node", data_machine="m2"))
        found = parent.find_all("circle", data_machine="m1")
        assert len(found) == 1

    def test_render_escapes_text_and_attributes(self):
        element = text(0, 0, "a < b & c")
        element.set("data-note", "x < y")
        markup = element.render()
        assert "a &lt; b &amp; c" in markup
        assert 'data-note="x &lt; y"' in markup

    def test_render_self_closing(self):
        assert circle(0, 0, 1).render().endswith("/>")


class TestShapeHelpers:
    def test_circle_negative_radius_rejected(self):
        with pytest.raises(RenderError):
            circle(0, 0, -1)

    def test_rect_negative_size_rejected(self):
        with pytest.raises(RenderError):
            rect(0, 0, -5, 5)

    def test_dashed_line(self):
        element = line(0, 0, 10, 10, dashed=True)
        assert "stroke-dasharray" in element.attrib

    def test_kwargs_become_hyphenated_attributes(self):
        element = circle(0, 0, 1, data_machine="m7")
        assert element.get("data-machine") == "m7"

    def test_text_anchor(self):
        element = text(5, 5, "label", anchor="middle")
        assert element.get("text-anchor") == "middle"


class TestPathBuilder:
    def test_build_path(self):
        path = PathBuilder().move_to(0, 0).line_to(10, 5).close().build()
        assert path == "M 0.00 0.00 L 10.00 5.00 Z"

    def test_empty_path_rejected(self):
        with pytest.raises(RenderError):
            PathBuilder().build()

    def test_polyline_requires_two_points(self):
        with pytest.raises(RenderError):
            polyline_path([(0, 0)], stroke="#000")
        element = polyline_path([(0, 0), (1, 1), (2, 0)], stroke="#000")
        assert element.get("d").count("L") == 2
        assert element.get("fill") == "none"


class TestSVGDocument:
    def test_dimensions_and_viewbox(self):
        doc = SVGDocument(200, 100)
        markup = doc.render()
        assert 'width="200"' in markup
        assert 'viewBox="0 0 200 100"' in markup
        assert markup.startswith("<svg")

    def test_background_rect_optional(self):
        with_bg = SVGDocument(10, 10)
        without_bg = SVGDocument(10, 10, background=None)
        assert len(list(with_bg.iter("rect"))) == 1
        assert len(list(without_bg.iter("rect"))) == 0

    def test_invalid_dimensions(self):
        with pytest.raises(RenderError):
            SVGDocument(0, 10)

    def test_save(self, tmp_path):
        doc = SVGDocument(10, 10)
        doc.add(circle(5, 5, 2, fill="#ff0000"))
        target = tmp_path / "out" / "figure.svg"
        doc.save(target)
        content = target.read_text()
        assert "<circle" in content
        assert content.startswith("<svg")
