"""Tests for typed trace records and the TraceBundle container."""

import pytest

from repro.errors import UnknownEntityError
from repro.trace.records import (
    BatchInstanceRecord,
    BatchTaskRecord,
    MachineEvent,
    ServerUsageRecord,
    TraceBundle,
)


def make_instance(job="j1", task="t1", machine="m1", start=0, end=100,
                  seq=1, total=1, status="Terminated") -> BatchInstanceRecord:
    return BatchInstanceRecord(start_timestamp=start, end_timestamp=end,
                               job_id=job, task_id=task, machine_id=machine,
                               status=status, seq_no=seq, total_seq_no=total)


@pytest.fixture()
def bundle() -> TraceBundle:
    tasks = [
        BatchTaskRecord(0, 100, "j1", "t1", 2, "Terminated"),
        BatchTaskRecord(0, 200, "j1", "t2", 1, "Terminated"),
        BatchTaskRecord(50, 300, "j2", "t1", 1, "Terminated"),
    ]
    instances = [
        make_instance("j1", "t1", "m1", 0, 100, 1, 2),
        make_instance("j1", "t1", "m2", 0, 100, 2, 2),
        make_instance("j1", "t2", "m1", 0, 200),
        make_instance("j2", "t1", "m3", 50, 300),
    ]
    events = [MachineEvent(0, m, "add") for m in ("m1", "m2", "m3")]
    return TraceBundle(machine_events=events, tasks=tasks, instances=instances)


class TestRecordRoundTrips:
    def test_machine_event(self):
        event = MachineEvent(5, "m1", "add", None, 96.0, 512.0, 4096.0)
        assert MachineEvent.from_row(event.to_row()) == event

    def test_task_record(self):
        task = BatchTaskRecord(0, 10, "j", "t", 3, "Running", 10.0, None)
        assert BatchTaskRecord.from_row(task.to_row()) == task

    def test_instance_record(self):
        inst = make_instance()
        assert BatchInstanceRecord.from_row(inst.to_row()) == inst
        assert inst.duration == 100

    def test_instance_duration_never_negative(self):
        inst = make_instance(start=100, end=50)
        assert inst.duration == 0

    def test_usage_record_metric_tuple(self):
        usage = ServerUsageRecord(60, "m1", 10.0, 20.0, 30.0)
        timestamp, machine_id, values = usage.as_metric_tuple()
        assert timestamp == 60.0
        assert machine_id == "m1"
        assert values == {"cpu": 10.0, "mem": 20.0, "disk": 30.0}


class TestBundleQueries:
    def test_job_ids_order_and_uniqueness(self, bundle):
        assert bundle.job_ids() == ["j1", "j2"]

    def test_task_ids(self, bundle):
        assert bundle.task_ids("j1") == ["t1", "t2"]
        assert len(bundle.task_ids()) == 3

    def test_machine_ids_from_events(self, bundle):
        assert bundle.machine_ids() == ["m1", "m2", "m3"]

    def test_tasks_of_job(self, bundle):
        assert len(bundle.tasks_of_job("j1")) == 2
        with pytest.raises(UnknownEntityError):
            bundle.tasks_of_job("ghost")

    def test_instances_of_task(self, bundle):
        assert len(bundle.instances_of_task("j1", "t1")) == 2
        with pytest.raises(UnknownEntityError):
            bundle.instances_of_task("j1", "ghost")

    def test_instances_of_job(self, bundle):
        assert len(bundle.instances_of_job("j1")) == 3
        with pytest.raises(UnknownEntityError):
            bundle.instances_of_job("ghost")

    def test_instances_on_machine(self, bundle):
        assert len(bundle.instances_on_machine("m1")) == 2
        assert bundle.instances_on_machine("unknown") == []

    def test_machines_of_job(self, bundle):
        assert bundle.machines_of_job("j1") == ["m1", "m2"]

    def test_time_range(self, bundle):
        assert bundle.time_range() == (0.0, 300.0)

    def test_time_range_empty_bundle(self):
        assert TraceBundle().time_range() == (0.0, 0.0)

    def test_active_jobs(self, bundle):
        assert set(bundle.active_jobs(75)) == {"j1", "j2"}
        assert bundle.active_jobs(250) == ["j2"]
        assert bundle.active_jobs(1000) == []

    def test_summary_keys(self, bundle):
        summary = bundle.summary()
        assert summary["jobs"] == 2
        assert summary["instances"] == 4
        assert summary["machines"] == 3
        assert summary["usage_samples"] == 0

    def test_usage_records_empty_without_store(self, bundle):
        assert list(bundle.usage_records()) == []


class TestBundleWithUsage:
    def test_machine_ids_fallback_to_usage(self, healthy_bundle):
        stripped = TraceBundle(machine_events=[], tasks=healthy_bundle.tasks,
                               instances=healthy_bundle.instances,
                               usage=healthy_bundle.usage)
        assert set(stripped.machine_ids()) == set(healthy_bundle.usage.machine_ids)

    def test_usage_records_roundtrip_count(self, healthy_bundle):
        count = sum(1 for _ in healthy_bundle.usage_records())
        assert count == (healthy_bundle.usage.num_machines
                         * healthy_bundle.usage.num_samples)
