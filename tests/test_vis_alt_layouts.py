"""Tests for the grid and treemap layout alternatives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LayoutError
from repro.vis.layout.circlepack import PackNode
from repro.vis.layout.grid import grid_pack, layout_extent
from repro.vis.layout.treemap import Rect, leaf_area_fraction, treemap


def make_tree(num_jobs=3, tasks_per_job=2, nodes_per_task=4):
    """A job → task → node tree like the bubble chart builds."""
    jobs = []
    for j in range(num_jobs):
        tasks = []
        for t in range(tasks_per_job):
            nodes = [PackNode(id=f"j{j}/t{t}/n{n}", value=1.0)
                     for n in range(nodes_per_task)]
            tasks.append(PackNode(id=f"j{j}/t{t}", children=nodes))
        jobs.append(PackNode(id=f"j{j}", children=tasks))
    return PackNode(id="root", children=jobs)


class TestGridPack:
    def test_every_node_positioned_inside_extent(self):
        root = grid_pack(make_tree(), width=400.0, height=300.0)
        min_x, min_y, max_x, max_y = layout_extent(root)
        assert min_x >= -1e-6
        assert min_y >= -1e-6
        assert max_x <= 400.0 + 1e-6
        assert max_y <= 300.0 + 1e-6

    def test_leaves_get_positive_radius(self):
        root = grid_pack(make_tree(), width=400.0, height=300.0)
        assert all(leaf.r > 0 for leaf in root.leaves())

    def test_depths_assigned(self):
        root = grid_pack(make_tree(num_jobs=2), width=200.0, height=200.0)
        depths = {node.id: node.depth for node in root.iter()}
        assert depths["root"] == 0
        assert depths["j0"] == 1
        assert depths["j0/t0"] == 2
        assert depths["j0/t0/n0"] == 3

    def test_leaves_within_a_task_do_not_overlap(self):
        root = grid_pack(make_tree(nodes_per_task=9), width=600.0, height=600.0)
        for task in [n for n in root.iter() if n.depth == 2]:
            leaves = task.children
            for i in range(len(leaves)):
                for j in range(i + 1, len(leaves)):
                    a, b = leaves[i], leaves[j]
                    distance2 = (a.x - b.x) ** 2 + (a.y - b.y) ** 2
                    assert distance2 >= (a.r + b.r - 1e-6) ** 2 * 0.95

    def test_single_job_tree(self):
        root = grid_pack(make_tree(num_jobs=1), width=100.0, height=100.0)
        assert root.children[0].r > 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(LayoutError):
            grid_pack(make_tree(), width=0.0, height=100.0)
        with pytest.raises(LayoutError):
            grid_pack(make_tree(), width=100.0, height=100.0, padding=-1.0)

    def test_layout_extent_of_empty_tree_is_root_only(self):
        root = PackNode(id="solo", value=1.0)
        grid_pack(root, width=50.0, height=50.0)
        extent = layout_extent(root)
        assert extent[2] > extent[0]

    @given(num_jobs=st.integers(min_value=1, max_value=8),
           nodes=st.integers(min_value=1, max_value=12))
    @settings(max_examples=25, deadline=None)
    def test_all_leaves_inside_canvas(self, num_jobs, nodes):
        root = grid_pack(make_tree(num_jobs=num_jobs, nodes_per_task=nodes),
                         width=500.0, height=400.0)
        for leaf in root.leaves():
            assert -1e-6 <= leaf.x - leaf.r
            assert leaf.x + leaf.r <= 500.0 + 1e-6
            assert -1e-6 <= leaf.y - leaf.r
            assert leaf.y + leaf.r <= 400.0 + 1e-6


class TestTreemap:
    def test_root_spans_full_extent(self):
        root = make_tree()
        rects = treemap(root, width=400.0, height=300.0)
        assert rects["root"] == Rect(0.0, 0.0, 400.0, 300.0)

    def test_children_contained_in_parent(self):
        root = make_tree()
        rects = treemap(root, width=400.0, height=300.0, padding=2.0)
        for node in root.iter():
            parent_rect = rects[node.id]
            for child in node.children:
                assert parent_rect.contains(rects[child.id])

    def test_sibling_rectangles_do_not_overlap(self):
        root = make_tree(num_jobs=4, tasks_per_job=3, nodes_per_task=5)
        rects = treemap(root, width=500.0, height=400.0)
        for node in root.iter():
            children = node.children
            for i in range(len(children)):
                for j in range(i + 1, len(children)):
                    assert not rects[children[i].id].overlaps(rects[children[j].id])

    def test_areas_proportional_to_leaf_counts(self):
        jobs = [PackNode(id="big", children=[
                    PackNode(id="big/t", children=[
                        PackNode(id=f"big/n{i}", value=1.0) for i in range(8)])]),
                PackNode(id="small", children=[
                    PackNode(id="small/t", children=[
                        PackNode(id="small/n0", value=1.0)])])]
        root = PackNode(id="root", children=jobs)
        rects = treemap(root, width=300.0, height=300.0, padding=0.0)
        ratio = rects["big"].area / rects["small"].area
        assert ratio == pytest.approx(8.0, rel=0.05)

    def test_packnode_positions_updated(self):
        root = make_tree(num_jobs=2)
        rects = treemap(root, width=200.0, height=100.0)
        for node in root.iter():
            rect = rects[node.id]
            assert node.x == pytest.approx(rect.x + rect.width / 2.0)
            assert node.y == pytest.approx(rect.y + rect.height / 2.0)
            assert node.r > 0

    def test_leaf_area_fraction_between_zero_and_one(self):
        root = make_tree()
        rects = treemap(root, width=400.0, height=300.0, padding=3.0)
        fraction = leaf_area_fraction(root, rects)
        assert 0.0 < fraction <= 1.0

    def test_duplicate_ids_rejected(self):
        root = PackNode(id="root", children=[PackNode(id="dup", value=1.0),
                                             PackNode(id="dup", value=1.0)])
        with pytest.raises(LayoutError):
            treemap(root, width=100.0, height=100.0)

    def test_invalid_extent_rejected(self):
        with pytest.raises(LayoutError):
            treemap(make_tree(), width=-1.0, height=100.0)

    @given(counts=st.lists(st.integers(min_value=1, max_value=9),
                           min_size=1, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_leaf_rect_areas_sum_to_parent_area(self, counts):
        tasks = [PackNode(id=f"t{i}", children=[
                     PackNode(id=f"t{i}/n{j}", value=1.0) for j in range(count)])
                 for i, count in enumerate(counts)]
        root = PackNode(id="root", children=tasks)
        rects = treemap(root, width=320.0, height=240.0, padding=0.0)
        for task in tasks:
            child_area = sum(rects[leaf.id].area for leaf in task.children)
            assert child_area == pytest.approx(rects[task.id].area, rel=1e-6)
