"""Tests for the TimeSeries container."""

import numpy as np
import pytest

from repro.errors import SeriesError
from repro.metrics.series import TimeSeries, align, merge_mean, merge_sum


class TestConstruction:
    def test_basic_lengths(self, simple_series):
        assert len(simple_series) == 10
        assert simple_series.start == 0.0
        assert simple_series.end == 540.0
        assert simple_series.duration == 540.0

    def test_empty(self):
        series = TimeSeries.empty()
        assert len(series) == 0
        assert series.is_empty
        assert series.duration == 0.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SeriesError):
            TimeSeries([1, 2, 3], [1, 2])

    def test_two_dimensional_rejected(self):
        with pytest.raises(SeriesError):
            TimeSeries(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_unsorted_input_is_sorted(self):
        series = TimeSeries([30, 10, 20], [3, 1, 2])
        assert list(series.timestamps) == [10, 20, 30]
        assert list(series.values) == [1, 2, 3]

    def test_from_pairs(self):
        series = TimeSeries.from_pairs([(0, 1.0), (60, 2.0)])
        assert len(series) == 2
        assert series.value_at(60) == 2.0

    def test_from_pairs_empty(self):
        assert TimeSeries.from_pairs([]).is_empty

    def test_constant(self):
        series = TimeSeries.constant([0, 10, 20], 5.0)
        assert set(series.values.tolist()) == {5.0}

    def test_immutable_arrays(self, simple_series):
        with pytest.raises(ValueError):
            simple_series.values[0] = 99.0

    def test_equality(self):
        a = TimeSeries([0, 1], [1, 2])
        b = TimeSeries([0, 1], [1, 2])
        c = TimeSeries([0, 1], [1, 3])
        assert a == b
        assert a != c

    def test_repr_mentions_length(self, simple_series):
        assert "n=10" in repr(simple_series)
        assert "empty" in repr(TimeSeries.empty())


class TestPointQueries:
    def test_value_at_step_semantics(self, simple_series):
        assert simple_series.value_at(65) == 12.0

    def test_value_at_interpolated(self, simple_series):
        assert simple_series.value_at(30, interpolate=True) == pytest.approx(11.0)

    def test_value_at_clamps_to_ends(self, simple_series):
        assert simple_series.value_at(-100) == 10.0
        assert simple_series.value_at(10_000) == 12.0

    def test_value_at_empty_raises(self):
        with pytest.raises(SeriesError):
            TimeSeries.empty().value_at(0)


class TestTransforms:
    def test_slice(self, simple_series):
        part = simple_series.slice(120, 300)
        assert part.start == 120.0
        assert part.end == 300.0
        assert len(part) == 4

    def test_slice_open_ended(self, simple_series):
        assert simple_series.slice(start=480).end == 540.0
        assert simple_series.slice(end=60).start == 0.0

    def test_shift_and_scale(self, simple_series):
        shifted = simple_series.shift(100)
        assert shifted.start == 100.0
        scaled = simple_series.scale(2.0)
        assert scaled.max() == simple_series.max() * 2

    def test_clip(self, simple_series):
        clipped = simple_series.clip(0, 50)
        assert clipped.max() == 50.0
        with pytest.raises(SeriesError):
            simple_series.clip(10, 5)

    def test_map(self, simple_series):
        doubled = simple_series.map(lambda v: v * 2)
        assert doubled.values[0] == 20.0

    def test_add_subtract_aligned(self, simple_series):
        total = simple_series.add(simple_series)
        assert total.values[3] == 80.0
        zero = simple_series.subtract(simple_series)
        assert zero.max() == 0.0

    def test_add_unaligned_rejected(self, simple_series):
        other = TimeSeries([0, 1], [1, 2])
        with pytest.raises(SeriesError):
            simple_series.add(other)

    def test_diff(self, simple_series):
        diff = simple_series.diff()
        assert len(diff) == len(simple_series) - 1
        assert diff.values[0] == 2.0

    def test_diff_of_short_series(self):
        assert TimeSeries([0], [1]).diff().is_empty


class TestSmoothing:
    def test_ewma_bounds(self, simple_series):
        smooth = simple_series.ewma(0.3)
        assert len(smooth) == len(simple_series)
        assert smooth.values[0] == simple_series.values[0]
        assert smooth.max() <= simple_series.max()

    def test_ewma_alpha_one_is_identity(self, simple_series):
        assert simple_series.ewma(1.0) == simple_series

    def test_ewma_invalid_alpha(self, simple_series):
        with pytest.raises(SeriesError):
            simple_series.ewma(0.0)
        with pytest.raises(SeriesError):
            simple_series.ewma(1.5)

    def test_rolling_mean_window_one_is_identity(self, simple_series):
        assert simple_series.rolling_mean(1) == simple_series

    def test_rolling_mean_values(self):
        series = TimeSeries([0, 1, 2, 3], [2, 4, 6, 8])
        rolled = series.rolling_mean(2)
        assert list(rolled.values) == [2.0, 3.0, 5.0, 7.0]

    def test_rolling_std_constant_is_zero(self):
        series = TimeSeries.constant([0, 1, 2, 3], 7.0)
        assert series.rolling_std(3).max() == 0.0

    def test_rolling_invalid_window(self, simple_series):
        with pytest.raises(SeriesError):
            simple_series.rolling_mean(0)


class TestStatistics:
    def test_summary_consistency(self, simple_series):
        summary = simple_series.summary()
        assert summary.count == 10
        assert summary.minimum == simple_series.min()
        assert summary.maximum == simple_series.max()
        assert summary.p50 <= summary.p95 <= summary.p99 <= summary.maximum

    def test_percentile_range_check(self, simple_series):
        with pytest.raises(SeriesError):
            simple_series.percentile(120)

    def test_argmax_argmin(self, simple_series):
        assert simple_series.argmax() == 240.0
        assert simple_series.argmin() == 0.0

    def test_empty_statistics_raise(self):
        empty = TimeSeries.empty()
        for method in ("mean", "std", "min", "max", "summary"):
            with pytest.raises(SeriesError):
                getattr(empty, method)()


class TestAlignMerge:
    def test_align_on_union(self):
        a = TimeSeries([0, 10], [0, 10])
        b = TimeSeries([5, 15], [5, 15])
        aligned = align([a, b])
        assert list(aligned[0].timestamps) == [0, 5, 10, 15]
        assert aligned[0].value_at(5) == pytest.approx(5.0)

    def test_align_keeps_empty_series_empty(self):
        aligned = align([TimeSeries.empty(), TimeSeries([0, 1], [1, 2])])
        assert aligned[0].is_empty
        assert len(aligned[1]) == 2

    def test_align_step_mode(self):
        a = TimeSeries([0, 10], [0, 10])
        aligned = align([a], timestamps=np.array([0, 5, 10]), interpolate=False)
        assert list(aligned[0].values) == [0, 0, 10]

    def test_merge_sum_and_mean(self):
        a = TimeSeries([0, 10], [1, 3])
        b = TimeSeries([0, 10], [3, 5])
        assert list(merge_sum([a, b]).values) == [4, 8]
        assert list(merge_mean([a, b]).values) == [2, 4]

    def test_merge_empty_inputs(self):
        assert merge_sum([]).is_empty
        assert merge_mean([TimeSeries.empty()]).is_empty
