"""Golden equivalence: sharded ``Pipeline.run()`` is bit-identical to serial.

The shard executor's whole value proposition is that the ``execution``
block of a pipeline spec only changes wall-clock time — never the verdict.
This suite pins that contract:

* for **every registered scenario**, a serial-backend sharded run (shard
  counts 2 and 7) produces events identical to the unsharded pipeline for
  every registered detector;
* across **all three backends × shard counts 1/2/7**, events, flagged
  machines and ground-truth scores stay bit-identical on representative
  scenarios (including a composed, manifest-carrying one);
* shard views are zero-copy (``np.shares_memory`` with the parent store).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.pipeline import ExecutionOptions, Pipeline
from repro.scenarios import scenario_names
from repro.trace.synthetic import generate_trace

from tests.conftest import fast_config

SEED = 1306
SHARD_COUNTS = (1, 2, 7)

#: Scenarios for the full backend × shard matrix: the three paper regimes
#: plus a composed spec whose manifest exercises the scoring runners.
MATRIX_SCENARIOS = (
    "healthy",
    "thrashing",
    "machine-failure+network-storm",
)


@pytest.fixture(scope="module")
def bundles():
    """One fast bundle per scenario the suite touches (shared)."""
    names = set(scenario_names()) | set(MATRIX_SCENARIOS)
    return {scenario: generate_trace(fast_config(scenario, seed=SEED))
            for scenario in sorted(names)}


@pytest.fixture(scope="module")
def serial_runs(bundles):
    """The unsharded reference run of every bundle (all detectors, scored)."""
    return {scenario: Pipeline.from_bundle(bundle, sinks=("score",)).run()
            for scenario, bundle in bundles.items()}


def assert_runs_identical(sharded, serial, context: str) -> None:
    assert [run.label for run in sharded.detections] \
        == [run.label for run in serial.detections], context
    for shard_run, serial_run in zip(sharded.detections, serial.detections):
        assert shard_run.result.events() == serial_run.result.events(), (
            f"{context}: {shard_run.label} events diverged")
        assert np.array_equal(shard_run.result.mask, serial_run.result.mask), (
            f"{context}: {shard_run.label} mask diverged")
        assert np.array_equal(shard_run.result.scores,
                              serial_run.result.scores), (
            f"{context}: {shard_run.label} scores diverged")
        assert shard_run.result.flagged_machines() \
            == serial_run.result.flagged_machines(), context
    assert sharded.flagged_machines() == serial.flagged_machines(), context
    assert list(sharded.scores) == list(serial.scores), (
        f"{context}: ground-truth scores diverged")


@pytest.mark.parametrize("shards", (2, 7))
@pytest.mark.parametrize("scenario", scenario_names())
def test_serial_backend_sharding_identical_for_every_scenario(
        scenario, shards, bundles, serial_runs):
    sharded = Pipeline.from_bundle(
        bundles[scenario], sinks=("score",),
        execution=ExecutionOptions(backend="serial", shards=shards)).run()
    assert_runs_identical(sharded, serial_runs[scenario],
                          f"{scenario} × {shards} shards")


@pytest.mark.parametrize("backend", ("serial", "threads", "process"))
@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("scenario", MATRIX_SCENARIOS)
def test_backend_matrix_identical(scenario, shards, backend, bundles,
                                  serial_runs):
    sharded = Pipeline.from_bundle(
        bundles[scenario], sinks=("score",),
        execution=ExecutionOptions(backend=backend, shards=shards,
                                   workers=3)).run()
    assert_runs_identical(sharded, serial_runs[scenario],
                          f"{scenario} × {backend} × {shards} shards")


def test_scored_matrix_is_not_vacuous(serial_runs):
    """The composed scenario really exercises the scoring runners."""
    assert len(serial_runs["machine-failure+network-storm"].scores) >= 2
