"""Unit tests for the cluster-wide detection engine and its substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.detectors import (
    AnomalyEvent,
    EwmaDetector,
    FlatlineDetector,
    RollingZScoreDetector,
    ThresholdDetector,
    mask_runs,
    mask_to_events,
    merge_events,
)
from repro.analysis.engine import DetectionEngine, default_engine, detect_cluster
from repro.analysis.ensemble import EnsembleDetector
from repro.errors import SeriesError
from repro.metrics.series import TimeSeries
from repro.metrics.store import MetricStore


def make_store() -> MetricStore:
    timestamps = np.arange(8) * 60.0
    store = MetricStore(["m1", "m2", "m3"], timestamps)
    store.set_series("m1", "cpu", [10, 95, 96, 10, 10, 97, 10, 10])
    store.set_series("m2", "cpu", [10, 10, 10, 10, 10, 10, 10, 10])
    store.set_series("m3", "cpu", [93, 10, 10, 10, 10, 10, 10, 99])
    store.set_series("m1", "mem", [0, 0, 0, 0, 50, 50, 50, 50])
    return store


class TestMaskRuns:
    def test_runs_per_row(self):
        mask = np.array([[False, True, True, False, True],
                         [True, True, True, True, True],
                         [False, False, False, False, False]])
        rows, starts, ends = mask_runs(mask)
        assert rows.tolist() == [0, 0, 1]
        assert starts.tolist() == [1, 4, 0]
        assert ends.tolist() == [3, 5, 5]

    def test_runs_do_not_span_rows(self):
        mask = np.array([[False, True], [True, False]])
        rows, starts, ends = mask_runs(mask)
        assert rows.tolist() == [0, 1]
        assert starts.tolist() == [1, 0]
        assert ends.tolist() == [2, 1]

    def test_empty_inputs(self):
        for shape in [(0, 5), (3, 0)]:
            rows, starts, ends = mask_runs(np.zeros(shape, dtype=bool))
            assert rows.size == starts.size == ends.size == 0

    def test_all_false(self):
        rows, _, _ = mask_runs(np.zeros((2, 4), dtype=bool))
        assert rows.size == 0

    def test_one_dimensional_rejected(self):
        with pytest.raises(SeriesError):
            mask_runs(np.zeros(4, dtype=bool))


class TestMaskToEvents:
    def test_matches_manual_runs(self):
        timestamps = np.arange(6) * 60.0
        mask = np.array([False, True, True, False, False, True])
        scores = np.array([0.0, 3.0, 7.0, 0.0, 0.0, 2.0])
        events = mask_to_events(timestamps, mask, scores,
                                metric="cpu", subject="m", kind="k")
        assert [(e.start, e.end, e.score) for e in events] == [
            (60.0, 120.0, 7.0), (300.0, 300.0, 2.0)]
        assert all(e.kind == "k" and e.subject == "m" for e in events)


class TestDetectBlock:
    def test_threshold_block_matches_per_series(self):
        store = make_store()
        detector = ThresholdDetector(90.0)
        block = detector.detect_block(store.timestamps, store.metric_block("cpu"))
        events = block.events(subjects=store.machine_ids, metric="cpu",
                              kind="threshold")
        loop = []
        for mid in store.machine_ids:
            loop.extend(detector.detect(store.series(mid, "cpu"),
                                        metric="cpu", subject=mid))
        assert sorted(events, key=lambda e: (e.subject, e.start)) == \
            sorted(loop, key=lambda e: (e.subject, e.start))

    def test_min_duration_filters_runs_and_mask(self):
        store = make_store()
        detector = ThresholdDetector(90.0, min_duration_s=60.0)
        block = detector.detect_block(store.timestamps, store.metric_block("cpu"))
        # only the two-sample run on m1 survives; the mask agrees
        assert block.num_runs == 1
        assert block.mask.sum() == 2
        events = block.events(subjects=store.machine_ids, metric="cpu",
                              kind="threshold")
        assert events[0].subject == "m1" and events[0].duration == 60.0

    def test_flatline_min_samples_from_run_length(self):
        timestamps = np.arange(10) * 60.0
        values = np.array([[0, 0, 0, 5, 0, 0, 5, 0, 0, 0]], dtype=float)
        detector = FlatlineDetector(epsilon=0.5, min_samples=3)
        block = detector.detect_block(timestamps, values)
        assert block.num_runs == 2
        assert (block.ends - block.starts).tolist() == [3, 3]

    def test_zscore_warmup_never_flagged(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(0, 100, (4, 30))
        detector = RollingZScoreDetector(window=6, z_threshold=0.1, min_std=0.1)
        block = detector.detect_block(np.arange(30) * 60.0, values)
        assert not block.mask[:, :5].any()

    def test_ewma_short_block_empty(self):
        detector = EwmaDetector()
        block = detector.detect_block(np.array([0.0]), np.array([[50.0]]))
        assert block.num_runs == 0

    def test_block_shape_validation(self):
        detector = ThresholdDetector()
        with pytest.raises(SeriesError):
            detector.detect_block(np.arange(3.0), np.zeros(3))
        with pytest.raises(SeriesError):
            detector.detect_block(np.arange(3.0), np.zeros((2, 5)))

    def test_vote_scores_broadcasts_run_max(self):
        timestamps = np.arange(5) * 60.0
        detector = ThresholdDetector(50.0)
        block = detector.detect_block(
            timestamps, np.array([[10.0, 60.0, 90.0, 55.0, 10.0]]))
        votes = block.vote_scores()
        assert votes[0].tolist() == [0.0, 40.0, 40.0, 40.0, 0.0]


class TestDetectionEngine:
    def test_run_by_name_and_instance(self):
        store = make_store()
        engine = DetectionEngine()
        by_name = engine.run(store, "threshold", metric="cpu")
        by_instance = engine.run(store, ThresholdDetector(), metric="cpu")
        assert by_name.events() == by_instance.events()
        assert by_name.detector == "threshold"

    def test_unknown_detector_name(self):
        with pytest.raises(SeriesError):
            DetectionEngine().run(make_store(), "nope")

    def test_flagged_machines_with_window(self):
        store = make_store()
        engine = DetectionEngine()
        result = engine.run(store, ThresholdDetector(90.0), metric="cpu")
        assert result.flagged_machines() == {"m1", "m3"}
        # m3's first event covers t=0 only; m1's events start at t=60
        assert result.flagged_machines(window=(0.0, 30.0)) == {"m3"}
        assert engine.flag_machines(store, ThresholdDetector(90.0),
                                    metric="cpu",
                                    window=(50.0, 130.0)) == {"m1"}

    def test_events_for_machine(self):
        store = make_store()
        result = DetectionEngine().run(store, "threshold", metric="cpu")
        events = result.events_for("m1")
        assert len(events) == 2
        assert all(e.subject == "m1" for e in events)
        assert result.events_for("m2") == []

    def test_event_counts(self):
        store = make_store()
        result = DetectionEngine().run(store, "threshold", metric="cpu")
        assert result.event_counts() == {"m1": 2, "m3": 2}

    def test_run_all_covers_registry(self):
        store = make_store()
        results = DetectionEngine().run_all(store, metric="cpu")
        assert set(results) == {"threshold", "zscore", "ewma", "flatline"}

    def test_run_with_window_slices_store(self):
        store = make_store()
        result = DetectionEngine().run(store, "threshold", metric="cpu",
                                       window=(60.0, 180.0))
        assert result.timestamps.tolist() == [60.0, 120.0, 180.0]
        assert result.flagged_machines() == {"m1"}

    def test_empty_store(self):
        store = MetricStore([], np.arange(4) * 60.0)
        result = DetectionEngine().run(store, "threshold", metric="cpu")
        assert result.events() == []
        assert result.flagged_machines() == set()

    def test_per_series_fallback_for_custom_detector(self):
        class LegacyOnly:
            kind = "legacy"

            def detect(self, series, *, metric="cpu", subject=""):
                if series.values.max() >= 90.0:
                    return [AnomalyEvent(start=series.start, end=series.end,
                                         metric=metric, subject=subject,
                                         kind=self.kind, score=1.0)]
                return []

        store = make_store()
        result = DetectionEngine().run(store, LegacyOnly(), metric="cpu")
        assert result.detector == "legacy"
        assert result.flagged_machines() == {"m1", "m3"}

    def test_per_series_fallback_merges_overlapping_events(self):
        class Overlapping:
            kind = "overlap"

            def detect(self, series, *, metric="cpu", subject=""):
                if subject != "m1":
                    return []
                return [AnomalyEvent(0.0, 180.0, metric, subject, self.kind, 2.0),
                        AnomalyEvent(120.0, 300.0, metric, subject, self.kind, 5.0)]

        store = make_store()
        result = DetectionEngine().run(store, Overlapping(), metric="cpu")
        # overlapping events collapse into one run; mask and runs agree
        assert result.num_events == 1
        assert result.mask[0].sum() == 6
        event = result.events()[0]
        assert (event.start, event.end, event.score) == (0.0, 300.0, 5.0)
        # the BlockDetection invariant holds, so vote_scores must not raise
        votes = result.block.vote_scores()
        assert votes[0, :6].tolist() == [5.0] * 6

    def test_default_engine_is_shared(self):
        assert default_engine() is default_engine()

    def test_detect_cluster_convenience(self):
        store = make_store()
        events = detect_cluster(store, "threshold", metric="cpu")
        assert {e.subject for e in events} == {"m1", "m3"}


class TestEnsembleBlock:
    def test_cluster_wide_ensemble(self):
        store = make_store()
        ensemble = EnsembleDetector(min_votes=2)
        result = DetectionEngine().run(store, ensemble, metric="cpu")
        loop = []
        for mid in store.machine_ids:
            loop.extend(ensemble.detect(store.series(mid, "cpu"),
                                        metric="cpu", subject=mid))
        assert sorted(result.events(), key=lambda e: (e.subject, e.start)) == \
            sorted(loop, key=lambda e: (e.subject, e.start))
        assert all(e.kind == "ensemble" for e in result.events())

    def test_member_without_detect_block(self):
        class LegacyMember:
            def detect(self, series, *, metric="cpu", subject=""):
                return ThresholdDetector(90.0).detect(series, metric=metric,
                                                      subject=subject)

        series = TimeSeries(np.arange(6) * 60.0,
                            np.array([10, 95, 96, 10, 95, 10], dtype=float))
        reference = EnsembleDetector([ThresholdDetector(90.0)], min_votes=1)
        mixed = EnsembleDetector([LegacyMember()], min_votes=1)
        assert mixed.detect(series) == reference.detect(series)


class TestZeroCopyStoreViews:
    def test_window_shares_data(self):
        store = make_store()
        windowed = store.window(60.0, 180.0)
        assert windowed.num_samples == 3
        assert np.shares_memory(windowed.data, store.data)

    def test_full_subset_shares_data(self):
        store = make_store()
        sub = store.subset(store.machine_ids)
        assert np.shares_memory(sub.data, store.data)

    def test_contiguous_subset_shares_data(self):
        store = make_store()
        sub = store.subset(["m2", "m3"])
        assert np.shares_memory(sub.data, store.data)
        assert sub.series("m3", "cpu").values[0] == 93.0

    def test_scattered_subset_still_correct(self):
        store = make_store()
        sub = store.subset(["m3", "m1"])
        assert sub.machine_ids == ["m3", "m1"]
        assert sub.series("m1", "cpu").values[1] == 95.0

    def test_subset_uniformly_read_only(self):
        # mutation semantics must not depend on which machines were picked:
        # both the zero-copy view and the gathered copy refuse writes
        store = make_store()
        for ids in (["m1", "m2"], ["m3", "m1"]):
            sub = store.subset(ids)
            with pytest.raises(ValueError):
                sub.data[0, 0, 0] = 1.0

    def test_duplicate_subset_rejected(self):
        with pytest.raises(SeriesError):
            make_store().subset(["m1", "m1"])

    def test_metric_block_is_view(self):
        store = make_store()
        block = store.metric_block("cpu")
        assert block.shape == (3, 8)
        assert np.shares_memory(block, store.data)
        assert block[0, 1] == 95.0


class TestMergeEventsProvenance:
    def test_merged_detail_preserves_kinds(self):
        events = [
            AnomalyEvent(0, 100, "cpu", "m1", "threshold", 1.0),
            AnomalyEvent(50, 200, "cpu", "m1", "zscore", 2.0),
            AnomalyEvent(150, 260, "cpu", "m1", "threshold", 0.5),
        ]
        merged = merge_events(events)
        assert len(merged) == 1
        assert merged[0].kind == "merged"
        assert merged[0].detail == "kinds=threshold+zscore"

    def test_unmerged_event_unchanged(self):
        events = [
            AnomalyEvent(0, 100, "cpu", "m1", "threshold", 1.0,
                         detail="untouched"),
            AnomalyEvent(500, 600, "cpu", "m1", "zscore", 2.0),
        ]
        merged = merge_events(events)
        assert merged[0].detail == "untouched"
        assert merged[0].kind == "threshold"
        assert merged[1].kind == "zscore"
