"""Tests for regular-grid resampling helpers."""

import numpy as np
import pytest

from repro.errors import SeriesError
from repro.metrics.resample import downsample, fill_gaps, regular_grid, to_grid, upsample
from repro.metrics.series import TimeSeries


class TestRegularGrid:
    def test_inclusive_endpoints(self):
        grid = regular_grid(0, 600, 300)
        assert list(grid) == [0, 300, 600]

    def test_non_divisible_span(self):
        grid = regular_grid(0, 500, 300)
        assert list(grid) == [0, 300]

    def test_zero_span(self):
        assert list(regular_grid(100, 100, 60)) == [100]

    def test_invalid_inputs(self):
        with pytest.raises(SeriesError):
            regular_grid(0, 100, 0)
        with pytest.raises(SeriesError):
            regular_grid(100, 0, 10)


class TestDownsample:
    def test_mean_reducer(self, simple_series):
        coarse = downsample(simple_series, 120, "mean")
        assert len(coarse) == 5
        assert coarse.values[0] == pytest.approx(11.0)

    def test_max_reducer(self, simple_series):
        coarse = downsample(simple_series, 300, "max")
        assert coarse.values[0] == 90.0

    def test_all_named_reducers_run(self, simple_series):
        for name in ("mean", "max", "min", "sum", "median", "last", "first"):
            assert len(downsample(simple_series, 180, name)) > 0

    def test_unknown_reducer(self, simple_series):
        with pytest.raises(SeriesError):
            downsample(simple_series, 120, "mode")

    def test_empty_passthrough(self):
        assert downsample(TimeSeries.empty(), 60).is_empty

    def test_bins_stamped_at_left_edge(self, simple_series):
        coarse = downsample(simple_series, 120)
        assert list(coarse.timestamps) == [0, 120, 240, 360, 480]


class TestUpsample:
    def test_doubles_resolution(self, simple_series):
        fine = upsample(simple_series, 30)
        assert len(fine) == 19
        assert fine.value_at(30) == pytest.approx(11.0)

    def test_step_mode(self, simple_series):
        fine = upsample(simple_series, 30, interpolate=False)
        assert fine.value_at(30) == 10.0

    def test_empty_passthrough(self):
        assert upsample(TimeSeries.empty(), 10).is_empty


class TestToGrid:
    def test_projects_onto_grid(self, simple_series):
        grid = np.array([0.0, 90.0, 540.0])
        projected = to_grid(simple_series, grid)
        assert list(projected.timestamps) == [0, 90, 540]
        assert projected.values[1] == pytest.approx(13.0)

    def test_empty_series_gives_zeros(self):
        projected = to_grid(TimeSeries.empty(), np.array([0.0, 1.0]))
        assert list(projected.values) == [0.0, 0.0]


class TestFillGaps:
    def test_fills_missing_steps(self):
        series = TimeSeries([0, 60, 180], [1, 2, 4])
        filled = fill_gaps(series, 60, fill_value=-1)
        assert list(filled.timestamps) == [0, 60, 120, 180]
        assert filled.value_at(120) == -1.0

    def test_no_gaps_is_identity_shape(self, simple_series):
        filled = fill_gaps(simple_series, 60)
        assert len(filled) == len(simple_series)
