"""Tests for the dense MetricStore."""

import numpy as np
import pytest

from repro.errors import SeriesError, UnknownEntityError
from repro.metrics.store import MetricStore


@pytest.fixture()
def store() -> MetricStore:
    s = MetricStore(["m1", "m2", "m3"], np.array([0.0, 60.0, 120.0, 180.0]))
    s.set_series("m1", "cpu", [10, 20, 30, 40])
    s.set_series("m2", "cpu", [50, 50, 50, 50])
    s.set_series("m3", "cpu", [90, 80, 70, 60])
    s.set_series("m1", "mem", [5, 5, 5, 5])
    return s


class TestConstruction:
    def test_shape(self, store):
        assert store.num_machines == 3
        assert store.num_samples == 4
        assert store.metrics == ("cpu", "mem", "disk")
        assert store.data.shape == (3, 3, 4)

    def test_duplicate_machine_ids_rejected(self):
        with pytest.raises(SeriesError):
            MetricStore(["a", "a"], np.array([0.0]))

    def test_non_increasing_timestamps_rejected(self):
        with pytest.raises(SeriesError):
            MetricStore(["a"], np.array([0.0, 0.0]))

    def test_contains(self, store):
        assert "m1" in store
        assert "zz" not in store


class TestMutation:
    def test_set_series_wrong_length(self, store):
        with pytest.raises(SeriesError):
            store.set_series("m1", "cpu", [1, 2])

    def test_unknown_machine(self, store):
        with pytest.raises(UnknownEntityError):
            store.set_series("nope", "cpu", [0, 0, 0, 0])

    def test_unknown_metric(self, store):
        with pytest.raises(UnknownEntityError):
            store.series("m1", "gpu")

    def test_add_to_series_accumulates(self, store):
        store.add_to_series("m1", "cpu", [1, 1, 1, 1])
        assert store.series("m1", "cpu").values[0] == 11.0

    def test_clip(self, store):
        store.add_to_series("m3", "cpu", [50, 50, 50, 50])
        store.clip(0, 100)
        assert store.series("m3", "cpu").max() <= 100.0


class TestQueries:
    def test_series_roundtrip(self, store):
        series = store.series("m1", "cpu")
        assert list(series.values) == [10, 20, 30, 40]
        assert list(series.timestamps) == [0, 60, 120, 180]

    def test_series_is_a_copy(self, store):
        series = store.series("m1", "cpu")
        arr = np.array(series.values)  # copy to mutate
        arr[0] = 999
        assert store.series("m1", "cpu").values[0] == 10.0

    def test_machine_snapshot(self, store):
        snap = store.machine_snapshot("m1", 60)
        assert snap == {"cpu": 20.0, "mem": 5.0, "disk": 0.0}

    def test_snapshot_step_semantics(self, store):
        assert store.machine_snapshot("m1", 65)["cpu"] == 20.0
        assert store.machine_snapshot("m1", -5)["cpu"] == 10.0
        assert store.machine_snapshot("m1", 999)["cpu"] == 40.0

    def test_snapshot_per_metric(self, store):
        snap = store.snapshot(0, metric="cpu")
        assert snap == {"m1": 10.0, "m2": 50.0, "m3": 90.0}

    def test_snapshot_nested(self, store):
        snap = store.snapshot(0)
        assert snap["m2"]["cpu"] == 50.0

    def test_aggregate_reducers(self, store):
        assert store.aggregate("cpu", "mean").values[0] == pytest.approx(50.0)
        assert store.aggregate("cpu", "max").values[0] == 90.0
        assert store.aggregate("cpu", "min").values[3] == 40.0
        assert store.aggregate("cpu", "sum").values[0] == 150.0
        assert len(store.aggregate("cpu", "p95")) == 4

    def test_aggregate_unknown_reducer(self, store):
        with pytest.raises(SeriesError):
            store.aggregate("cpu", "mode")

    def test_subset(self, store):
        sub = store.subset(["m1", "m3"])
        assert sub.num_machines == 2
        assert sub.series("m3", "cpu").values[0] == 90.0

    def test_window(self, store):
        windowed = store.window(60, 120)
        assert windowed.num_samples == 2
        assert list(windowed.series("m1", "cpu").values) == [20, 30]

    def test_window_invalid(self, store):
        with pytest.raises(SeriesError):
            store.window(100, 50)


class TestEdgeCases:
    def test_single_timestamp_store(self):
        store = MetricStore(["m1", "m2"], np.array([42.0]))
        store.set_series("m1", "cpu", [55.0])
        assert store.num_samples == 1
        assert store.machine_snapshot("m1", 42.0)["cpu"] == 55.0
        # step semantics clamp probes on either side of the lone sample
        assert store.machine_snapshot("m1", -1.0)["cpu"] == 55.0
        assert store.machine_snapshot("m1", 1e9)["cpu"] == 55.0
        series = store.series("m1", "cpu")
        assert len(series) == 1 and series.values[0] == 55.0
        assert store.aggregate("cpu", "mean").values[0] == pytest.approx(27.5)

    def test_single_timestamp_window_and_subset(self):
        store = MetricStore(["m1"], np.array([42.0]))
        windowed = store.window(0.0, 100.0)
        assert windowed.num_samples == 1
        assert store.subset(["m1"]).num_machines == 1

    def test_empty_machine_list(self):
        store = MetricStore([], np.array([0.0, 60.0]))
        assert store.num_machines == 0
        assert store.machine_ids == []
        assert store.data.shape == (0, 3, 2)
        assert store.snapshot(0.0, metric="cpu") == {}
        assert store.snapshot(0.0) == {}
        assert list(store.iter_records()) == []
        assert store.subset([]).num_machines == 0

    def test_empty_machine_list_unknown_lookup(self):
        store = MetricStore([], np.array([0.0]))
        with pytest.raises(UnknownEntityError):
            store.series("ghost", "cpu")

    def test_unknown_metric_raises_everywhere(self, store):
        with pytest.raises(UnknownEntityError):
            store.set_series("m1", "gpu", [0, 0, 0, 0])
        with pytest.raises(UnknownEntityError):
            store.add_to_series("m1", "gpu", [0, 0, 0, 0])
        with pytest.raises(UnknownEntityError):
            store.aggregate("gpu", "mean")
        with pytest.raises(UnknownEntityError):
            store.snapshot(0.0, metric="gpu")

    def test_snapshot_on_empty_sample_store_rejected(self):
        store = MetricStore(["m1"], np.array([]))
        assert store.num_samples == 0
        with pytest.raises(SeriesError):
            store.machine_snapshot("m1", 0.0)


class TestFromDense:
    def test_adopts_data_without_copy(self):
        data = np.arange(24, dtype=np.float64).reshape(2, 3, 4)
        store = MetricStore.from_dense(["a", "b"], np.arange(4, dtype=float),
                                       ("cpu", "mem", "disk"), data)
        assert np.shares_memory(store.data, data)
        assert store.series("b", "disk").values.tolist() == [20, 21, 22, 23]

    def test_validates_shape_and_ids_and_timestamps(self):
        data = np.zeros((2, 3, 4))
        with pytest.raises(SeriesError):
            MetricStore.from_dense(["a", "a"], np.arange(4, dtype=float),
                                   ("cpu", "mem", "disk"), data)
        with pytest.raises(SeriesError):
            MetricStore.from_dense(["a", "b"], np.array([3.0, 2.0, 1.0, 0.0]),
                                   ("cpu", "mem", "disk"), data)
        with pytest.raises(SeriesError):
            MetricStore.from_dense(["a", "b"], np.arange(5, dtype=float),
                                   ("cpu", "mem", "disk"), data)


class TestRecordsRoundTrip:
    def test_iter_records_count(self, store):
        records = list(store.iter_records())
        assert len(records) == 3 * 4

    def test_from_records_roundtrip(self, store):
        rebuilt = MetricStore.from_records(store.iter_records())
        assert rebuilt.num_machines == store.num_machines
        assert rebuilt.num_samples == store.num_samples
        np.testing.assert_allclose(
            rebuilt.series("m1", "cpu").values, store.series("m1", "cpu").values)
        np.testing.assert_allclose(
            rebuilt.series("m3", "cpu").values, store.series("m3", "cpu").values)

    def test_from_records_duplicate_timestamps_across_machines(self):
        # several machines reporting at the same instant share one grid slot
        records = [
            (0.0, "a", {"cpu": 10.0}),
            (0.0, "b", {"cpu": 20.0}),
            (60.0, "a", {"cpu": 11.0}),
            (60.0, "b", {"cpu": 21.0}),
        ]
        store = MetricStore.from_records(records)
        assert store.num_samples == 2
        assert list(store.series("a", "cpu").values) == [10.0, 11.0]
        assert list(store.series("b", "cpu").values) == [20.0, 21.0]

    def test_from_records_duplicate_cell_last_wins(self):
        records = [
            (0.0, "a", {"cpu": 10.0}),
            (0.0, "a", {"cpu": 99.0}),
        ]
        store = MetricStore.from_records(records)
        assert store.series("a", "cpu").values[0] == 99.0

    def test_from_records_missing_metrics_stay_zero(self):
        records = [
            (0.0, "a", {"cpu": 10.0}),
            (60.0, "a", {"mem": 30.0}),
            (120.0, "a", {}),
        ]
        store = MetricStore.from_records(records)
        assert list(store.series("a", "cpu").values) == [10.0, 0.0, 0.0]
        assert list(store.series("a", "mem").values) == [0.0, 30.0, 0.0]
        assert list(store.series("a", "disk").values) == [0.0, 0.0, 0.0]

    def test_from_records_unordered_rows(self):
        records = [
            (120.0, "b", {"cpu": 5.0}),
            (0.0, "a", {"cpu": 1.0}),
            (60.0, "b", {"cpu": 3.0}),
            (0.0, "b", {"cpu": 2.0}),
        ]
        store = MetricStore.from_records(records)
        assert list(store.timestamps) == [0.0, 60.0, 120.0]
        assert store.machine_ids == ["a", "b"]
        assert list(store.series("b", "cpu").values) == [2.0, 3.0, 5.0]

    def test_from_records_empty(self):
        store = MetricStore.from_records([])
        assert store.num_machines == 0
        assert store.num_samples == 0
