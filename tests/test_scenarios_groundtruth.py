"""Ground-truth scored detector tests for every registered fault injector.

For each injector the scenario engine generates a trace, the scoring layer
runs the detector the manifest declares, and the result must reach
recall >= 0.8 and precision >= 0.5 against the injected ground truth —
across several seeds.  This is the quantitative replacement for eyeballed
"the anomaly looks present" assertions.
"""

from __future__ import annotations

import pytest

from repro.config import ClusterConfig, TraceConfig, UsageConfig, WorkloadConfig
from repro.scenarios import injector_names, score_bundle
from repro.trace.synthetic import generate_trace

SEEDS = (101, 202, 303)

#: Every registered injector that injects a fault (``background`` only
#: shifts the utilisation band and intentionally has no manifest).
FAULT_INJECTORS = [name for name in injector_names() if name != "background"]

RECALL_FLOOR = 0.8
PRECISION_FLOOR = 0.5


def scoring_config(seed: int) -> TraceConfig:
    """Small but non-trivial cluster: fast to generate, rich enough to score."""
    return TraceConfig(
        cluster=ClusterConfig(num_machines=16),
        workload=WorkloadConfig(num_jobs=12, max_instances=6),
        usage=UsageConfig(resolution_s=300),
        horizon_s=4 * 3600,
        scenario="healthy",
        seed=seed,
    )


@pytest.fixture(scope="module")
def scored_by_injector():
    """Generate and score one bundle per (injector, seed) pair, cached."""
    out = {}
    for name in FAULT_INJECTORS:
        for seed in SEEDS:
            bundle = generate_trace(scoring_config(seed), scenario=name,
                                    seed=seed)
            out[(name, seed)] = (bundle, score_bundle(bundle))
    return out


class TestManifests:
    def test_at_least_six_injectors_registered(self):
        assert len(FAULT_INJECTORS) >= 6

    @pytest.mark.parametrize("name", FAULT_INJECTORS)
    def test_every_injector_emits_a_manifest(self, scored_by_injector, name):
        for seed in SEEDS:
            bundle, scored = scored_by_injector[(name, seed)]
            manifest = bundle.ground_truth()
            assert manifest, f"{name} (seed {seed}) recorded no ground truth"
            assert scored, f"{name} (seed {seed}) produced no scored entries"
            for entry in manifest:
                assert entry.detectors, (
                    f"{name} entry {entry.kind} declares no detector")

    @pytest.mark.parametrize("name", FAULT_INJECTORS)
    def test_manifest_targets_exist_in_bundle(self, scored_by_injector, name):
        for seed in SEEDS:
            bundle, _ = scored_by_injector[(name, seed)]
            machine_ids = set(bundle.usage.machine_ids)
            job_ids = set(bundle.job_ids())
            start, end = bundle.time_range()
            for entry in bundle.ground_truth():
                assert set(entry.machines) <= machine_ids
                assert set(entry.jobs) <= job_ids
                if entry.window is not None:
                    lo, hi = entry.window
                    assert lo <= hi
                    assert start - 1e-9 <= lo and hi <= end + 1e-9


class TestDetectionQuality:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name", FAULT_INJECTORS)
    def test_declared_detector_recovers_injection(self, scored_by_injector,
                                                  name, seed):
        _, scored = scored_by_injector[(name, seed)]
        for entry in scored:
            assert entry.result.recall >= RECALL_FLOOR, (
                f"{name} seed={seed}: detector {entry.detector} recall "
                f"{entry.result.recall:.2f} < {RECALL_FLOOR}")
            assert entry.result.precision >= PRECISION_FLOOR, (
                f"{name} seed={seed}: detector {entry.detector} precision "
                f"{entry.result.precision:.2f} < {PRECISION_FLOOR}")


class TestComposedScenarios:
    def test_composed_scenario_scores_every_part(self):
        bundle = generate_trace(
            scoring_config(11),
            scenario="diurnal(amplitude=40)+network-storm+load-imbalance",
            seed=11)
        manifest = bundle.ground_truth()
        assert set(manifest.kinds()) == {"diurnal", "network-storm",
                                         "load-imbalance"}
        for scored in score_bundle(bundle):
            assert scored.result.recall >= RECALL_FLOOR
            assert scored.result.precision >= PRECISION_FLOOR

    def test_legacy_aliases_now_carry_manifests(self):
        hotjob = generate_trace(scoring_config(7), scenario="hotjob", seed=7)
        thrash = generate_trace(scoring_config(7), scenario="thrashing", seed=7)
        assert hotjob.ground_truth().kinds() == ["hot-job"]
        assert set(thrash.ground_truth().kinds()) == {"hot-job",
                                                      "memory-thrash"}
        healthy = generate_trace(scoring_config(7), scenario="healthy", seed=7)
        assert not healthy.ground_truth()
