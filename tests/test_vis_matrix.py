"""Tests for the job co-allocation matrix view."""

import numpy as np
import pytest

from repro.cluster.hierarchy import BatchHierarchy
from repro.errors import RenderError
from repro.trace.records import BatchInstanceRecord, BatchTaskRecord, TraceBundle
from repro.vis.charts.matrix import CoAllocationMatrix, CoAllocationMatrixModel
from tests.conftest import mid_timestamp


def sharing_bundle() -> TraceBundle:
    tasks = [BatchTaskRecord(0, 100, j, "t", 2, "Terminated")
             for j in ("j1", "j2", "j3")]
    instances = [
        BatchInstanceRecord(0, 100, "j1", "t", "m1", "Terminated", 1, 2),
        BatchInstanceRecord(0, 100, "j1", "t", "m2", "Terminated", 2, 2),
        BatchInstanceRecord(0, 100, "j2", "t", "m1", "Terminated", 1, 2),
        BatchInstanceRecord(0, 100, "j2", "t", "m2", "Terminated", 2, 2),
        BatchInstanceRecord(0, 100, "j3", "t", "m9", "Terminated", 1, 1),
    ]
    return TraceBundle(tasks=tasks, instances=instances)


class TestModel:
    def test_counts_match_coallocation(self):
        hierarchy = BatchHierarchy.from_bundle(sharing_bundle())
        model = CoAllocationMatrixModel.from_hierarchy(hierarchy)
        i, j = model.job_ids.index("j1"), model.job_ids.index("j2")
        assert model.counts[i, j] == 2
        assert model.counts[j, i] == 2
        k = model.job_ids.index("j3")
        assert model.counts[i, k] == 0
        assert model.max_count == 2

    def test_max_jobs_keeps_most_shared(self):
        hierarchy = BatchHierarchy.from_bundle(sharing_bundle())
        model = CoAllocationMatrixModel.from_hierarchy(hierarchy, max_jobs=2)
        assert set(model.job_ids) == {"j1", "j2"}
        assert model.counts.shape == (2, 2)

    def test_from_generated_bundle(self, hotjob_bundle, hotjob_hierarchy):
        model = CoAllocationMatrixModel.from_hierarchy(
            hotjob_hierarchy, mid_timestamp(hotjob_bundle), max_jobs=10)
        assert model.counts.shape[0] == len(model.job_ids) <= 10
        np.testing.assert_array_equal(model.counts, model.counts.T)


class TestChart:
    def test_renders_cells_and_labels(self):
        hierarchy = BatchHierarchy.from_bundle(sharing_bundle())
        model = CoAllocationMatrixModel.from_hierarchy(hierarchy)
        doc = CoAllocationMatrix(model).render()
        cells = [e for e in doc.iter("rect") if e.get("class") == "coallocation-cell"]
        assert len(cells) == len(model.job_ids) ** 2
        shared = [c for c in cells if c.get("data-count") not in ("0", None)]
        assert len(shared) == 2  # (j1,j2) and (j2,j1)
        labels = [e.text for e in doc.iter("text") if e.text in model.job_ids]
        assert len(labels) == 2 * len(model.job_ids)

    def test_shared_cells_darker_than_empty(self):
        hierarchy = BatchHierarchy.from_bundle(sharing_bundle())
        chart = CoAllocationMatrix(CoAllocationMatrixModel.from_hierarchy(hierarchy))
        assert chart._cell_color(2) != chart._cell_color(0)

    def test_empty_model_rejected(self):
        with pytest.raises(RenderError):
            CoAllocationMatrix(CoAllocationMatrixModel(job_ids=[],
                                                       counts=np.zeros((0, 0))))

    def test_facade_method(self, hotjob_lens, hotjob_bundle):
        chart = hotjob_lens.coallocation_matrix(mid_timestamp(hotjob_bundle),
                                                max_jobs=8)
        svg = chart.to_svg()
        assert "coallocation-cell" in svg
