"""Tests for the metric-based anomaly detectors."""

import numpy as np
import pytest

from repro.analysis.detectors import (
    AnomalyEvent,
    EwmaDetector,
    RollingZScoreDetector,
    ThresholdDetector,
    detect_all,
    merge_events,
)
from repro.errors import SeriesError
from repro.metrics.series import TimeSeries


def flat_with_spike(level=20.0, spike=95.0, n=50, spike_at=30, width=3) -> TimeSeries:
    values = np.full(n, level)
    values[spike_at:spike_at + width] = spike
    return TimeSeries(np.arange(n) * 60.0, values)


class TestThresholdDetector:
    def test_detects_interval_above_threshold(self):
        events = ThresholdDetector(90.0).detect(flat_with_spike(), subject="m1")
        assert len(events) == 1
        event = events[0]
        assert event.start == 30 * 60.0
        assert event.end == 32 * 60.0
        assert event.subject == "m1"
        assert event.kind == "threshold"

    def test_no_events_below_threshold(self):
        events = ThresholdDetector(99.0).detect(flat_with_spike(spike=95))
        assert events == []

    def test_min_duration_filter(self):
        detector = ThresholdDetector(90.0, min_duration_s=600)
        assert detector.detect(flat_with_spike(width=2)) == []

    def test_event_reaching_series_end(self):
        values = np.concatenate([np.full(10, 10.0), np.full(5, 99.0)])
        series = TimeSeries(np.arange(15) * 60.0, values)
        events = ThresholdDetector(90.0).detect(series)
        assert len(events) == 1
        assert events[0].end == series.end

    def test_invalid_threshold(self):
        with pytest.raises(SeriesError):
            ThresholdDetector(0.0)
        with pytest.raises(SeriesError):
            ThresholdDetector(150.0)

    def test_empty_series(self):
        assert ThresholdDetector().detect(TimeSeries.empty()) == []


class TestRollingZScore:
    def test_detects_level_shift(self):
        events = RollingZScoreDetector(window=8, z_threshold=2.5).detect(
            flat_with_spike(), subject="m2")
        assert len(events) >= 1
        assert any(e.start <= 30 * 60.0 <= e.end + 120 for e in events)

    def test_quiet_series_has_no_events(self):
        rng = np.random.default_rng(0)
        series = TimeSeries(np.arange(100) * 60.0, 20 + rng.normal(0, 0.5, 100))
        assert RollingZScoreDetector(window=10, z_threshold=4.0).detect(series) == []

    def test_short_series_returns_nothing(self):
        assert RollingZScoreDetector(window=10).detect(
            TimeSeries([0, 1], [1, 2])) == []

    def test_invalid_parameters(self):
        with pytest.raises(SeriesError):
            RollingZScoreDetector(window=1)
        with pytest.raises(SeriesError):
            RollingZScoreDetector(z_threshold=0)


class TestEwmaDetector:
    def test_detects_jump(self):
        events = EwmaDetector(alpha=0.3, deviation_threshold=30.0).detect(
            flat_with_spike())
        assert len(events) >= 1

    def test_slow_drift_not_flagged(self):
        series = TimeSeries(np.arange(100) * 60.0, np.linspace(10, 30, 100))
        assert EwmaDetector(alpha=0.3, deviation_threshold=10.0).detect(series) == []

    def test_invalid_parameters(self):
        with pytest.raises(SeriesError):
            EwmaDetector(alpha=0.0)
        with pytest.raises(SeriesError):
            EwmaDetector(deviation_threshold=-1)


class TestDetectAllAndMerge:
    def test_detect_all_pools_detectors(self):
        events = detect_all(flat_with_spike(), metric="cpu", subject="m")
        kinds = {e.kind for e in events}
        assert "threshold" in kinds
        assert len(events) >= 2
        assert events == sorted(events, key=lambda e: (e.start, e.kind))

    def test_merge_overlapping_events(self):
        events = [
            AnomalyEvent(0, 100, "cpu", "m1", "threshold", 1.0),
            AnomalyEvent(50, 200, "cpu", "m1", "zscore", 2.0),
            AnomalyEvent(500, 600, "cpu", "m1", "threshold", 3.0),
            AnomalyEvent(0, 100, "cpu", "m2", "threshold", 1.0),
        ]
        merged = merge_events(events)
        m1_events = [e for e in merged if e.subject == "m1"]
        assert len(m1_events) == 2
        assert m1_events[0].end == 200
        assert m1_events[0].score == 2.0

    def test_merge_with_gap_tolerance(self):
        events = [AnomalyEvent(0, 100, "cpu", "m", "t", 1.0),
                  AnomalyEvent(150, 300, "cpu", "m", "t", 1.0)]
        assert len(merge_events(events)) == 2
        assert len(merge_events(events, gap_s=60)) == 1

    def test_event_overlap_helper(self):
        event = AnomalyEvent(100, 200, "cpu", "m", "t", 1.0)
        assert event.overlaps(150, 400)
        assert event.overlaps(0, 100)
        assert not event.overlaps(201, 400)
        assert event.duration == 100
