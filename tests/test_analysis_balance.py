"""Tests for load-balance scoring."""

import numpy as np
import pytest

from repro.analysis.balance import (
    balance_report,
    cluster_balance,
    imbalance_over_time,
    outlier_machines,
)
from repro.metrics.store import MetricStore


def balanced_store() -> MetricStore:
    store = MetricStore([f"m{i}" for i in range(10)], np.array([0.0, 100.0]))
    for i in range(10):
        store.set_series(f"m{i}", "cpu", [30.0 + (i % 3), 31.0])
        store.set_series(f"m{i}", "mem", [40.0, 40.0])
    return store


def imbalanced_store() -> MetricStore:
    store = MetricStore([f"m{i}" for i in range(10)], np.array([0.0, 100.0]))
    for i in range(10):
        level = 5.0 if i < 8 else 95.0
        store.set_series(f"m{i}", "cpu", [level, level])
        store.set_series(f"m{i}", "mem", [level, level])
    return store


class TestBalanceReport:
    def test_balanced_cluster(self):
        report = balance_report(balanced_store(), "cpu", 0)
        assert report.balanced
        assert report.cv < 0.1
        assert report.gini < 0.05
        assert report.mean == pytest.approx(31.0, abs=1.0)

    def test_imbalanced_cluster(self):
        report = balance_report(imbalanced_store(), "cpu", 0)
        assert not report.balanced
        assert report.cv > 0.5
        assert report.spread > 80.0

    def test_cluster_balance_covers_all_metrics(self):
        reports = cluster_balance(balanced_store(), 0)
        assert set(reports) == {"cpu", "mem", "disk"}

    def test_generated_scenarios_are_balanced(self, healthy_bundle, hotjob_bundle):
        for bundle in (healthy_bundle, hotjob_bundle):
            start, end = bundle.time_range()
            report = balance_report(bundle.usage, "cpu", (start + end) / 2)
            # the least-loaded scheduler keeps the colour field uniform
            assert report.cv < 0.5


class TestImbalanceOverTime:
    def test_length_matches_samples(self):
        store = balanced_store()
        series = imbalance_over_time(store, "cpu")
        assert len(series) == store.num_samples
        assert all(cv >= 0 for _, cv in series)

    def test_imbalanced_store_scores_higher(self):
        balanced = imbalance_over_time(balanced_store(), "cpu")
        imbalanced = imbalance_over_time(imbalanced_store(), "cpu")
        assert imbalanced[0][1] > balanced[0][1]


class TestOutlierMachines:
    def test_finds_the_hot_machines(self):
        outliers = outlier_machines(imbalanced_store(), "cpu", 0, z_threshold=1.5)
        ids = {machine_id for machine_id, _ in outliers}
        assert ids == {"m8", "m9"}
        assert all(z > 0 for _, z in outliers)

    def test_no_outliers_on_constant_field(self):
        store = MetricStore(["a", "b"], np.array([0.0]))
        store.set_series("a", "cpu", [50.0])
        store.set_series("b", "cpu", [50.0])
        assert outlier_machines(store, "cpu", 0) == []

    def test_sorted_by_magnitude(self):
        outliers = outlier_machines(imbalanced_store(), "cpu", 0, z_threshold=0.1)
        magnitudes = [abs(z) for _, z in outliers]
        assert magnitudes == sorted(magnitudes, reverse=True)
