"""Tests for the trace replay harness."""

import pytest

from repro.errors import SeriesError
from repro.stream.alerts import AlertManager, AlertPolicy
from repro.stream.monitor import MonitorConfig
from repro.stream.replay import TraceReplayer, alert_timeline, replay_with_alerts
from repro.trace.records import TraceBundle

from tests.conftest import mid_timestamp


class TestTraceReplayer:
    def test_replays_every_sample(self, healthy_bundle):
        replayer = TraceReplayer(healthy_bundle, samples_per_step=8)
        report = replayer.run_to_end()
        assert report.samples_replayed == healthy_bundle.usage.num_samples
        assert replayer.finished
        assert report.duration_s > 0

    def test_step_respects_batch_size(self, healthy_bundle):
        replayer = TraceReplayer(healthy_bundle, samples_per_step=4)
        replayer.step()
        assert replayer.samples_replayed == 4

    def test_run_until_stops_at_timestamp(self, healthy_bundle):
        target = mid_timestamp(healthy_bundle)
        replayer = TraceReplayer(healthy_bundle)
        replayer.run_until(target)
        assert replayer.current_timestamp is not None
        assert replayer.current_timestamp >= target
        assert not replayer.finished or replayer.current_timestamp >= target

    def test_report_tracks_cpu_statistics(self, healthy_bundle):
        report = TraceReplayer(healthy_bundle, samples_per_step=16).run_to_end()
        assert 0.0 < report.mean_cpu < 100.0
        assert report.mean_cpu <= report.p95_cpu <= 100.0

    def test_checkpoint_before_start_rejected(self, healthy_bundle):
        with pytest.raises(SeriesError):
            TraceReplayer(healthy_bundle).checkpoint()

    def test_checkpoints_recorded_in_report(self, healthy_bundle):
        replayer = TraceReplayer(healthy_bundle, samples_per_step=4)
        replayer.step()
        first = replayer.checkpoint()
        replayer.run_to_end()
        second = replayer.checkpoint()
        report = replayer.report()
        assert report.checkpoints == (first, second)
        assert second.samples_replayed > first.samples_replayed

    def test_on_sample_callback_invoked(self, healthy_bundle):
        seen = []
        replayer = TraceReplayer(healthy_bundle, samples_per_step=2,
                                 on_sample=lambda ts, frame: seen.append(ts))
        replayer.step()
        assert len(seen) == 2

    def test_empty_bundle_rejected(self):
        with pytest.raises(SeriesError):
            TraceReplayer(TraceBundle())

    def test_invalid_samples_per_step(self, healthy_bundle):
        with pytest.raises(SeriesError):
            TraceReplayer(healthy_bundle, samples_per_step=0)

    def test_alerts_flow_into_manager(self, thrashing_bundle):
        manager = AlertManager(policy=AlertPolicy(min_severity="warning"))
        replayer = TraceReplayer(
            thrashing_bundle, alert_manager=manager, samples_per_step=8,
            monitor_config=MonitorConfig(utilisation_threshold=85.0))
        report = replayer.run_to_end()
        assert sum(report.alerts_by_kind.values()) == len(replayer.monitor.alerts)
        assert manager.history, "thrashing replay should raise at least one alert"


class TestReplayWithAlerts:
    def test_checkpoints_at_requested_timestamps(self, hotjob_bundle):
        start, end = hotjob_bundle.time_range()
        targets = [start + (end - start) * f for f in (0.25, 0.75)]
        report, manager = replay_with_alerts(hotjob_bundle, checkpoints_at=targets)
        assert len(report.checkpoints) == 2
        assert report.checkpoints[0].timestamp >= targets[0]
        assert report.checkpoints[1].timestamp >= targets[1]
        assert isinstance(manager, AlertManager)

    def test_thrashing_scenario_raises_critical_alerts(self, thrashing_bundle):
        report, manager = replay_with_alerts(
            thrashing_bundle,
            monitor_config=MonitorConfig(utilisation_threshold=85.0))
        assert report.alerts_by_kind, "expected at least one alert kind"
        assert report.final_regime is not None

    def test_alert_timeline_sorted(self, thrashing_bundle):
        _, manager = replay_with_alerts(
            thrashing_bundle,
            monitor_config=MonitorConfig(utilisation_threshold=85.0))
        timeline = alert_timeline(manager)
        timestamps = [row[0] for row in timeline]
        assert timestamps == sorted(timestamps)

    def test_healthy_scenario_quieter_than_thrashing(self, healthy_bundle,
                                                     thrashing_bundle):
        config = MonitorConfig(utilisation_threshold=90.0)
        healthy_report, _ = replay_with_alerts(healthy_bundle, monitor_config=config)
        thrash_report, _ = replay_with_alerts(thrashing_bundle, monitor_config=config)
        assert (sum(healthy_report.alerts_by_kind.values())
                <= sum(thrash_report.alerts_by_kind.values()))
