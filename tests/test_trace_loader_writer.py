"""Tests for CSV loading/writing round trips."""

import gzip
import io

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.trace import loader as loader_module
from repro.trace import schema
from repro.trace import writer as writer_module
from repro.trace.loader import (
    iter_table,
    load_batch_instances,
    load_batch_tasks,
    load_machine_events,
    load_server_usage,
    load_trace,
    usage_records_to_store,
)
from repro.trace.records import ServerUsageRecord
from repro.trace.writer import write_table, write_trace


class TestRoundTrip:
    def test_full_bundle_roundtrip(self, tmp_path, healthy_bundle):
        written = write_trace(healthy_bundle, tmp_path)
        assert set(written) == {"machine_events", "batch_task",
                                "batch_instance", "server_usage"}
        loaded = load_trace(tmp_path)
        assert loaded.job_ids() == healthy_bundle.job_ids()
        assert len(loaded.tasks) == len(healthy_bundle.tasks)
        assert len(loaded.instances) == len(healthy_bundle.instances)
        assert set(loaded.machine_ids()) == set(healthy_bundle.machine_ids())
        assert loaded.usage.num_samples == healthy_bundle.usage.num_samples
        # utilisation survives the round trip within CSV formatting precision
        original = healthy_bundle.usage.series(healthy_bundle.usage.machine_ids[0], "cpu")
        reloaded = loaded.usage.series(healthy_bundle.usage.machine_ids[0], "cpu")
        np.testing.assert_allclose(reloaded.values, original.values, atol=0.01)

    def test_compressed_roundtrip(self, tmp_path, healthy_bundle):
        write_trace(healthy_bundle, tmp_path, compress=True)
        assert (tmp_path / "batch_task.csv.gz").exists()
        loaded = load_trace(tmp_path)
        assert len(loaded.tasks) == len(healthy_bundle.tasks)

    def test_write_skips_empty_sections(self, tmp_path):
        from repro.trace.records import TraceBundle

        written = write_trace(TraceBundle(), tmp_path)
        assert written == {}
        assert not any(tmp_path.iterdir())


class TestLoaderErrors:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(TraceFormatError):
            load_trace(tmp_path / "does-not-exist")

    def test_empty_directory(self, tmp_path):
        with pytest.raises(TraceFormatError):
            load_trace(tmp_path)

    def test_malformed_row_raises_with_line_number(self, tmp_path):
        path = tmp_path / "server_usage.csv"
        path.write_text("0,m_1,10,20,30\nbroken-line\n")
        with pytest.raises(TraceFormatError) as err:
            load_server_usage(path)
        assert "line 2" in str(err.value)

    def test_skip_malformed_drops_bad_rows(self, tmp_path):
        path = tmp_path / "server_usage.csv"
        path.write_text("0,m_1,10,20,30\nbroken-line\n60,m_1,11,21,31\n")
        records = load_server_usage(path, skip_malformed=True)
        assert len(records) == 2

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "machine_events.csv"
        path.write_text("0,m_1,add,,96,512,4096\n\n   \n")
        events = load_machine_events(path)
        assert len(events) == 1
        assert events[0].capacity_cpu == 96.0


class TestPartialTables:
    def test_only_usage_table(self, tmp_path):
        path = tmp_path / "server_usage.csv"
        path.write_text("0,m_1,10,20,30\n0,m_2,40,50,60\n")
        bundle = load_trace(tmp_path)
        assert bundle.tasks == []
        assert bundle.usage.num_machines == 2

    def test_only_batch_tables(self, tmp_path):
        (tmp_path / "batch_task.csv").write_text("0,100,j1,t1,1,Terminated,10,20\n")
        (tmp_path / "batch_instance.csv").write_text(
            "0,100,j1,t1,m_1,Terminated,1,1,10,20,30,40\n")
        bundle = load_trace(tmp_path)
        assert bundle.usage is None
        assert len(load_batch_tasks(tmp_path / "batch_task.csv")) == 1
        assert len(load_batch_instances(tmp_path / "batch_instance.csv")) == 1


class TestGzipHandleNotLeaked:
    """Regression: a failing TextIOWrapper must not leak the gzip handle."""

    @pytest.fixture()
    def tracked_gzip_open(self, monkeypatch):
        """Record every GzipFile the module under test opens."""
        opened = []
        real_open = gzip.open

        def tracking_open(*args, **kwargs):
            handle = real_open(*args, **kwargs)
            opened.append(handle)
            return handle

        monkeypatch.setattr(gzip, "open", tracking_open)
        return opened

    @pytest.fixture()
    def broken_text_wrapper(self, monkeypatch):
        def exploding_wrapper(*args, **kwargs):
            raise RuntimeError("wrapper construction failed")

        monkeypatch.setattr(io, "TextIOWrapper", exploding_wrapper)

    def test_loader_closes_gzip_on_wrapper_failure(
            self, tmp_path, tracked_gzip_open, broken_text_wrapper):
        path = tmp_path / "server_usage.csv.gz"
        # binary mode: gzip's own text mode would use the patched wrapper
        with gzip.open(path, "wb") as handle:
            handle.write(b"0,m_1,10,20,30\n")
        tracked_gzip_open.clear()
        with pytest.raises(RuntimeError):
            loader_module._open_text(path)
        assert len(tracked_gzip_open) == 1
        assert tracked_gzip_open[0].closed

    def test_writer_closes_gzip_on_wrapper_failure(
            self, tmp_path, tracked_gzip_open, broken_text_wrapper):
        path = tmp_path / "server_usage.csv.gz"
        with pytest.raises(RuntimeError):
            writer_module._open_out(path)
        assert len(tracked_gzip_open) == 1
        assert tracked_gzip_open[0].closed

    def test_loader_closes_gzip_when_caller_raises(self, tmp_path,
                                                   tracked_gzip_open):
        """`with _open_text(...)` closes the gzip handle even on error."""
        path = tmp_path / "server_usage.csv.gz"
        with gzip.open(path, "wb") as handle:
            handle.write(b"0,m_1,10,20,30\nbroken-line\n")
        tracked_gzip_open.clear()
        with pytest.raises(TraceFormatError):
            list(iter_table(path, schema.SERVER_USAGE))
        assert len(tracked_gzip_open) == 1
        assert tracked_gzip_open[0].closed


class TestHelpers:
    def test_usage_records_to_store(self):
        records = [ServerUsageRecord(0, "m1", 1, 2, 3),
                   ServerUsageRecord(60, "m1", 4, 5, 6)]
        store = usage_records_to_store(records)
        assert store.num_samples == 2
        assert store.series("m1", "disk").values[1] == 6.0

    def test_usage_records_to_store_empty(self):
        assert usage_records_to_store([]) is None

    def test_write_table_and_iter_table(self, tmp_path):
        path = tmp_path / "server_usage.csv"
        rows = [{"timestamp": 0, "machine_id": "m1", "cpu_util": 1.0,
                 "mem_util": 2.0, "disk_util": 3.0}]
        count = write_table(path, schema.SERVER_USAGE, rows)
        assert count == 1
        parsed = list(iter_table(path, schema.SERVER_USAGE))
        assert parsed[0]["machine_id"] == "m1"
