"""Tests for the streaming store and the online monitor (paper future work)."""

import numpy as np
import pytest

from repro.analysis.patterns import Regime
from repro.errors import SeriesError
from repro.stream.monitor import MonitorConfig, OnlineMonitor, iter_samples, replay_bundle
from repro.stream.store import StreamingMetricStore


def frame(cpu: float, mem: float, machines=("m1", "m2")) -> dict:
    return {mid: {"cpu": cpu, "mem": mem, "disk": 10.0} for mid in machines}


class TestStreamingStore:
    def test_append_and_query(self):
        store = StreamingMetricStore(["m1", "m2"], window_samples=8)
        store.append(0, frame(10, 20))
        store.append(60, frame(30, 40))
        assert len(store) == 2
        assert store.latest("m1", "cpu") == 30.0
        assert store.latest_timestamp == 60.0

    def test_monotonic_timestamps_enforced(self):
        store = StreamingMetricStore(["m1"], window_samples=4)
        store.append(0, {"m1": {"cpu": 1}})
        with pytest.raises(SeriesError):
            store.append(0, {"m1": {"cpu": 2}})

    def test_unknown_machine_and_metric_rejected(self):
        store = StreamingMetricStore(["m1"], window_samples=4)
        with pytest.raises(SeriesError):
            store.append(0, {"ghost": {"cpu": 1}})
        with pytest.raises(SeriesError):
            store.append(0, {"m1": {"gpu": 1}})

    def test_out_of_range_value_rejected(self):
        store = StreamingMetricStore(["m1"], window_samples=4)
        with pytest.raises(SeriesError):
            store.append(0, {"m1": {"cpu": 150}})

    def test_missing_machine_carries_last_value_forward(self):
        store = StreamingMetricStore(["m1", "m2"], window_samples=4)
        store.append(0, frame(10, 20))
        store.append(60, {"m1": {"cpu": 50.0}})
        assert store.latest("m2", "cpu") == 10.0
        assert store.latest("m1", "cpu") == 50.0

    def test_window_eviction(self):
        store = StreamingMetricStore(["m1"], window_samples=3)
        for i in range(5):
            store.append(i * 60, {"m1": {"cpu": float(i)}})
        assert len(store) == 3
        assert store.is_full()
        snapshot = store.snapshot_store()
        assert list(snapshot.timestamps) == [120, 180, 240]

    def test_snapshot_store_matches_appended_values(self):
        store = StreamingMetricStore(["m1", "m2"], window_samples=8)
        store.append(0, frame(10, 20))
        store.append(60, frame(30, 40))
        snapshot = store.snapshot_store()
        assert snapshot.series("m1", "cpu").values.tolist() == [10.0, 30.0]
        assert snapshot.series("m2", "mem").values.tolist() == [20.0, 40.0]

    def test_empty_store_queries_raise(self):
        store = StreamingMetricStore(["m1"], window_samples=4)
        with pytest.raises(SeriesError):
            store.snapshot_store()
        with pytest.raises(SeriesError):
            _ = store.latest_timestamp

    def test_invalid_window(self):
        with pytest.raises(SeriesError):
            StreamingMetricStore(["m1"], window_samples=1)


class TestOnlineMonitor:
    def test_threshold_alert_fires_once_per_excursion(self):
        monitor = OnlineMonitor(["m1", "m2"],
                                config=MonitorConfig(utilisation_threshold=90.0))
        monitor.observe(0, frame(50, 50))
        alerts = monitor.observe(60, {"m1": {"cpu": 95.0, "mem": 50.0, "disk": 0.0},
                                      "m2": {"cpu": 40.0, "mem": 40.0, "disk": 0.0}})
        assert [a.kind for a in alerts].count("threshold") == 1
        # staying above the threshold does not re-fire
        alerts = monitor.observe(120, {"m1": {"cpu": 96.0, "mem": 50.0, "disk": 0.0}})
        assert not [a for a in alerts if a.kind == "threshold"]
        # dropping below re-arms the alert
        monitor.observe(180, {"m1": {"cpu": 40.0, "mem": 50.0, "disk": 0.0}})
        alerts = monitor.observe(240, {"m1": {"cpu": 97.0, "mem": 50.0, "disk": 0.0}})
        assert [a.kind for a in alerts].count("threshold") == 1

    def test_regime_change_alert(self):
        monitor = OnlineMonitor(["m1", "m2"])
        for i in range(3):
            monitor.observe(i * 60, frame(25, 25))
        alerts = []
        for i in range(3, 6):
            alerts += monitor.observe(i * 60, frame(85, 85))
        regime_alerts = [a for a in alerts if a.kind == "regime-change"]
        assert regime_alerts
        assert monitor.current_regime == Regime.SATURATED
        assert regime_alerts[-1].severity == "critical"

    def test_callback_invoked(self):
        seen = []
        monitor = OnlineMonitor(["m1"], on_alert=seen.append,
                                config=MonitorConfig(utilisation_threshold=80.0))
        monitor.observe(0, {"m1": {"cpu": 10, "mem": 10, "disk": 0}})
        monitor.observe(60, {"m1": {"cpu": 90, "mem": 10, "disk": 0}})
        assert seen and seen[0].kind == "threshold"

    def test_thrashing_alert_on_collapse(self):
        monitor = OnlineMonitor(["m1"], config=MonitorConfig(thrashing_scan_every=1))
        # healthy phase
        for i in range(10):
            monitor.observe(i * 60, {"m1": {"cpu": 70, "mem": 60, "disk": 0}})
        # memory saturates while CPU collapses
        for i in range(10, 20):
            cpu = max(5.0, 70 - (i - 9) * 8)
            monitor.observe(i * 60, {"m1": {"cpu": cpu, "mem": 96, "disk": 0}})
        assert monitor.alerts_of_kind("thrashing")
        assert monitor.summary().get("thrashing", 0) >= 1

    @staticmethod
    def _feed(monitor, start_s: float, count: int, *, cpu: float,
              mem: float) -> float:
        t = start_s
        for _ in range(count):
            monitor.observe(t, {"m1": {"cpu": cpu, "mem": mem, "disk": 5.0}})
            t += 60.0
        return t

    def test_thrashing_episode_alerts_once_despite_flapping(self):
        """A detection-boundary dip mid-episode must not re-emit the alert."""
        monitor = OnlineMonitor(["m1"], config=MonitorConfig())
        t = self._feed(monitor, 0.0, 12, cpu=50, mem=30)      # healthy
        t = self._feed(monitor, t, 16, cpu=5, mem=95)          # episode starts
        t = self._feed(monitor, t, 8, cpu=50, mem=30)          # brief clearance
        self._feed(monitor, t, 16, cpu=5, mem=95)              # episode resumes
        assert len(monitor.alerts_of_kind("thrashing")) == 1

    def test_thrashing_new_episode_alerts_again_after_cooldown(self):
        """A genuinely new episode (long clearance) still raises a new alert."""
        monitor = OnlineMonitor(["m1"], config=MonitorConfig())
        t = self._feed(monitor, 0.0, 12, cpu=50, mem=30)
        t = self._feed(monitor, t, 16, cpu=5, mem=95)          # first episode
        t = self._feed(monitor, t, 16, cpu=50, mem=30)         # real recovery
        self._feed(monitor, t, 16, cpu=5, mem=95)              # second episode
        assert len(monitor.alerts_of_kind("thrashing")) == 2

    def test_thrashing_clear_scans_validated(self):
        with pytest.raises(SeriesError):
            MonitorConfig(thrashing_clear_scans=0).validate()


class TestReplay:
    def test_iter_samples_covers_every_timestamp(self, healthy_bundle):
        frames = list(iter_samples(healthy_bundle.usage))
        assert len(frames) == healthy_bundle.usage.num_samples
        timestamp, sample = frames[0]
        assert set(sample) == set(healthy_bundle.usage.machine_ids)

    def test_replay_thrashing_bundle_raises_critical_alerts(self, thrashing_bundle):
        monitor = replay_bundle(thrashing_bundle,
                                config=MonitorConfig(thrashing_scan_every=2))
        kinds = monitor.summary()
        assert kinds.get("threshold", 0) >= 1
        assert kinds.get("thrashing", 0) >= 1

    def test_replay_healthy_bundle_is_mostly_quiet(self, healthy_bundle):
        monitor = replay_bundle(healthy_bundle)
        assert monitor.summary().get("thrashing", 0) == 0

    def test_replay_requires_usage(self):
        from repro.trace.records import TraceBundle

        with pytest.raises(SeriesError):
            replay_bundle(TraceBundle())
