"""Tests for dashboard HTML assembly."""

import pytest

from repro.errors import RenderError
from repro.vis.charts.base import Chart
from repro.vis.html import Dashboard
from repro.vis.svg import circle


class DummyChart(Chart):
    """Minimal chart used to exercise the dashboard plumbing."""

    def _draw(self, doc):
        doc.add(circle(10, 10, 5, fill="#ff0000", data_machine="m_42"))


class TestDashboard:
    def test_panels_and_structure(self):
        dash = Dashboard(title="BatchLens", subtitle="case study")
        dash.add_panel("Bubble", DummyChart(width=200, height=150),
                       description="main view", full_width=True)
        dash.add_panel("Lines", DummyChart(width=200, height=150),
                       panel_id="panel-job-7901")
        html = dash.to_html()
        assert html.startswith("<!DOCTYPE html>")
        assert "<title>BatchLens</title>" in html
        assert html.count("<section") == 2
        assert 'id="panel-job-7901"' in html
        assert "panel full" in html
        assert "main view" in html
        assert 'data-machine="m_42"' in html

    def test_interaction_runtime_embedded(self):
        dash = Dashboard(title="x")
        dash.add_panel("p", DummyChart(width=200, height=150))
        html = dash.to_html()
        assert "<script>" in html
        assert "data-machine" in html          # JS selects by machine id
        assert "getElementById('tooltip')" in html
        assert "scrollIntoView" in html        # click-to-jump interaction

    def test_title_escaping(self):
        dash = Dashboard(title="a <b> & c")
        dash.add_panel("p", DummyChart(width=200, height=150))
        assert "a &lt;b&gt; &amp; c" in dash.to_html()

    def test_raw_svg_panel_accepted(self):
        dash = Dashboard(title="x")
        dash.add_panel("raw", "<svg xmlns='http://www.w3.org/2000/svg'></svg>")
        assert "<svg" in dash.to_html()

    def test_non_svg_panel_rejected(self):
        dash = Dashboard(title="x")
        with pytest.raises(RenderError):
            dash.add_panel("bad", "<div>not a chart</div>")

    def test_empty_dashboard_rejected(self):
        with pytest.raises(RenderError):
            Dashboard(title="x").to_html()

    def test_save(self, tmp_path):
        dash = Dashboard(title="x")
        dash.add_panel("p", DummyChart(width=200, height=150))
        path = dash.save(tmp_path / "sub" / "dash.html")
        assert path.exists()
        assert path.read_text().startswith("<!DOCTYPE html>")

    def test_panel_ids_auto_assigned_and_unique(self):
        dash = Dashboard(title="x")
        dash.add_panel("a", DummyChart(width=200, height=150))
        dash.add_panel("b", DummyChart(width=200, height=150))
        assert len(set(dash.panel_ids)) == 2
