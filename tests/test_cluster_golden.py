"""Golden suite: the vectorized cluster-topology analyses equal their loops.

The cluster-detector refactor ported the cross-machine analyses
(correlation, balance, CUSUM, synchronisation) onto block-level NumPy
passes.  These tests pin the contract that made the port safe, PR-2 style:

* every vectorized path produces **bit-identical** numbers to the legacy
  per-pair / per-series loop over the retained public API, for every
  registered scenario × three seeds;
* a pipeline stack mixing shardable ``BlockDetector``s with non-shardable
  ``ClusterDetector``s is bit-identical across every shard backend × shard
  count to the fully unsharded run (the executor's routing invariant);
* degenerate inputs (empty store, single machine, constant series, jobs
  whose machines are absent from the store, instance-less jobs) yield
  clean, empty-ish results instead of crashes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.balance import imbalance_over_time, imbalance_sweep
from repro.analysis.changepoint import cusum_block, cusum_changepoints
from repro.analysis.cluster_detectors import (
    ImbalanceDetector,
    SlaRiskDetector,
    SyncBreakDetector,
)
from repro.analysis.correlation import (
    correlation_matrix,
    job_synchronisation,
    pearson,
)
from repro.analysis.rootcause import (
    RootCauseCandidate,
    anomalous_machines_in_window,
    rank_root_causes,
)
from repro.analysis.sla import (
    cluster_sla_report,
    evaluate_job_sla,
    jobs_at_risk,
)
from repro.cluster.hierarchy import BatchHierarchy
from repro.metrics.series import TimeSeries
from repro.metrics.stats import coefficient_of_variation
from repro.metrics.store import MetricStore
from repro.pipeline import ExecutionOptions, Pipeline
from repro.scenarios import scenario_names
from repro.trace.records import BatchInstanceRecord, BatchTaskRecord, TraceBundle
from repro.trace.synthetic import generate_trace

from tests.conftest import fast_config, mid_timestamp

SEEDS = (101, 202, 303)

#: A stack interleaving shardable block detectors with non-shardable
#: cluster detectors — the case the executor's routing must get right.
MIXED_SPEC = "threshold+flatline+sync_break+imbalance+sla_risk"


@pytest.fixture(scope="module")
def bundles():
    """One fast bundle per (scenario, seed) the golden sweeps touch."""
    return {(scenario, seed): generate_trace(fast_config(scenario, seed=seed))
            for scenario in scenario_names() for seed in SEEDS}


# -- vectorized ports == legacy loops, bit for bit ----------------------------
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scenario", scenario_names())
def test_correlation_matrix_identical_to_pairwise_loop(scenario, seed, bundles):
    store = bundles[(scenario, seed)].usage
    series = [store.series(mid, "cpu") for mid in store.machine_ids]
    matrix = correlation_matrix(series)
    n = len(series)
    legacy = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            legacy[i, j] = legacy[j, i] = pearson(series[i], series[j])
    assert np.array_equal(matrix, legacy), (
        f"{scenario}/{seed}: block correlation diverged from pairwise pearson")


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scenario", scenario_names())
def test_imbalance_sweep_identical_to_scalar_cv_loop(scenario, seed, bundles):
    store = bundles[(scenario, seed)].usage
    for metric in store.metrics:
        curve = imbalance_over_time(store, metric)
        block = store.metric_block(metric)
        legacy = [(float(t), coefficient_of_variation(
            np.ascontiguousarray(block[:, idx])))
            for idx, t in enumerate(store.timestamps)]
        assert curve == legacy, (
            f"{scenario}/{seed}: imbalance sweep on {metric} diverged from "
            f"the per-timestamp scalar CV loop")


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scenario", scenario_names())
def test_cusum_block_identical_to_per_series(scenario, seed, bundles):
    store = bundles[(scenario, seed)].usage
    block = store.metric_block("cpu")
    rows = cusum_block(store.timestamps, block)
    assert len(rows) == store.num_machines
    for row, machine_id in enumerate(store.machine_ids):
        scalar = cusum_changepoints(store.series(machine_id, "cpu"))
        assert rows[row] == scalar, (
            f"{scenario}/{seed}: CUSUM row {machine_id} diverged from the "
            f"per-series sweep")


def test_cusum_golden_sweep_is_not_vacuous(bundles):
    """At least one scenario actually produces change points."""
    total = 0
    for (scenario, seed), bundle in bundles.items():
        store = bundle.usage
        total += sum(len(points) for points
                     in cusum_block(store.timestamps, store.metric_block("cpu")))
    assert total > 0


def test_cusum_shift_is_the_level_delta():
    """The reported shift is the observed level change, not the statistic."""
    timestamps = np.arange(20.0)
    values = np.concatenate([np.full(10, 10.0), np.full(10, 70.0)])
    (point,) = cusum_changepoints(
        TimeSeries(timestamps, values), threshold=30.0, drift=2.0)
    # level rose 10 -> 70: the shift must be the 60-unit delta, while the
    # accumulated CUSUM statistic at trigger time is 58 (one drift step)
    assert point.shift == pytest.approx(60.0)
    assert point.direction == "up"
    assert point.score != point.shift


def legacy_job_synchronisation(store, machine_ids, metric, window):
    """The pre-port O(n²) pairwise body of ``job_synchronisation``."""
    known = [mid for mid in machine_ids if mid in store]
    if len(known) < 2:
        return 1.0
    series = []
    for mid in known:
        s = store.series(mid, metric)
        if window is not None:
            s = s.slice(window[0], window[1])
        series.append(s)
    if len(series[0]) < 2:
        return 1.0
    correlations = [pearson(series[i], series[j])
                    for i in range(len(series))
                    for j in range(i + 1, len(series))]
    return float(np.mean(correlations))


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scenario", scenario_names())
def test_job_synchronisation_identical_to_pairwise_loop(scenario, seed,
                                                        bundles):
    bundle = bundles[(scenario, seed)]
    store = bundle.usage
    mid = mid_timestamp(bundle)
    cases = [(list(store.machine_ids), None),
             (list(store.machine_ids)[:5], (float(store.timestamps[0]), mid)),
             (["not-a-machine"] + list(store.machine_ids)[:3], None)]
    hierarchy = BatchHierarchy.from_bundle(bundle)
    for job in hierarchy.jobs[:3]:
        cases.append((sorted(set(job.machine_ids())), None))
    for machine_ids, window in cases:
        fast = job_synchronisation(store, machine_ids, "cpu", window)
        slow = legacy_job_synchronisation(store, machine_ids, "cpu", window)
        assert fast == slow, (
            f"{scenario}/{seed}: job_synchronisation({machine_ids}, "
            f"{window}) diverged from the pairwise loop")


# -- mixed shardable / non-shardable stacks stay shard-invariant --------------
@pytest.fixture(scope="module")
def mixed_bundle():
    return generate_trace(
        fast_config("machine-failure+network-storm", seed=1306))


@pytest.fixture(scope="module")
def mixed_serial_run(mixed_bundle):
    return Pipeline.from_bundle(mixed_bundle, detectors=MIXED_SPEC,
                                sinks=()).run()


@pytest.mark.parametrize("backend", ("serial", "threads", "process"))
@pytest.mark.parametrize("shards", (1, 2, 7))
def test_mixed_stack_sharding_identical(backend, shards, mixed_bundle,
                                        mixed_serial_run):
    sharded = Pipeline.from_bundle(
        mixed_bundle, detectors=MIXED_SPEC, sinks=(),
        execution=ExecutionOptions(backend=backend, shards=shards,
                                   workers=3)).run()
    serial = mixed_serial_run
    context = f"{MIXED_SPEC} × {backend} × {shards} shards"
    assert [run.label for run in sharded.detections] \
        == [run.label for run in serial.detections], context
    for shard_run, serial_run in zip(sharded.detections, serial.detections):
        assert shard_run.result.events() == serial_run.result.events(), (
            f"{context}: {shard_run.label} events diverged")
        assert np.array_equal(shard_run.result.mask, serial_run.result.mask), (
            f"{context}: {shard_run.label} mask diverged")
        assert np.array_equal(shard_run.result.scores,
                              serial_run.result.scores), (
            f"{context}: {shard_run.label} scores diverged")
        assert shard_run.result.flagged_machines() \
            == serial_run.result.flagged_machines(), context
    assert sharded.flagged_machines() == serial.flagged_machines(), context


def test_mixed_stack_is_not_vacuous(mixed_serial_run):
    """The cluster detectors really fire on the failure+storm scenario."""
    cluster_events = sum(
        run.result.num_events for run in mixed_serial_run.detections
        if run.name in ("sync_break", "imbalance", "sla_risk"))
    assert cluster_events > 0


def test_cluster_detectors_are_not_shardable():
    from repro.pipeline import get_detector

    for name in ("sync_break", "imbalance", "sla_risk"):
        assert getattr(get_detector(name), "shardable", True) is False


# -- degenerate inputs --------------------------------------------------------
class TestDegenerateInputs:
    def empty_store(self):
        return MetricStore([], np.array([]))

    def single_machine_store(self):
        store = MetricStore(["solo"], np.arange(16) * 60.0)
        store.data[:] = 42.0
        return store

    def constant_store(self):
        store = MetricStore(["a", "b", "c"], np.arange(32) * 60.0)
        store.data[:] = 55.0
        return store

    @pytest.mark.parametrize("detector", [
        SyncBreakDetector(), ImbalanceDetector(), SlaRiskDetector()])
    def test_cluster_detectors_on_degenerate_stores(self, detector):
        for store in (self.empty_store(), self.single_machine_store()):
            detection = detector.detect_cluster(store)
            assert detection.num_runs == 0
            assert not detection.mask.any()

    @pytest.mark.parametrize("detector", [
        ImbalanceDetector(), SlaRiskDetector()])
    def test_constant_store_is_balanced(self, detector):
        detection = detector.detect_cluster(self.constant_store())
        assert detection.num_runs == 0

    def test_constant_store_reads_as_dead_cluster(self):
        # a zero-variance machine correlates 0 with everything — a cluster
        # of them is, by design, flagged wholesale as desynchronised
        detection = SyncBreakDetector().detect_cluster(self.constant_store())
        assert detection.mask[:, SyncBreakDetector().window:].all()

    def test_balance_and_correlation_on_degenerate_stores(self):
        empty = self.empty_store()
        assert imbalance_over_time(empty, "cpu") == []
        assert imbalance_sweep(empty, "cpu").shape == (0,)
        assert correlation_matrix([]).shape == (0, 0)
        assert job_synchronisation(empty, [], "cpu") == 1.0

        solo = self.single_machine_store()
        sweep = imbalance_sweep(solo, "cpu")
        assert np.all(sweep == 0.0)   # one machine: zero cross-machine spread
        assert job_synchronisation(solo, ["solo"], "cpu") == 1.0

        const = self.constant_store()
        series = [const.series(mid, "cpu") for mid in const.machine_ids]
        matrix = correlation_matrix(series)
        # constant rows are degenerate: identity matrix, zero off-diagonal
        assert np.array_equal(matrix, np.eye(3))
        assert pearson(series[0], series[1]) == 0.0
        assert np.all(imbalance_sweep(const, "cpu") == 0.0)

    def test_cusum_on_degenerate_blocks(self):
        assert cusum_block(np.array([]), np.zeros((0, 0))) == []
        assert cusum_block(np.arange(1.0), np.zeros((3, 1))) == [[], [], []]
        constant = cusum_block(np.arange(16.0), np.full((2, 16), 9.0))
        assert constant == [[], []]

    def test_job_synchronisation_with_absent_machines(self, bundles):
        store = bundles[("healthy", 101)].usage
        assert job_synchronisation(store, ["ghost-1", "ghost-2"], "cpu") == 1.0
        known = list(store.machine_ids)[:3]
        with_ghosts = job_synchronisation(store, known + ["ghost"], "cpu")
        assert with_ghosts == job_synchronisation(store, known, "cpu")

    def test_anomalous_machines_empty_window(self, bundles):
        store = bundles[("healthy", 101)].usage
        end = float(store.timestamps[-1])
        assert anomalous_machines_in_window(store, (end + 10, end + 20)) == []


# -- SLA instance-less-job regression -----------------------------------------
def make_sparse_bundle():
    """A bundle whose task table names a job with zero instance records."""
    instances = [BatchInstanceRecord(
        start_timestamp=0.0, end_timestamp=600.0, job_id="j1", task_id="t1",
        machine_id="m1", status="Terminated", seq_no=0, total_seq_no=1,
        cpu_avg=50.0)]
    tasks = [
        BatchTaskRecord(create_timestamp=0.0, modify_timestamp=600.0,
                        job_id="j1", task_id="t1", instance_num=1,
                        status="Terminated"),
        # j9 was admitted but never scheduled: no instance rows at all
        BatchTaskRecord(create_timestamp=100.0, modify_timestamp=100.0,
                        job_id="j9", task_id="t1", instance_num=0,
                        status="Waiting"),
    ]
    return TraceBundle(tasks=tasks, instances=instances)


class TestInstancelessJobSla:
    def test_evaluate_job_sla_survives_instanceless_job(self):
        bundle = make_sparse_bundle()
        report = evaluate_job_sla(bundle, "j9")
        assert report.job_id == "j9"
        assert report.runtime_stretch == 1.0
        assert report.saturated_fraction == 0.0
        assert report.incomplete_instances == 0
        assert not report.violated

    def test_cluster_report_and_jobs_at_risk_survive(self):
        bundle = make_sparse_bundle()
        reports = cluster_sla_report(bundle)
        assert set(reports) == {"j1", "j9"}
        assert not reports["j9"].violated
        hierarchy = BatchHierarchy.from_bundle(bundle)
        at_risk = jobs_at_risk(bundle, hierarchy, 300.0)
        assert all(isinstance(r.job_id, str) for r in at_risk)

    def test_sla_risk_detector_skips_instanceless_jobs(self):
        bundle = make_sparse_bundle()
        store = MetricStore(["m1"], np.arange(12) * 60.0)
        store.data[:] = 10.0
        detection = SlaRiskDetector().detect_cluster(store, bundle=bundle)
        assert not detection.mask.any()


# -- rank_root_causes: indexed lookup == legacy rescan ------------------------
def legacy_rank_root_causes(bundle, hierarchy, anomalous_machines, window,
                            top_n=5):
    """The pre-index body: an O(instances × records) ``next()`` rescan."""
    if not anomalous_machines or window[1] <= window[0]:
        return []
    machine_set = set(anomalous_machines)
    window_length = window[1] - window[0]
    candidates = []
    for job in hierarchy.jobs:
        job_machines = set(job.machine_ids()) & machine_set
        if not job_machines:
            continue
        coverage = len(job_machines) / len(machine_set)
        overlaps, demands = [], []
        for task in job.tasks:
            for inst in task.instances:
                if inst.machine_id not in job_machines:
                    continue
                overlap = max(0.0, min(inst.end, window[1])
                              - max(inst.start, window[0]))
                overlaps.append(overlap / window_length)
                record = next(
                    (r for r in bundle.instances
                     if r.job_id == inst.job_id and r.task_id == inst.task_id
                     and r.seq_no == inst.seq_no
                     and r.machine_id == inst.machine_id), None)
                if record is not None and record.cpu_avg is not None:
                    demands.append(record.cpu_avg)
        temporal = float(np.mean(overlaps)) if overlaps else 0.0
        demand = float(np.mean(demands)) if demands else 0.0
        score = coverage * 0.45 + temporal * 0.35 + (demand / 100.0) * 0.20
        candidates.append(RootCauseCandidate(
            job_id=job.job_id, score=score, coverage=coverage,
            mean_demand=demand, temporal_overlap=temporal,
            machines=tuple(sorted(job_machines))))
    candidates.sort(key=lambda c: (-c.score, c.job_id))
    return candidates[:top_n]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scenario", ("hotjob", "load-imbalance"))
def test_rank_root_causes_identical_to_legacy_rescan(scenario, seed, bundles):
    bundle = bundles[(scenario, seed)]
    hierarchy = BatchHierarchy.from_bundle(bundle)
    store = bundle.usage
    t0, t1 = (float(store.timestamps[0]), float(store.timestamps[-1]))
    machines = anomalous_machines_in_window(store, (t0, t1), threshold=50.0) \
        or list(store.machine_ids)[:4]
    ranked = rank_root_causes(bundle, hierarchy, machines, (t0, t1))
    legacy = legacy_rank_root_causes(bundle, hierarchy, machines, (t0, t1))
    assert ranked, f"{scenario}/{seed}: ranking is vacuous"
    assert ranked == legacy, (
        f"{scenario}/{seed}: indexed root-cause ranking diverged from the "
        f"legacy record rescan")
