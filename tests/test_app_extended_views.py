"""Tests for the extended BatchLens views (scatter, histogram, area, multiples)."""

import pytest

from repro.vis.charts.area import StackedAreaChart
from repro.vis.charts.distribution import UtilisationHistogram
from repro.vis.charts.scatter import MachineScatterChart
from repro.vis.charts.smallmultiples import SmallMultiplesChart

from tests.conftest import mid_timestamp


class TestScatterView:
    def test_scatter_has_one_dot_per_machine(self, healthy_lens, healthy_bundle):
        chart = healthy_lens.scatter(mid_timestamp(healthy_bundle))
        assert isinstance(chart, MachineScatterChart)
        doc = chart.render()
        dots = [e for e in doc.iter("circle") if e.get("class") == "scatter-point"]
        assert len(dots) == healthy_lens.store.num_machines

    def test_scatter_highlight_passthrough(self, healthy_lens, healthy_bundle):
        machine_id = healthy_lens.store.machine_ids[0]
        chart = healthy_lens.scatter(mid_timestamp(healthy_bundle),
                                     highlight={machine_id: "hot-job"})
        doc = chart.render()
        highlighted = [e for e in doc.iter("circle")
                       if e.get("data-highlight") == "hot-job"]
        assert len(highlighted) == 1


class TestHistogramView:
    def test_histogram_counts_every_machine(self, healthy_lens, healthy_bundle):
        chart = healthy_lens.histogram(mid_timestamp(healthy_bundle), bins=5)
        assert isinstance(chart, UtilisationHistogram)
        assert chart.model.total == healthy_lens.store.num_machines

    def test_histogram_metric_selectable(self, healthy_lens, healthy_bundle):
        chart = healthy_lens.histogram(mid_timestamp(healthy_bundle), metric="mem")
        assert chart.model.metric == "mem"


class TestStackedAreaView:
    def test_stacked_area_groups_are_jobs(self, healthy_lens, healthy_bundle):
        chart = healthy_lens.stacked_area(max_groups=5)
        assert isinstance(chart, StackedAreaChart)
        known_jobs = set(healthy_bundle.job_ids()) | {"other"}
        assert set(chart.model.group_ids) <= known_jobs

    def test_stacked_area_respects_max_groups(self, healthy_lens):
        chart = healthy_lens.stacked_area(max_groups=3)
        assert len(chart.model.group_ids) <= 4  # 3 jobs + "other"


class TestSmallMultiplesView:
    def test_one_sparkline_per_job(self, healthy_lens, healthy_bundle):
        chart = healthy_lens.small_multiples(columns=3)
        assert isinstance(chart, SmallMultiplesChart)
        labels = {cell.label for cell in chart.model.cells}
        assert labels <= set(healthy_bundle.job_ids())
        assert labels

    def test_markers_match_job_lifetimes(self, healthy_lens):
        chart = healthy_lens.small_multiples()
        for cell in chart.model.cells:
            job = healthy_lens.hierarchy.job(cell.label)
            assert cell.markers == (float(job.start), float(job.end))


class TestExtendedDashboard:
    def test_extended_dashboard_adds_panels(self, hotjob_lens, hotjob_bundle):
        timestamp = mid_timestamp(hotjob_bundle)
        html = hotjob_lens.dashboard(timestamp, max_line_panels=1,
                                     extended=True).to_html()
        assert "panel-scatter" in html
        assert "panel-histogram" in html
        assert "panel-stacked-area" in html

    def test_default_dashboard_stays_paper_faithful(self, hotjob_lens, hotjob_bundle):
        timestamp = mid_timestamp(hotjob_bundle)
        html = hotjob_lens.dashboard(timestamp, max_line_panels=1).to_html()
        assert "panel-scatter" not in html
        assert "panel-stacked-area" not in html
