"""Tests for the derived cluster-event timeline."""

from repro.cluster.events import (
    ClusterEvent,
    EventKind,
    events_in_window,
    full_timeline,
    job_events,
    machine_events,
    task_events,
)
from repro.trace import schema
from repro.trace.records import BatchInstanceRecord, BatchTaskRecord, MachineEvent, TraceBundle


def event_bundle() -> TraceBundle:
    tasks = [BatchTaskRecord(0, 200, "j1", "t1", 1, "Terminated"),
             BatchTaskRecord(0, 400, "j1", "t2", 1, "Terminated")]
    instances = [
        BatchInstanceRecord(0, 200, "j1", "t1", "m1", "Terminated", 1, 1),
        BatchInstanceRecord(0, 400, "j1", "t2", "m2", "Failed", 1, 1),
    ]
    events = [MachineEvent(0, "m1", schema.EVENT_ADD),
              MachineEvent(0, "m2", schema.EVENT_ADD),
              MachineEvent(300, "m2", schema.EVENT_HARD_ERROR, "injected")]
    return TraceBundle(machine_events=events, tasks=tasks, instances=instances)


class TestJobEvents:
    def test_start_end_failure(self):
        events = job_events(event_bundle())
        kinds = {(e.kind, e.timestamp) for e in events}
        assert (EventKind.JOB_START, 0) in kinds
        assert (EventKind.JOB_END, 400) in kinds
        assert (EventKind.JOB_FAILURE, 400) in kinds

    def test_sorted_by_time(self, healthy_bundle):
        events = job_events(healthy_bundle)
        assert events == sorted(events)
        assert len(events) >= 2 * len(healthy_bundle.job_ids())


class TestTaskEvents:
    def test_per_task_start_end(self):
        events = task_events(event_bundle(), "j1")
        subjects = {e.subject for e in events}
        assert subjects == {"j1/t1", "j1/t2"}
        ends = [e for e in events if e.kind == EventKind.TASK_END]
        assert {e.timestamp for e in ends} == {200, 400}


class TestMachineEvents:
    def test_add_and_failure(self):
        events = machine_events(event_bundle())
        kinds = [e.kind for e in events]
        assert kinds.count(EventKind.MACHINE_ADD) == 2
        assert kinds.count(EventKind.MACHINE_FAILURE) == 1
        failure = [e for e in events if e.kind == EventKind.MACHINE_FAILURE][0]
        assert failure.detail == "injected"


class TestTimelineHelpers:
    def test_full_timeline_merges_sources(self):
        timeline = full_timeline(event_bundle())
        kinds = {e.kind for e in timeline}
        assert EventKind.JOB_START in kinds
        assert EventKind.MACHINE_ADD in kinds

    def test_events_in_window(self):
        timeline = full_timeline(event_bundle())
        windowed = events_in_window(timeline, 100, 350)
        assert all(100 <= e.timestamp <= 350 for e in windowed)
        assert any(e.kind == EventKind.MACHINE_FAILURE for e in windowed)

    def test_event_ordering_operator(self):
        early = ClusterEvent(10, EventKind.JOB_START, "a")
        late = ClusterEvent(20, EventKind.JOB_START, "a")
        assert early < late
