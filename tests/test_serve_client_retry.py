"""Tests for :class:`ServeClient`'s bounded-backoff retry transport.

The transport contract: transient failures (refused connects, reaped
keep-alive sockets, 503s from a draining server) are retried with
exponential backoff on an injectable clock, and an exhausted budget
raises one clear :class:`ServeError` naming the attempt count and the
last underlying failure.  A stub HTTP server scripts the status
sequences; the connection-failure path uses a port that is provably
closed.  No test ever sleeps for real.
"""

from __future__ import annotations

import json
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np
import pytest

from repro.errors import ServeError, ServiceUnavailableError
from repro.metrics.store import MetricStore
from repro.serve.client import ServeClient


def closed_port() -> int:
    """A port nothing is listening on (bound, then released)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class _ScriptedHandler(BaseHTTPRequestHandler):
    """Serves a scripted sequence of statuses, then 200s forever."""

    script: "list[int]" = []
    retry_after: str | None = None
    hits = 0

    def do_GET(self) -> None:
        cls = type(self)
        cls.hits += 1
        status = cls.script.pop(0) if cls.script else 200
        body = (json.dumps({"status": "ok"}) if status == 200 else
                json.dumps({"error": "draining: try later"}))
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if status == 503 and cls.retry_after is not None:
            self.send_header("Retry-After", cls.retry_after)
        self.end_headers()
        self.wfile.write(body.encode("utf-8"))

    def do_POST(self) -> None:
        # 503s are safe to retry for any method (the server refused
        # without acting), so POST shares GET's scripted behaviour.
        length = int(self.headers.get("Content-Length", 0))
        if length:
            self.rfile.read(length)
        self.do_GET()

    def log_message(self, *args) -> None:   # keep pytest output clean
        pass


@pytest.fixture
def scripted_server():
    """Yields a factory: script a status sequence, get (host, port)."""
    server = ThreadingHTTPServer(("127.0.0.1", 0), _ScriptedHandler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    def scripted(statuses, retry_after=None):
        _ScriptedHandler.script = list(statuses)
        _ScriptedHandler.retry_after = retry_after
        _ScriptedHandler.hits = 0
        return server.server_address

    yield scripted
    server.shutdown()
    server.server_close()


class FakeClock:
    def __init__(self) -> None:
        self.slept: "list[float]" = []

    def __call__(self, seconds: float) -> None:
        self.slept.append(seconds)


class TestBackoffSchedule:
    def test_connection_failures_back_off_exponentially(self):
        clock = FakeClock()
        client = ServeClient("127.0.0.1", closed_port(), retries=3,
                             backoff_s=0.05, sleep=clock)
        with pytest.raises(ServeError) as excinfo:
            client.health()
        assert clock.slept == [0.05, 0.1, 0.2]
        message = str(excinfo.value)
        assert "failed after 4 attempt(s)" in message
        assert "last error" in message
        assert isinstance(excinfo.value.__cause__, OSError)

    def test_zero_retries_means_exactly_one_attempt(self):
        clock = FakeClock()
        client = ServeClient("127.0.0.1", closed_port(), retries=0,
                             sleep=clock)
        with pytest.raises(ServeError, match=r"failed after 1 attempt"):
            client.health()
        assert clock.slept == []

    def test_invalid_budget_rejected(self):
        with pytest.raises(ServeError):
            ServeClient(retries=-1)
        with pytest.raises(ServeError):
            ServeClient(backoff_s=-0.1)


class TestServiceUnavailable:
    def test_503_is_retried_until_the_server_recovers(self, scripted_server):
        host, port = scripted_server([503, 503, 200])
        clock = FakeClock()
        client = ServeClient(host, port, retries=3, backoff_s=0.01,
                             sleep=clock)
        assert client._request("GET", "/health") == {"status": "ok"}
        assert _ScriptedHandler.hits == 3
        assert clock.slept == [0.01, 0.02]

    def test_exhausted_503s_raise_with_the_server_reason(self,
                                                         scripted_server):
        host, port = scripted_server([503] * 10, retry_after="2")
        client = ServeClient(host, port, retries=2, backoff_s=0.01,
                             sleep=FakeClock())
        with pytest.raises(ServeError) as excinfo:
            client._request("GET", "/health")
        assert "failed after 3 attempt(s)" in str(excinfo.value)
        assert "draining: try later" in str(excinfo.value)
        cause = excinfo.value.__cause__
        assert isinstance(cause, ServiceUnavailableError)
        assert cause.retry_after_s == 2.0

    def test_other_http_errors_are_not_retried(self, scripted_server):
        host, port = scripted_server([404])
        client = ServeClient(host, port, retries=3, sleep=FakeClock())
        with pytest.raises(ServeError):
            client._request("GET", "/nope")
        assert _ScriptedHandler.hits == 1, "4xx must fail fast, not retry"


@pytest.fixture
def slam_server():
    """A server that reads each request, then closes without replying.

    Models a connection dropped *after* the request reached the server —
    the case where the server may already have applied it.  Yields
    ``((host, port), hits)``; ``hits`` grows by one per accepted
    connection.
    """
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    sock.listen(8)
    hits: "list[int]" = []

    def serve() -> None:
        while True:
            try:
                conn, _ = sock.accept()
            except OSError:
                return
            hits.append(1)
            try:
                conn.recv(65536)
            except OSError:
                pass
            finally:
                conn.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    yield sock.getsockname(), hits
    sock.close()


class TestNonIdempotentSafety:
    """Auto-retry must never risk double-applying a request.

    A POST resent after a drop that happened *post-transmission* could
    double-ingest a batch the server already applied (duplicating alerts
    and breaking the dense-seq contract), so only provably-unsent
    failures, 503s and idempotent GETs are retried.
    """

    def test_post_refused_connect_is_retried(self):
        """The failure happened before any bytes were sent, so retrying a
        POST is provably safe."""
        clock = FakeClock()
        client = ServeClient("127.0.0.1", closed_port(), retries=2,
                             backoff_s=0.05, sleep=clock)
        with pytest.raises(ServeError, match="failed after 3 attempt"):
            client._request("POST", "/tenants", {"id": "x"})
        assert clock.slept == [0.05, 0.1]

    def test_post_dropped_after_send_fails_immediately(self, slam_server):
        (host, port), hits = slam_server
        clock = FakeClock()
        client = ServeClient(host, port, retries=5, backoff_s=0.05,
                             sleep=clock)
        with pytest.raises(ServeError, match="non-idempotent") as excinfo:
            client._request("POST", "/tenants/t/frames",
                            {"timestamps": [0.0], "frames": [[[1.0]]]})
        assert len(hits) == 1, "a non-idempotent request was resent"
        assert clock.slept == []
        assert "resume" in str(excinfo.value)

    def test_get_dropped_after_send_is_still_retried(self, slam_server):
        (host, port), hits = slam_server
        client = ServeClient(host, port, retries=2, backoff_s=0.01,
                             sleep=FakeClock())
        with pytest.raises(ServeError, match="failed after 3 attempt"):
            client._request("GET", "/health")
        assert len(hits) == 3, "an idempotent GET should use its budget"

    def test_post_503_is_retried_until_the_server_recovers(
            self, scripted_server):
        """A 503 means the server refused without acting, so resending a
        POST cannot double-apply it."""
        host, port = scripted_server([503, 200])
        client = ServeClient(host, port, retries=2, backoff_s=0.01,
                             sleep=FakeClock())
        assert client._request("POST", "/tenants", {"id": "x"}) == {
            "status": "ok"}
        assert _ScriptedHandler.hits == 2


class TestResumeBoundaries:
    def make_store(self, num_samples: int = 10) -> MetricStore:
        store = MetricStore(["a", "b"],
                            np.arange(num_samples, dtype=np.float64) * 60.0)
        store.data[:] = 1.0
        return store

    def test_start_off_batch_boundary_is_loud(self):
        client = ServeClient("127.0.0.1", closed_port(), retries=0,
                             sleep=FakeClock())
        with pytest.raises(ServeError, match="not a batch boundary"):
            client.stream_store("t", self.make_store(), batch_size=4,
                                start=2)

    def test_start_past_the_store_sends_nothing(self):
        client = ServeClient("127.0.0.1", closed_port(), retries=0,
                             sleep=FakeClock())
        responses = client.stream_store("t", self.make_store(8),
                                        batch_size=4, start=8)
        assert responses == [], "a fully-durable replay must be a no-op"
