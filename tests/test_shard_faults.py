"""Chaos tests for the :class:`ShardExecutor` robustness seams.

The executor's contract under failure is *availability without
divergence*: a crashing worker is retried, a persistently failing unit
degrades to an in-process serial sweep, a hung worker surfaces as a
bounded :class:`ExecutionError` naming the exact unit — and wherever the
work ended up executing, the verdicts are bit-identical to a plain
serial ``DetectionEngine.run``.  :class:`FaultyDetector` (from
``repro.testing.faults``) drives every path without ever touching a real
workload: it misbehaves only off its constructing thread/process, so the
serial fallback always computes the genuine verdict.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.analysis.detectors import ThresholdDetector
from repro.analysis.engine import DetectionEngine
from repro.analysis.shard import ShardExecutor
from repro.errors import ExecutionError, SeriesError
from repro.testing.faults import FaultyDetector


def small_store(num_machines: int = 9, num_samples: int = 24, seed: int = 7):
    from repro.metrics.store import MetricStore

    rng = np.random.default_rng(seed)
    ids = [f"m{i:03d}" for i in range(num_machines)]
    store = MetricStore(ids, np.arange(num_samples) * 300.0)
    store.data[:] = rng.uniform(0.0, 100.0, store.data.shape)
    return store


class HangingDetector(ThresholdDetector):
    """Blocks off-home-thread sweeps until ``release`` is set.

    Thread-backend only (an ``Event`` does not pickle); the home thread
    computes the real verdict so serial comparisons stay meaningful.
    """

    def __init__(self, threshold: float = 85.0) -> None:
        super().__init__(threshold)
        self._home_thread = threading.get_ident()
        self.release = threading.Event()

    def _block_mask(self, timestamps, values):
        if threading.get_ident() != self._home_thread:
            self.release.wait()
        return super()._block_mask(timestamps, values)


class TestUnitTimeout:
    def test_hung_worker_surfaces_as_actionable_error(self):
        store = small_store()
        detector = HangingDetector()
        executor = ShardExecutor("threads", workers=2, unit_timeout_s=0.1)
        try:
            with pytest.raises(ExecutionError) as excinfo:
                executor.run(store, detector, shards=2)
        finally:
            detector.release.set()   # unwedge the pool threads
        message = str(excinfo.value)
        assert "HangingDetector" in message, "error must name the detector"
        assert "'cpu'" in message, "error must name the metric"
        assert "shard 1/2" in message, "error must name the shard"
        assert "0.1s" in message, "error must state the budget"

    def test_timeout_is_not_retried(self):
        """A hang is not transient: even with retries budgeted, the first
        timeout must surface immediately instead of hanging N more times."""
        store = small_store()
        detector = HangingDetector()
        executor = ShardExecutor("threads", workers=2,
                                 unit_timeout_s=0.1, unit_retries=5)
        try:
            with pytest.raises(ExecutionError):
                executor.run(store, detector, shards=2)
        finally:
            detector.release.set()

    def test_started_pool_self_heals_after_a_hang(self):
        """A hung unit costs the persistent pool, not the executor: the
        next call transparently rebuilds the pool and sweeps normally."""
        store = small_store()
        detector = HangingDetector()
        with ShardExecutor("threads", workers=2,
                           unit_timeout_s=0.1) as executor:
            try:
                with pytest.raises(ExecutionError):
                    executor.run(store, detector, shards=2)
            finally:
                detector.release.set()
            assert executor._pool is None, "the wedged pool must be discarded"
            reference = DetectionEngine().run(store, "threshold")
            healed = executor.run(store, "threshold", shards=3)
            assert executor._pool is not None, "the pool must be recreated"
            assert healed.events() == reference.events()
            assert np.array_equal(healed.mask, reference.mask)

    def test_invalid_timeout_and_retries_rejected(self):
        with pytest.raises(SeriesError):
            ShardExecutor("threads", unit_timeout_s=0.0)
        with pytest.raises(SeriesError):
            ShardExecutor("threads", unit_retries=-1)


class TestRetryAndDegradation:
    def test_transient_worker_failure_is_retried_bit_identical(self):
        """One injected worker crash, one retry pass — and the verdict is
        indistinguishable from a run where nothing ever failed."""
        store = small_store()
        reference = DetectionEngine().run(store, ThresholdDetector(85.0))
        detector = FaultyDetector(85.0, fail_in="thread", times=1)
        executor = ShardExecutor("threads", workers=2, unit_retries=1)
        result = executor.run(store, detector, shards=3)
        assert detector._failures == 1, "the fault must actually have fired"
        assert result.events() == reference.events()
        assert np.array_equal(result.mask, reference.mask)
        assert np.array_equal(result.scores, reference.scores)

    def test_persistent_failure_degrades_to_serial_bit_identical(self):
        """A unit that fails on *every* pooled attempt is swept serially
        in-process — same kernels, same views, same verdict."""
        store = small_store()
        reference = DetectionEngine().run(store, ThresholdDetector(85.0))
        detector = FaultyDetector(85.0, fail_in="thread")   # always fails
        executor = ShardExecutor("threads", workers=2, unit_retries=1)
        result = executor.run(store, detector, shards=3)
        assert detector._failures >= 3, "every pooled attempt must have failed"
        assert result.events() == reference.events()
        assert np.array_equal(result.mask, reference.mask)
        assert np.array_equal(result.scores, reference.scores)

    def test_healthy_units_survive_a_failing_neighbour(self):
        """run_many with one poisoned unit: the healthy unit's verdict is
        untouched and the poisoned one still lands via the fallback."""
        store = small_store()
        engine = DetectionEngine()
        poisoned = FaultyDetector(85.0, fail_in="thread")
        results = ShardExecutor("threads", workers=2, unit_retries=0).run_many(
            store, ((poisoned, "cpu"), ("flatline", "cpu")), shards=2)
        assert results[0].events() == engine.run(
            store, ThresholdDetector(85.0)).events()
        assert results[1].events() == engine.run(store, "flatline").events()

    def test_dead_process_pool_degrades_to_serial_bit_identical(self):
        """``fail_in='process'`` hard-kills every worker that sweeps the
        detector (``os._exit``), breaking the ProcessPoolExecutor the way
        a segfault does; the executor must absorb the BrokenExecutor and
        still produce the genuine verdict serially."""
        store = small_store(num_machines=6, num_samples=12)
        reference = DetectionEngine().run(store, ThresholdDetector(85.0))
        detector = FaultyDetector(85.0, fail_in="process")
        executor = ShardExecutor("process", workers=2, unit_retries=1)
        result = executor.run(store, detector, shards=2)
        assert result.events() == reference.events()
        assert np.array_equal(result.mask, reference.mask)

    def test_started_process_pool_self_heals_after_breakage(self):
        store = small_store(num_machines=6, num_samples=12)
        with ShardExecutor("process", workers=2,
                           unit_retries=0) as executor:
            broken = executor.run(store, FaultyDetector(85.0,
                                                        fail_in="process"),
                                  shards=2)
            assert executor._pool is None, "the broken pool must be discarded"
            healthy = executor.run(store, "threshold", shards=2)
            assert executor._pool is not None, "the pool must be recreated"
        reference = DetectionEngine().run(store, "threshold")
        assert healthy.events() == reference.events()
        assert broken.events() == DetectionEngine().run(
            store, ThresholdDetector(85.0)).events()
