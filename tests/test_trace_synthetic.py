"""Tests for the synthetic-trace facade."""

import pytest

from repro.config import TraceConfig
from repro.errors import SimulationError
from repro.trace.synthetic import generate_case_study_traces, generate_trace
from tests.conftest import fast_config


class TestGenerateTrace:
    def test_default_configuration(self):
        bundle = generate_trace(fast_config())
        assert bundle.usage is not None
        assert len(bundle.job_ids()) > 0
        assert bundle.meta["scenario"] == "healthy"

    def test_scenario_override(self):
        bundle = generate_trace(fast_config("healthy"), scenario="hotjob")
        assert bundle.meta["scenario"] == "hotjob"
        assert "hot_job_id" in bundle.meta

    def test_seed_override_changes_output(self):
        a = generate_trace(fast_config(seed=1))
        b = generate_trace(fast_config(seed=1), seed=2)
        assert a.meta["seed"] == 1
        assert b.meta["seed"] == 2
        assert ([t.create_timestamp for t in a.tasks]
                != [t.create_timestamp for t in b.tasks])

    def test_determinism(self):
        a = generate_trace(fast_config(seed=5))
        b = generate_trace(fast_config(seed=5))
        assert [t.to_row() for t in a.tasks] == [t.to_row() for t in b.tasks]
        assert [i.to_row() for i in a.instances] == [i.to_row() for i in b.instances]

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SimulationError):
            generate_trace(fast_config(), scenario="chaos-monkey")

    def test_none_config_uses_defaults(self):
        bundle = generate_trace(None, scenario="none", seed=3)
        assert bundle.meta["scenario"] == "none"
        config = TraceConfig()
        assert len(bundle.machine_ids()) == config.cluster.num_machines


class TestCaseStudyTraces:
    def test_three_regimes_generated(self):
        bundles = generate_case_study_traces(seed=4)
        assert set(bundles) == {"healthy", "hotjob", "thrashing"}
        assert "hot_job_id" in bundles["hotjob"].meta
        assert "thrashing" in bundles["thrashing"].meta

    def test_scenarios_share_scale(self):
        bundles = generate_case_study_traces(seed=4)
        machine_counts = {len(b.machine_ids()) for b in bundles.values()}
        assert len(machine_counts) == 1
