"""Tests for the paper-claim vs. measured experiment records."""

import pytest

from repro.report.experiments import (
    ExperimentRecord,
    render_experiments,
    run_dataset_statistics_experiment,
    run_detection_experiment,
    run_regime_experiments,
    run_experiment_suite,
)


class TestDatasetStatisticsExperiment:
    def test_returns_three_records(self):
        records = run_dataset_statistics_experiment(seed=3)
        assert len(records) == 3
        assert all(r.experiment_id == "E1" for r in records)

    def test_hierarchy_fractions_match_paper(self):
        records = run_dataset_statistics_experiment(seed=3)
        by_claim = {r.claim: r for r in records}
        single_task = next(r for c, r in by_claim.items() if "one task" in c)
        multi_instance = next(r for c, r in by_claim.items() if "multiple instances" in c)
        assert single_task.matches
        assert multi_instance.matches


class TestRegimeExperiments:
    def test_uses_prebuilt_bundles(self, healthy_bundle, hotjob_bundle,
                                   thrashing_bundle):
        records = run_regime_experiments({"healthy": healthy_bundle,
                                          "hotjob": hotjob_bundle,
                                          "thrashing": thrashing_bundle})
        assert len(records) == 3
        assert {r.experiment_id for r in records} == {"E4", "E5", "E6"}

    def test_missing_scenario_skipped(self, healthy_bundle):
        records = run_regime_experiments({"healthy": healthy_bundle})
        assert len(records) == 1
        assert records[0].artefact == "Fig. 3(a)"

    def test_generated_bundles_reproduce_regime_shapes(self):
        records = run_regime_experiments(seed=5)
        assert len(records) == 3
        matched = sum(r.matches for r in records)
        assert matched >= 2, [r.measured for r in records]


class TestDetectionExperiment:
    def test_two_records_with_expected_ids(self):
        records = run_detection_experiment(seed=4)
        assert len(records) == 2
        assert all(r.experiment_id == "E9" for r in records)

    def test_thrashing_detectability_claim_holds(self):
        records = run_detection_experiment(seed=4)
        thrashing = next(r for r in records if "thrashing" in r.artefact)
        assert thrashing.matches


class TestSuiteAndRendering:
    def test_suite_combines_all_experiments(self, monkeypatch):
        records = run_experiment_suite(seed=6)
        ids = {r.experiment_id for r in records}
        assert {"E1", "E4", "E5", "E6", "E9"} <= ids
        assert len(records) >= 8

    def test_render_produces_table(self):
        records = [
            ExperimentRecord("E1", "artefact", "claim", "measured", True),
            ExperimentRecord("E2", "artefact2", "claim2", "measured2", False,
                             detail="needs paper scale"),
        ]
        text = render_experiments(records, title="Repro")
        assert text.startswith("# Repro")
        assert "| id |" in text
        assert "E1" in text and "E2" in text
        assert "Mismatches" in text
        assert "needs paper scale" in text

    def test_render_without_mismatches_has_no_section(self):
        records = [ExperimentRecord("E1", "a", "c", "m", True)]
        assert "Mismatches" not in render_experiments(records)
