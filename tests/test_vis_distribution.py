"""Tests for the utilisation histogram."""

import numpy as np
import pytest

from repro.errors import RenderError
from repro.metrics.store import MetricStore
from repro.vis.charts.distribution import HistogramModel, UtilisationHistogram

from tests.conftest import mid_timestamp


def make_store(cpu_values, n=5):
    timestamps = np.arange(n) * 60.0
    machine_ids = [f"m_{i:04d}" for i in range(len(cpu_values))]
    store = MetricStore(machine_ids, timestamps)
    for machine_id, cpu in zip(machine_ids, cpu_values):
        store.set_series(machine_id, "cpu", np.full(n, cpu))
        store.set_series(machine_id, "mem", np.full(n, 40.0))
        store.set_series(machine_id, "disk", np.full(n, 10.0))
    return store


class TestHistogramModel:
    def test_from_store_counts_every_machine(self):
        store = make_store([10, 35, 35, 90])
        model = HistogramModel.from_store(store, "cpu", 0.0)
        assert model.total == 4
        assert model.counts.sum() == 4

    def test_dominant_band(self):
        store = make_store([31, 35, 38, 90])
        model = HistogramModel.from_store(store, "cpu", 0.0)
        lo, hi = model.dominant_band()
        assert lo == pytest.approx(30.0)
        assert hi == pytest.approx(40.0)

    def test_fraction_in_band(self):
        store = make_store([25, 35, 55, 95])
        model = HistogramModel.from_store(store, "cpu", 0.0)
        assert model.fraction_in_band(20.0, 60.0) == pytest.approx(0.75)
        assert model.fraction_in_band(0.0, 100.0) == pytest.approx(1.0)

    def test_fraction_in_band_empty_model(self):
        model = HistogramModel(metric="cpu", timestamp=0.0)
        assert model.fraction_in_band(0.0, 100.0) == 0.0

    def test_invalid_configurations_rejected(self):
        with pytest.raises(RenderError):
            HistogramModel(metric="cpu", timestamp=0.0, bin_edges=[0.0],
                           counts=[])
        with pytest.raises(RenderError):
            HistogramModel(metric="cpu", timestamp=0.0,
                           bin_edges=[0.0, 50.0, 40.0], counts=[1, 1])
        with pytest.raises(RenderError):
            HistogramModel(metric="cpu", timestamp=0.0,
                           bin_edges=[0.0, 50.0, 100.0], counts=[1])
        with pytest.raises(RenderError):
            HistogramModel.from_store(make_store([10.0]), "cpu", 0.0, bins=0)

    def test_healthy_scenario_dominated_by_low_band(self, healthy_bundle):
        model = HistogramModel.from_store(healthy_bundle.usage, "cpu",
                                          mid_timestamp(healthy_bundle))
        assert model.fraction_in_band(0.0, 60.0) >= 0.5

    def test_thrashing_scenario_has_high_band_mass(self, thrashing_bundle):
        window = thrashing_bundle.meta["thrashing"]["window"]
        model = HistogramModel.from_store(thrashing_bundle.usage, "mem",
                                          (window[0] + window[1]) / 2.0)
        assert model.fraction_in_band(70.0, 100.0) >= 0.3


class TestUtilisationHistogram:
    def test_renders_one_bar_per_bin(self):
        store = make_store([10, 20, 30, 40, 50])
        model = HistogramModel.from_store(store, "cpu", 0.0, bins=10)
        doc = UtilisationHistogram(model).render()
        bars = [e for e in doc.iter("rect") if e.get("class") == "histogram-bar"]
        assert len(bars) == 10

    def test_bar_data_counts_match_model(self):
        store = make_store([15, 15, 85])
        model = HistogramModel.from_store(store, "cpu", 0.0, bins=10)
        doc = UtilisationHistogram(model).render()
        counts = {e.get("data-bin"): int(e.get("data-count"))
                  for e in doc.iter("rect") if e.get("class") == "histogram-bar"}
        assert counts["10-20"] == 2
        assert counts["80-90"] == 1

    def test_title_mentions_metric_and_timestamp(self):
        model = HistogramModel(metric="mem", timestamp=300.0)
        chart = UtilisationHistogram(model)
        assert "MEM" in chart.title
        assert "300" in chart.title

    def test_empty_histogram_still_renders(self):
        model = HistogramModel(metric="cpu", timestamp=0.0)
        svg = UtilisationHistogram(model).to_svg()
        assert "histogram-bar" in svg
