"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    BatchLensError,
    ConfigError,
    LayoutError,
    RenderError,
    SchedulingError,
    SeriesError,
    SimulationError,
    TraceFormatError,
    TraceValidationError,
    UnknownEntityError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc_type", [
        ConfigError, LayoutError, RenderError, SchedulingError, SeriesError,
        SimulationError, TraceFormatError, TraceValidationError,
        UnknownEntityError,
    ])
    def test_every_error_derives_from_batchlens_error(self, exc_type):
        assert issubclass(exc_type, BatchLensError)

    def test_catching_base_class_catches_specific(self):
        with pytest.raises(BatchLensError):
            raise SeriesError("broken series")


class TestTraceFormatError:
    def test_plain_message(self):
        error = TraceFormatError("bad column count")
        assert str(error) == "bad column count"
        assert error.table is None
        assert error.line_number is None

    def test_table_prefix(self):
        error = TraceFormatError("bad value", table="batch_task")
        assert str(error) == "[batch_task] bad value"
        assert error.table == "batch_task"

    def test_table_and_line_prefix(self):
        error = TraceFormatError("bad value", table="server_usage", line_number=42)
        assert str(error) == "[server_usage] line 42: bad value"
        assert error.line_number == 42


class TestUnknownEntityError:
    def test_message_carries_kind_and_id(self):
        error = UnknownEntityError("job", "job_7901")
        assert error.kind == "job"
        assert error.entity_id == "job_7901"
        assert "job" in str(error)
        assert "job_7901" in str(error)
