"""Tests for the chart types: bubble, line, timeline, heat map, legends, axes."""

import numpy as np
import pytest

from repro.errors import RenderError
from repro.metrics.series import TimeSeries
from repro.metrics.store import MetricStore
from repro.vis.charts.base import Chart, Margins
from repro.vis.charts.bubble import (
    BubbleChartModel,
    HierarchicalBubbleChart,
    JobBubble,
    NodeGlyph,
    TaskBubble,
)
from repro.vis.charts.heatmap import HeatmapModel, UtilisationHeatmap
from repro.vis.charts.legend import categorical_legend, colorbar, hierarchy_legend
from repro.vis.charts.line import Annotation, LineChartModel, LineSeries, MultiLineChart
from repro.vis.charts.timeline import TimelineChart, TimelineModel
from repro.vis.color import Color
from repro.vis.layout.axes import bottom_axis, left_axis, vertical_annotation
from repro.vis.scale import LinearScale


def bubble_model() -> BubbleChartModel:
    jobs = []
    for j in range(3):
        tasks = []
        for t in range(2):
            nodes = [NodeGlyph(f"m_{j}{t}{n}", cpu=20.0 + 10 * n, mem=30.0,
                               disk=10.0) for n in range(3)]
            tasks.append(TaskBubble(task_id=f"task_{t}", nodes=nodes))
        jobs.append(JobBubble(job_id=f"job_{j}", tasks=tasks))
    shared = {"m_000": [("job_0", "task_0"), ("job_1", "task_0")]}
    # make the shared machine actually appear under both jobs
    jobs[1].tasks[0].nodes.append(NodeGlyph("m_000", cpu=25.0, mem=30.0, disk=10.0))
    return BubbleChartModel(timestamp=1000.0, jobs=jobs, shared_machines=shared)


def line_model() -> LineChartModel:
    timestamps = np.arange(0, 3600, 300, dtype=float)
    lines = []
    for task in ("t1", "t2"):
        for machine in range(3):
            values = 30 + 10 * np.sin(timestamps / 600 + machine)
            lines.append(LineSeries(machine_id=f"m{task}{machine}", task_id=task,
                                    series=TimeSeries(timestamps, values)))
    annotations = [Annotation(300.0, "start", label="start"),
                   Annotation(2400.0, "end", task_id="t1"),
                   Annotation(3300.0, "end", task_id="t2")]
    return LineChartModel(job_id="job_7399", metric="cpu", lines=lines,
                          annotations=annotations, brush=(900.0, 1800.0))


class TestChartBase:
    def test_plot_area_positive(self):
        chart = Chart(width=100, height=100, margins=Margins(10, 10, 10, 10))
        assert chart.plot_width == 80
        assert chart.plot_height == 80

    def test_margins_too_large_rejected(self):
        with pytest.raises(RenderError):
            Chart(width=50, height=50, margins=Margins(30, 30, 30, 30))

    def test_invalid_dimensions(self):
        with pytest.raises(RenderError):
            Chart(width=0, height=10)


class TestBubbleChart:
    def test_svg_contains_all_layers(self):
        chart = HierarchicalBubbleChart(bubble_model(), title="test")
        svg = chart.to_svg()
        assert svg.count('class="job-bubble"') == 3
        assert svg.count('class="task-bubble"') == 6
        assert 'node-ring-cpu' in svg and 'node-ring-disk' in svg
        assert 'data-machine="m_000"' in svg

    def test_three_rings_per_node(self):
        chart = HierarchicalBubbleChart(bubble_model())
        doc = chart.render()
        rings = [e for e in doc.iter("circle")
                 if e.get("class", "").startswith("node-ring")]
        node_count = sum(len(t.nodes) for j in bubble_model().jobs for t in j.tasks)
        assert len(rings) == 3 * node_count

    def test_shared_machine_links_drawn(self):
        chart = HierarchicalBubbleChart(bubble_model())
        doc = chart.render()
        links = [e for e in doc.iter("line")
                 if e.get("class") == "machine-link"]
        assert len(links) >= 1
        assert links[0].get("data-machine") == "m_000"

    def test_links_can_be_disabled(self):
        chart = HierarchicalBubbleChart(bubble_model(), show_links=False)
        doc = chart.render()
        assert not [e for e in doc.iter("line") if e.get("class") == "machine-link"]

    def test_empty_model_rejected(self):
        with pytest.raises(RenderError):
            HierarchicalBubbleChart(BubbleChartModel(timestamp=0, jobs=[]))

    def test_job_labels_present(self):
        svg = HierarchicalBubbleChart(bubble_model()).to_svg()
        for j in range(3):
            assert f"job_{j}" in svg


class TestLineChart:
    def test_one_path_per_line(self):
        chart = MultiLineChart(line_model())
        doc = chart.render()
        paths = [e for e in doc.iter("path") if e.get("class") == "metric-line"]
        assert len(paths) == 6
        assert {p.get("data-task") for p in paths} == {"t1", "t2"}

    def test_annotations_rendered_with_kinds(self):
        doc = MultiLineChart(line_model()).render()
        groups = [e for e in doc.iter("g")
                  if (e.get("class") or "").startswith("annotation annotation-")]
        kinds = {e.get("class").rsplit("-", 1)[-1] for e in groups}
        assert kinds == {"start", "end"}

    def test_brush_region_rendered(self):
        doc = MultiLineChart(line_model()).render()
        brushes = [e for e in doc.iter("rect") if e.get("class") == "brush-region"]
        assert len(brushes) == 1
        assert brushes[0].get("data-start") == "900"

    def test_task_colors_differ(self):
        chart = MultiLineChart(line_model())
        assert chart._task_color("t1") != chart._task_color("t2")

    def test_zoomed_view_restricts_time(self):
        chart = MultiLineChart(line_model())
        zoomed = chart.zoomed(600, 1800)
        t0, t1 = zoomed.model.time_extent()
        assert t0 >= 600 and t1 <= 1800
        assert len(zoomed.model.lines) == 6

    def test_zoomed_empty_range_rejected(self):
        chart = MultiLineChart(line_model())
        with pytest.raises(RenderError):
            chart.zoomed(100000, 200000)

    def test_model_without_lines_rejected(self):
        with pytest.raises(RenderError):
            MultiLineChart(LineChartModel(job_id="x", metric="cpu"))

    def test_sliced_model_validation(self):
        with pytest.raises(RenderError):
            line_model().sliced(100, 100)


class TestTimelineChart:
    def make_model(self):
        timestamps = np.arange(0, 7200, 600, dtype=float)
        layers = {metric: TimeSeries(timestamps, 20 + 10 * np.sin(timestamps / 900 + i))
                  for i, metric in enumerate(("cpu", "mem", "disk"))}
        return TimelineModel(layers=layers, selected_timestamp=3600.0,
                             brush=(1200.0, 2400.0))

    def test_one_layer_per_metric(self):
        doc = TimelineChart(self.make_model()).render()
        lines = [e for e in doc.iter("path") if e.get("class") == "timeline-line"]
        assert len(lines) == 3
        assert {p.get("data-metric") for p in lines} == {"cpu", "mem", "disk"}

    def test_cursor_and_brush_rendered(self):
        svg = TimelineChart(self.make_model()).to_svg()
        assert "annotation-cursor" in svg
        assert "brush-region" in svg

    def test_empty_model_rejected(self):
        with pytest.raises(RenderError):
            TimelineChart(TimelineModel(layers={}))

    def test_too_short_chart_rejected(self):
        with pytest.raises(RenderError):
            TimelineChart(self.make_model(), height=60).render()


class TestHeatmap:
    def make_store(self, machines=6, samples=50):
        store = MetricStore([f"m{i}" for i in range(machines)],
                            np.arange(samples, dtype=float) * 60)
        for i in range(machines):
            store.set_series(f"m{i}", "cpu", np.linspace(0, 100, samples))
        return store

    def test_from_store_shape(self):
        model = HeatmapModel.from_store(self.make_store(), "cpu")
        assert model.values.shape == (6, 50)

    def test_cells_rendered_and_binned(self):
        model = HeatmapModel.from_store(self.make_store(), "cpu")
        chart = UtilisationHeatmap(model, max_columns=10)
        doc = chart.render()
        cells = [e for e in doc.iter("rect") if e.get("class") == "heat-cell"]
        assert len(cells) == 6 * 10

    def test_row_machine_subset(self):
        model = HeatmapModel.from_store(self.make_store(), "cpu",
                                        machine_ids=["m0", "m3"])
        assert model.values.shape[0] == 2

    def test_mismatched_model_rejected(self):
        model = HeatmapModel(machine_ids=["a"], timestamps=np.array([0.0]),
                             values=np.zeros((2, 1)))
        with pytest.raises(RenderError):
            UtilisationHeatmap(model)


class TestLegendsAndAxes:
    def test_colorbar_structure(self):
        legend = colorbar(segments=10)
        rects = list(legend.iter("rect"))
        assert len(rects) == 11  # 10 segments + outline
        with pytest.raises(RenderError):
            colorbar(segments=1)

    def test_categorical_legend(self):
        legend = categorical_legend([("t1", Color(1, 0, 0)), ("t2", Color(0, 1, 0))])
        assert len(list(legend.iter("text"))) == 2
        with pytest.raises(RenderError):
            categorical_legend([])

    def test_hierarchy_legend_has_three_rows(self):
        legend = hierarchy_legend()
        assert len(list(legend.iter("text"))) == 3

    def test_bottom_axis_ticks(self):
        scale = LinearScale((0, 100), (50, 450))
        axis = bottom_axis(scale, 300, label="x")
        labels = [e.text for e in axis.iter("text")]
        assert "x" in labels
        assert len(labels) >= 4

    def test_left_axis_gridlines(self):
        scale = LinearScale((0, 100), (300, 20))
        axis = left_axis(scale, 50, grid_to=400, label="util")
        gridlines = [e for e in axis.iter("line") if e.get("stroke") == "#ddd"]
        assert len(gridlines) >= 3

    def test_vertical_annotation_label(self):
        annotation = vertical_annotation(100, 10, 200, color="#e03131",
                                         label="end")
        assert any(e.text == "end" for e in annotation.iter("text"))
