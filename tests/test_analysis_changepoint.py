"""Tests for change-point detection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.changepoint import (
    ChangePoint,
    cusum_changepoints,
    detect_changepoints,
    level_shifts,
    segment_means,
)
from repro.errors import SeriesError
from repro.metrics.series import TimeSeries


def step_series(n=60, step_at=30, low=20.0, high=80.0, resolution=60.0):
    """A clean step from ``low`` to ``high`` at sample ``step_at``."""
    timestamps = np.arange(n) * resolution
    values = np.where(np.arange(n) < step_at, low, high)
    return TimeSeries(timestamps, values.astype(float))


def flat_series(n=60, level=40.0):
    return TimeSeries(np.arange(n) * 60.0, np.full(n, level))


class TestBinarySegmentation:
    def test_single_step_found(self):
        series = step_series()
        points = detect_changepoints(series)
        assert len(points) == 1
        point = points[0]
        assert point.index == 30
        assert point.timestamp == pytest.approx(30 * 60.0)
        assert point.shift == pytest.approx(60.0)
        assert point.direction == "up"

    def test_downward_step_direction(self):
        series = step_series(low=90.0, high=15.0)
        points = detect_changepoints(series)
        assert len(points) == 1
        assert points[0].direction == "down"
        assert points[0].shift == pytest.approx(-75.0)

    def test_flat_series_has_no_changepoints(self):
        assert detect_changepoints(flat_series()) == []

    def test_two_steps_found_in_order(self):
        timestamps = np.arange(90) * 60.0
        values = np.concatenate([np.full(30, 20.0), np.full(30, 70.0),
                                 np.full(30, 35.0)])
        points = detect_changepoints(TimeSeries(timestamps, values))
        assert [p.index for p in points] == [30, 60]
        assert points[0].direction == "up"
        assert points[1].direction == "down"

    def test_max_changepoints_respected(self):
        timestamps = np.arange(120) * 60.0
        values = np.concatenate([np.full(30, v) for v in (10.0, 60.0, 20.0, 80.0)])
        points = detect_changepoints(TimeSeries(timestamps, values),
                                     max_changepoints=2)
        assert len(points) == 2

    def test_min_gain_filters_small_shifts(self):
        series = step_series(low=40.0, high=44.0)
        assert detect_changepoints(series, min_gain=500.0) == []

    def test_short_series_returns_empty(self):
        assert detect_changepoints(TimeSeries([0.0, 60.0], [1.0, 2.0])) == []

    def test_invalid_parameters_rejected(self):
        series = step_series()
        with pytest.raises(SeriesError):
            detect_changepoints(series, max_changepoints=0)
        with pytest.raises(SeriesError):
            detect_changepoints(series, min_segment=0)

    def test_noisy_step_still_found(self):
        rng = np.random.default_rng(3)
        n, step_at = 80, 40
        values = np.where(np.arange(n) < step_at, 25.0, 75.0)
        values = values + rng.normal(0, 2.0, n)
        series = TimeSeries(np.arange(n) * 60.0, values)
        points = detect_changepoints(series, max_changepoints=1)
        assert len(points) == 1
        assert abs(points[0].index - step_at) <= 2


class TestCusum:
    def test_detects_upward_shift(self):
        series = step_series()
        points = cusum_changepoints(series, threshold=30.0, drift=1.0)
        assert points
        assert points[0].index >= 30
        assert points[0].shift > 0

    def test_detects_downward_shift(self):
        series = step_series(low=85.0, high=20.0)
        points = cusum_changepoints(series, threshold=30.0, drift=1.0)
        assert points
        assert points[0].shift < 0

    def test_flat_series_quiet(self):
        assert cusum_changepoints(flat_series(), threshold=20.0) == []

    def test_restarts_after_detection(self):
        timestamps = np.arange(90) * 60.0
        values = np.concatenate([np.full(30, 20.0), np.full(30, 70.0),
                                 np.full(30, 20.0)])
        points = cusum_changepoints(TimeSeries(timestamps, values),
                                    threshold=30.0, drift=1.0)
        assert len(points) >= 2

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SeriesError):
            cusum_changepoints(flat_series(), threshold=0.0)
        with pytest.raises(SeriesError):
            cusum_changepoints(flat_series(), drift=-1.0)

    def test_empty_and_single_sample(self):
        assert cusum_changepoints(TimeSeries.empty()) == []
        assert cusum_changepoints(TimeSeries([0.0], [50.0])) == []


class TestSegmentMeans:
    def test_segments_cover_series(self):
        series = step_series()
        points = detect_changepoints(series)
        segments = segment_means(series, points)
        assert len(segments) == 2
        assert segments[0][2] == pytest.approx(20.0)
        assert segments[1][2] == pytest.approx(80.0)
        assert segments[0][0] == series.start
        assert segments[-1][1] == series.end

    def test_no_changepoints_single_segment(self):
        series = flat_series(level=33.0)
        segments = segment_means(series, [])
        assert len(segments) == 1
        assert segments[0][2] == pytest.approx(33.0)

    def test_empty_series(self):
        assert segment_means(TimeSeries.empty(), []) == []


class TestLevelShifts:
    def test_large_shift_reported(self):
        shifts = level_shifts(step_series(), min_shift=30.0)
        assert len(shifts) == 1
        assert abs(shifts[0].shift) >= 30.0

    def test_small_shift_suppressed(self):
        shifts = level_shifts(step_series(low=40.0, high=50.0), min_shift=30.0)
        assert shifts == []

    def test_invalid_min_shift(self):
        with pytest.raises(SeriesError):
            level_shifts(flat_series(), min_shift=0.0)


class TestChangepointProperties:
    @given(step_at=st.integers(min_value=5, max_value=55),
           low=st.floats(min_value=0.0, max_value=30.0),
           jump=st.floats(min_value=25.0, max_value=70.0))
    @settings(max_examples=30, deadline=None)
    def test_step_location_recovered(self, step_at, low, jump):
        series = step_series(n=60, step_at=step_at, low=low, high=low + jump)
        points = detect_changepoints(series, max_changepoints=1)
        assert len(points) == 1
        assert points[0].index == step_at

    @given(level=st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=20, deadline=None)
    def test_constant_series_never_flags(self, level):
        series = flat_series(level=level)
        assert detect_changepoints(series) == []
        assert cusum_changepoints(series, threshold=10.0, drift=0.5) == []

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0),
                    min_size=10, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_changepoints_sorted_and_within_range(self, values):
        series = TimeSeries(np.arange(len(values)) * 60.0, values)
        points = detect_changepoints(series)
        indices = [p.index for p in points]
        assert indices == sorted(indices)
        assert all(0 < i < len(values) for i in indices)
        segments = segment_means(series, points)
        assert sum(1 for _ in segments) == len(points) + 1


class TestChangePointDataclass:
    def test_direction_up_for_zero_shift(self):
        point = ChangePoint(timestamp=0.0, index=1, shift=0.0, score=1.0)
        assert point.direction == "up"
