"""Tests for bulk export helpers (case-study artefacts)."""

import pytest

from repro.app.export import case_study_narrative, export_case_study, export_job_figures
from tests.conftest import mid_timestamp


class TestExportCaseStudy:
    def test_writes_one_dashboard_per_scenario(self, tmp_path, healthy_bundle,
                                               hotjob_bundle, thrashing_bundle):
        bundles = {"healthy": healthy_bundle, "hotjob": hotjob_bundle,
                   "thrashing": thrashing_bundle}
        written = export_case_study(bundles, tmp_path)
        assert set(written) == set(bundles)
        for path in written.values():
            assert path.exists()
            assert path.suffix == ".html"
            assert "panel-bubble" in path.read_text()

    def test_thrashing_timestamp_defaults_into_window(self, tmp_path,
                                                      thrashing_bundle):
        written = export_case_study({"thrashing": thrashing_bundle}, tmp_path)
        html = written["thrashing"].read_text()
        # the dashboard subtitle embeds the regime assessment at the chosen time
        assert "saturated" in html or "busy" in html

    def test_explicit_timestamp_override(self, tmp_path, healthy_bundle):
        timestamp = mid_timestamp(healthy_bundle)
        written = export_case_study({"healthy": healthy_bundle}, tmp_path,
                                    timestamps={"healthy": timestamp})
        assert f"t={timestamp:.0f}s" in written["healthy"].read_text()


class TestNarrative:
    def test_mentions_regime_and_jobs(self, hotjob_bundle):
        text = case_study_narrative(hotjob_bundle, mid_timestamp(hotjob_bundle))
        assert "Load balance" in text
        assert "job(s) active" in text
        assert hotjob_bundle.meta["hot_job_id"] in text

    def test_thrashing_narrative_names_root_cause(self, thrashing_bundle):
        t0, t1 = thrashing_bundle.meta["thrashing"]["window"]
        text = case_study_narrative(thrashing_bundle, (t0 + t1) / 2)
        assert "Thrashing detected" in text
        assert "root-cause candidate" in text


class TestJobFigures:
    def test_writes_overview_and_zoom_per_metric(self, tmp_path, hotjob_bundle):
        job_id = hotjob_bundle.meta["hot_job_id"]
        written = export_job_figures(hotjob_bundle, job_id, tmp_path,
                                     metrics=("cpu", "mem"))
        assert len(written) == 4
        names = {path.name for path in written}
        assert f"{job_id}_cpu_overview.svg" in names
        assert f"{job_id}_mem_zoom.svg" in names
        for path in written:
            assert path.read_text().startswith("<svg")
