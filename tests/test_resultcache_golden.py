"""Golden pins: cached runs are bit-identical to uncached runs.

The result cache's one non-negotiable invariant is that it never changes
a verdict.  This grid pins it across detector stacks × scenarios ×
execution backends: for every cell the uncached run, the cache-miss run
(which computes then stores) and the cache-hit run (restored from disk)
must agree on every block array, every flagged machine and every
precision/recall row — not approximately, bit for bit.
"""

from __future__ import annotations

import pytest

from repro.pipeline import Pipeline
from tests.test_resultcache import assert_runs_identical, spec_for

SCENARIOS = ("hotjob", "memory-thrash+network-storm")
STACKS = (None, "ewma+threshold(threshold=80)+zscore")
BACKENDS = ("serial", "threads")


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("stack", STACKS, ids=("default-stack", "custom-stack"))
@pytest.mark.parametrize("backend", BACKENDS)
def test_cached_equals_uncached(tmp_path, scenario, stack, backend):
    extra = {}
    if stack is not None:
        extra["detectors"] = stack
    if backend != "serial":
        extra["execution"] = {"backend": backend, "workers": 2}
    spec = spec_for(tmp_path / "cache", scenario=scenario, seed=9, **extra)

    uncached_spec = dict(spec)
    del uncached_spec["result_cache"]
    uncached = Pipeline.from_spec(uncached_spec).run()
    miss = Pipeline.from_spec(spec).run()
    hit = Pipeline.from_spec(spec).run()

    assert "result_cache" not in uncached.timings
    assert miss.timings["result_cache"] == "miss"
    assert hit.timings["result_cache"] == "hit"
    assert_runs_identical(uncached, miss)
    assert_runs_identical(uncached, hit)
    for run in hit.detections:
        assert run.result.flagged_machines() == \
            uncached.detection(run.label).result.flagged_machines()


def test_hit_is_stable_across_processes_shape(tmp_path):
    """A second Pipeline object (fresh parse of the same spec text) hits."""
    import json

    spec = spec_for(tmp_path / "cache", scenario="thrashing", seed=3)
    text = json.dumps(spec)
    first = Pipeline.from_spec(text).run()
    second = Pipeline.from_spec(json.dumps(json.loads(text))).run()
    assert first.timings["result_cache"] == "miss"
    assert second.timings["result_cache"] == "hit"
    assert_runs_identical(first, second)
