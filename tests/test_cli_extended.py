"""Tests for the monitor / compare / sla / detect / experiments CLI
sub-commands."""

import pytest

from repro.cli import build_parser, main
from repro.trace.writer import write_trace


class TestParserRegistration:
    def test_new_subcommands_registered(self):
        text = build_parser().format_help()
        for command in ("monitor", "compare", "sla", "experiments", "detect"):
            assert command in text


class TestDetectCommand:
    def test_detect_scores_composed_scenario(self, capsys):
        code = main(["detect", "--synthetic", "--scenario",
                     "machine-failure+network-storm", "--seed", "5"])
        assert code == 0
        output = capsys.readouterr().out
        assert "engine sweep on 'cpu'" in output
        # one sweep line per registered detector
        for name in ("threshold", "zscore", "ewma", "flatline"):
            assert f"  {name}:" in output
        # the manifest table names the declared detectors
        assert "precision/recall" in output
        assert "machine-failure" in output
        assert "network-storm" in output
        assert "worst F1" in output

    def test_detect_alternate_metric(self, tmp_path, thrashing_bundle, capsys):
        write_trace(thrashing_bundle, tmp_path)
        code = main(["detect", str(tmp_path), "--metric", "mem"])
        assert code == 0
        assert "engine sweep on 'mem'" in capsys.readouterr().out

    def test_detect_without_usage_exits_cleanly(self, tmp_path, healthy_bundle,
                                                capsys):
        write_trace(healthy_bundle, tmp_path)
        (tmp_path / "server_usage.csv").unlink()
        code = main(["detect", str(tmp_path)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_detect_without_manifest(self, tmp_path, healthy_bundle, capsys):
        # a trace loaded from disk after being written by the legacy writer
        # may carry no manifest entries; the sweep must still print
        write_trace(healthy_bundle, tmp_path)
        code = main(["detect", str(tmp_path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "engine sweep" in output


class TestMonitorCommand:
    def test_monitor_on_written_thrashing_trace(self, tmp_path, thrashing_bundle,
                                                capsys):
        write_trace(thrashing_bundle, tmp_path)
        code = main(["monitor", str(tmp_path), "--threshold", "85"])
        assert code == 0
        output = capsys.readouterr().out
        assert "replayed" in output
        assert "final regime" in output

    def test_monitor_synthetic_healthy_is_quiet_or_reports(self, capsys):
        code = main(["monitor", "--synthetic", "--scenario", "healthy",
                     "--seed", "3", "--threshold", "99"])
        assert code == 0
        output = capsys.readouterr().out
        assert "replayed" in output


class TestCompareCommand:
    def test_compare_prints_markdown(self, tmp_path, thrashing_bundle, capsys):
        write_trace(thrashing_bundle, tmp_path)
        code = main(["compare", str(tmp_path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "Detection quality" in output
        assert "Capability matrix" in output

    def test_compare_writes_file(self, tmp_path, thrashing_bundle, capsys):
        write_trace(thrashing_bundle, tmp_path / "trace")
        target = tmp_path / "comparison.md"
        code = main(["compare", str(tmp_path / "trace"), "--output", str(target)])
        assert code == 0
        assert target.exists()
        assert "BatchLens analysis layer" in target.read_text(encoding="utf-8")


class TestSlaCommand:
    def test_sla_summary_printed(self, tmp_path, thrashing_bundle, capsys):
        write_trace(thrashing_bundle, tmp_path)
        code = main(["sla", str(tmp_path), "--saturation-level", "80"])
        assert code == 0
        output = capsys.readouterr().out
        assert "job(s) in violation" in output

    def test_sla_synthetic(self, capsys):
        assert main(["sla", "--synthetic", "--scenario", "healthy",
                     "--seed", "6"]) == 0
        assert "violation" in capsys.readouterr().out


class TestExperimentsCommand:
    def test_experiments_write_markdown_report(self, tmp_path, capsys):
        target = tmp_path / "experiments.md"
        code = main(["experiments", "--seed", "2022", "--output", str(target)])
        output = capsys.readouterr().out
        assert target.exists()
        text = target.read_text(encoding="utf-8")
        assert "| id |" in text
        assert "claims hold" in output
        assert code in (0, 1)
