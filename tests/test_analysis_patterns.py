"""Tests for cluster-regime classification."""

import numpy as np
import pytest

from repro.analysis.patterns import (
    Regime,
    RegimeThresholds,
    classify_regime,
    regime_timeline,
)
from repro.metrics.store import MetricStore
from tests.conftest import mid_timestamp


def uniform_store(cpu: float, mem: float, machines: int = 8) -> MetricStore:
    store = MetricStore([f"m{i}" for i in range(machines)], np.array([0.0, 100.0]))
    for i in range(machines):
        store.set_series(f"m{i}", "cpu", [cpu, cpu])
        store.set_series(f"m{i}", "mem", [mem, mem])
    return store


class TestClassification:
    def test_idle(self):
        assert classify_regime(uniform_store(5, 8), 0).regime == Regime.IDLE

    def test_healthy(self):
        assessment = classify_regime(uniform_store(30, 35), 0)
        assert assessment.regime == Regime.HEALTHY
        assert assessment.mean_cpu == pytest.approx(30.0)

    def test_busy(self):
        assert classify_regime(uniform_store(60, 55), 0).regime == Regime.BUSY

    def test_saturated_by_mean(self):
        assert classify_regime(uniform_store(85, 80), 0).regime == Regime.SATURATED

    def test_saturated_by_hot_machines(self):
        store = uniform_store(40, 40, machines=10)
        for i in range(3):
            store.set_series(f"m{i}", "cpu", [96, 96])
        assessment = classify_regime(store, 0)
        assert assessment.regime == Regime.SATURATED
        assert assessment.hot_machine_fraction == pytest.approx(0.3)

    def test_custom_thresholds(self):
        thresholds = RegimeThresholds(healthy_below=20.0, busy_below=40.0)
        assert classify_regime(uniform_store(30, 10), 0,
                               thresholds=thresholds).regime == Regime.BUSY

    def test_summary_is_readable(self):
        text = classify_regime(uniform_store(30, 35), 0).summary()
        assert "healthy" in text
        assert "mean CPU 30%" in text


class TestScenarioClassification:
    def test_healthy_scenario(self, healthy_bundle):
        assessment = classify_regime(healthy_bundle.usage,
                                     mid_timestamp(healthy_bundle))
        assert assessment.regime in (Regime.HEALTHY, Regime.BUSY)

    def test_hotjob_scenario_is_at_least_busy(self, hotjob_bundle):
        assessment = classify_regime(hotjob_bundle.usage,
                                     mid_timestamp(hotjob_bundle))
        assert assessment.regime in (Regime.BUSY, Regime.SATURATED)

    def test_thrashing_scenario_is_saturated_in_window(self, thrashing_bundle):
        t0, t1 = thrashing_bundle.meta["thrashing"]["window"]
        assessment = classify_regime(thrashing_bundle.usage, (t0 + t1) / 2)
        assert assessment.regime == Regime.SATURATED

    def test_ordering_of_scenarios(self, healthy_bundle, hotjob_bundle):
        order = [Regime.IDLE, Regime.HEALTHY, Regime.BUSY, Regime.SATURATED]
        healthy = classify_regime(healthy_bundle.usage, mid_timestamp(healthy_bundle))
        hot = classify_regime(hotjob_bundle.usage, mid_timestamp(hotjob_bundle))
        assert order.index(healthy.regime) <= order.index(hot.regime)


class TestRegimeTimeline:
    def test_timeline_length(self, healthy_bundle):
        assessments = regime_timeline(healthy_bundle.usage, step=4)
        expected = int(np.ceil(healthy_bundle.usage.num_samples / 4))
        assert len(assessments) == expected
        assert all(a.regime in Regime for a in assessments)
