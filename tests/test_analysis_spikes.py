"""Tests for spike/valley detection."""

import numpy as np
import pytest

from repro.analysis.spikes import (
    detect_spikes,
    detect_valleys,
    find_peaks,
    largest_spike,
    synchronized_spike,
)
from repro.errors import SeriesError
from repro.metrics.series import TimeSeries


def spiky_series(spike_at=25, height=80.0, base=20.0, n=60) -> TimeSeries:
    values = np.full(n, base)
    values[spike_at - 2:spike_at + 3] = [base + height * f
                                         for f in (0.3, 0.7, 1.0, 0.7, 0.3)]
    return TimeSeries(np.arange(n) * 60.0, values)


class TestFindPeaks:
    def test_simple_peak(self):
        peaks = find_peaks(np.array([0, 1, 5, 1, 0], dtype=float))
        assert list(peaks) == [2]

    def test_plateau_peak_reported_once(self):
        peaks = find_peaks(np.array([0, 5, 5, 5, 0], dtype=float))
        assert len(peaks) == 1

    def test_monotone_series_has_no_peaks(self):
        assert len(find_peaks(np.arange(10, dtype=float))) == 0

    def test_too_short(self):
        assert len(find_peaks(np.array([1.0, 2.0]))) == 0


class TestDetectSpikes:
    def test_detects_the_spike(self):
        spikes = detect_spikes(spiky_series(), min_prominence=30, subject="m1")
        assert len(spikes) == 1
        spike = spikes[0]
        assert spike.timestamp == 25 * 60.0
        assert spike.value == pytest.approx(100.0)
        assert spike.prominence >= 70.0
        assert spike.subject == "m1"

    def test_prominence_filters_noise(self):
        rng = np.random.default_rng(1)
        noisy = TimeSeries(np.arange(200) * 60.0, 20 + rng.normal(0, 2, 200))
        assert detect_spikes(noisy, min_prominence=25) == []

    def test_invalid_prominence(self):
        with pytest.raises(SeriesError):
            detect_spikes(spiky_series(), min_prominence=0)

    def test_short_series(self):
        assert detect_spikes(TimeSeries([0, 1], [1, 2])) == []


class TestDetectValleys:
    def test_detects_drop(self):
        values = np.full(50, 60.0)
        values[20:23] = 5.0
        series = TimeSeries(np.arange(50) * 60.0, values)
        valleys = detect_valleys(series, min_prominence=30)
        assert len(valleys) == 1
        assert valleys[0].kind == "valley"
        assert valleys[0].value == pytest.approx(5.0)


class TestLargestSpike:
    def test_returns_most_prominent(self):
        values = np.full(80, 10.0)
        values[20] = 40.0
        values[60] = 90.0
        series = TimeSeries(np.arange(80) * 60.0, values)
        spike = largest_spike(series)
        assert spike is not None
        assert spike.timestamp == 60 * 60.0

    def test_none_when_flat(self):
        assert largest_spike(TimeSeries.constant(np.arange(30), 5.0)) is None


class TestSynchronizedSpike:
    def test_synchronized_population(self):
        series_list = [spiky_series(spike_at=25) for _ in range(6)]
        assert synchronized_spike(series_list)

    def test_desynchronized_population(self):
        series_list = [spiky_series(spike_at=at) for at in (5, 15, 25, 35, 45, 55)]
        assert not synchronized_spike(series_list, tolerance_s=120)

    def test_too_few_spiking_series(self):
        flat = TimeSeries.constant(np.arange(60) * 60.0, 20.0)
        assert not synchronized_spike([flat, flat, flat, spiky_series()])


class TestHotJobSpikeEndToEnd:
    def test_hot_job_machines_spike_in_generated_trace(self, hotjob_bundle):
        hot_id = hotjob_bundle.meta["hot_job_id"]
        store = hotjob_bundle.usage
        machines = hotjob_bundle.machines_of_job(hot_id)
        series_list = [store.series(m, "cpu") for m in machines]
        spiking = sum(1 for s in series_list
                      if largest_spike(s, min_prominence=10) is not None)
        assert spiking >= len(series_list) // 2
