"""Tests for hierarchy roll-ups and windowed aggregation."""

import numpy as np
import pytest

from repro.errors import SeriesError
from repro.metrics.aggregate import (
    busiest_machines,
    cluster_timeline,
    group_series,
    group_snapshot,
    utilisation_histogram,
    windowed_mean,
)
from repro.metrics.series import TimeSeries
from repro.metrics.store import MetricStore


@pytest.fixture()
def store() -> MetricStore:
    s = MetricStore(["a", "b", "c", "d"], np.array([0.0, 100.0, 200.0]))
    s.set_series("a", "cpu", [10, 10, 10])
    s.set_series("b", "cpu", [30, 30, 30])
    s.set_series("c", "cpu", [50, 60, 70])
    s.set_series("d", "cpu", [90, 95, 99])
    for mid, level in (("a", 20), ("b", 20), ("c", 40), ("d", 80)):
        s.set_series(mid, "mem", [level] * 3)
    return s


class TestGroupSnapshot:
    def test_mean_and_max(self, store):
        groups = {"job1": ["a", "b"], "job2": ["c", "d"]}
        results = {g.group_id: g for g in group_snapshot(store, groups, 0)}
        assert results["job1"].mean["cpu"] == pytest.approx(20.0)
        assert results["job2"].maximum["cpu"] == 90.0
        assert results["job1"].machine_count == 2

    def test_unknown_machines_ignored(self, store):
        results = group_snapshot(store, {"j": ["a", "ghost"]}, 0)
        assert results[0].machine_count == 1

    def test_fully_unknown_group_is_zero(self, store):
        results = group_snapshot(store, {"j": ["ghost"]}, 0)
        assert results[0].machine_count == 0
        assert results[0].mean["cpu"] == 0.0


class TestGroupSeries:
    def test_mean_over_time(self, store):
        series = group_series(store, ["a", "b"], "cpu")
        assert list(series.values) == [20, 20, 20]

    def test_max_reducer(self, store):
        series = group_series(store, ["c", "d"], "cpu", reducer="max")
        assert list(series.values) == [90, 95, 99]

    def test_empty_group(self, store):
        assert group_series(store, [], "cpu").is_empty


class TestClusterTimeline:
    def test_one_layer_per_metric(self, store):
        layers = cluster_timeline(store)
        assert set(layers) == {"cpu", "mem", "disk"}
        assert layers["cpu"].values[0] == pytest.approx(45.0)


class TestWindowedMean:
    def test_smooths_by_window(self):
        series = TimeSeries([0, 10, 20, 30], [0, 10, 20, 30])
        smoothed = windowed_mean(series, 10)
        assert smoothed.values[1] == pytest.approx(5.0)
        assert smoothed.values[3] == pytest.approx(25.0)

    def test_invalid_window(self, simple_series):
        with pytest.raises(SeriesError):
            windowed_mean(simple_series, 0)

    def test_empty_passthrough(self):
        assert windowed_mean(TimeSeries.empty(), 10).is_empty


class TestHistogram:
    def test_bucket_counts(self, store):
        counts = utilisation_histogram(store, "cpu", 0)
        assert counts["0-20"] == 1
        assert counts["20-40"] == 1
        assert counts["40-60"] == 1
        assert counts["80-100"] == 1

    def test_value_exactly_at_top_edge_included(self):
        s = MetricStore(["x"], np.array([0.0]))
        s.set_series("x", "cpu", [100.0])
        counts = utilisation_histogram(s, "cpu", 0)
        assert counts["80-100"] == 1

    def test_invalid_bins(self, store):
        with pytest.raises(SeriesError):
            utilisation_histogram(store, "cpu", 0, bin_edges=(0,))
        with pytest.raises(SeriesError):
            utilisation_histogram(store, "cpu", 0, bin_edges=(0, 50, 40))


class TestBusiestMachines:
    def test_ordering(self, store):
        top = busiest_machines(store, "cpu", 200, top_n=2)
        assert [mid for mid, _ in top] == ["d", "c"]

    def test_invalid_top_n(self, store):
        with pytest.raises(SeriesError):
            busiest_machines(store, "cpu", 0, top_n=0)
