"""Graceful-shutdown regression tests for ``repro serve``.

The dangerous leak is the **process** backend: ``ProcessPoolExecutor``
workers are non-daemon processes, so a server that fails to shut its
shared pool down leaves children that keep the interpreter (and CI) alive
past SIGTERM.  The test is therefore the real thing — a ``repro serve``
subprocess on the process backend, exercised over HTTP so workers
actually spawn, then SIGTERMed: a clean exit code 0 within the timeout
*is* the no-leaked-workers proof, because leaked workers would hang the
child's interpreter exit.  No fixed ports (``--port 0``; the bound port
is read from the startup line) and no sleeps (readiness is that line).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.serve import ServeClient

REPO_ROOT = Path(__file__).resolve().parent.parent


def start_serve(*extra_args: str) -> "tuple[subprocess.Popen, int]":
    """Launch ``repro serve --port 0 ...``; returns (process, bound port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    line = proc.stdout.readline()
    if "serving on" not in line:
        proc.kill()
        rest = proc.stdout.read()
        raise AssertionError(f"server failed to start: {line!r}{rest!r}")
    port = int(line.split("serving on ")[1].split()[0].rsplit(":", 1)[1])
    return proc, port


def finish(proc: subprocess.Popen, timeout: float = 30.0) -> str:
    """Wait for exit (killing on overrun) and return remaining output."""
    try:
        output, _ = proc.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.communicate()
        raise AssertionError(
            "serve did not exit after SIGTERM — leaked worker processes "
            "keep a non-daemon pool (and the interpreter) alive")
    assert proc.returncode == 0, f"serve exited {proc.returncode}: {output!r}"
    return output


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_idle_server_drains_on_signal(signum):
    proc, _port = start_serve("--backend", "threads", "--workers", "2")
    proc.send_signal(signum)
    output = finish(proc)
    assert "draining" in output
    assert "shutdown complete" in output


def test_sigterm_reaps_process_pool_workers():
    """The leak regression: spawn real pool workers, then SIGTERM."""
    proc, port = start_serve("--backend", "process", "--workers", "2")
    rng = np.random.default_rng(0)
    with ServeClient("127.0.0.1", port, timeout=60.0) as client:
        client.create_tenant({"id": "t", "machines": ["a", "b", "c", "d"]})
        ts = 60.0 * np.arange(1, 41, dtype=np.float64)
        frames = rng.uniform(5.0, 95.0, size=(40, 4, 3))
        client.ingest_frames("t", ts, frames)
        # /detect runs on the shared persistent pool → workers fork here.
        body = client.detect("t", timeout=60.0)
        assert body["num_samples"] == 40
    proc.send_signal(signal.SIGTERM)
    output = finish(proc)
    assert "shutdown complete" in output


def test_inflight_request_finishes_during_drain():
    """A long-poll parked at SIGTERM time is woken and answered, not cut."""
    proc, port = start_serve("--backend", "threads", "--workers", "2")
    import threading

    with ServeClient("127.0.0.1", port) as client:
        client.create_tenant({"id": "t", "machines": ["a", "b"]})
    result: dict = {}
    connected = threading.Event()

    def poll():
        with ServeClient("127.0.0.1", port, timeout=60.0) as sub:
            try:
                # First round trip establishes the keep-alive connection;
                # its handler thread then serves the long-poll even while
                # the accept loop is already draining.
                sub.health()
                connected.set()
                result.update(sub.alerts("t", cursor=0, wait=25.0))
            except Exception as exc:  # noqa: BLE001 - asserted below
                result["error"] = exc
                connected.set()

    thread = threading.Thread(target=poll)
    thread.start()
    assert connected.wait(timeout=20.0), "subscriber never connected"
    proc.send_signal(signal.SIGTERM)
    output = finish(proc)
    thread.join(timeout=30.0)
    assert not thread.is_alive()
    assert "error" not in result, f"drain cut the long-poll: {result['error']}"
    assert result["closed"] is True
    assert "shutdown complete" in output
