"""Tests for the small-multiples sparkline grid."""

import numpy as np
import pytest

from repro.cluster.hierarchy import BatchHierarchy
from repro.errors import RenderError
from repro.metrics.series import TimeSeries
from repro.metrics.store import MetricStore
from repro.vis.charts.smallmultiples import (
    SmallMultiplesChart,
    SmallMultiplesModel,
    Sparkline,
)


def make_cells(count=6, n=15):
    cells = []
    for index in range(count):
        timestamps = np.arange(n) * 60.0
        values = np.full(n, 10.0 + index * 10.0)
        cells.append(Sparkline(label=f"job_{index}",
                               series=TimeSeries(timestamps, values),
                               markers=(120.0,)))
    return cells


def make_store(num_machines=4, n=15):
    timestamps = np.arange(n) * 60.0
    store = MetricStore([f"m_{i:04d}" for i in range(num_machines)], timestamps)
    for i in range(num_machines):
        store.set_series(f"m_{i:04d}", "cpu", np.full(n, 20.0 + 10.0 * i))
        store.set_series(f"m_{i:04d}", "mem", np.full(n, 30.0))
        store.set_series(f"m_{i:04d}", "disk", np.full(n, 10.0))
    return store


class TestSmallMultiplesModel:
    def test_extents_span_all_cells(self):
        model = SmallMultiplesModel(cells=make_cells())
        t0, t1 = model.time_extent()
        assert t0 == 0.0
        assert t1 == 14 * 60.0
        v0, v1 = model.value_extent()
        assert v0 == 0.0
        assert v1 >= 60.0

    def test_empty_model_raises(self):
        with pytest.raises(RenderError):
            SmallMultiplesModel().time_extent()

    def test_per_job_builds_one_cell_per_job(self):
        store = make_store()
        model = SmallMultiplesModel.per_job(
            store, {"j1": ["m_0000", "m_0001"], "j2": ["m_0002"]})
        assert {cell.label for cell in model.cells} == {"j1", "j2"}

    def test_per_job_mean_of_machines(self):
        store = make_store()
        model = SmallMultiplesModel.per_job(store, {"j1": ["m_0000", "m_0001"]})
        cell = model.cells[0]
        assert cell.series.mean() == pytest.approx(25.0)

    def test_per_job_with_windows_sets_markers(self):
        store = make_store()
        model = SmallMultiplesModel.per_job(
            store, {"j1": ["m_0000"]}, job_windows={"j1": (60.0, 300.0)})
        assert model.cells[0].markers == (60.0, 300.0)

    def test_per_job_all_unknown_raises(self):
        with pytest.raises(RenderError):
            SmallMultiplesModel.per_job(make_store(), {"ghost": ["nope"]})

    def test_per_job_on_generated_trace(self, hotjob_bundle):
        hierarchy = BatchHierarchy.from_bundle(hotjob_bundle)
        job_machines = {job.job_id: job.machine_ids() for job in hierarchy.jobs}
        model = SmallMultiplesModel.per_job(hotjob_bundle.usage, job_machines)
        assert len(model.cells) >= 1


class TestSmallMultiplesChart:
    def test_one_cell_group_per_sparkline(self):
        model = SmallMultiplesModel(cells=make_cells(count=5))
        doc = SmallMultiplesChart(model, columns=3).render()
        cells = [e for e in doc.iter("g") if e.get("class") == "sparkline-cell"]
        assert len(cells) == 5

    def test_rows_derived_from_columns(self):
        model = SmallMultiplesModel(cells=make_cells(count=7))
        chart = SmallMultiplesChart(model, columns=3)
        assert chart.rows == 3
        assert chart.height > chart.margins.top + chart.margins.bottom

    def test_markers_rendered(self):
        model = SmallMultiplesModel(cells=make_cells(count=2))
        doc = SmallMultiplesChart(model, columns=2).render()
        markers = [e for e in doc.iter("rect")
                   if e.get("class") == "sparkline-marker"]
        assert len(markers) == 2

    def test_cells_do_not_overlap(self):
        model = SmallMultiplesModel(cells=make_cells(count=4))
        chart = SmallMultiplesChart(model, columns=2)
        geometries = [chart._cell_geometry(i) for i in range(4)]
        for i in range(4):
            xi, yi, wi, hi = geometries[i]
            for j in range(i + 1, 4):
                xj, yj, wj, hj = geometries[j]
                disjoint_x = xi + wi <= xj + 1e-9 or xj + wj <= xi + 1e-9
                disjoint_y = yi + hi <= yj + 1e-9 or yj + hj <= yi + 1e-9
                assert disjoint_x or disjoint_y

    def test_empty_model_rejected(self):
        with pytest.raises(RenderError):
            SmallMultiplesChart(SmallMultiplesModel())

    def test_invalid_columns_rejected(self):
        model = SmallMultiplesModel(cells=make_cells(count=2))
        with pytest.raises(RenderError):
            SmallMultiplesChart(model, columns=0)

    def test_too_many_columns_for_width_rejected_at_render(self):
        model = SmallMultiplesModel(cells=make_cells(count=40))
        chart = SmallMultiplesChart(model, columns=40, width=300.0)
        with pytest.raises(RenderError):
            chart.render()
