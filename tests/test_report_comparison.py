"""Tests for the baseline comparison report."""

import pytest

from repro.report.comparison import (
    capability_matrix,
    compare_detection_quality,
    render_comparison,
)


class TestCapabilityMatrix:
    def test_every_row_has_all_tools(self):
        rows = capability_matrix()
        assert rows
        for row in rows:
            assert isinstance(row.batchlens, bool)
            assert isinstance(row.flat_dashboard, bool)
            assert isinstance(row.threshold_monitor, bool)
            assert isinstance(row.tabular_report, bool)

    def test_batchlens_covers_most_capabilities(self):
        rows = capability_matrix()
        batchlens_count = sum(row.batchlens for row in rows)
        for attribute in ("flat_dashboard", "threshold_monitor", "tabular_report"):
            assert batchlens_count > sum(getattr(row, attribute) for row in rows)

    def test_hierarchy_capability_is_unique_to_batchlens(self):
        row = next(r for r in capability_matrix() if "hierarchy" in r.capability)
        assert row.batchlens
        assert not (row.flat_dashboard or row.threshold_monitor or row.tabular_report)


class TestCompareDetectionQuality:
    def test_thrashing_scenario_uses_injected_truth(self, thrashing_bundle):
        report = compare_detection_quality(thrashing_bundle)
        truth = set(thrashing_bundle.meta["thrashing"]["machines"])
        assert set(report.truth_machines) == truth
        assert report.scenario == "thrashing"
        assert 0.0 <= report.batchlens.recall <= 1.0
        assert 0.0 <= report.threshold_monitor.recall <= 1.0

    def test_batchlens_recovers_thrashing_machines(self, thrashing_bundle):
        report = compare_detection_quality(thrashing_bundle)
        assert report.batchlens.recall >= 0.5

    def test_hotjob_scenario_attributes_job(self, hotjob_bundle):
        report = compare_detection_quality(hotjob_bundle)
        assert report.responsible_job == hotjob_bundle.meta["hot_job_id"]
        assert report.batchlens_names_job is not None

    def test_explicit_truth_overrides_metadata(self, thrashing_bundle):
        machines = thrashing_bundle.usage.machine_ids[:2]
        report = compare_detection_quality(thrashing_bundle,
                                           truth_machines=set(machines))
        assert set(report.truth_machines) == set(machines)

    def test_healthy_scenario_has_no_responsible_job(self, healthy_bundle):
        report = compare_detection_quality(healthy_bundle)
        assert report.responsible_job is None
        assert report.batchlens_names_job is None


class TestRenderComparison:
    def test_render_contains_tables_and_scores(self, thrashing_bundle):
        report = compare_detection_quality(thrashing_bundle)
        text = render_comparison(report)
        assert "Detection quality" in text
        assert "Capability matrix" in text
        assert "BatchLens analysis layer" in text
        assert f"{report.batchlens.recall:.2f}" in text

    def test_render_mentions_attribution_for_hotjob(self, hotjob_bundle):
        report = compare_detection_quality(hotjob_bundle)
        text = render_comparison(report)
        assert "Root-cause attribution" in text
        assert report.responsible_job in text
