"""Tests for the detection service: wire encodings, tenants, endpoints.

Every server here binds port 0 (an ephemeral port) and is used in-process
— readiness is the bound socket, so there are no fixed ports and no
sleeps anywhere in the suite.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro.analysis.detectors import AnomalyEvent
from repro.errors import SeriesError, ServeError, UnknownTenantError
from repro.serve import DetectionServer, ServeClient
from repro.serve.tenants import TenantRegistry, TenantSpec
from repro.serve.wire import block_to_payload, payload_to_block, store_to_payloads
from repro.stream.monitor import MonitorAlert

MACHINES = ["m-0", "m-1", "m-2"]


def make_frames(num_samples: int, num_machines: int = 3, *, seed: int = 0,
                start: float = 60.0):
    """(timestamps, frames) with frames in wire (samples, machines, metrics)."""
    rng = np.random.default_rng(seed)
    ts = start + 60.0 * np.arange(num_samples, dtype=np.float64)
    frames = rng.uniform(5.0, 60.0, size=(num_samples, num_machines, 3))
    return ts, frames


@pytest.fixture(scope="module")
def server():
    with DetectionServer(port=0, backend="threads", workers=2) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with ServeClient(server.host, server.port) as c:
        yield c


# -- canonical encodings ------------------------------------------------------
class TestWireEncodings:
    def test_monitor_alert_round_trip(self):
        alert = MonitorAlert(timestamp=120.0, kind="threshold", subject="m-1",
                             detail="cpu reached 99%", severity="critical")
        raw = json.loads(json.dumps(alert.to_dict()))
        assert MonitorAlert.from_dict(raw) == alert

    def test_anomaly_event_round_trip(self):
        event = AnomalyEvent(start=60.0, end=240.0, metric="cpu",
                             subject="m-2", kind="ewma", score=3.25,
                             detail="sustained deviation")
        raw = json.loads(json.dumps(event.to_dict()))
        assert AnomalyEvent.from_dict(raw) == event

    @pytest.mark.parametrize("raw", [{}, {"start": "x", "end": 1.0},
                                     {"start": 0.0}])
    def test_malformed_event_rejected(self, raw):
        with pytest.raises(SeriesError):
            AnomalyEvent.from_dict(raw)

    def test_block_payload_round_trip(self):
        ts, frames = make_frames(5)
        _, block = payload_to_block(
            {"timestamps": ts.tolist(), "frames": frames.tolist()}, 3)
        payload = block_to_payload(ts, block)
        ts2, block2 = payload_to_block(json.loads(json.dumps(payload)), 3)
        assert np.array_equal(ts, ts2)
        assert np.array_equal(block, block2)

    def test_single_sample_payload(self):
        ts, frames = make_frames(1)
        decoded_ts, block = payload_to_block(
            {"timestamp": float(ts[0]), "frame": frames[0].tolist()}, 3)
        assert decoded_ts.shape == (1,)
        assert block.shape == (3, 3, 1)

    @pytest.mark.parametrize("payload", [
        [],                                               # not an object
        {"timestamps": [1.0]},                            # missing frames
        {"timestamp": 1.0},                               # missing frame
        {"timestamp": 1.0, "frames": [[[1.0] * 3] * 3]},  # mixed shapes
        {"timestamps": [1.0], "frames": [[[1.0] * 2] * 3]},   # bad metric axis
        {"timestamps": [1.0], "frames": [[["x"] * 3] * 3]},   # non-numeric
        {"timestamps": [[1.0]], "frames": [[[1.0] * 3] * 3]},  # nested ts
    ])
    def test_malformed_frame_payload_rejected(self, payload):
        with pytest.raises(ServeError):
            payload_to_block(payload, 3)

    def test_store_to_payloads_covers_every_sample(self, healthy_bundle):
        store = healthy_bundle.usage
        payloads = store_to_payloads(store, 7)
        total = sum(len(p["timestamps"]) for p in payloads)
        assert total == store.num_samples
        assert all(len(p["timestamps"]) <= 7 for p in payloads)

    def test_store_to_payloads_rejects_bad_batch(self, healthy_bundle):
        with pytest.raises(ServeError):
            store_to_payloads(healthy_bundle.usage, 0)


# -- tenant spec validation ---------------------------------------------------
class TestTenantSpec:
    def test_defaults_fill_in(self):
        spec = TenantSpec.from_dict({"machines": MACHINES}, default_id="t1")
        assert spec.tenant_id == "t1"
        assert spec.detectors == "ewma+flatline+threshold+zscore"
        assert spec.metrics == ("cpu",)
        assert spec.streaming.cadence == "catch-up"

    def test_round_trips_through_dict(self):
        spec = TenantSpec.from_dict(
            {"id": "prod", "machines": MACHINES, "detectors": "ewma+threshold",
             "metrics": ["cpu", "mem"]}, default_id="x")
        again = TenantSpec.from_dict(spec.to_dict(), default_id="y")
        assert again == spec

    @pytest.mark.parametrize("raw,needle", [
        ({}, "machines"),
        ({"machines": []}, "machines"),
        ({"machines": ["a", "a"]}, "unique"),
        ({"machines": MACHINES, "mode": "batch"}, "streaming"),
        ({"machines": MACHINES, "metrics": ["gpu"]}, "gpu"),
        ({"machines": MACHINES, "detectors": 7}, "spec string"),
        ({"machines": MACHINES, "id": "a/b"}, "path separators"),
        ({"machines": MACHINES, "id": ".."}, "path separators"),
        ({"machines": MACHINES, "id": "."}, "path separators"),
        ({"machines": MACHINES, "id": ""}, "path separators"),
        ({"machines": MACHINES, "id": "a\\b"}, "path separators"),
        ({"machines": MACHINES, "id": "x" * 129}, "path separators"),
        ({"machines": MACHINES, "bogus": 1}, "bogus"),
        ({"machines": MACHINES,
          "streaming": {"cadence": "sample"}}, "cadence"),
        ({"machines": MACHINES, "streaming": {"chunk": 8}}, "chunk"),
    ])
    def test_invalid_specs_rejected_with_context(self, raw, needle):
        with pytest.raises(ServeError) as excinfo:
            TenantSpec.from_dict(raw, default_id="t1")
        assert needle in str(excinfo.value)

    def test_pipeline_only_keys_named_explicitly(self):
        with pytest.raises(ServeError) as excinfo:
            TenantSpec.from_dict(
                {"machines": MACHINES, "source": {"kind": "synthetic"},
                 "sinks": ["score"]}, default_id="t1")
        message = str(excinfo.value)
        assert "source" in message and "sinks" in message

    def test_unknown_detector_lists_registered_names(self):
        from repro.errors import PipelineError

        with pytest.raises(PipelineError) as excinfo:
            TenantSpec.from_dict({"machines": MACHINES, "detectors": "nope"},
                                 default_id="t1")
        assert "ewma" in str(excinfo.value)


# -- registry -----------------------------------------------------------------
class TestTenantRegistry:
    def test_auto_ids_and_lookup(self):
        registry = TenantRegistry()
        first = registry.create({"machines": MACHINES})
        second = registry.create({"machines": MACHINES})
        assert [first.spec.tenant_id, second.spec.tenant_id] == ["t1", "t2"]
        assert registry.get("t1") is first
        assert registry.ids() == ["t1", "t2"]

    def test_duplicate_id_rejected(self):
        registry = TenantRegistry()
        registry.create({"id": "x", "machines": MACHINES})
        with pytest.raises(ServeError, match="already exists"):
            registry.create({"id": "x", "machines": MACHINES})

    def test_unknown_tenant_lists_registered(self):
        registry = TenantRegistry()
        registry.create({"id": "alpha", "machines": MACHINES})
        with pytest.raises(UnknownTenantError, match="alpha"):
            registry.get("beta")

    def test_capacity_bound(self):
        registry = TenantRegistry(max_tenants=1)
        registry.create({"machines": MACHINES})
        with pytest.raises(ServeError, match="capacity"):
            registry.create({"machines": MACHINES})

    def test_delete_closes_tenant(self):
        registry = TenantRegistry()
        tenant = registry.create({"id": "x", "machines": MACHINES})
        registry.delete("x")
        assert tenant.closed
        with pytest.raises(UnknownTenantError):
            registry.get("x")

    def test_close_all_refuses_new_tenants(self):
        registry = TenantRegistry()
        tenant = registry.create({"machines": MACHINES})
        registry.close_all()
        assert tenant.closed
        with pytest.raises(ServeError, match="draining"):
            registry.create({"machines": MACHINES})


# -- HTTP endpoints -----------------------------------------------------------
class TestEndpoints:
    def test_health(self, client):
        body = client.health()
        assert body["status"] == "ok"

    def test_tenant_lifecycle(self, client):
        spec = client.create_tenant({"id": "life", "machines": MACHINES})
        assert spec["id"] == "life"
        assert "life" in client.tenants()
        assert client.delete_tenant("life") == {"deleted": "life"}
        assert "life" not in client.tenants()

    def test_bad_spec_is_400_with_message(self, client):
        with pytest.raises(ServeError, match="machines"):
            client.create_tenant({"id": "broken"})

    def test_unknown_tenant_is_404(self, client):
        with pytest.raises(UnknownTenantError, match="unknown tenant"):
            client.summary("never-registered")

    def test_unknown_route_is_400(self, client):
        with pytest.raises(ServeError, match="no route"):
            client._request("GET", "/bogus/route")

    def test_non_json_body_is_400(self, server, client):
        import http.client

        conn = http.client.HTTPConnection(server.host, server.port, timeout=5)
        conn.request("POST", "/tenants", body=b"not json{",
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        body = json.loads(response.read())
        conn.close()
        assert response.status == 400
        assert "JSON" in body["error"]

    def test_ingest_and_cursor_walk(self, client):
        client.create_tenant({"id": "walk", "machines": MACHINES})
        ts, frames = make_frames(12, seed=3)
        frames[6:, 1, 0] = 99.0   # m-1 cpu breaches the default threshold
        reply = client.ingest_frames("walk", ts, frames)
        assert reply["ingested"] == 12
        assert reply["total_samples"] == 12
        assert reply["alerts"], "threshold breach must alert"
        # Walk the log with a cursor: no duplicates, no gaps.
        first = client.alerts("walk", cursor=0)
        seqs = [entry["seq"] for entry in first["alerts"]]
        assert seqs == list(range(1, len(seqs) + 1))
        again = client.alerts("walk", cursor=first["cursor"])
        assert again["alerts"] == []
        client.delete_tenant("walk")

    def test_ingest_rejects_stale_timestamps(self, client):
        client.create_tenant({"id": "stale", "machines": MACHINES})
        ts, frames = make_frames(4, seed=4)
        client.ingest_frames("stale", ts, frames)
        with pytest.raises(ServeError, match="not after"):
            client.ingest_frames("stale", ts, frames)
        client.delete_tenant("stale")

    def test_ingest_rejects_out_of_range_values(self, client):
        client.create_tenant({"id": "range", "machines": MACHINES})
        ts, frames = make_frames(2, seed=5)
        frames[0, 0, 0] = 250.0
        with pytest.raises(ServeError, match="outside"):
            client.ingest_frames("range", ts, frames)
        client.delete_tenant("range")

    def test_batching_cannot_change_verdicts(self, client):
        """Chunk-invariance over the wire: 1-sample vs 5-sample requests."""
        ts, frames = make_frames(10, seed=6)
        frames[4:, 2, 0] = 97.0
        client.create_tenant({"id": "one", "machines": MACHINES})
        client.create_tenant({"id": "five", "machines": MACHINES})
        for i in range(10):
            client.ingest_frames("one", ts[i:i + 1], frames[i:i + 1])
        for lo in range(0, 10, 5):
            client.ingest_frames("five", ts[lo:lo + 5], frames[lo:lo + 5])
        events_one = client.events("one")["detections"]
        events_five = client.events("five")["detections"]
        assert events_one == events_five
        client.delete_tenant("one")
        client.delete_tenant("five")

    def test_long_poll_wakes_on_ingest(self, server, client):
        client.create_tenant({"id": "poll", "machines": MACHINES})
        got: dict = {}

        def subscriber():
            with ServeClient(server.host, server.port) as sub:
                got.update(sub.alerts("poll", cursor=0, wait=20.0))

        thread = threading.Thread(target=subscriber)
        thread.start()
        ts, frames = make_frames(3, seed=7)
        frames[:, 0, 0] = 99.0   # alert on the very first batch
        client.ingest_frames("poll", ts, frames)
        thread.join(timeout=20.0)
        assert not thread.is_alive()
        assert got["alerts"], "long-poll must return the fresh alerts"
        client.delete_tenant("poll")

    def test_long_poll_wakes_on_delete(self, server, client):
        client.create_tenant({"id": "doomed", "machines": MACHINES})
        tenant = server.registry.get("doomed")
        result: dict = {}

        def subscriber():
            with ServeClient(server.host, server.port) as sub:
                result.update(sub.alerts("doomed", cursor=0, wait=20.0))

        thread = threading.Thread(target=subscriber)
        thread.start()
        # Delete only once the subscriber is genuinely parked on the
        # tenant's condition — otherwise the request would race the delete
        # and correctly 404.
        deadline = time.monotonic() + 10.0
        while not tenant.cond._waiters:  # noqa: SLF001 - test sync only
            assert time.monotonic() < deadline, "subscriber never parked"
            time.sleep(0.005)
        client.delete_tenant("doomed")
        thread.join(timeout=20.0)
        assert not thread.is_alive()
        assert result["closed"] is True, "delete must wake parked subscribers"

    def test_detect_matches_local_engine(self, client):
        from repro.analysis.engine import DetectionEngine
        from repro.config import METRICS
        from repro.metrics.store import MetricStore

        client.create_tenant({"id": "det", "machines": MACHINES})
        ts, frames = make_frames(20, seed=8)
        frames[10:, 0, 1] = 96.0
        client.ingest_frames("det", ts, frames)
        body = client.detect("det", detectors="threshold", metrics=["mem"])
        local_store = MetricStore.from_dense(
            MACHINES, ts, METRICS,
            np.ascontiguousarray(frames.transpose(1, 2, 0)))
        local = DetectionEngine(detectors={}).run(local_store, "threshold",
                                                  metric="mem")
        (detection,) = body["detections"]
        assert detection["label"] == "threshold"
        assert detection["events"] == [e.to_dict() for e in local.events()]
        assert detection["flagged_machines"] == sorted(
            local.flagged_machines())
        client.delete_tenant("det")

    def test_detect_on_empty_tenant_is_400(self, client):
        client.create_tenant({"id": "empty", "machines": MACHINES})
        with pytest.raises(ServeError, match="no samples"):
            client.detect("empty")
        client.delete_tenant("empty")

    def test_alert_views(self, client):
        client.create_tenant({"id": "views", "machines": MACHINES})
        ts, frames = make_frames(8, seed=9)
        frames[2:, 0, 0] = 99.0
        client.ingest_frames("views", ts, frames)
        log = client.alerts("views", view="log")
        managed = client.alerts("views", view="managed")
        pending = client.alerts("views", view="pending")
        assert log["alerts"]
        # The manager dedups, so the managed view never exceeds the log.
        assert len(managed["alerts"]) <= len(log["alerts"])
        assert all("occurrences" in r for r in managed["alerts"])
        assert pending["alerts"]
        with pytest.raises(ServeError, match="view"):
            client.alerts("views", view="bogus")
        client.delete_tenant("views")

    def test_concurrent_tenants_do_not_interleave_state(self, server):
        """Interleaved ingest across threads: per-tenant totals stay exact."""
        ids = [f"iso-{i}" for i in range(4)]
        with ServeClient(server.host, server.port) as admin:
            for tenant_id in ids:
                admin.create_tenant({"id": tenant_id, "machines": MACHINES})
        errors: list = []

        def feed(tenant_id: str, seed: int) -> None:
            try:
                with ServeClient(server.host, server.port) as c:
                    ts, frames = make_frames(30, seed=seed)
                    for lo in range(0, 30, 3):
                        c.ingest_frames(tenant_id, ts[lo:lo + 3],
                                        frames[lo:lo + 3])
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=feed, args=(tid, i))
                   for i, tid in enumerate(ids)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        with ServeClient(server.host, server.port) as admin:
            for tenant_id in ids:
                assert admin.summary(tenant_id)["num_samples"] == 30
                admin.delete_tenant(tenant_id)


class TestServerLifecycle:
    def test_port_zero_binds_ephemeral(self):
        with DetectionServer(port=0) as srv:
            assert srv.port != 0

    def test_close_is_idempotent_and_safe_without_start(self):
        server = DetectionServer(port=0)
        server.close()
        server.close()

    def test_requests_after_close_fail(self):
        server = DetectionServer(port=0).start()
        host, port = server.host, server.port
        server.close()
        client = ServeClient(host, port, timeout=2.0)
        with pytest.raises((ServeError, OSError)):
            client.health()
        client.close()

    def test_draining_server_rejects_new_tenants(self):
        server = DetectionServer(port=0).start()
        server.registry.close_all()
        with ServeClient(server.host, server.port) as client:
            with pytest.raises(ServeError, match="draining"):
                client.create_tenant({"machines": MACHINES})
        server.close()
