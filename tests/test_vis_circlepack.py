"""Tests for the circle-packing layout."""

import math

import pytest

from repro.errors import LayoutError
from repro.vis.layout.circlepack import (
    PackNode,
    _Circle,
    pack,
    pack_siblings,
    smallest_enclosing_circle,
)


def assert_no_overlap(radii, centers, tolerance=1e-6):
    for i in range(len(radii)):
        for j in range(i + 1, len(radii)):
            distance = math.hypot(centers[i][0] - centers[j][0],
                                  centers[i][1] - centers[j][1])
            assert distance + tolerance >= radii[i] + radii[j], (
                f"circles {i} and {j} overlap: d={distance}, "
                f"r_i+r_j={radii[i] + radii[j]}")


class TestPackSiblings:
    def test_empty_and_single(self):
        assert pack_siblings([]) == []
        assert pack_siblings([5.0]) == [(0.0, 0.0)]

    def test_two_circles_touch(self):
        centers = pack_siblings([3.0, 2.0])
        distance = math.hypot(centers[0][0] - centers[1][0],
                              centers[0][1] - centers[1][1])
        assert distance == pytest.approx(5.0)

    def test_no_overlap_uniform(self):
        radii = [4.0] * 20
        assert_no_overlap(radii, pack_siblings(radii))

    def test_no_overlap_mixed_sizes(self):
        radii = [1.0, 8.0, 2.5, 6.0, 3.0, 1.5, 7.0, 2.0, 4.5, 5.0]
        assert_no_overlap(radii, pack_siblings(radii))

    def test_returns_positions_in_input_order(self):
        radii = [1.0, 9.0, 2.0]
        centers = pack_siblings(radii)
        assert len(centers) == 3
        # the largest circle is placed first at the origin
        assert centers[1] == (0.0, 0.0)

    def test_compactness_is_reasonable(self):
        radii = [5.0] * 30
        centers = pack_siblings(radii)
        extent = max(math.hypot(x, y) + 5.0 for x, y in centers)
        ideal = math.sqrt(30) * 5.0
        assert extent <= ideal * 1.5

    def test_rejects_non_positive_radius(self):
        with pytest.raises(LayoutError):
            pack_siblings([1.0, 0.0])


class TestSmallestEnclosingCircle:
    def test_single_circle(self):
        circle = smallest_enclosing_circle([_Circle(3, 4, 2)])
        assert (circle.x, circle.y, circle.r) == (3, 4, 2)

    def test_encloses_all(self):
        circles = [_Circle(0, 0, 1), _Circle(10, 0, 2), _Circle(5, 7, 1.5)]
        enclosing = smallest_enclosing_circle(circles)
        for c in circles:
            assert math.hypot(c.x - enclosing.x, c.y - enclosing.y) + c.r <= \
                enclosing.r + 1e-6

    def test_two_circle_case_is_tight(self):
        enclosing = smallest_enclosing_circle([_Circle(0, 0, 1), _Circle(8, 0, 1)])
        assert enclosing.r == pytest.approx(5.0)
        assert enclosing.x == pytest.approx(4.0)

    def test_empty(self):
        assert smallest_enclosing_circle([]).r == 0.0

    def test_degenerate_input_terminates_and_encloses(self):
        """Near-identical circles at large coordinates must not loop forever."""
        base = _Circle(987654.321, -123456.789, 42.0)
        circles = [base]
        for i in range(12):
            circles.append(_Circle(base.x + i * 1e-10, base.y - i * 1e-10, 42.0))
        circles.append(_Circle(base.x + 5.0, base.y + 5.0, 1.0))
        enclosing = smallest_enclosing_circle(circles)
        for c in circles:
            assert (math.hypot(c.x - enclosing.x, c.y - enclosing.y) + c.r
                    <= enclosing.r + max(1.0, enclosing.r) * 1e-6)


def build_tree(spec) -> PackNode:
    """spec: {'a': 3, 'b': {'c': 2, 'd': 1}} — ints are leaf weights."""
    root = PackNode("root")
    for name, value in spec.items():
        if isinstance(value, dict):
            child = build_tree(value)
            child.id = name
            root.children.append(child)
        else:
            root.children.append(PackNode(name, value=float(value)))
    return root


class TestHierarchicalPack:
    def test_children_inside_parents(self):
        root = build_tree({"j1": {"t1": {"a": 30, "b": 40}, "t2": {"c": 20}},
                           "j2": {"t3": {"d": 50, "e": 10, "f": 25}}})
        packed = pack(root, radius=200)
        for node in packed.iter():
            for child in node.children:
                distance = math.hypot(child.x - node.x, child.y - node.y)
                assert distance + child.r <= node.r + 1e-6

    def test_siblings_do_not_overlap(self):
        root = build_tree({f"leaf{i}": 10 + i for i in range(15)})
        packed = pack(root, radius=150)
        leaves = packed.leaves()
        assert_no_overlap([leaf.r for leaf in leaves],
                          [(leaf.x, leaf.y) for leaf in leaves])

    def test_root_has_requested_radius_and_origin(self):
        root = build_tree({"a": 10, "b": 20})
        packed = pack(root, radius=123.0)
        assert packed.r == pytest.approx(123.0)
        assert packed.x == 0.0 and packed.y == 0.0

    def test_leaf_area_monotone_in_value(self):
        root = build_tree({"small": 10, "big": 90})
        packed = pack(root, radius=100)
        leaves = {leaf.id: leaf for leaf in packed.leaves()}
        assert leaves["big"].r > leaves["small"].r

    def test_depth_assignment(self):
        root = build_tree({"j": {"t": {"n": 5}}})
        packed = pack(root, radius=50)
        depths = {node.id: node.depth for node in packed.iter()}
        assert depths["root"] == 0
        assert depths["j"] == 1
        assert depths["t"] == 2
        assert depths["n"] == 3

    def test_single_leaf(self):
        packed = pack(build_tree({"only": 42}), radius=80)
        leaf = packed.leaves()[0]
        assert leaf.r <= 80 + 1e-9

    def test_invalid_arguments(self):
        root = build_tree({"a": 1})
        with pytest.raises(LayoutError):
            pack(root, radius=0)
        with pytest.raises(LayoutError):
            pack(root, radius=10, padding=-1)
        with pytest.raises(LayoutError):
            pack(build_tree({"bad": -5}), radius=10)

    def test_iteration_and_leaves(self):
        root = build_tree({"j1": {"a": 1, "b": 2}, "j2": {"c": 3}})
        assert len(list(root.iter())) == 6
        assert len(root.leaves()) == 3
