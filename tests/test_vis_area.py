"""Tests for the stacked area chart."""

import numpy as np
import pytest

from repro.cluster.hierarchy import BatchHierarchy
from repro.errors import RenderError
from repro.metrics.series import TimeSeries
from repro.metrics.store import MetricStore
from repro.vis.charts.area import StackedAreaChart, StackedAreaModel


def make_store(num_machines=4, n=20):
    timestamps = np.arange(n) * 60.0
    store = MetricStore([f"m_{i:04d}" for i in range(num_machines)], timestamps)
    for i in range(num_machines):
        store.set_series(f"m_{i:04d}", "cpu", np.full(n, 10.0 * (i + 1)))
        store.set_series(f"m_{i:04d}", "mem", np.full(n, 5.0 * (i + 1)))
        store.set_series(f"m_{i:04d}", "disk", np.full(n, 3.0))
    return store


class TestStackedAreaModel:
    def test_layers_aligned_on_construction(self):
        a = TimeSeries(np.arange(10) * 60.0, np.full(10, 5.0))
        b = TimeSeries(np.arange(10) * 60.0, np.full(10, 7.0))
        model = StackedAreaModel(layers={"a": a, "b": b})
        timestamps, cumulative = model.stacked_values()
        assert timestamps.shape[0] == 10
        assert cumulative.shape == (2, 10)
        assert cumulative[-1][0] == pytest.approx(12.0)

    def test_cumulative_is_monotone_across_layers(self):
        store = make_store()
        model = StackedAreaModel.from_job_machines(
            store, {"j1": ["m_0000", "m_0001"], "j2": ["m_0002", "m_0003"]})
        _, cumulative = model.stacked_values()
        assert np.all(np.diff(cumulative, axis=0) >= -1e-9)

    def test_empty_model_raises_on_queries(self):
        model = StackedAreaModel()
        with pytest.raises(RenderError):
            model.time_extent()
        with pytest.raises(RenderError):
            model.stacked_values()

    def test_from_job_machines_skips_unknown_machines(self):
        store = make_store()
        model = StackedAreaModel.from_job_machines(
            store, {"j1": ["m_0000"], "ghost": ["not-a-machine"]})
        assert model.group_ids == ["j1"]

    def test_from_job_machines_all_unknown_raises(self):
        store = make_store()
        with pytest.raises(RenderError):
            StackedAreaModel.from_job_machines(store, {"ghost": ["nope"]})

    def test_max_groups_merges_into_other(self):
        store = make_store()
        jobs = {f"j{i}": [f"m_{i:04d}"] for i in range(4)}
        model = StackedAreaModel.from_job_machines(store, jobs, max_groups=2)
        assert len(model.group_ids) == 3
        assert "other" in model.group_ids

    def test_from_hierarchy_of_generated_trace(self, healthy_bundle):
        hierarchy = BatchHierarchy.from_bundle(healthy_bundle)
        job_machines = {job.job_id: job.machine_ids() for job in hierarchy.jobs}
        model = StackedAreaModel.from_job_machines(healthy_bundle.usage, job_machines)
        assert model.group_ids
        t0, t1 = model.time_extent()
        assert t1 > t0


class TestStackedAreaChart:
    def test_renders_one_band_per_layer(self):
        store = make_store()
        model = StackedAreaModel.from_job_machines(
            store, {"j1": ["m_0000"], "j2": ["m_0001"]})
        doc = StackedAreaChart(model).render()
        bands = [e for e in doc.iter("path") if e.get("class") == "area-band"]
        assert len(bands) == 2
        groups = {band.get("data-group") for band in bands}
        assert groups == {"j1", "j2"}

    def test_empty_model_rejected(self):
        with pytest.raises(RenderError):
            StackedAreaChart(StackedAreaModel())

    def test_single_sample_rejected_at_render(self):
        series = TimeSeries([0.0], [5.0])
        chart = StackedAreaChart(StackedAreaModel(layers={"a": series}))
        with pytest.raises(RenderError):
            chart.render()

    def test_legend_optional(self):
        store = make_store()
        model = StackedAreaModel.from_job_machines(store, {"j1": ["m_0000"]})
        with_legend = StackedAreaChart(model, show_legend=True).render()
        without = StackedAreaChart(model, show_legend=False).render()
        legend_groups = [e for e in with_legend.iter("g") if e.get("class") == "legend"]
        assert legend_groups
        assert not [e for e in without.iter("g") if e.get("class") == "legend"]

    def test_to_svg_is_valid_markup(self):
        store = make_store()
        model = StackedAreaModel.from_job_machines(store, {"j1": ["m_0000"]})
        svg = StackedAreaChart(model).to_svg()
        assert svg.startswith("<?xml") or svg.lstrip().startswith("<svg")
        assert "area-band" in svg
