"""Tests for the baseline tools (threshold monitor, flat dashboard, tabular)."""

import numpy as np
import pytest

from repro.baselines.flat_dashboard import FlatDashboard
from repro.baselines.tabular import TabularReport
from repro.baselines.threshold_monitor import ThresholdMonitor
from repro.errors import BatchLensError
from repro.metrics.store import MetricStore
from repro.trace.records import TraceBundle
from tests.conftest import mid_timestamp


def store_with_hot_machine() -> MetricStore:
    store = MetricStore(["cold", "hot"], np.arange(0, 600, 60, dtype=float))
    store.set_series("cold", "cpu", np.full(10, 30.0))
    store.set_series("hot", "cpu", np.concatenate([np.full(5, 30.0), np.full(5, 97.0)]))
    store.set_series("hot", "mem", np.full(10, 95.0))
    return store


class TestThresholdMonitor:
    def test_alerts_on_hot_machine_only(self):
        monitor = ThresholdMonitor(cpu_threshold=90, mem_threshold=90,
                                   disk_threshold=90)
        alerts = monitor.scan(store_with_hot_machine())
        assert alerts
        assert {a.machine_id for a in alerts} == {"hot"}
        metrics = {a.metric for a in alerts}
        assert metrics == {"cpu", "mem"}

    def test_alerted_machines_window_filter(self):
        monitor = ThresholdMonitor()
        monitor.scan(store_with_hot_machine())
        assert monitor.alerted_machines((0, 200)) == {"hot"}  # mem alert spans all
        assert "hot" in monitor.alerted_machines()

    def test_precision_recall(self):
        monitor = ThresholdMonitor()
        monitor.scan(store_with_hot_machine())
        precision, recall = monitor.precision_recall({"hot"})
        assert precision == 1.0
        assert recall == 1.0
        precision, recall = monitor.precision_recall({"cold"})
        assert precision == 0.0
        assert recall == 0.0

    def test_precision_recall_without_alerts(self):
        monitor = ThresholdMonitor(cpu_threshold=99.9, mem_threshold=99.9,
                                   disk_threshold=99.9)
        store = MetricStore(["a"], np.array([0.0]))
        monitor.scan(store)
        assert monitor.precision_recall(set()) == (0.0, 1.0)

    def test_to_events(self):
        monitor = ThresholdMonitor()
        monitor.scan(store_with_hot_machine())
        events = monitor.to_events()
        assert len(events) == len(monitor.alerts)
        assert all(e.kind == "threshold-alert" for e in events)

    def test_detects_thrashing_scenario_machines(self, thrashing_bundle):
        monitor = ThresholdMonitor(mem_threshold=90.0)
        monitor.scan(thrashing_bundle.usage)
        injected = set(thrashing_bundle.meta["thrashing"]["machines"])
        _, recall = monitor.precision_recall(
            injected, window=tuple(thrashing_bundle.meta["thrashing"]["window"]))
        assert recall >= 0.5


class TestFlatDashboard:
    def test_build_contains_heatmaps(self, healthy_bundle):
        dashboard = FlatDashboard.from_bundle(healthy_bundle).build()
        html = dashboard.to_html()
        assert html.count("heat map") >= 3
        # the flat baseline has no hierarchy view: no job bubbles anywhere
        assert 'class="job-bubble"' not in html

    def test_requires_usage(self):
        with pytest.raises(BatchLensError):
            FlatDashboard.from_bundle(TraceBundle())

    def test_save(self, tmp_path, healthy_bundle):
        path = FlatDashboard.from_bundle(healthy_bundle).save(tmp_path / "flat.html")
        assert path.exists()


class TestTabularReport:
    def test_report_sections(self, healthy_bundle):
        report = TabularReport(healthy_bundle, top_n=5)
        text = report.report(mid_timestamp(healthy_bundle))
        assert "Busiest machines" in text
        assert "Longest jobs" in text
        assert "Largest jobs" in text

    def test_busiest_machines_sorted(self, healthy_bundle):
        report = TabularReport(healthy_bundle, top_n=3)
        table = report.busiest_machines_table(mid_timestamp(healthy_bundle))
        lines = table.splitlines()[2:]
        values = [float(line.split()[-1].rstrip("%")) for line in lines]
        assert values == sorted(values, reverse=True)
        assert len(values) == 3

    def test_invalid_top_n(self, healthy_bundle):
        with pytest.raises(BatchLensError):
            TabularReport(healthy_bundle, top_n=0)

    def test_largest_jobs_counts(self, healthy_bundle):
        report = TabularReport(healthy_bundle, top_n=1)
        table = report.largest_jobs_table()
        top_job = table.splitlines()[2].split()[0]
        counts = {}
        for inst in healthy_bundle.instances:
            counts[inst.job_id] = counts.get(inst.job_id, 0) + 1
        assert counts[top_job] == max(counts.values())
