"""Tests for the columnar binary trace cache and the bulk CSV ingest path.

The cache contract: ``load_trace(dir, cache=True)`` never changes the
returned bundle — a warm load is identical to the cold parse, a stale
cache (content hash mismatch) is ignored and rewritten, and a corrupt
cache behaves as if absent.  The bulk-ingest contract: the columnar
server-usage decoder is bit-identical to the row-wise parser and falls
back to it for anything it cannot represent exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.trace import cache as trace_cache
from repro.trace.loader import (
    _bulk_usage_store,
    load_server_usage,
    load_trace,
    usage_records_to_store,
)
from repro.trace.writer import write_trace


def assert_bundles_identical(left, right) -> None:
    assert left.machine_events == right.machine_events
    assert left.tasks == right.tasks
    assert left.instances == right.instances
    if left.usage is None:
        assert right.usage is None
    else:
        assert left.usage.machine_ids == right.usage.machine_ids
        assert left.usage.metrics == right.usage.metrics
        assert np.array_equal(left.usage.timestamps, right.usage.timestamps)
        assert np.array_equal(left.usage.data, right.usage.data)
    assert left.meta == right.meta


@pytest.fixture()
def trace_dir(tmp_path, thrashing_bundle):
    write_trace(thrashing_bundle, tmp_path)
    return tmp_path


class TestCacheRoundTrip:
    def test_warm_load_identical_to_cold_parse(self, trace_dir):
        cold = load_trace(trace_dir, cache=True)
        assert trace_cache.cache_path(trace_dir).exists()
        warm = load_trace(trace_dir, cache=True)
        assert_bundles_identical(warm, cold)
        # and both match an entirely uncached parse
        assert_bundles_identical(cold, load_trace(trace_dir))

    def test_compressed_tables_cache_too(self, tmp_path, thrashing_bundle):
        write_trace(thrashing_bundle, tmp_path, compress=True)
        cold = load_trace(tmp_path, cache=True)
        warm = load_trace(tmp_path, cache=True)
        assert_bundles_identical(warm, cold)

    def test_partial_trace_round_trips(self, tmp_path):
        (tmp_path / "server_usage.csv").write_text(
            "0,m_1,10,20,30\n60,m_1,11,21,31\n")
        cold = load_trace(tmp_path, cache=True)
        warm = load_trace(tmp_path, cache=True)
        assert_bundles_identical(warm, cold)
        assert warm.tasks == [] and warm.machine_events == []

    def test_moved_directory_reports_its_new_path(self, tmp_path,
                                                  thrashing_bundle):
        """Regression: a copied/moved dir must not replay the old
        meta['source'] from its travelling sidecar."""
        import shutil

        original = tmp_path / "original"
        write_trace(thrashing_bundle, original)
        load_trace(original, cache=True)
        moved = tmp_path / "moved"
        shutil.copytree(original, moved)
        warm = load_trace(moved, cache=True)
        assert warm.meta["source"] == str(moved)
        assert_bundles_identical(
            warm, load_trace(moved))

    def test_cache_off_leaves_no_sidecar(self, trace_dir):
        load_trace(trace_dir)
        assert not (trace_dir / trace_cache.CACHE_DIR_NAME).exists()


class TestCacheInvalidation:
    def test_content_change_invalidates(self, trace_dir):
        load_trace(trace_dir, cache=True)
        with open(trace_dir / "server_usage.csv", "a",
                  encoding="utf-8") as handle:
            handle.write("999999,brand_new_machine,1.00,2.00,3.00\n")
        fresh = load_trace(trace_dir, cache=True)
        assert "brand_new_machine" in fresh.usage.machine_ids
        # the rewritten cache serves the new content
        warm = load_trace(trace_dir, cache=True)
        assert "brand_new_machine" in warm.usage.machine_ids

    def test_version_mismatch_invalidates(self, trace_dir, monkeypatch):
        load_trace(trace_dir, cache=True)
        monkeypatch.setattr(trace_cache, "CACHE_VERSION", 999)
        paths = {"server_usage": trace_dir / "server_usage.csv"}
        fingerprint = trace_cache.trace_fingerprint(paths)
        assert trace_cache.load_trace_cache(trace_dir, fingerprint) is None

    def test_corrupt_cache_is_treated_as_absent(self, trace_dir):
        cold = load_trace(trace_dir, cache=True)
        trace_cache.cache_path(trace_dir).write_bytes(b"not an npz at all")
        reparsed = load_trace(trace_dir, cache=True)
        assert_bundles_identical(reparsed, cold)

    def test_inconsistent_cached_arrays_read_as_absent(self, trace_dir):
        """Regression: a valid npz with internally inconsistent arrays
        (truncated ids, short columns) must re-parse, not crash or serve
        a silently smaller bundle."""
        cold = load_trace(trace_dir, cache=True)
        path = trace_cache.cache_path(trace_dir)

        def corrupt(key, shrink):
            with np.load(path, allow_pickle=False) as data:
                arrays = {name: data[name] for name in data.files}
            arrays[key] = shrink(arrays[key])
            header = arrays.pop("__header__")
            with open(path, "wb") as handle:
                np.savez(handle, __header__=header, **arrays)

        # usage ids one short of the dense matrix's machine axis
        corrupt("usage:machine_ids", lambda a: a[:-1])
        reparsed = load_trace(trace_dir, cache=True)
        assert_bundles_identical(reparsed, cold)

        # one record-table column shorter than its siblings
        corrupt("batch_task:status", lambda a: a[:-1])
        reparsed = load_trace(trace_dir, cache=True)
        assert_bundles_identical(reparsed, cold)

    def test_fingerprint_covers_table_membership(self, trace_dir):
        paths = {"server_usage": trace_dir / "server_usage.csv"}
        both = dict(paths, batch_task=trace_dir / "batch_task.csv")
        assert trace_cache.trace_fingerprint(paths) \
            != trace_cache.trace_fingerprint(both)

    def test_lenient_cache_never_serves_a_strict_load(self, tmp_path):
        """Regression: skip_malformed is part of the cache identity."""
        (tmp_path / "server_usage.csv").write_text(
            "0,m_1,10,20,30\nbroken-line\n60,m_1,11,21,31\n")
        lenient = load_trace(tmp_path, skip_malformed=True, cache=True)
        assert lenient.usage.num_samples == 2
        with pytest.raises(TraceFormatError):
            load_trace(tmp_path, cache=True)
        # and the lenient load still works (its cache entry was replaced
        # by nothing — the strict parse raised before writing)
        again = load_trace(tmp_path, skip_malformed=True, cache=True)
        assert again.usage.num_samples == 2

    def test_strict_cache_not_served_to_lenient_load(self, trace_dir):
        strict = load_trace(trace_dir, cache=True)
        lenient = load_trace(trace_dir, skip_malformed=True, cache=True)
        assert_bundles_identical(strict, lenient)

    def test_int_beyond_int64_skips_caching_not_crashes(self, tmp_path):
        """Regression: the row parser accepts ints beyond int64 (e.g. a
        1e30 timestamp); caching must skip such bundles, not crash the
        load that already succeeded."""
        (tmp_path / "machine_events.csv").write_text(
            "1e30,m_1,add,,96,512,4096\n")
        bundle = load_trace(tmp_path, cache=True)
        assert bundle.machine_events[0].timestamp == int(1e30)
        assert not trace_cache.cache_path(tmp_path).exists()
        # and a repeat load still works (cold every time)
        again = load_trace(tmp_path, cache=True)
        assert again.machine_events == bundle.machine_events

    def test_unserialisable_meta_skips_caching(self, trace_dir):
        bundle = load_trace(trace_dir)
        bundle.meta["handle"] = object()   # not JSON-serialisable
        assert trace_cache.save_trace_cache(bundle, trace_dir, "f" * 64) is None
        assert not trace_cache.cache_path(trace_dir).exists()


class TestStatLedger:
    """The warm-path hashing fix: unchanged stats skip the full re-hash."""

    def test_warm_hit_skips_rehash_entirely(self, trace_dir, monkeypatch):
        cold = load_trace(trace_dir, cache=True)
        assert trace_cache.ledger_path(trace_dir).exists()

        def boom(paths):
            raise AssertionError("warm hit must not re-hash table files")

        monkeypatch.setattr(trace_cache, "trace_fingerprint", boom)
        warm = load_trace(trace_dir, cache=True)
        assert_bundles_identical(warm, cold)

    def test_stat_change_falls_back_to_full_hash(self, trace_dir,
                                                 monkeypatch):
        import os

        cold = load_trace(trace_dir, cache=True)
        usage_csv = trace_dir / "server_usage.csv"
        st = os.stat(usage_csv)
        os.utime(usage_csv, ns=(st.st_atime_ns, st.st_mtime_ns + 1_000_000))

        calls = []
        real = trace_cache.trace_fingerprint

        def counting(paths):
            calls.append(1)
            return real(paths)

        monkeypatch.setattr(trace_cache, "trace_fingerprint", counting)
        warm = load_trace(trace_dir, cache=True)
        # mtime changed, content did not: full hash ran, cache still valid.
        assert calls
        assert_bundles_identical(warm, cold)
        # The rewritten ledger serves the next load without hashing again.
        calls.clear()
        again = load_trace(trace_dir, cache=True)
        assert not calls
        assert_bundles_identical(again, cold)

    def test_corrupt_ledger_falls_back_to_full_hash(self, trace_dir):
        cold = load_trace(trace_dir, cache=True)
        trace_cache.ledger_path(trace_dir).write_text("{not json",
                                                      encoding="utf-8")
        warm = load_trace(trace_dir, cache=True)
        assert_bundles_identical(warm, cold)

    def test_byte_change_invalidates_through_the_ledger(self, trace_dir):
        """Appending a row changes size+mtime — the ledger must not mask
        the content change (full hash is the source of truth)."""
        load_trace(trace_dir, cache=True)
        with open(trace_dir / "server_usage.csv", "a",
                  encoding="utf-8") as handle:
            handle.write("999999,ledger_fresh_machine,1.00,2.00,3.00\n")
        fresh = load_trace(trace_dir, cache=True)
        assert "ledger_fresh_machine" in fresh.usage.machine_ids

    def test_table_membership_change_invalidates(self, tmp_path):
        (tmp_path / "server_usage.csv").write_text("0,m_1,10,20,30\n")
        before = load_trace(tmp_path, cache=True)
        assert before.machine_events == []
        (tmp_path / "machine_events.csv").write_text(
            "0,m_1,add,,96,512,4096\n")
        after = load_trace(tmp_path, cache=True)
        assert len(after.machine_events) == 1


class TestBulkIngest:
    def test_bit_identical_to_row_wise_parser(self, trace_dir):
        path = trace_dir / "server_usage.csv"
        bulk = _bulk_usage_store(path)
        rowwise = usage_records_to_store(load_server_usage(path))
        assert bulk.machine_ids == rowwise.machine_ids
        assert np.array_equal(bulk.timestamps, rowwise.timestamps)
        assert np.array_equal(bulk.data, rowwise.data)

    def test_last_duplicate_row_wins_like_from_records(self, tmp_path):
        path = tmp_path / "server_usage.csv"
        path.write_text("0,m_1,10,20,30\n0,m_1,77,88,99\n")
        bulk = _bulk_usage_store(path)
        rowwise = usage_records_to_store(load_server_usage(path))
        assert np.array_equal(bulk.data, rowwise.data)
        assert bulk.series("m_1", "cpu").values[0] == 77.0

    def test_float_timestamps_truncate_like_int_of_float(self, tmp_path):
        path = tmp_path / "server_usage.csv"
        path.write_text("100.7,m_1,10,20,30\n")
        bulk = _bulk_usage_store(path)
        rowwise = usage_records_to_store(load_server_usage(path))
        assert np.array_equal(bulk.timestamps, rowwise.timestamps)
        assert bulk.timestamps[0] == 100.0

    def test_timestamps_beyond_int64_fall_back(self, tmp_path):
        """Regression: astype(int64) would wrap where int() does not."""
        path = tmp_path / "server_usage.csv"
        path.write_text("1e19,m_1,10,20,30\n")
        from repro.trace.loader import _BulkIngestUnavailable

        with pytest.raises(_BulkIngestUnavailable):
            _bulk_usage_store(path)
        rowwise = usage_records_to_store(load_server_usage(path))
        bundle = load_trace(tmp_path)
        assert np.array_equal(bundle.usage.timestamps, rowwise.timestamps)
        assert bundle.usage.timestamps[0] == 1e19

    def test_malformed_rows_still_raise_with_line_number(self, tmp_path):
        path = tmp_path / "server_usage.csv"
        path.write_text("0,m_1,10,20,30\nbroken-line\n")
        with pytest.raises(TraceFormatError) as err:
            load_trace(tmp_path)
        assert "line 2" in str(err.value)

    def test_quoted_cells_fall_back_to_csv_module(self, tmp_path):
        path = tmp_path / "server_usage.csv"
        path.write_text('0,"m_1",10,20,30\n')
        bundle = load_trace(tmp_path)
        assert bundle.usage.machine_ids == ["m_1"]

    def test_splitlines_class_separators_fall_back(self, tmp_path):
        """Regression: \\f et al. are in-cell bytes to csv, not row breaks;
        the bulk path must reject such files like the strict parser does."""
        path = tmp_path / "server_usage.csv"
        path.write_text("1,a,2,3,4\x0c5,b,6,7,8\n")
        from repro.trace.loader import _BulkIngestUnavailable

        with pytest.raises(_BulkIngestUnavailable):
            _bulk_usage_store(path)
        with pytest.raises(TraceFormatError):
            load_trace(tmp_path)

    def test_carriage_return_newlines_match_row_path(self, tmp_path):
        path = tmp_path / "server_usage.csv"
        path.write_bytes(b"0,m_1,10,20,30\r\n60,m_1,11,21,31\r\n")
        bulk = _bulk_usage_store(path)
        rowwise = usage_records_to_store(load_server_usage(path))
        assert np.array_equal(bulk.data, rowwise.data)

    def test_blank_lines_ignored_like_row_path(self, tmp_path):
        path = tmp_path / "server_usage.csv"
        path.write_text("0,m_1,10,20,30\n\n   \n60,m_1,11,21,31\n")
        bulk = _bulk_usage_store(path)
        assert bulk.num_samples == 2

    def test_skip_malformed_uses_row_path(self, tmp_path):
        (tmp_path / "server_usage.csv").write_text(
            "0,m_1,10,20,30\nbroken-line\n60,m_1,11,21,31\n")
        bundle = load_trace(tmp_path, skip_malformed=True)
        assert bundle.usage.num_samples == 2

    def test_empty_usage_file_yields_no_store(self, tmp_path):
        (tmp_path / "server_usage.csv").write_text("")
        (tmp_path / "machine_events.csv").write_text(
            "0,m_1,add,,96,512,4096\n")
        bundle = load_trace(tmp_path)
        assert bundle.usage is None


class TestPipelineAndSpecIntegration:
    def test_trace_dir_source_cache_flag_round_trips(self, trace_dir):
        from repro.pipeline import Pipeline

        spec = {"source": {"kind": "trace-dir", "path": str(trace_dir),
                           "cache": True},
                "detectors": "threshold",
                "sinks": []}
        pipeline = Pipeline.from_spec(spec)
        assert pipeline.to_spec()["source"]["cache"] is True
        result = pipeline.run()
        assert trace_cache.cache_path(trace_dir).exists()
        uncached = Pipeline.from_spec(
            {"source": {"kind": "trace-dir", "path": str(trace_dir)},
             "detectors": "threshold", "sinks": []}).run()
        assert result.events() == uncached.events()
