"""Unit tests for the scenario engine: registry, specs, composition, plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.app.batchlens import BatchLens
from repro.cluster.anomalies import Scenario, get_scenario
from repro.errors import SimulationError
from repro.scenarios import (
    GroundTruthEntry,
    GroundTruthManifest,
    NetworkStormInjector,
    compose,
    get_injector,
    injector_names,
    list_injectors,
    parse_scenario_spec,
    resolve_scenario,
    scenario_names,
)
from repro.stream.replay import replay_scenario
from repro.trace.synthetic import generate_trace
from tests.conftest import fast_config


class TestSpecParsing:
    def test_single_part(self):
        (part,) = parse_scenario_spec("network-storm")
        assert part.name == "network-storm"
        assert part.kwargs == {}

    def test_composed_with_kwargs(self):
        parts = parse_scenario_spec(
            " diurnal(amplitude=40, cycles=2) + network-storm ")
        assert [p.name for p in parts] == ["diurnal", "network-storm"]
        assert parts[0].kwargs == {"amplitude": 40, "cycles": 2}

    def test_value_types(self):
        (part,) = parse_scenario_spec(
            "memory-thrash(relaunch=false, mem_ceiling=92.5)")
        assert part.kwargs == {"relaunch": False, "mem_ceiling": 92.5}

    @pytest.mark.parametrize("bad", ["", "a++b", "name(", "x(noequals)",
                                     "x(1bad=2)"])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(SimulationError):
            parse_scenario_spec(bad)


class TestRegistry:
    def test_injector_catalogue(self):
        names = injector_names()
        assert len([n for n in names if n != "background"]) >= 6
        for info in list_injectors():
            assert info.summary

    def test_get_injector_with_parameters(self):
        storm = get_injector("network-storm", disk_boost=60.0)
        assert isinstance(storm, NetworkStormInjector)
        assert storm.disk_boost == 60.0

    def test_unknown_injector_and_bad_kwargs(self):
        with pytest.raises(SimulationError):
            get_injector("wormhole")
        with pytest.raises(SimulationError):
            get_injector("network-storm", not_a_knob=1)

    def test_scenario_names_cover_aliases_and_injectors(self):
        names = scenario_names()
        assert {"healthy", "hotjob", "thrashing", "none"} <= set(names)
        assert set(injector_names()) <= set(names)


class TestResolution:
    def test_legacy_aliases_resolve(self):
        for name in ("healthy", "hotjob", "thrashing", "none"):
            scenario = get_scenario(name)
            assert isinstance(scenario, Scenario)
            assert scenario.name == name

    def test_unknown_name_raises_simulation_error(self):
        with pytest.raises(SimulationError):
            get_scenario("nope")

    def test_composed_spec_resolves_in_order(self):
        scenario = resolve_scenario("diurnal+network-storm")
        assert [a.name for a in scenario.anomalies] == ["diurnal",
                                                        "network-storm"]
        assert scenario.name == "diurnal+network-storm"

    def test_alias_spliced_into_composition(self):
        scenario = resolve_scenario("hotjob+network-storm")
        assert [a.name for a in scenario.anomalies] == [
            "background-load", "hot-job", "network-storm"]

    def test_alias_with_parameters_rejected(self):
        with pytest.raises(SimulationError):
            resolve_scenario("hotjob(peak_boost=40)")

    def test_resolve_accepts_injector_instances(self):
        storm = NetworkStormInjector(disk_boost=50.0)
        scenario = resolve_scenario([storm])
        assert scenario.anomalies == (storm,)
        single = resolve_scenario(storm)
        assert single.anomalies == (storm,)

    def test_compose_rejects_non_anomalies(self):
        with pytest.raises(SimulationError):
            compose(["not-an-anomaly"])


class TestEnginePlumbing:
    def test_generate_trace_accepts_composed_spec(self):
        bundle = generate_trace(fast_config(), scenario="diurnal+network-storm",
                                seed=5)
        assert bundle.meta["scenario"] == "diurnal+network-storm"
        kinds = bundle.ground_truth().kinds()
        assert kinds == ["diurnal", "network-storm"]

    def test_generate_trace_accepts_scenario_object(self):
        scenario = resolve_scenario("network-storm(disk_boost=55)")
        bundle = generate_trace(fast_config(), scenario=scenario, seed=5)
        # the storm records a per-machine entry plus a cluster-wide
        # imbalance-attribution entry over the same machines and window
        burst, imbalance = bundle.ground_truth().entries
        assert burst.params["disk_boost"] == 55
        assert burst.detectors == ("disk-burst",)
        assert imbalance.detectors == ("imbalance",)
        assert imbalance.machines == burst.machines
        assert imbalance.window == burst.window

    def test_ground_truth_key_always_present(self):
        bundle = generate_trace(fast_config("healthy"), seed=4)
        assert bundle.meta["ground_truth"] == []
        assert isinstance(bundle.ground_truth(), GroundTruthManifest)

    def test_batchlens_generate_and_scorecard(self):
        lens = BatchLens.generate(fast_config(), scenario="load-imbalance",
                                  seed=6)
        manifest = lens.ground_truth()
        assert manifest.kinds() == ["load-imbalance"]
        card = lens.detection_scorecard()
        assert "load-imbalance" in card

    def test_replay_scenario_returns_bundle_with_manifest(self):
        report, manager, bundle = replay_scenario(
            "cascading-failure", config=fast_config(), seed=3)
        assert report.samples_replayed == bundle.usage.num_samples
        assert bundle.ground_truth().kinds() == ["cascading-failure"]

    def test_injector_randomness_is_order_independent(self):
        a = generate_trace(fast_config(), scenario="network-storm+diurnal",
                           seed=9)
        b = generate_trace(fast_config(), scenario="diurnal+network-storm",
                           seed=9)
        np.testing.assert_allclose(a.usage.data, b.usage.data, atol=1e-9)
        assert (a.ground_truth().machines("network-storm")
                == b.ground_truth().machines("network-storm"))

    def test_duplicate_injectors_draw_independent_streams(self):
        bundle = generate_trace(fast_config(),
                                scenario="network-storm+network-storm", seed=3)
        first, second = [entry for entry in bundle.ground_truth().entries
                         if entry.detectors == ("disk-burst",)]
        assert set(first.machines) != set(second.machines)

    def test_multi_cycle_diurnal_records_one_window_per_peak(self):
        from repro.scenarios import score_bundle

        bundle = generate_trace(fast_config(), scenario="diurnal(cycles=2)",
                                seed=3)
        entries = bundle.ground_truth().entries
        assert len(entries) >= 2
        horizon = float(bundle.meta["horizon_s"])
        for entry in entries:
            lo, hi = entry.window
            assert hi - lo < 0.6 * horizon  # never spans the troughs
        score_bundle(bundle)  # must not raise on calibration

    def test_failure_injectors_never_emit_negative_durations(self):
        for spec in ("cascading-failure", "machine-failure(count=3)"):
            bundle = generate_trace(fast_config(), scenario=spec, seed=3)
            assert all(inst.end_timestamp >= inst.start_timestamp
                       for inst in bundle.instances), spec

    def test_seed_changes_injected_targets(self):
        targets = [generate_trace(fast_config(), scenario="network-storm",
                                  seed=s).ground_truth().machines()
                   for s in (1, 2, 3, 4)]
        # at least one seed picks a different machine subset
        assert any(t != targets[0] for t in targets[1:])


class TestGroundTruthRoundTrip:
    def test_entry_dict_roundtrip(self):
        entry = GroundTruthEntry(kind="x", machines=("m1",), jobs=("j1",),
                                 window=(1.0, 2.0), detectors=("spike",),
                                 params={"a": 1})
        assert GroundTruthEntry.from_dict(entry.to_dict()) == entry

    def test_manifest_queries(self):
        manifest = GroundTruthManifest(entries=(
            GroundTruthEntry(kind="a", machines=("m1", "m2")),
            GroundTruthEntry(kind="b", machines=("m2",), jobs=("j1",)),
        ))
        assert manifest.kinds() == ["a", "b"]
        assert manifest.machines() == {"m1", "m2"}
        assert manifest.machines("b") == {"m2"}
        assert manifest.jobs() == {"j1"}
        assert len(manifest.of_kind("a")) == 1
