"""Tests for the Alibaba v2017 table schemas."""

import pytest

from repro.errors import TraceFormatError
from repro.trace import schema


class TestColumnSpec:
    def test_parse_int(self):
        col = schema.ColumnSpec("ts", "int")
        assert col.parse("42") == 42
        assert col.parse("42.0") == 42

    def test_parse_float(self):
        col = schema.ColumnSpec("util", "float")
        assert col.parse("3.5") == 3.5

    def test_parse_str_strips(self):
        col = schema.ColumnSpec("id", "str")
        assert col.parse("  m_1 ") == "m_1"

    def test_nullable_empty(self):
        col = schema.ColumnSpec("opt", "float", nullable=True)
        assert col.parse("") is None
        assert col.format(None) == ""

    def test_non_nullable_empty_rejected(self):
        col = schema.ColumnSpec("req", "int")
        with pytest.raises(TraceFormatError):
            col.parse("")
        with pytest.raises(TraceFormatError):
            col.format(None)

    def test_parse_garbage_rejected(self):
        col = schema.ColumnSpec("ts", "int")
        with pytest.raises(TraceFormatError):
            col.parse("abc")

    def test_format_float_precision(self):
        col = schema.ColumnSpec("util", "float")
        assert col.format(3.14159) == "3.14"


class TestTableSchema:
    def test_registry_contents(self):
        assert set(schema.SCHEMAS) == {
            "machine_events", "batch_task", "batch_instance", "server_usage"}
        for table in schema.SCHEMAS.values():
            assert table.filename.endswith(".csv")
            assert len(table.columns) >= 5

    def test_parse_row_roundtrip(self):
        table = schema.SERVER_USAGE
        row = table.parse_row(["300", "m_1", "55.5", "60.1", "10.0"])
        assert row["timestamp"] == 300
        assert row["cpu_util"] == 55.5
        cells = table.format_row(row)
        assert cells[0] == "300"
        assert cells[1] == "m_1"

    def test_parse_row_wrong_arity(self):
        with pytest.raises(TraceFormatError) as err:
            schema.SERVER_USAGE.parse_row(["300", "m_1"], line_number=7)
        assert "line 7" in str(err.value)
        assert "server_usage" in str(err.value)

    def test_parse_row_bad_cell_reports_table(self):
        with pytest.raises(TraceFormatError) as err:
            schema.SERVER_USAGE.parse_row(["xx", "m_1", "1", "2", "3"])
        assert "server_usage" in str(err.value)

    def test_batch_instance_nullable_machine(self):
        table = schema.BATCH_INSTANCE
        cells = ["0", "10", "j", "t", "", "Waiting", "1", "1", "", "", "", ""]
        row = table.parse_row(cells)
        assert row["machine_id"] is None
        assert row["cpu_avg"] is None

    def test_column_names_unique(self):
        for table in schema.SCHEMAS.values():
            names = table.column_names
            assert len(names) == len(set(names))

    def test_status_and_event_constants(self):
        assert schema.STATUS_TERMINATED in schema.VALID_STATUSES
        assert schema.EVENT_ADD in schema.VALID_EVENT_TYPES
