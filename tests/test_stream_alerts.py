"""Tests for the alert manager."""

import json

import pytest

from repro.errors import SeriesError
from repro.stream.alerts import AlertManager, AlertPolicy, ManagedAlert
from repro.stream.monitor import MonitorAlert


def make_alert(timestamp=0.0, kind="threshold", subject="m_0001",
               severity="warning", detail="cpu high"):
    return MonitorAlert(timestamp=timestamp, kind=kind, subject=subject,
                        detail=detail, severity=severity)


class TestAlertPolicy:
    def test_default_valid(self):
        AlertPolicy().validate()

    @pytest.mark.parametrize("kwargs", [
        {"dedup_window_s": -1.0},
        {"min_severity": "panic"},
        {"max_active": 0},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(SeriesError):
            AlertPolicy(**kwargs).validate()


class TestIngestion:
    def test_new_alert_is_kept_and_routed(self):
        received = []
        manager = AlertManager(sinks=[received.append])
        managed = manager.ingest(make_alert())
        assert isinstance(managed, ManagedAlert)
        assert manager.pending()
        assert received and received[0].alert.subject == "m_0001"

    def test_duplicates_collapse_within_window(self):
        manager = AlertManager(policy=AlertPolicy(dedup_window_s=600.0))
        manager.ingest(make_alert(timestamp=0.0))
        managed = manager.ingest(make_alert(timestamp=300.0))
        assert managed.occurrences == 2
        assert len(manager.history) == 1
        assert len(manager.pending()) == 1

    def test_duplicates_after_window_create_new_alert(self):
        manager = AlertManager(policy=AlertPolicy(dedup_window_s=100.0))
        manager.ingest(make_alert(timestamp=0.0))
        manager.ingest(make_alert(timestamp=500.0))
        assert len(manager.history) == 2

    def test_low_severity_suppressed(self):
        manager = AlertManager(policy=AlertPolicy(min_severity="critical"))
        assert manager.ingest(make_alert(severity="warning")) is None
        assert manager.suppressed_count == 1
        assert manager.pending() == []

    def test_different_subjects_not_deduplicated(self):
        manager = AlertManager()
        manager.ingest(make_alert(subject="m_0001"))
        manager.ingest(make_alert(subject="m_0002"))
        assert len(manager.pending()) == 2

    def test_capacity_enforced(self):
        manager = AlertManager(policy=AlertPolicy(max_active=3))
        for index in range(6):
            manager.ingest(make_alert(timestamp=float(index),
                                      subject=f"m_{index:04d}"))
        assert len(manager.active) <= 3

    def test_ingest_many_returns_kept(self):
        manager = AlertManager(policy=AlertPolicy(min_severity="critical"))
        kept = manager.ingest_many([
            make_alert(severity="critical", subject="a"),
            make_alert(severity="warning", subject="b"),
        ])
        assert len(kept) == 1


class TestOperatorActions:
    def test_acknowledge_removes_from_pending(self):
        manager = AlertManager()
        manager.ingest(make_alert())
        assert manager.acknowledge("threshold", "m_0001")
        assert manager.pending() == []

    def test_acknowledge_unknown_returns_false(self):
        assert not AlertManager().acknowledge("threshold", "nope")

    def test_acknowledge_all_by_kind(self):
        manager = AlertManager()
        manager.ingest(make_alert(kind="threshold", subject="a"))
        manager.ingest(make_alert(kind="thrashing", subject="b", severity="critical"))
        assert manager.acknowledge_all(kind="threshold") == 1
        kinds = {m.alert.kind for m in manager.pending()}
        assert kinds == {"thrashing"}

    def test_clear_acknowledged(self):
        manager = AlertManager()
        manager.ingest(make_alert())
        manager.acknowledge("threshold", "m_0001")
        assert manager.clear_acknowledged() == 1
        assert manager.active == {}

    def test_reacknowledged_subject_can_fire_again(self):
        manager = AlertManager(policy=AlertPolicy(dedup_window_s=1e9))
        manager.ingest(make_alert(timestamp=0.0))
        manager.acknowledge("threshold", "m_0001")
        managed = manager.ingest(make_alert(timestamp=10.0))
        assert managed.occurrences == 1
        assert len(manager.history) == 2


class TestSequenceIds:
    """The cursor contract: dense seqs, no re-delivery, no gaps."""

    def test_seqs_are_dense_from_one(self):
        manager = AlertManager()
        for index in range(5):
            manager.ingest(make_alert(subject=f"m_{index:04d}"))
        assert [m.seq for m in manager.history] == [1, 2, 3, 4, 5]
        assert manager.last_seq == 5

    def test_dedup_bump_keeps_original_seq(self):
        manager = AlertManager(policy=AlertPolicy(dedup_window_s=600.0))
        first = manager.ingest(make_alert(timestamp=0.0))
        bumped = manager.ingest(make_alert(timestamp=60.0))
        assert bumped.occurrences == 2
        assert bumped.seq == first.seq == 1
        assert manager.last_seq == 1

    def test_alerts_since_resumes_without_redelivery_or_gaps(self):
        manager = AlertManager(policy=AlertPolicy(dedup_window_s=100.0))
        delivered: list[int] = []
        cursor = 0
        for round_no in range(4):
            # Each round: two fresh subjects plus a duplicate of one of
            # them (inside the window, so it only bumps occurrences).
            base = round_no * 1000.0
            manager.ingest(make_alert(timestamp=base, subject=f"a{round_no}"))
            manager.ingest(make_alert(timestamp=base + 1,
                                      subject=f"b{round_no}"))
            manager.ingest(make_alert(timestamp=base + 2,
                                      subject=f"a{round_no}"))
            fresh = manager.alerts_since(cursor)
            seqs = [m.seq for m in fresh]
            assert not set(seqs) & set(delivered), "re-delivered a record"
            delivered.extend(seqs)
            cursor = max(seqs)
        assert delivered == list(range(1, manager.last_seq + 1)), (
            "delivery missed a seq or broke ordering")
        assert manager.alerts_since(cursor) == []

    def test_alerts_since_rejects_negative_cursor(self):
        with pytest.raises(SeriesError):
            AlertManager().alerts_since(-1)

    def test_suppressed_alerts_consume_no_seq(self):
        manager = AlertManager(policy=AlertPolicy(min_severity="critical"))
        manager.ingest(make_alert(severity="warning"))
        managed = manager.ingest(make_alert(severity="critical", subject="x"))
        assert managed.seq == 1

    def test_managed_alert_round_trips_through_dict(self):
        manager = AlertManager(policy=AlertPolicy(dedup_window_s=600.0))
        manager.ingest(make_alert(timestamp=0.0))
        manager.ingest(make_alert(timestamp=60.0))
        record = manager.active[("threshold", "m_0001")]
        assert ManagedAlert.from_dict(record.to_dict()) == record

    def test_malformed_managed_dict_rejected(self):
        with pytest.raises(SeriesError):
            ManagedAlert.from_dict({"seq": 1})


class TestQueries:
    def test_pending_sorted_by_severity(self):
        manager = AlertManager()
        manager.ingest(make_alert(kind="threshold", subject="warn", severity="warning"))
        manager.ingest(make_alert(kind="thrashing", subject="crit", severity="critical"))
        pending = manager.pending()
        assert pending[0].alert.severity == "critical"

    def test_pending_filters(self):
        manager = AlertManager()
        manager.ingest(make_alert(kind="threshold", subject="a"))
        manager.ingest(make_alert(kind="regime-change", subject="cluster",
                                  severity="critical"))
        assert len(manager.pending(kind="threshold")) == 1
        assert len(manager.pending(severity="critical")) == 1

    def test_digest_counts_history(self):
        manager = AlertManager()
        manager.ingest(make_alert(kind="threshold", subject="a"))
        manager.ingest(make_alert(kind="threshold", subject="b"))
        manager.ingest(make_alert(kind="thrashing", subject="c", severity="critical"))
        assert manager.digest() == {"threshold": 2, "thrashing": 1}

    def test_summary_lines_mention_occurrences(self):
        manager = AlertManager(policy=AlertPolicy(dedup_window_s=600.0))
        manager.ingest(make_alert(timestamp=0.0))
        manager.ingest(make_alert(timestamp=60.0))
        lines = manager.summary_lines()
        assert len(lines) == 1
        assert "x2" in lines[0]
        assert "m_0001" in lines[0]

    def test_summary_lines_limit(self):
        manager = AlertManager()
        for index in range(5):
            manager.ingest(make_alert(subject=f"m_{index:04d}"))
        assert len(manager.summary_lines(limit=3)) == 3


class TestJsonRoundTrip:
    """Persistence contract: full manager state survives a JSON round-trip
    (it is what the serve layer snapshots), and recovery never breaks the
    dense-seq cursor guarantee."""

    def busy_manager(self) -> AlertManager:
        manager = AlertManager(policy=AlertPolicy(dedup_window_s=600.0,
                                                  min_severity="warning",
                                                  max_active=50))
        manager.ingest(make_alert(timestamp=0.0, subject="a"))
        manager.ingest(make_alert(timestamp=60.0, subject="a"))    # bump x2
        manager.ingest(make_alert(timestamp=5.0, subject="b",
                                  kind="thrashing", severity="critical"))
        manager.ingest(make_alert(timestamp=9.0, severity="info"))  # dropped
        manager.acknowledge("thrashing", "b")
        return manager

    def test_policy_round_trips(self):
        policy = AlertPolicy(dedup_window_s=120.0, min_severity="critical",
                             max_active=7)
        restored = AlertPolicy.from_dict(
            json.loads(json.dumps(policy.to_dict())))
        assert restored == policy

    @pytest.mark.parametrize("raw", [
        {},
        {"dedup_window_s": "soon", "min_severity": "warning",
         "max_active": 10},
        {"dedup_window_s": 1.0, "min_severity": "panic", "max_active": 10},
    ])
    def test_malformed_policy_rejected(self, raw):
        with pytest.raises(SeriesError):
            AlertPolicy.from_dict(raw)

    def test_manager_round_trips_bit_identical(self):
        manager = self.busy_manager()
        encoded = json.dumps(manager.to_dict())          # truly JSON-safe
        restored = AlertManager.from_dict(json.loads(encoded))
        assert restored.to_dict() == manager.to_dict()
        assert restored.policy == manager.policy
        assert restored.history == manager.history
        assert restored.suppressed_count == manager.suppressed_count
        assert restored.last_seq == manager.last_seq
        assert restored.digest() == manager.digest()
        assert restored.pending() == manager.pending()

    def test_round_trip_preserves_dense_monotonic_seqs(self):
        manager = self.busy_manager()
        restored = AlertManager.from_dict(manager.to_dict())
        assert [m.seq for m in restored.history] == list(
            range(1, restored.last_seq + 1))
        # New ingests continue the sequence with no gap and no reuse.
        fresh = restored.ingest(make_alert(timestamp=2000.0, subject="c"))
        assert fresh.seq == manager.last_seq + 1

    def test_cursor_subscriber_survives_the_round_trip(self):
        """A subscriber that read part of the stream before recovery sees
        exactly the rest afterwards — no duplicates, no gaps."""
        manager = self.busy_manager()
        seen = [m.seq for m in manager.alerts_since(0)]
        cursor = max(seen)
        restored = AlertManager.from_dict(manager.to_dict())
        restored.ingest(make_alert(timestamp=2000.0, subject="c"))
        restored.ingest(make_alert(timestamp=2001.0, subject="d",
                                   kind="thrashing", severity="critical"))
        tail = [m.seq for m in restored.alerts_since(cursor)]
        assert seen + tail == list(range(1, restored.last_seq + 1))

    def test_dedup_state_survives_recovery(self):
        """An occurrence bump lands on the restored record, not a new seq."""
        manager = self.busy_manager()
        restored = AlertManager.from_dict(manager.to_dict())
        bumped = restored.ingest(make_alert(timestamp=120.0, subject="a"))
        assert bumped.occurrences == 3
        assert bumped.seq == 1
        assert restored.last_seq == manager.last_seq

    def test_sinks_are_not_serialised(self):
        manager = AlertManager(sinks=[lambda managed: None])
        manager.ingest(make_alert())
        encoded = manager.to_dict()
        assert "sinks" not in encoded
        assert AlertManager.from_dict(encoded).sinks == []

    @pytest.mark.parametrize("mangle", [
        lambda raw: raw.pop("last_seq"),
        lambda raw: raw.pop("history"),
        lambda raw: raw["history"].append({"seq": "x"}),
        lambda raw: raw.update(policy={"min_severity": "panic"}),
    ])
    def test_malformed_manager_dict_rejected(self, mangle):
        raw = self.busy_manager().to_dict()
        mangle(raw)
        with pytest.raises(SeriesError):
            AlertManager.from_dict(raw)
