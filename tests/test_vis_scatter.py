"""Tests for the machine scatter chart."""

import numpy as np
import pytest

from repro.errors import RenderError
from repro.metrics.store import MetricStore
from repro.vis.charts.scatter import MachineScatterChart, ScatterModel, ScatterPoint


def make_store(values):
    """values: list of (cpu, mem, disk) per machine, constant over time."""
    timestamps = np.arange(5) * 60.0
    machine_ids = [f"m_{i:04d}" for i in range(len(values))]
    store = MetricStore(machine_ids, timestamps)
    for machine_id, (cpu, mem, disk) in zip(machine_ids, values):
        store.set_series(machine_id, "cpu", np.full(5, cpu))
        store.set_series(machine_id, "mem", np.full(5, mem))
        store.set_series(machine_id, "disk", np.full(5, disk))
    return store


class TestScatterModel:
    def test_one_point_per_machine(self):
        store = make_store([(20, 30, 5), (80, 90, 50)])
        model = ScatterModel.from_store(store, 120.0)
        assert len(model.points) == 2
        assert {p.machine_id for p in model.points} == set(store.machine_ids)

    def test_point_values_match_snapshot(self):
        store = make_store([(25, 45, 10)])
        point = ScatterModel.from_store(store, 0.0).points[0]
        assert point.cpu == pytest.approx(25.0)
        assert point.mem == pytest.approx(45.0)
        assert point.disk == pytest.approx(10.0)

    def test_highlight_mapping_applied(self):
        store = make_store([(10, 95, 5), (50, 50, 5)])
        model = ScatterModel.from_store(store, 0.0,
                                        highlight={"m_0000": "thrashing"})
        flags = {p.machine_id: p.highlight for p in model.points}
        assert flags["m_0000"] == "thrashing"
        assert flags["m_0001"] is None

    def test_corner_counts(self):
        model = ScatterModel(timestamp=0.0, points=[
            ScatterPoint("a", cpu=10.0, mem=95.0, disk=0.0),   # thrashing
            ScatterPoint("b", cpu=90.0, mem=92.0, disk=0.0),   # saturated
            ScatterPoint("c", cpu=20.0, mem=20.0, disk=0.0),   # idle
            ScatterPoint("d", cpu=60.0, mem=55.0, disk=0.0),   # normal
        ])
        counts = model.corner_counts()
        assert counts == {"thrashing": 1, "saturated": 1, "idle": 1, "normal": 1}

    def test_thrashing_scenario_populates_thrashing_corner(self, thrashing_bundle):
        window = thrashing_bundle.meta["thrashing"]["window"]
        timestamp = (window[0] + window[1]) / 2.0
        model = ScatterModel.from_store(thrashing_bundle.usage, timestamp)
        counts = model.corner_counts()
        assert counts["thrashing"] + counts["saturated"] >= 1


class TestMachineScatterChart:
    def test_renders_one_dot_per_machine(self):
        store = make_store([(20, 30, 5), (80, 90, 60), (50, 50, 20)])
        model = ScatterModel.from_store(store, 0.0)
        doc = MachineScatterChart(model).render()
        dots = [e for e in doc.iter("circle") if e.get("class") == "scatter-point"]
        assert len(dots) == 3

    def test_dot_radius_scales_with_disk(self):
        store = make_store([(50, 50, 0), (50, 50, 100)])
        model = ScatterModel.from_store(store, 0.0)
        chart = MachineScatterChart(model, min_radius=2.0, max_radius=8.0)
        doc = chart.render()
        radii = {e.get("data-machine"): float(e.get("r"))
                 for e in doc.iter("circle") if e.get("class") == "scatter-point"}
        assert radii["m_0001"] > radii["m_0000"]
        assert radii["m_0000"] == pytest.approx(2.0)
        assert radii["m_0001"] == pytest.approx(8.0)

    def test_highlighted_dot_gets_stroke_and_attribute(self):
        store = make_store([(10, 95, 5)])
        model = ScatterModel.from_store(store, 0.0,
                                        highlight={"m_0000": "thrashing"})
        doc = MachineScatterChart(model).render()
        dot = next(e for e in doc.iter("circle")
                   if e.get("class") == "scatter-point")
        assert dot.get("data-highlight") == "thrashing"
        assert dot.get("stroke") is not None

    def test_empty_model_rejected(self):
        with pytest.raises(RenderError):
            MachineScatterChart(ScatterModel(timestamp=0.0, points=[]))

    def test_invalid_radius_bounds_rejected(self):
        store = make_store([(20, 30, 5)])
        model = ScatterModel.from_store(store, 0.0)
        with pytest.raises(RenderError):
            MachineScatterChart(model, min_radius=5.0, max_radius=2.0)

    def test_tooltip_title_present(self):
        store = make_store([(20, 30, 5)])
        doc = MachineScatterChart(ScatterModel.from_store(store, 0.0)).render()
        titles = list(doc.iter("title"))
        assert any("m_0000" in (t.text or "") for t in titles)
