"""Unit and property tests for the shard planner and executor.

The golden equivalence suite (``tests/test_shard_golden.py``) pins the
end-to-end contract (sharded ``Pipeline.run()`` bit-identical to serial);
these tests cover the pieces: plan shapes, zero-copy shard views
(``np.shares_memory`` with the parent store), deterministic merging, and
executor validation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.engine import DetectionEngine, merge_engine_results
from repro.analysis.shard import (
    BACKENDS,
    ShardExecutor,
    plan_shards,
    shard_store,
)
from repro.errors import SeriesError
from repro.metrics.store import MetricStore


def small_store(num_machines: int = 9, num_samples: int = 24,
                seed: int = 7) -> MetricStore:
    rng = np.random.default_rng(seed)
    ids = [f"m{i:03d}" for i in range(num_machines)]
    store = MetricStore(ids, np.arange(num_samples) * 300.0)
    store.data[:] = rng.uniform(0.0, 100.0, store.data.shape)
    if num_machines > 2:
        store.data[1, :, num_samples // 2:] = 0.0   # a flatlined machine
    return store


class TestPlanShards:
    def test_partitions_rows_in_order(self):
        plan = plan_shards(10, 3)
        assert [(s.start, s.stop) for s in plan] == [(0, 4), (4, 7), (7, 10)]

    def test_more_shards_than_machines_degrades_to_one_each(self):
        plan = plan_shards(3, 8)
        assert [(s.start, s.stop) for s in plan] == [(0, 1), (1, 2), (2, 3)]

    def test_zero_machines_plan_to_nothing(self):
        assert plan_shards(0, 4) == []

    def test_invalid_shard_count(self):
        with pytest.raises(SeriesError):
            plan_shards(10, 0)

    @given(num_machines=st.integers(min_value=0, max_value=200),
           shards=st.integers(min_value=1, max_value=16))
    @settings(max_examples=60, deadline=None)
    def test_always_a_contiguous_ascending_partition(self, num_machines,
                                                     shards):
        plan = plan_shards(num_machines, shards)
        assert len(plan) == (min(shards, num_machines) if num_machines else 0)
        cursor = 0
        for piece in plan:
            assert piece.start == cursor
            assert piece.stop > piece.start
            cursor = piece.stop
        assert cursor == num_machines
        sizes = [piece.stop - piece.start for piece in plan]
        if sizes:
            assert max(sizes) - min(sizes) <= 1


class TestShardViews:
    def test_views_partition_the_machine_ids(self):
        store = small_store(11)
        views = shard_store(store, 4)
        ids = [mid for view in views for mid in view.machine_ids]
        assert ids == store.machine_ids

    @given(num_machines=st.integers(min_value=1, max_value=40),
           shards=st.integers(min_value=1, max_value=10))
    @settings(max_examples=40, deadline=None)
    def test_shard_views_share_memory_with_parent(self, num_machines, shards):
        store = small_store(num_machines, num_samples=6)
        for view in shard_store(store, shards):
            assert np.shares_memory(view.data, store.data)
            assert view.timestamps is store.timestamps

    def test_machine_slice_bounds_checked(self):
        store = small_store(5)
        with pytest.raises(SeriesError):
            store.machine_slice(2, 9)
        with pytest.raises(SeriesError):
            store.machine_slice(-1, 3)
        with pytest.raises(SeriesError):
            store.machine_slice(4, 2)

    def test_machine_slice_is_read_only(self):
        store = small_store(5)
        view = store.machine_slice(1, 4)
        with pytest.raises(ValueError):
            view.data[0, 0, 0] = 1.0


class TestMergeEngineResults:
    def test_merge_of_shard_sweeps_equals_whole_sweep(self):
        store = small_store(13)
        engine = DetectionEngine()
        whole = engine.run(store, "threshold")
        parts = [engine.run(view, "threshold")
                 for view in shard_store(store, 5)]
        merged = merge_engine_results(parts)
        assert merged.machine_ids == whole.machine_ids
        assert np.array_equal(merged.mask, whole.mask)
        assert np.array_equal(merged.scores, whole.scores)
        assert merged.events() == whole.events()
        assert merged.flagged_machines() == whole.flagged_machines()
        assert merged.event_counts() == whole.event_counts()

    def test_single_result_passes_through(self):
        store = small_store(4)
        result = DetectionEngine().run(store, "threshold")
        assert merge_engine_results([result]) is result

    def test_empty_merge_rejected(self):
        with pytest.raises(SeriesError):
            merge_engine_results([])

    def test_mixed_sweeps_rejected(self):
        store = small_store(6)
        engine = DetectionEngine()
        threshold = engine.run(store, "threshold")
        flatline = engine.run(store, "flatline")
        with pytest.raises(SeriesError):
            merge_engine_results([threshold, flatline])

    def test_mismatched_grids_rejected(self):
        engine = DetectionEngine()
        first = engine.run(small_store(4, num_samples=10), "threshold")
        second = engine.run(small_store(4, num_samples=12), "threshold")
        with pytest.raises(SeriesError):
            merge_engine_results([first, second])


class TestShardExecutor:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_run_matches_direct_engine(self, backend):
        store = small_store(10)
        direct = DetectionEngine().run(store, "flatline")
        result = ShardExecutor(backend, workers=2).run(store, "flatline",
                                                       shards=3)
        assert result.events() == direct.events()
        assert np.array_equal(result.mask, direct.mask)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_run_many_keeps_work_order(self, backend):
        store = small_store(10)
        executor = ShardExecutor(backend, workers=2)
        results = executor.run_many(
            store, (("threshold", "cpu"), ("flatline", "cpu"),
                    ("threshold", "mem")), shards=3)
        assert [r.detector for r in results] == ["threshold", "flatline",
                                                 "threshold"]
        assert [r.metric for r in results] == ["cpu", "cpu", "mem"]
        engine = DetectionEngine()
        assert results[2].events() \
            == engine.run(store, "threshold", metric="mem").events()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_work_returns_empty_on_every_backend(self, backend):
        store = small_store(6)
        assert ShardExecutor(backend, workers=2).run_many(store, ()) == []

    def test_single_shard_multi_work_still_parallel_and_identical(self):
        """A one-shard plan must fan the detector units across the pool
        (and stay bit-identical), not serialise them."""
        store = small_store(8)
        engine = DetectionEngine()
        results = ShardExecutor("threads", workers=2).run_many(
            store, (("threshold", "cpu"), ("flatline", "cpu")), shards=1)
        assert results[0].events() == engine.run(store, "threshold").events()
        assert results[1].events() == engine.run(store, "flatline").events()

    def test_machine_less_store_yields_empty_result(self):
        store = MetricStore([], np.arange(4, dtype=float))
        result = ShardExecutor("threads").run(store, "threshold", shards=4)
        assert result.num_events == 0
        assert result.machine_ids == ()

    def test_unknown_backend_rejected(self):
        with pytest.raises(SeriesError):
            ShardExecutor("cluster")

    def test_invalid_workers_rejected(self):
        with pytest.raises(SeriesError):
            ShardExecutor("threads", workers=0)
