"""Tests for the logical workload generator."""

import numpy as np
import pytest

from repro.config import WorkloadConfig
from repro.errors import ConfigError
from repro.trace.workload import JobSpec, TaskSpec, WorkloadGenerator, workload_summary


def make_generator(config=None, *, horizon_s=6 * 3600, resolution_s=300, seed=3):
    config = config if config is not None else WorkloadConfig(num_jobs=200)
    return WorkloadGenerator(config, horizon_s=horizon_s,
                             batch_resolution_s=resolution_s,
                             rng=np.random.default_rng(seed))


class TestTaskSpec:
    def test_rejects_zero_instances(self):
        with pytest.raises(ConfigError):
            TaskSpec("t", 0, 10, 10, 10, 0, 600)

    def test_rejects_zero_duration(self):
        with pytest.raises(ConfigError):
            TaskSpec("t", 1, 10, 10, 10, 0, 0)

    def test_rejects_out_of_range_request(self):
        with pytest.raises(ConfigError):
            TaskSpec("t", 1, 150, 10, 10, 0, 600)


class TestJobSpec:
    def test_counts_and_end_time(self):
        job = JobSpec("j", 600, tasks=[
            TaskSpec("t1", 3, 10, 10, 10, 0, 1200),
            TaskSpec("t2", 2, 10, 10, 10, 0, 2400),
        ])
        assert job.num_instances == 5
        assert job.end_time_s == 600 + 2400

    def test_empty_job_end_time(self):
        assert JobSpec("j", 100).end_time_s == 100

    def test_scale_demand_clips_at_100(self):
        job = JobSpec("j", 0, tasks=[TaskSpec("t", 1, 60, 80, 10, 0, 600)])
        job.scale_demand(cpu=3.0, mem=3.0)
        assert job.tasks[0].cpu_request == 100.0
        assert job.tasks[0].mem_request == 100.0
        assert job.tasks[0].disk_request == 10.0


class TestGenerator:
    def test_job_count(self):
        jobs = make_generator().generate()
        assert len(jobs) == 200

    def test_sorted_by_submit_time(self):
        jobs = make_generator().generate()
        submits = [job.submit_time_s for job in jobs]
        assert submits == sorted(submits)

    def test_submit_times_on_batch_grid(self):
        jobs = make_generator().generate()
        assert all(job.submit_time_s % 300 == 0 for job in jobs)

    def test_durations_on_batch_grid_and_within_horizon(self):
        jobs = make_generator().generate()
        for job in jobs:
            for task in job.tasks:
                assert task.duration_s % 300 == 0
                assert task.duration_s >= 300
            assert job.end_time_s <= 6 * 3600 + 300  # quantisation slack

    def test_single_task_fraction_matches_paper(self):
        jobs = make_generator(seed=1).generate()
        summary = workload_summary(jobs)
        assert summary["single_task_job_fraction"] == pytest.approx(0.75, abs=0.08)

    def test_multi_instance_fraction_matches_paper(self):
        jobs = make_generator(seed=1).generate()
        summary = workload_summary(jobs)
        assert summary["multi_instance_task_fraction"] == pytest.approx(0.94, abs=0.06)

    def test_requests_within_range(self):
        jobs = make_generator().generate()
        for job in jobs:
            for task in job.tasks:
                assert 1.0 <= task.cpu_request <= 95.0
                assert 1.0 <= task.mem_request <= 95.0
                assert 1.0 <= task.disk_request <= 95.0

    def test_instance_counts_respect_bounds(self):
        config = WorkloadConfig(num_jobs=100, min_instances=2, max_instances=8)
        jobs = make_generator(config).generate()
        for job in jobs:
            for task in job.tasks:
                assert 1 <= task.num_instances <= 8

    def test_deterministic_given_seed(self):
        a = make_generator(seed=9).generate()
        b = make_generator(seed=9).generate()
        assert [job.job_id for job in a] == [job.job_id for job in b]
        assert [job.submit_time_s for job in a] == [job.submit_time_s for job in b]

    def test_distinct_seeds_differ(self):
        a = make_generator(seed=1).generate()
        b = make_generator(seed=2).generate()
        assert [job.submit_time_s for job in a] != [job.submit_time_s for job in b]

    def test_invalid_constructor_arguments(self):
        with pytest.raises(ConfigError):
            make_generator(horizon_s=0)
        with pytest.raises(ConfigError):
            make_generator(resolution_s=0)
        with pytest.raises(ConfigError):
            make_generator(WorkloadConfig(num_jobs=-1))


class TestWorkloadSummary:
    def test_empty(self):
        summary = workload_summary([])
        assert summary["jobs"] == 0
        assert summary["single_task_job_fraction"] == 0.0

    def test_counts(self):
        jobs = [JobSpec("j1", 0, tasks=[TaskSpec("t", 4, 10, 10, 10, 0, 600)]),
                JobSpec("j2", 0, tasks=[TaskSpec("t", 1, 10, 10, 10, 0, 600),
                                        TaskSpec("u", 2, 10, 10, 10, 0, 600)])]
        summary = workload_summary(jobs)
        assert summary["jobs"] == 2
        assert summary["tasks"] == 3
        assert summary["instances"] == 7
        assert summary["single_task_job_fraction"] == 0.5
