"""Tests for the view-model builders."""

import pytest

from repro.app.views import (
    active_job_summary,
    build_bubble_model,
    build_heatmap_model,
    build_line_model,
    build_timeline_model,
)
from repro.errors import UnknownEntityError
from tests.conftest import mid_timestamp


class TestBubbleModel:
    def test_only_active_jobs_included(self, healthy_bundle, healthy_hierarchy):
        timestamp = mid_timestamp(healthy_bundle)
        model = build_bubble_model(healthy_hierarchy, healthy_bundle.usage, timestamp)
        active = set(healthy_bundle.active_jobs(timestamp))
        assert {job.job_id for job in model.jobs} <= active
        assert model.timestamp == timestamp
        assert model.jobs, "expected at least one active job at mid-trace"

    def test_node_utilisation_matches_store(self, healthy_bundle, healthy_hierarchy):
        timestamp = mid_timestamp(healthy_bundle)
        model = build_bubble_model(healthy_hierarchy, healthy_bundle.usage, timestamp)
        glyph = model.jobs[0].tasks[0].nodes[0]
        snap = healthy_bundle.usage.machine_snapshot(glyph.machine_id, timestamp)
        assert glyph.cpu == pytest.approx(snap["cpu"])
        assert glyph.mem == pytest.approx(snap["mem"])

    def test_max_jobs_limits_and_prunes_links(self, hotjob_bundle, hotjob_hierarchy):
        timestamp = mid_timestamp(hotjob_bundle)
        model = build_bubble_model(hotjob_hierarchy, hotjob_bundle.usage,
                                   timestamp, max_jobs=1)
        assert len(model.jobs) <= 1
        visible = {job.job_id for job in model.jobs}
        for pairs in model.shared_machines.values():
            jobs = {job_id for job_id, _ in pairs}
            assert len(jobs & visible) >= 2 or len(jobs) >= 2

    def test_weight_counts_instances_per_machine(self, healthy_bundle,
                                                 healthy_hierarchy):
        timestamp = mid_timestamp(healthy_bundle)
        model = build_bubble_model(healthy_hierarchy, healthy_bundle.usage, timestamp)
        weights = [node.weight for job in model.jobs
                   for task in job.tasks for node in task.nodes]
        assert all(w >= 1.0 for w in weights)


class TestLineModel:
    def test_lines_cover_job_machines(self, healthy_bundle, healthy_hierarchy):
        job = healthy_hierarchy.jobs[0]
        model = build_line_model(healthy_hierarchy, healthy_bundle.usage, job.job_id)
        machine_ids = {line.machine_id for line in model.lines}
        assert machine_ids <= set(job.machine_ids())
        assert model.metric == "cpu"
        assert len(model.lines) >= 1

    def test_annotations_start_and_end(self, healthy_bundle, healthy_hierarchy):
        job = healthy_hierarchy.jobs[0]
        model = build_line_model(healthy_hierarchy, healthy_bundle.usage, job.job_id)
        kinds = {a.kind for a in model.annotations}
        assert kinds == {"start", "end"}
        end_tasks = {a.task_id for a in model.annotations if a.kind == "end"}
        assert end_tasks == {task.task_id for task in job.tasks}

    def test_brush_passthrough(self, healthy_bundle, healthy_hierarchy):
        job = healthy_hierarchy.jobs[0]
        model = build_line_model(healthy_hierarchy, healthy_bundle.usage,
                                 job.job_id, brush=(0.0, 1000.0))
        assert model.brush == (0.0, 1000.0)

    def test_unknown_job_rejected(self, healthy_bundle, healthy_hierarchy):
        with pytest.raises(UnknownEntityError):
            build_line_model(healthy_hierarchy, healthy_bundle.usage, "ghost")

    def test_alternative_metric(self, healthy_bundle, healthy_hierarchy):
        job = healthy_hierarchy.jobs[0]
        model = build_line_model(healthy_hierarchy, healthy_bundle.usage,
                                 job.job_id, metric="mem")
        assert model.metric == "mem"


class TestTimelineModel:
    def test_layers_and_selection(self, healthy_bundle):
        model = build_timeline_model(healthy_bundle.usage,
                                     selected_timestamp=1000.0,
                                     brush=(500.0, 1500.0))
        assert set(model.layers) == {"cpu", "mem", "disk"}
        assert model.selected_timestamp == 1000.0
        assert model.brush == (500.0, 1500.0)
        assert len(model.layers["cpu"]) == healthy_bundle.usage.num_samples


class TestHeatmapModel:
    def test_dimensions(self, healthy_bundle):
        model = build_heatmap_model(healthy_bundle.usage, metric="mem")
        assert model.metric == "mem"
        assert model.values.shape == (healthy_bundle.usage.num_machines,
                                      healthy_bundle.usage.num_samples)


class TestActiveJobSummary:
    def test_rows_sorted_by_machine_count(self, hotjob_bundle, hotjob_hierarchy):
        timestamp = mid_timestamp(hotjob_bundle)
        rows = active_job_summary(hotjob_bundle, hotjob_hierarchy,
                                  hotjob_bundle.usage, timestamp)
        counts = [row["num_machines"] for row in rows]
        assert counts == sorted(counts, reverse=True)
        for row in rows:
            assert 0.0 <= row["mean_cpu"] <= 100.0
            assert row["start"] <= row["end"]
