"""Tests for co-allocation interference analysis."""

import numpy as np
import pytest

from repro.analysis.interference import (
    InterferenceScore,
    interference_report,
    interference_score,
    machine_pressure,
    noisy_neighbours,
)
from repro.cluster.hierarchy import BatchHierarchy
from repro.metrics.store import MetricStore
from repro.trace.records import BatchInstanceRecord, BatchTaskRecord, TraceBundle

from tests.conftest import mid_timestamp


def build_bundle_with_store(shared_util=90.0, exclusive_util=30.0):
    """Two jobs overlapping on machine m_shared; each also has a private machine."""
    rows = [
        # job, task, machine, start, end
        ("job_a", "t1", "m_shared", 0, 1200),
        ("job_a", "t1", "m_a", 0, 1200),
        ("job_b", "t1", "m_shared", 0, 1200),
        ("job_b", "t1", "m_b", 0, 1200),
    ]
    instances = [
        BatchInstanceRecord(start_timestamp=start, end_timestamp=end, job_id=job,
                            task_id=task, machine_id=machine, status="Terminated",
                            seq_no=i, total_seq_no=len(rows), cpu_avg=40.0)
        for i, (job, task, machine, start, end) in enumerate(rows)]
    tasks = [
        BatchTaskRecord(create_timestamp=0, modify_timestamp=1200, job_id="job_a",
                        task_id="t1", instance_num=2, status="Terminated"),
        BatchTaskRecord(create_timestamp=0, modify_timestamp=1200, job_id="job_b",
                        task_id="t1", instance_num=2, status="Terminated"),
    ]
    timestamps = np.arange(0, 1260, 60, dtype=float)
    store = MetricStore(["m_shared", "m_a", "m_b"], timestamps)
    n = len(timestamps)
    store.set_series("m_shared", "cpu", np.full(n, shared_util))
    store.set_series("m_a", "cpu", np.full(n, exclusive_util))
    store.set_series("m_b", "cpu", np.full(n, exclusive_util))
    bundle = TraceBundle(tasks=tasks, instances=instances, usage=store)
    return bundle, store


class TestInterferenceScore:
    def test_shared_machine_scored(self):
        bundle, store = build_bundle_with_store()
        hierarchy = BatchHierarchy.from_bundle(bundle)
        score = interference_score(hierarchy, store, "job_a", "job_b")
        assert score is not None
        assert score.shared_machines == ("m_shared",)
        assert score.overlap_s == pytest.approx(1200.0)
        assert score.shared_utilisation == pytest.approx(90.0, abs=1.0)
        assert score.exclusive_utilisation == pytest.approx(30.0, abs=1.0)
        assert score.delta == pytest.approx(60.0, abs=2.0)
        assert score.interfering

    def test_no_interference_when_shared_machine_is_cool(self):
        bundle, store = build_bundle_with_store(shared_util=32.0, exclusive_util=30.0)
        hierarchy = BatchHierarchy.from_bundle(bundle)
        score = interference_score(hierarchy, store, "job_a", "job_b")
        assert score is not None
        assert not score.interfering

    def test_none_when_jobs_do_not_share(self):
        bundle, store = build_bundle_with_store()
        # rebuild with disjoint machines
        instances = [
            BatchInstanceRecord(start_timestamp=0, end_timestamp=1200, job_id="job_a",
                                task_id="t1", machine_id="m_a", status="Terminated",
                                seq_no=0, total_seq_no=2),
            BatchInstanceRecord(start_timestamp=0, end_timestamp=1200, job_id="job_b",
                                task_id="t1", machine_id="m_b", status="Terminated",
                                seq_no=0, total_seq_no=2),
        ]
        tasks = bundle.tasks
        disjoint = TraceBundle(tasks=tasks, instances=instances, usage=store)
        hierarchy = BatchHierarchy.from_bundle(disjoint)
        assert interference_score(hierarchy, store, "job_a", "job_b") is None

    def test_none_when_jobs_do_not_overlap_in_time(self):
        instances = [
            BatchInstanceRecord(start_timestamp=0, end_timestamp=600, job_id="job_a",
                                task_id="t1", machine_id="m_shared", status="Terminated",
                                seq_no=0, total_seq_no=2),
            BatchInstanceRecord(start_timestamp=1200, end_timestamp=1800, job_id="job_b",
                                task_id="t1", machine_id="m_shared", status="Terminated",
                                seq_no=0, total_seq_no=2),
        ]
        tasks = [
            BatchTaskRecord(create_timestamp=0, modify_timestamp=600, job_id="job_a",
                            task_id="t1", instance_num=1, status="Terminated"),
            BatchTaskRecord(create_timestamp=1200, modify_timestamp=1800, job_id="job_b",
                            task_id="t1", instance_num=1, status="Terminated"),
        ]
        _, store = build_bundle_with_store()
        bundle = TraceBundle(tasks=tasks, instances=instances, usage=store)
        hierarchy = BatchHierarchy.from_bundle(bundle)
        assert interference_score(hierarchy, store, "job_a", "job_b") is None


class TestInterferenceReport:
    def test_report_sorted_by_delta(self, hotjob_bundle):
        hierarchy = BatchHierarchy.from_bundle(hotjob_bundle)
        report = interference_report(hierarchy, hotjob_bundle.usage)
        deltas = [score.delta for score in report]
        assert deltas == sorted(deltas, reverse=True)

    def test_report_entries_reference_real_jobs(self, hotjob_bundle):
        hierarchy = BatchHierarchy.from_bundle(hotjob_bundle)
        job_ids = set(hierarchy.job_ids)
        for score in interference_report(hierarchy, hotjob_bundle.usage):
            assert score.job_a in job_ids
            assert score.job_b in job_ids
            assert score.shared_machines

    def test_noisy_neighbours_filters_to_job(self):
        bundle, store = build_bundle_with_store()
        hierarchy = BatchHierarchy.from_bundle(bundle)
        neighbours = noisy_neighbours(hierarchy, store, "job_a")
        assert neighbours
        assert all("job_a" in (s.job_a, s.job_b) for s in neighbours)

    def test_noisy_neighbours_top_n(self):
        bundle, store = build_bundle_with_store()
        hierarchy = BatchHierarchy.from_bundle(bundle)
        assert len(noisy_neighbours(hierarchy, store, "job_a", top_n=0)) == 0


class TestMachinePressure:
    def test_shared_machine_ranks_first(self):
        bundle, store = build_bundle_with_store()
        hierarchy = BatchHierarchy.from_bundle(bundle)
        rows = machine_pressure(hierarchy, store, 600.0)
        assert rows
        top_machine, top_count, top_util = rows[0]
        assert top_machine == "m_shared"
        assert top_count == 2
        assert top_util > 80.0

    def test_counts_match_active_jobs(self, healthy_bundle):
        hierarchy = BatchHierarchy.from_bundle(healthy_bundle)
        timestamp = mid_timestamp(healthy_bundle)
        rows = machine_pressure(hierarchy, healthy_bundle.usage, timestamp)
        active_machines = set()
        for job in hierarchy.jobs_at(timestamp):
            active_machines.update(job.machine_ids())
        assert {row[0] for row in rows} == active_machines

    def test_interference_dataclass_delta(self):
        score = InterferenceScore(job_a="a", job_b="b", shared_machines=("m",),
                                  overlap_s=60.0, shared_utilisation=50.0,
                                  exclusive_utilisation=45.0)
        assert score.delta == pytest.approx(5.0)
        assert not score.interfering
