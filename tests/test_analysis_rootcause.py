"""Tests for root-cause candidate ranking."""

import pytest

from repro.analysis.rootcause import anomalous_machines_in_window, rank_root_causes
from repro.cluster.hierarchy import BatchHierarchy
from repro.trace.records import BatchInstanceRecord, BatchTaskRecord, TraceBundle


def scenario_bundle() -> TraceBundle:
    """Job 'culprit' covers both anomalous machines during the window, with
    high recorded CPU; job 'bystander' only touches one of them briefly."""
    tasks = [BatchTaskRecord(0, 1000, "culprit", "t", 2, "Terminated"),
             BatchTaskRecord(0, 1000, "bystander", "t", 1, "Terminated"),
             BatchTaskRecord(0, 1000, "elsewhere", "t", 1, "Terminated")]
    instances = [
        BatchInstanceRecord(100, 900, "culprit", "t", "mA", "Terminated", 1, 2,
                            cpu_avg=85.0, cpu_max=99.0),
        BatchInstanceRecord(100, 900, "culprit", "t", "mB", "Terminated", 2, 2,
                            cpu_avg=80.0, cpu_max=95.0),
        BatchInstanceRecord(400, 500, "bystander", "t", "mA", "Terminated", 1, 1,
                            cpu_avg=10.0, cpu_max=12.0),
        BatchInstanceRecord(0, 1000, "elsewhere", "t", "mZ", "Terminated", 1, 1,
                            cpu_avg=50.0, cpu_max=60.0),
    ]
    return TraceBundle(tasks=tasks, instances=instances)


class TestRankRootCauses:
    def test_culprit_ranked_first(self):
        bundle = scenario_bundle()
        hierarchy = BatchHierarchy.from_bundle(bundle)
        candidates = rank_root_causes(bundle, hierarchy, ["mA", "mB"], (200, 800))
        assert candidates
        assert candidates[0].job_id == "culprit"
        assert candidates[0].coverage == 1.0
        assert candidates[0].temporal_overlap > 0.9
        assert candidates[0].score > candidates[-1].score or len(candidates) == 1

    def test_uninvolved_job_not_listed(self):
        bundle = scenario_bundle()
        hierarchy = BatchHierarchy.from_bundle(bundle)
        candidates = rank_root_causes(bundle, hierarchy, ["mA", "mB"], (200, 800))
        assert "elsewhere" not in {c.job_id for c in candidates}

    def test_top_n_limits_results(self):
        bundle = scenario_bundle()
        hierarchy = BatchHierarchy.from_bundle(bundle)
        candidates = rank_root_causes(bundle, hierarchy, ["mA"], (200, 800), top_n=1)
        assert len(candidates) == 1

    def test_empty_inputs(self):
        bundle = scenario_bundle()
        hierarchy = BatchHierarchy.from_bundle(bundle)
        assert rank_root_causes(bundle, hierarchy, [], (0, 100)) == []
        assert rank_root_causes(bundle, hierarchy, ["mA"], (100, 100)) == []

    def test_explain_mentions_job(self):
        bundle = scenario_bundle()
        hierarchy = BatchHierarchy.from_bundle(bundle)
        candidate = rank_root_causes(bundle, hierarchy, ["mA"], (200, 800))[0]
        assert candidate.job_id in candidate.explain()


class TestAnomalousMachines:
    def test_threshold_selects_hot_machines(self, thrashing_bundle):
        t0, t1 = thrashing_bundle.meta["thrashing"]["window"]
        machines = anomalous_machines_in_window(
            thrashing_bundle.usage, (t0, t1), metric="mem", threshold=80.0)
        injected = set(thrashing_bundle.meta["thrashing"]["machines"])
        assert machines, "expected at least one anomalous machine"
        assert set(machines) & injected

    def test_high_threshold_selects_none(self, healthy_bundle):
        start, end = healthy_bundle.time_range()
        machines = anomalous_machines_in_window(
            healthy_bundle.usage, (start, end), metric="cpu", threshold=99.9)
        assert machines == []


class TestEndToEndRootCause:
    def test_thrashing_root_cause_points_at_active_job(self, thrashing_bundle):
        hierarchy = BatchHierarchy.from_bundle(thrashing_bundle)
        t0, t1 = thrashing_bundle.meta["thrashing"]["window"]
        machines = thrashing_bundle.meta["thrashing"]["machines"]
        candidates = rank_root_causes(thrashing_bundle, hierarchy,
                                      list(machines), (t0, t1))
        assert candidates
        active = set(thrashing_bundle.active_jobs((t0 + t1) / 2))
        relaunch_window_jobs = set(thrashing_bundle.active_jobs(t1 + 1))
        assert candidates[0].job_id in active | relaunch_window_jobs
