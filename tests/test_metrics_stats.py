"""Tests for descriptive statistics (hierarchy stats, CV, Gini)."""

import numpy as np
import pytest

from repro.metrics.stats import (
    coefficient_of_variation,
    gini,
    hierarchy_stats,
    summarize,
)


class TestHierarchyStats:
    def test_paper_style_fractions(self):
        tasks_per_job = {"j1": 1, "j2": 1, "j3": 1, "j4": 2}
        instances_per_task = {"t1": 1, "t2": 4, "t3": 8, "t4": 2, "t5": 6}
        stats = hierarchy_stats(tasks_per_job, instances_per_task, num_machines=10)
        assert stats.num_jobs == 4
        assert stats.num_tasks == 5
        assert stats.num_instances == 21
        assert stats.single_task_job_fraction == pytest.approx(0.75)
        assert stats.multi_instance_task_fraction == pytest.approx(0.8)
        assert stats.mean_tasks_per_job == pytest.approx(1.25)
        assert stats.max_instances_per_task == 8

    def test_empty_hierarchy(self):
        stats = hierarchy_stats({}, {}, 0)
        assert stats.num_jobs == 0
        assert stats.single_task_job_fraction == 0.0

    def test_as_dict_keys(self):
        stats = hierarchy_stats({"j": 1}, {"t": 3}, 2)
        d = stats.as_dict()
        assert d["num_machines"] == 2
        assert set(d) >= {"num_jobs", "num_tasks", "num_instances"}


class TestSummarize:
    def test_quantile_ordering(self):
        summary = summarize(np.arange(100))
        assert summary.minimum <= summary.p25 <= summary.p50
        assert summary.p50 <= summary.p75 <= summary.p95 <= summary.maximum
        assert summary.count == 100

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestCoefficientOfVariation:
    def test_constant_sample(self):
        assert coefficient_of_variation([5, 5, 5]) == 0.0

    def test_zero_mean(self):
        assert coefficient_of_variation([-1, 1]) == 0.0

    def test_empty(self):
        assert coefficient_of_variation([]) == 0.0

    def test_known_value(self):
        values = [10.0, 20.0]
        assert coefficient_of_variation(values) == pytest.approx(5.0 / 15.0)


class TestGini:
    def test_perfect_balance(self):
        assert gini([10, 10, 10, 10]) == pytest.approx(0.0)

    def test_total_concentration_approaches_one(self):
        value = gini([0] * 99 + [100])
        assert value > 0.95

    def test_empty_and_zero(self):
        assert gini([]) == 0.0
        assert gini([0, 0, 0]) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            gini([-1, 2, 3])

    def test_scale_invariant(self):
        a = gini([1, 2, 3, 4])
        b = gini([10, 20, 30, 40])
        assert a == pytest.approx(b)
