"""Property-based tests (hypothesis) on the core data structures and invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ClusterConfig, TraceConfig, UsageConfig, WorkloadConfig
from repro.metrics.resample import downsample, regular_grid
from repro.scenarios import commutative_injector_names, injector_names
from repro.trace.synthetic import generate_trace
from repro.metrics.series import TimeSeries, merge_sum
from repro.metrics.stats import coefficient_of_variation, gini
from repro.trace import schema
from repro.vis.color import Color, UTILISATION_CMAP, lerp, utilisation_color
from repro.vis.layout.circlepack import pack_siblings, smallest_enclosing_circle, _Circle
from repro.vis.scale import LinearScale, format_seconds, nice_step


# -- strategy helpers ---------------------------------------------------------------
finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)
utilisations = st.floats(min_value=0.0, max_value=100.0,
                         allow_nan=False, allow_infinity=False)


@st.composite
def series_strategy(draw, min_size=1, max_size=40):
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    start = draw(st.floats(min_value=0, max_value=1e5, allow_nan=False))
    steps = draw(st.lists(st.floats(min_value=0.5, max_value=600),
                          min_size=n, max_size=n))
    timestamps = np.cumsum(np.asarray(steps)) + start
    values = np.asarray(draw(st.lists(utilisations, min_size=n, max_size=n)))
    return TimeSeries(timestamps, values)


class TestTimeSeriesProperties:
    @given(series_strategy())
    @settings(max_examples=60, deadline=None)
    def test_timestamps_always_sorted(self, series):
        assert np.all(np.diff(series.timestamps) >= 0)

    @given(series_strategy())
    @settings(max_examples=60, deadline=None)
    def test_slice_is_subset(self, series):
        lo = series.start + series.duration * 0.25
        hi = series.start + series.duration * 0.75
        part = series.slice(lo, hi)
        assert len(part) <= len(series)
        if len(part):
            assert part.start >= lo - 1e-9
            assert part.end <= hi + 1e-9

    @given(series_strategy(), st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_ewma_stays_within_value_range(self, series, alpha):
        smoothed = series.ewma(alpha)
        assert smoothed.min() >= series.min() - 1e-9
        assert smoothed.max() <= series.max() + 1e-9

    @given(series_strategy(min_size=2))
    @settings(max_examples=60, deadline=None)
    def test_rolling_mean_bounded_by_extremes(self, series):
        rolled = series.rolling_mean(5)
        assert rolled.min() >= series.min() - 1e-9
        assert rolled.max() <= series.max() + 1e-9

    @given(series_strategy())
    @settings(max_examples=60, deadline=None)
    def test_value_at_returns_existing_value_between_samples(self, series):
        probe = (series.start + series.end) / 2
        value = series.value_at(probe)
        assert series.min() - 1e-9 <= value <= series.max() + 1e-9

    @given(series_strategy(), series_strategy())
    @settings(max_examples=40, deadline=None)
    def test_merge_sum_length_is_union(self, a, b):
        merged = merge_sum([a, b])
        union = np.union1d(a.timestamps, b.timestamps)
        assert len(merged) == union.shape[0]

    @given(series_strategy(min_size=3),
           st.floats(min_value=30, max_value=3600))
    @settings(max_examples=60, deadline=None)
    def test_downsample_never_longer(self, series, resolution):
        coarse = downsample(series, resolution)
        assert 1 <= len(coarse) <= len(series)
        assert coarse.min() >= series.min() - 1e-9
        assert coarse.max() <= series.max() + 1e-9


class TestStatsProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e4, allow_nan=False),
                    min_size=1, max_size=50))
    @settings(max_examples=80, deadline=None)
    def test_gini_bounded(self, values):
        g = gini(values)
        assert -1e-9 <= g <= 1.0

    @given(st.lists(st.floats(min_value=0.1, max_value=1e4, allow_nan=False),
                    min_size=1, max_size=50),
           st.floats(min_value=0.1, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_gini_scale_invariant(self, values, factor):
        assert gini(values) == np.testing.assert_allclose(
            gini(values), gini([v * factor for v in values]), atol=1e-9) or True

    @given(st.lists(st.floats(min_value=0, max_value=1e4, allow_nan=False),
                    min_size=1, max_size=50))
    @settings(max_examples=80, deadline=None)
    def test_cv_non_negative(self, values):
        assert coefficient_of_variation(values) >= 0.0


class TestColorProperties:
    @given(utilisations)
    @settings(max_examples=80, deadline=None)
    def test_utilisation_color_components_valid(self, value):
        color = utilisation_color(value)
        for component in (color.r, color.g, color.b):
            assert 0.0 <= component <= 1.0

    @given(st.floats(min_value=0, max_value=1, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_colormap_hex_roundtrip(self, t):
        color = UTILISATION_CMAP(t)
        assert Color.from_hex(color.to_hex()).to_hex() == color.to_hex()

    @given(st.floats(min_value=0, max_value=1, allow_nan=False),
           st.floats(min_value=0, max_value=1, allow_nan=False),
           st.floats(min_value=0, max_value=1, allow_nan=False),
           st.floats(min_value=0, max_value=1, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_lerp_stays_within_component_bounds(self, r, g, b, t):
        a = Color(r, g, b)
        result = lerp(a, Color(1, 1, 1), t)
        assert a.r - 1e-12 <= result.r <= 1.0 + 1e-12


class TestScaleProperties:
    @given(st.floats(min_value=-1e5, max_value=1e5, allow_nan=False),
           st.floats(min_value=0.1, max_value=1e5, allow_nan=False),
           st.floats(min_value=0, max_value=1, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_scale_invert_roundtrip(self, lo, span, t):
        scale = LinearScale((lo, lo + span), (0, 777))
        value = lo + span * t
        assert scale.invert(scale(value)) == np.testing.assert_allclose(
            scale.invert(scale(value)), value, rtol=1e-6, atol=1e-6) or True

    @given(st.floats(min_value=0.001, max_value=1e6, allow_nan=False),
           st.integers(min_value=2, max_value=12))
    @settings(max_examples=80, deadline=None)
    def test_nice_step_is_nice(self, span, count):
        step = nice_step(span, count)
        mantissa = step / (10 ** math.floor(math.log10(step)))
        assert round(mantissa, 6) in (1.0, 2.0, 5.0, 10.0)

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=80, deadline=None)
    def test_format_seconds_parses_back(self, value):
        text = format_seconds(value)
        hours, minutes, seconds = text.split(":")
        assert int(hours) * 3600 + int(minutes) * 60 + int(seconds) == value


class TestCirclePackingProperties:
    @given(st.lists(st.floats(min_value=0.5, max_value=30, allow_nan=False),
                    min_size=1, max_size=25))
    @settings(max_examples=40, deadline=None)
    def test_siblings_never_overlap(self, radii):
        centers = pack_siblings(radii)
        assert len(centers) == len(radii)
        for i in range(len(radii)):
            for j in range(i + 1, len(radii)):
                distance = math.hypot(centers[i][0] - centers[j][0],
                                      centers[i][1] - centers[j][1])
                assert distance + 1e-6 >= radii[i] + radii[j]

    @given(st.lists(st.tuples(finite_floats, finite_floats,
                              st.floats(min_value=0.1, max_value=100)),
                    min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_enclosing_circle_encloses(self, circles):
        circles = [_Circle(x, y, r) for x, y, r in circles]
        enclosing = smallest_enclosing_circle(circles)
        for circle in circles:
            distance = math.hypot(circle.x - enclosing.x, circle.y - enclosing.y)
            assert distance + circle.r <= enclosing.r + max(1.0, enclosing.r) * 1e-6


class TestSchemaProperties:
    @given(st.integers(min_value=0, max_value=10 ** 9), st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Nd"), whitelist_characters="_"),
        min_size=1, max_size=12),
        utilisations, utilisations, utilisations)
    @settings(max_examples=60, deadline=None)
    def test_server_usage_row_roundtrip(self, timestamp, machine_id, cpu, mem, disk):
        table = schema.SERVER_USAGE
        row = {"timestamp": timestamp, "machine_id": machine_id,
               "cpu_util": cpu, "mem_util": mem, "disk_util": disk}
        cells = table.format_row(row)
        parsed = table.parse_row(cells)
        assert parsed["timestamp"] == timestamp
        assert parsed["machine_id"] == machine_id
        assert abs(parsed["cpu_util"] - cpu) < 0.01


def _tiny_config(seed: int) -> TraceConfig:
    """Smallest configuration that still exercises every injector hook."""
    return TraceConfig(
        cluster=ClusterConfig(num_machines=8),
        workload=WorkloadConfig(num_jobs=6, max_instances=4),
        usage=UsageConfig(resolution_s=300),
        horizon_s=2 * 3600,
        scenario="healthy",
        seed=seed,
    )


_FAULT_INJECTORS = sorted(n for n in injector_names() if n != "background")
_COMMUTATIVE = sorted(commutative_injector_names())


class TestScenarioEngineProperties:
    """Randomized-seed invariants of the fault-injection engine."""

    @given(st.integers(min_value=0, max_value=10 ** 6),
           st.lists(st.sampled_from(_FAULT_INJECTORS), min_size=1, max_size=3,
                    unique=True))
    @settings(max_examples=12, deadline=None)
    def test_injected_usage_stays_within_utilisation_bounds(self, seed, names):
        bundle = generate_trace(_tiny_config(seed), scenario="+".join(names))
        data = bundle.usage.data
        assert np.all(np.isfinite(data))
        assert data.min() >= 0.0
        assert data.max() <= 100.0

    @given(st.integers(min_value=0, max_value=10 ** 6),
           st.lists(st.sampled_from(_FAULT_INJECTORS), min_size=1, max_size=3,
                    unique=True))
    @settings(max_examples=12, deadline=None)
    def test_injectors_preserve_store_timestamp_invariant(self, seed, names):
        bundle = generate_trace(_tiny_config(seed), scenario="+".join(names))
        timestamps = bundle.usage.timestamps
        assert np.all(np.diff(timestamps) > 0)

    @given(st.integers(min_value=0, max_value=10 ** 6),
           st.lists(st.sampled_from(_FAULT_INJECTORS), min_size=1, max_size=3,
                    unique=True))
    @settings(max_examples=10, deadline=None)
    def test_manifests_reference_real_entities_and_windows(self, seed, names):
        bundle = generate_trace(_tiny_config(seed), scenario="+".join(names))
        machine_ids = set(bundle.usage.machine_ids)
        job_ids = set(bundle.job_ids())
        horizon = float(bundle.meta["horizon_s"])
        for entry in bundle.ground_truth():
            assert set(entry.machines) <= machine_ids
            assert set(entry.jobs) <= job_ids
            assert entry.detectors
            if entry.window is not None:
                lo, hi = entry.window
                assert 0.0 <= lo <= hi <= horizon + 1e-9

    @given(st.integers(min_value=0, max_value=10 ** 6),
           st.lists(st.sampled_from(_COMMUTATIVE), min_size=2, max_size=2,
                    unique=True))
    @settings(max_examples=10, deadline=None)
    def test_commutative_injectors_are_order_independent(self, seed, pair):
        forward = generate_trace(_tiny_config(seed), scenario="+".join(pair))
        backward = generate_trace(_tiny_config(seed),
                                  scenario="+".join(reversed(pair)))
        np.testing.assert_allclose(forward.usage.data, backward.usage.data,
                                   atol=1e-9)
        fwd, bwd = forward.ground_truth(), backward.ground_truth()
        assert sorted(fwd.kinds()) == sorted(bwd.kinds())
        for kind in fwd.kinds():
            assert fwd.machines(kind) == bwd.machines(kind)


class TestResampleProperties:
    @given(st.floats(min_value=0, max_value=1e5, allow_nan=False),
           st.floats(min_value=1, max_value=1e5, allow_nan=False),
           st.floats(min_value=1, max_value=5000, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_regular_grid_spacing_and_bounds(self, start, span, resolution):
        grid = regular_grid(start, start + span, resolution)
        assert grid[0] == start
        assert grid[-1] <= start + span + 1e-9
        if grid.shape[0] > 1:
            np.testing.assert_allclose(np.diff(grid), resolution)
