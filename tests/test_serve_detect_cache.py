"""Tests for the serve-layer /detect response cache and the byte-based
journal-compaction trigger.

The detect cache is keyed on the content hash of the tenant's ring
window plus the request (canonical detector spec × metrics): a repeat
sweep over an unchanged window must skip the executor entirely and
return the identical response, and any ingested frame must change the
key (no invalidation logic to get wrong — content addressing again).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ServeError
from repro.serve import DetectionServer, ServeClient
from repro.serve.persist import TenantPersistence

MACHINES = ["m-0", "m-1", "m-2"]


def make_frames(num_samples: int, num_machines: int = 3, *, seed: int = 0,
                start: float = 60.0):
    rng = np.random.default_rng(seed)
    ts = start + 60.0 * np.arange(num_samples, dtype=np.float64)
    frames = rng.uniform(5.0, 95.0, size=(num_samples, num_machines, 3))
    return ts, frames


@pytest.fixture()
def server():
    with DetectionServer(port=0, backend="threads", workers=2) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with ServeClient(server.host, server.port) as c:
        yield c


def fill_tenant(client, tenant_id="t1", *, seed=0):
    client.create_tenant({"id": tenant_id, "machines": MACHINES})
    ts, frames = make_frames(24, seed=seed)
    client.ingest_frames(tenant_id, ts, frames)
    return ts, frames


class TestDetectCache:
    def test_repeat_detect_is_cached_and_identical(self, client):
        fill_tenant(client)
        first = client.detect("t1")
        second = client.detect("t1")
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["detections"] == first["detections"]
        assert second["num_samples"] == first["num_samples"]

    def test_hit_skips_the_executor(self, server, client, monkeypatch):
        fill_tenant(client)
        calls = []
        original = server.executor.run_many

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(server.executor, "run_many", counting)
        client.detect("t1")
        assert len(calls) == 1
        client.detect("t1")
        client.detect("t1")
        assert len(calls) == 1          # hits never reach the pool
        assert server.detect_cache.hits == 2
        assert server.detect_cache.misses == 1

    def test_ingest_changes_the_key(self, client):
        ts, frames = fill_tenant(client)
        assert client.detect("t1")["cached"] is False
        assert client.detect("t1")["cached"] is True
        client.ingest_frames("t1", [float(ts[-1] + 60.0)], frames[:1])
        fresh = client.detect("t1")
        assert fresh["cached"] is False

    def test_request_overrides_change_the_key(self, client):
        fill_tenant(client)
        client.detect("t1")
        assert client.detect("t1")["cached"] is True
        by_stack = client.detect("t1", detectors="ewma")
        assert by_stack["cached"] is False
        by_metric = client.detect("t1", metrics=["mem"])
        assert by_metric["cached"] is False
        # ...and each override caches independently.
        assert client.detect("t1", detectors="ewma")["cached"] is True

    def test_tenants_do_not_share_entries(self, client):
        fill_tenant(client, "t1", seed=0)
        fill_tenant(client, "t2", seed=0)   # same window bytes, other tenant
        client.detect("t1")
        assert client.detect("t2")["cached"] is False

    def test_lru_evicts_beyond_capacity(self):
        with DetectionServer(port=0, detect_cache_size=1) as srv, \
                ServeClient(srv.host, srv.port) as client:
            fill_tenant(client, "t1", seed=0)
            fill_tenant(client, "t2", seed=1)
            client.detect("t1")
            client.detect("t2")              # evicts t1's entry
            assert client.detect("t1")["cached"] is False

    def test_cache_disabled_with_size_zero(self):
        with DetectionServer(port=0, detect_cache_size=0) as srv, \
                ServeClient(srv.host, srv.port) as client:
            assert srv.detect_cache is None
            fill_tenant(client)
            assert client.detect("t1")["cached"] is False
            assert client.detect("t1")["cached"] is False

    def test_negative_cache_size_rejected(self):
        with pytest.raises(ServeError):
            DetectionServer(port=0, detect_cache_size=-1)


class TestSnapshotBytes:
    def test_journal_growth_is_bounded(self, tmp_path):
        """With the byte trigger armed the journal snapshots + truncates."""
        kwargs = dict(port=0, snapshot_every=10**9)
        sizes = {}
        for name, extra in (("off", {}), ("on", {"snapshot_bytes": 2048})):
            state = tmp_path / name
            with DetectionServer(state_dir=state, **kwargs, **extra) as srv, \
                    ServeClient(srv.host, srv.port) as client:
                ts, frames = make_frames(40)
                client.create_tenant({"id": "t1", "machines": MACHINES})
                for i in range(len(ts)):
                    client.ingest_frames("t1", [float(ts[i])], frames[i:i + 1])
                tenant_dir = state / "tenants" / "t1"
                sizes[name] = (tenant_dir / "journal.wal").stat().st_size
                snapshotted = (tenant_dir / "snapshot.bin").exists()
            assert snapshotted == (name == "on")
        assert sizes["on"] < sizes["off"]
        assert sizes["on"] <= 2048 + 256    # at most one frame past the line

    def test_recovery_after_byte_triggered_snapshots(self, tmp_path):
        state = tmp_path / "state"
        with DetectionServer(port=0, state_dir=state, snapshot_every=10**9,
                             snapshot_bytes=1024) as srv, \
                ServeClient(srv.host, srv.port) as client:
            ts, frames = make_frames(40, seed=3)
            client.create_tenant({"id": "t1", "machines": MACHINES})
            for i in range(len(ts)):
                client.ingest_frames("t1", [float(ts[i])], frames[i:i + 1])
            before = client.detect("t1")
        with DetectionServer(port=0, state_dir=state) as srv, \
                ServeClient(srv.host, srv.port) as client:
            assert srv.recovered == ["t1"]
            after = client.detect("t1")
        assert after["detections"] == before["detections"]
        assert after["num_samples"] == before["num_samples"]

    def test_negative_snapshot_bytes_rejected(self, tmp_path):
        with pytest.raises(ServeError):
            TenantPersistence(tmp_path, snapshot_bytes=-1)

    def test_snapshot_due_dual_trigger(self, tmp_path):
        root = tmp_path / "t1"
        root.mkdir()
        persist = TenantPersistence(root, snapshot_every=4, snapshot_bytes=64)
        persist.append(0, np.array([60.0]), np.zeros((3, 3, 1)))
        assert persist.snapshot_due(1)       # byte trigger
        assert persist.snapshot_due(4)       # cadence trigger
        assert not persist.snapshot_due(0)   # nothing new since snapshot
        slim_root = tmp_path / "t2"
        slim_root.mkdir()
        slim = TenantPersistence(slim_root, snapshot_every=0,
                                 snapshot_bytes=10**6)
        slim.append(0, np.array([60.0]), np.zeros((3, 3, 1)))
        assert not slim.snapshot_due(3)      # journal below the line
