"""Tests for the content-addressed run-result cache.

The contract under test: caching never changes results.  A hit restores
the run bit-identically, any content change to the source invalidates
the key, execution options do not participate in the key, and every
damaged entry — torn write, truncation, garbage — reads as *absent*
(recompute), never as a wrong answer.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.ensemble import EvaluationResult
from repro.errors import PipelineError
from repro.pipeline import (
    Pipeline,
    ResultCache,
    ResultCacheOptions,
    SourceSpec,
    run_key,
    source_key,
)
from repro.scenarios.scoring import ScoredEntry, sweep_scenarios
from repro.trace.synthetic import generate_trace
from repro.trace.writer import write_trace
from tests.conftest import fast_config

SMALL = {"num_machines": 12, "num_jobs": 8, "horizon_s": 3600,
         "resolution_s": 120}


def spec_for(cache_dir, *, scenario="memory-thrash", seed=5, **extra) -> dict:
    spec = {
        "source": {"kind": "synthetic", "scenario": scenario, "seed": seed,
                   "config": dict(SMALL)},
        "metrics": ["cpu"],
        "sinks": ["score"],
        "result_cache": {"dir": str(cache_dir)},
    }
    spec.update(extra)
    return spec


def assert_runs_identical(a, b) -> None:
    """Bit-identical RunResults: every block array, every score row."""
    assert a.mode == b.mode
    assert a.metrics == b.metrics
    assert a.machine_ids == b.machine_ids
    assert a.num_samples == b.num_samples
    assert len(a.detections) == len(b.detections)
    for run_a, run_b in zip(a.detections, b.detections):
        assert (run_a.label, run_a.name, run_a.metric) == (
            run_b.label, run_b.name, run_b.metric)
        assert run_a.result.detector == run_b.result.detector
        assert run_a.result.metric == run_b.result.metric
        assert run_a.result.machine_ids == run_b.result.machine_ids
        block_a, block_b = run_a.result.block, run_b.result.block
        for field in ("timestamps", "mask", "scores", "rows", "starts",
                      "ends", "run_scores"):
            got, want = getattr(block_a, field), getattr(block_b, field)
            assert got.dtype == want.dtype, field
            assert np.array_equal(got, want), field
    assert a.scores == b.scores


class TestHitRestoresRun:
    def test_miss_then_hit_bit_identical(self, tmp_path):
        spec = spec_for(tmp_path / "cache")
        cold = Pipeline.from_spec(spec).run()
        warm = Pipeline.from_spec(spec).run()
        assert cold.timings["result_cache"] == "miss"
        assert warm.timings["result_cache"] == "hit"
        assert warm.timings["detect_s"] == 0.0
        assert warm.timings["source_s"] == 0.0
        assert_runs_identical(cold, warm)
        assert cold.scores          # the scenario carries a manifest
        assert warm.outputs["score"] == warm.scores

    def test_one_entry_per_key_on_disk(self, tmp_path):
        cache_dir = tmp_path / "cache"
        spec = spec_for(cache_dir)
        Pipeline.from_spec(spec).run()
        Pipeline.from_spec(spec).run()
        assert len(list(cache_dir.glob("*.npz"))) == 1
        stats = ResultCache(cache_dir).stats()
        assert stats["entries"] == 1
        assert stats["bytes"] > 0

    def test_hit_skips_source_and_engine(self, tmp_path, monkeypatch):
        spec = spec_for(tmp_path / "cache")
        cold = Pipeline.from_spec(spec).run()

        def boom(*args, **kwargs):   # noqa: ARG001 - must never be reached
            raise AssertionError("a cache hit must not touch this path")

        monkeypatch.setattr(Pipeline, "_resolve_source", boom)
        monkeypatch.setattr(Pipeline, "_run_batch", boom)
        warm = Pipeline.from_spec(spec).run()
        assert warm.timings["result_cache"] == "hit"
        assert_runs_identical(cold, warm)

    def test_disabled_cache_never_writes(self, tmp_path):
        cache_dir = tmp_path / "cache"
        spec = spec_for(cache_dir)
        spec["result_cache"]["enabled"] = False
        result = Pipeline.from_spec(spec).run()
        assert "result_cache" not in result.timings
        assert not cache_dir.exists()

    def test_unwritable_cache_dir_never_breaks_the_run(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied", encoding="utf-8")
        spec = spec_for(blocker / "cache")
        result = Pipeline.from_spec(spec).run()
        assert result.timings["result_cache"] == "miss"
        assert result.detections


class TestKeying:
    def test_execution_options_share_one_entry(self, tmp_path):
        cache_dir = tmp_path / "cache"
        serial = Pipeline.from_spec(spec_for(cache_dir)).run()
        sharded = Pipeline.from_spec(spec_for(
            cache_dir,
            execution={"backend": "threads", "workers": 2, "shards": 3},
        )).run()
        assert serial.timings["result_cache"] == "miss"
        assert sharded.timings["result_cache"] == "hit"
        assert_runs_identical(serial, sharded)

    def test_detectors_metrics_scored_change_the_key(self):
        identity = {"kind": "synthetic", "scenario": "hotjob", "seed": 1,
                    "paper_scale": False, "config": {}}
        base = dict(detectors="ewma+zscore", metrics=("cpu",), mode="batch",
                    scored=True)
        key = run_key(identity, **base)
        assert key == run_key(dict(identity), **base)   # deterministic
        for change in (dict(detectors="ewma"), dict(metrics=("cpu", "mem")),
                       dict(scored=False)):
            assert run_key(identity, **{**base, **change}) != key
        other = dict(identity, seed=2)
        assert run_key(other, **base) != key

    def test_trace_dir_key_strips_cache_and_mmap_but_not_storage(self, tmp_path):
        trace_dir = tmp_path / "trace"
        write_trace(generate_trace(fast_config("hotjob", seed=7)), trace_dir)
        plain = SourceSpec(kind="trace-dir", path=str(trace_dir))
        sidecar = SourceSpec(kind="trace-dir", path=str(trace_dir),
                             cache=True, mmap=True)
        rounded = SourceSpec(kind="trace-dir", path=str(trace_dir),
                             cache=True, storage="float32")
        assert source_key(plain) == source_key(sidecar)
        assert source_key(plain) != source_key(rounded)

    def test_byte_change_in_trace_invalidates(self, tmp_path):
        trace_dir = tmp_path / "trace"
        write_trace(generate_trace(fast_config("hotjob", seed=7)), trace_dir)
        cache_dir = tmp_path / "cache"
        spec = {"source": {"kind": "trace-dir", "path": str(trace_dir)},
                "metrics": ["cpu"], "sinks": ["score"],
                "result_cache": {"dir": str(cache_dir)}}
        assert Pipeline.from_spec(spec).run().timings["result_cache"] == "miss"
        assert Pipeline.from_spec(spec).run().timings["result_cache"] == "hit"
        usage = trace_dir / "server_usage.csv"
        text = usage.read_text(encoding="utf-8")
        digit = next(i for i, c in enumerate(text) if c.isdigit())
        flipped = "1" if text[digit] != "1" else "2"
        usage.write_text(text[:digit] + flipped + text[digit + 1:],
                         encoding="utf-8")
        assert Pipeline.from_spec(spec).run().timings["result_cache"] == "miss"

    def test_missing_trace_dir_bypasses(self, tmp_path):
        assert source_key(SourceSpec(kind="trace-dir",
                                     path=str(tmp_path / "gone"))) is None

    def test_bundle_streaming_and_plans_pipelines_bypass(self, tmp_path):
        options = ResultCacheOptions(dir=str(tmp_path / "cache"))
        bundle = generate_trace(fast_config("hotjob", seed=7))
        by_bundle = Pipeline.from_bundle(
            bundle, sinks=(), result_cache=options).run()
        assert by_bundle.timings["result_cache"] == "bypass"
        streaming = Pipeline.from_spec(spec_for(
            tmp_path / "cache", mode="streaming", sinks=["alerts"])).run()
        assert streaming.timings["result_cache"] == "bypass"
        by_plans = Pipeline(
            SourceSpec(kind="synthetic", scenario="hotjob", seed=7),
            plans=(), sinks=(), result_cache=options).run()
        assert by_plans.timings["result_cache"] == "bypass"
        assert not list((tmp_path / "cache").glob("*.npz"))


class TestCorruptEntriesReadAbsent:
    @pytest.fixture(scope="class")
    def entry(self, tmp_path_factory):
        """(key, entry bytes, pristine RunResult) of one cached run."""
        cache_dir = tmp_path_factory.mktemp("entry-cache")
        spec = spec_for(cache_dir)
        cold = Pipeline.from_spec(spec).run()
        paths = list(cache_dir.glob("*.npz"))
        assert len(paths) == 1
        return paths[0].stem, paths[0].read_bytes(), cold

    def test_truncated_entry_is_a_miss_and_heals(self, tmp_path):
        cache_dir = tmp_path / "cache"
        spec = spec_for(cache_dir)
        cold = Pipeline.from_spec(spec).run()
        path = next(cache_dir.glob("*.npz"))
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        healed = Pipeline.from_spec(spec).run()
        assert healed.timings["result_cache"] == "miss"
        assert_runs_identical(cold, healed)
        assert Pipeline.from_spec(spec).run().timings["result_cache"] == "hit"

    def test_garbage_entry_is_a_miss(self, tmp_path, entry):
        key, _, _ = entry
        cache = ResultCache(tmp_path)
        cache.entry_path(key).parent.mkdir(exist_ok=True)
        cache.entry_path(key).write_bytes(b"not a zip archive at all")
        assert cache.load(key) is None

    def test_wrong_key_in_header_is_a_miss(self, tmp_path, entry):
        key, raw, _ = entry
        other = ("0" if key[0] != "0" else "1") + key[1:]
        cache = ResultCache(tmp_path)
        cache.entry_path(other).write_bytes(raw)   # honest bytes, wrong slot
        assert cache.load(other) is None

    def test_malformed_key_rejected(self, tmp_path):
        with pytest.raises(PipelineError):
            ResultCache(tmp_path).entry_path("../escape")

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_any_truncation_reads_absent_or_identical(self, tmp_path_factory,
                                                      entry, data):
        key, raw, cold = entry
        cut = data.draw(st.integers(min_value=0, max_value=len(raw)))
        cache = ResultCache(tmp_path_factory.mktemp("trunc"))
        cache.directory.mkdir(exist_ok=True)
        cache.entry_path(key).write_bytes(raw[:cut])
        restored = cache.load(key)
        if restored is not None:
            assert_runs_identical(cold, restored)

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_any_byte_flip_reads_absent_or_identical(self, tmp_path_factory,
                                                     entry, data):
        key, raw, cold = entry
        pos = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
        flip = data.draw(st.integers(min_value=1, max_value=255))
        mutated = bytearray(raw)
        mutated[pos] ^= flip
        cache = ResultCache(tmp_path_factory.mktemp("flip"))
        cache.directory.mkdir(exist_ok=True)
        cache.entry_path(key).write_bytes(bytes(mutated))
        restored = cache.load(key)
        if restored is not None:
            assert_runs_identical(cold, restored)


class TestMaintenance:
    def test_prune_evicts_least_recently_used(self, tmp_path):
        cache_dir = tmp_path / "cache"
        for seed in (1, 2, 3):
            Pipeline.from_spec(spec_for(cache_dir, scenario="hotjob",
                                        seed=seed)).run()
        cache = ResultCache(cache_dir)
        entries = sorted(cache_dir.glob("*.npz"))
        assert len(entries) == 3
        # Pin recency explicitly: entries[0] oldest ... entries[2] newest.
        for age, path in enumerate(entries):
            stamp = (1_000_000 + age) * 10**9
            os.utime(path, ns=(stamp, stamp))
        keep = entries[2].stat().st_size
        stats = cache.prune(max_bytes=keep)
        assert stats["evicted"] == 2
        assert [p for p in entries if p.exists()] == [entries[2]]
        assert stats == {**cache.stats(), "evicted": 2}

    def test_load_refreshes_recency(self, tmp_path):
        cache_dir = tmp_path / "cache"
        spec = spec_for(cache_dir)
        Pipeline.from_spec(spec).run()
        path = next(cache_dir.glob("*.npz"))
        os.utime(path, ns=(10**9, 10**9))
        before = path.stat().st_atime_ns
        assert ResultCache(cache_dir).load(path.stem) is not None
        assert path.stat().st_atime_ns > before

    def test_prune_rejects_negative_budget(self, tmp_path):
        with pytest.raises(PipelineError):
            ResultCache(tmp_path).prune(-1)

    def test_stats_on_missing_directory(self, tmp_path):
        assert ResultCache(tmp_path / "gone").stats() == {"entries": 0,
                                                          "bytes": 0}


class TestSpecRoundTrip:
    def test_result_cache_survives_to_spec(self, tmp_path):
        spec = spec_for(tmp_path / "cache")
        pipeline = Pipeline.from_spec(spec)
        out = pipeline.to_spec()
        assert out["result_cache"] == {"dir": str(tmp_path / "cache")}
        assert Pipeline.from_spec(out).to_spec() == out

    def test_disabled_round_trips(self):
        options = ResultCacheOptions(dir="ledger", enabled=False)
        assert options.to_dict() == {"dir": "ledger", "enabled": False}
        assert ResultCacheOptions.from_dict(options.to_dict()) == options

    def test_options_validate(self):
        with pytest.raises(PipelineError):
            ResultCacheOptions(dir="")
        with pytest.raises(PipelineError):
            ResultCacheOptions.from_dict({"dir": "x", "bogus": 1})
        with pytest.raises(PipelineError):
            ResultCacheOptions.from_dict({"enabled": True})

    def test_scored_entry_round_trips_through_json(self, tmp_path):
        result = Pipeline.from_spec(spec_for(tmp_path / "cache")).run()
        assert result.scores
        for scored in result.scores:
            raw = json.loads(json.dumps(scored.to_dict()))
            assert ScoredEntry.from_dict(raw) == scored

    def test_evaluation_result_round_trips(self):
        result = EvaluationResult(precision=0.75, recall=0.5,
                                  true_positives=3, false_positives=1,
                                  false_negatives=3)
        raw = json.loads(json.dumps(result.to_dict()))
        assert EvaluationResult.from_dict(raw) == result
        with pytest.raises(KeyError):
            EvaluationResult.from_dict({"precision": 1.0})


class TestSweepResume:
    def test_interrupted_sweep_resumes_without_recompute(self, tmp_path,
                                                         monkeypatch):
        cache_dir = tmp_path / "cache"
        scenarios = ["hotjob", "thrashing", "memory-thrash"]
        engine_runs = []
        original = Pipeline._run_batch

        def counting(self, *args, **kwargs):
            engine_runs.append(self.source.scenario)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(Pipeline, "_run_batch", counting)

        class Interrupt(Exception):
            pass

        def stop_after_two(cell):
            if cell.scenario == "thrashing":
                raise Interrupt

        with pytest.raises(Interrupt):
            sweep_scenarios(scenarios, cache_dir=cache_dir,
                            progress=stop_after_two)
        assert engine_runs == ["hotjob", "thrashing"]

        engine_runs.clear()
        cells = sweep_scenarios(scenarios, cache_dir=cache_dir)
        assert engine_runs == ["memory-thrash"]   # only the unfinished cell
        assert [cell.cached for cell in cells] == [True, True, False]
        assert [cell.scenario for cell in cells] == scenarios
        resumed = sweep_scenarios(scenarios, cache_dir=cache_dir)
        assert [cell.cached for cell in resumed] == [True, True, True]
        for fresh, cached in zip(cells, resumed):
            assert fresh.scores == cached.scores
            assert fresh.worst_f1 == cached.worst_f1

    def test_sweep_without_cache_recomputes(self, monkeypatch):
        calls = []
        original = Pipeline._run_batch

        def counting(self, *args, **kwargs):
            calls.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(Pipeline, "_run_batch", counting)
        cells = sweep_scenarios(["hotjob"], seeds=(1, 2))
        assert len(calls) == 2
        assert all(not cell.cached for cell in cells)
