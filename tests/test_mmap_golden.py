"""Golden equivalence: memory-mapped trace loads are bit-identical to RAM.

``load_trace(dir, cache=True, mmap=True)`` promotes the columnar sidecar
cache to an out-of-core backing format: the dense usage matrix stays on
disk and every store view becomes a read-only window into the file.  The
whole value proposition is that this — like sharding and caching before it
— only changes memory/wall-clock, never the verdict.  This suite pins:

* for **every registered scenario**, an unsharded mmap-backed pipeline run
  produces events/masks/scores identical to the in-RAM load for every
  registered detector (block + cluster);
* across **all three backends × shard counts 1/2/7**, the mmap-backed run
  stays bit-identical on representative scenarios — including the process
  backend, where shard views cross the pipe as path + row-range
  descriptors (:class:`~repro.metrics.store.MmapBacking`) instead of
  array bytes;
* the invalidation contract survives the new layout: a byte change to any
  CSV invalidates, a truncated/corrupt ``usage.npy`` reads as absent, and
  a pickled mmap view refuses to reattach to a changed file;
* opt-in ``storage="float32"`` pins verdict parity (same flagged windows
  and machines) against the float64 reference, and float32-mmap equals
  float32-in-RAM bit-for-bit;
* mutating a read-only (mmap-backed or view) store raises a clear
  :class:`SeriesError`, not NumPy's opaque ``ValueError``.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.errors import PipelineError, SeriesError, TraceFormatError
from repro.pipeline import Pipeline
from repro.scenarios import scenario_names
from repro.trace import cache as trace_cache
from repro.trace.loader import load_trace
from repro.trace.synthetic import generate_trace
from repro.trace.writer import write_trace

from tests.conftest import fast_config

SEED = 1306
SHARD_COUNTS = (1, 2, 7)

#: Every registered detector: the four default block detectors plus the
#: three non-shardable cluster-topology detectors.
ALL_DETECTORS = "ewma+flatline+threshold+zscore+sync_break+imbalance+sla_risk"

#: Scenarios for the full backend × shard matrix.
MATRIX_SCENARIOS = (
    "healthy",
    "thrashing",
    "machine-failure+network-storm",
)


def _source(trace_dir, **options) -> dict:
    return {"kind": "trace-dir", "path": str(trace_dir), **options}


def _run(trace_dir, source_options=None, execution=None):
    spec = {"source": _source(trace_dir, **(source_options or {})),
            "detectors": ALL_DETECTORS, "sinks": []}
    if execution is not None:
        spec["execution"] = execution
    return Pipeline.from_spec(spec).run()


@pytest.fixture(scope="module")
def trace_dirs(tmp_path_factory):
    """One on-disk trace directory per scenario the suite touches."""
    root = tmp_path_factory.mktemp("mmap-golden")
    dirs = {}
    for scenario in sorted(set(scenario_names()) | set(MATRIX_SCENARIOS)):
        directory = root / scenario.replace("+", "_").replace("(", "_")
        directory.mkdir()
        write_trace(generate_trace(fast_config(scenario, seed=SEED)),
                    directory)
        dirs[scenario] = directory
    return dirs


@pytest.fixture(scope="module")
def inram_runs(trace_dirs):
    """The in-RAM (cached, unmapped) reference run of every scenario."""
    return {scenario: _run(directory, {"cache": True})
            for scenario, directory in trace_dirs.items()}


def assert_runs_identical(mmap_run, ref_run, context: str) -> None:
    assert [run.label for run in mmap_run.detections] \
        == [run.label for run in ref_run.detections], context
    for got, want in zip(mmap_run.detections, ref_run.detections):
        assert got.result.events() == want.result.events(), (
            f"{context}: {got.label} events diverged")
        assert np.array_equal(got.result.mask, want.result.mask), (
            f"{context}: {got.label} mask diverged")
        assert np.array_equal(got.result.scores, want.result.scores), (
            f"{context}: {got.label} scores diverged")
        assert got.result.flagged_machines() \
            == want.result.flagged_machines(), context
    assert mmap_run.flagged_machines() == ref_run.flagged_machines(), context


@pytest.mark.parametrize("scenario", scenario_names())
def test_mmap_identical_for_every_scenario(scenario, trace_dirs, inram_runs):
    mmap_run = _run(trace_dirs[scenario], {"cache": True, "mmap": True})
    assert_runs_identical(mmap_run, inram_runs[scenario], f"{scenario} mmap")


@pytest.mark.parametrize("backend", ("serial", "threads", "process"))
@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("scenario", MATRIX_SCENARIOS)
def test_mmap_backend_matrix_identical(scenario, shards, backend, trace_dirs,
                                       inram_runs):
    mmap_run = _run(trace_dirs[scenario], {"cache": True, "mmap": True},
                    execution={"backend": backend, "shards": shards,
                               "workers": 3})
    assert_runs_identical(mmap_run, inram_runs[scenario],
                          f"{scenario} × {backend} × {shards} shards (mmap)")


class TestMmapStoreSemantics:
    def test_views_are_readonly_windows_into_the_file(self, trace_dirs):
        directory = trace_dirs["thrashing"]
        store = load_trace(directory, cache=True, mmap=True).usage
        assert store.mmap_backed
        assert not store.data.flags.writeable
        view = store.machine_slice(2, 7)
        assert view.mmap_backed
        assert np.shares_memory(view.data, store.data)
        # Time-axis views stay zero-copy windows too.
        window = store.sample_slice(0, store.num_samples // 2)
        assert np.shares_memory(window.data, store.data)

    def test_inram_load_is_not_backed(self, trace_dirs):
        store = load_trace(trace_dirs["thrashing"], cache=True).usage
        assert not store.mmap_backed

    def test_pickle_ships_descriptor_not_bytes(self, trace_dirs):
        directory = trace_dirs["thrashing"]
        store = load_trace(directory, cache=True, mmap=True).usage
        shard = store.machine_slice(1, store.num_machines - 1)
        blob = pickle.dumps(shard)
        # The payload is a path + row range, not the matrix.
        assert len(blob) < shard.data.nbytes / 4
        clone = pickle.loads(blob)
        assert clone.machine_ids == shard.machine_ids
        assert np.array_equal(clone.data, np.asarray(shard.data))
        assert not clone.data.flags.writeable

    def test_pickle_refuses_changed_backing_file(self, trace_dirs):
        directory = trace_dirs["healthy"]
        store = load_trace(directory, cache=True, mmap=True).usage
        blob = pickle.dumps(store.machine_slice(0, 2))
        matrix_path = trace_cache.usage_path(directory)
        np.save(matrix_path, np.zeros_like(np.asarray(store.data)))
        with pytest.raises(SeriesError):
            pickle.loads(blob)
        # Restore a consistent sidecar for the other tests.
        load_trace(directory, cache=True, mmap=True)

    def test_mutation_guard_raises_series_error(self, trace_dirs):
        store = load_trace(trace_dirs["thrashing"], cache=True,
                           mmap=True).usage
        values = np.zeros(store.num_samples)
        machine = store.machine_ids[0]
        with pytest.raises(SeriesError, match="read-only.*memory-mapped"):
            store.set_series(machine, "cpu", values)
        with pytest.raises(SeriesError, match="read-only"):
            store.add_to_series(machine, "cpu", values)
        with pytest.raises(SeriesError, match="read-only"):
            store.clip()

    def test_mutation_guard_covers_plain_views_too(self):
        from repro.metrics.store import MetricStore

        store = MetricStore(["m0", "m1", "m2"], np.arange(4.0))
        view = store.subset(["m1", "m2"])
        with pytest.raises(SeriesError, match="read-only.*view"):
            view.set_series("m1", "cpu", np.zeros(4))
        # The parent stays writable.
        store.set_series("m0", "cpu", np.ones(4))


class TestMmapInvalidation:
    def test_byte_change_invalidates(self, tmp_path):
        write_trace(generate_trace(fast_config("thrashing", seed=SEED)),
                    tmp_path)
        first = load_trace(tmp_path, cache=True, mmap=True)
        with open(tmp_path / "server_usage.csv", "a",
                  encoding="utf-8") as handle:
            handle.write("9999,machine_zz,50,50,50\n")
        fresh = load_trace(tmp_path, cache=True, mmap=True)
        assert "machine_zz" in fresh.usage.machine_ids
        assert "machine_zz" not in first.usage.machine_ids

    def test_truncated_usage_sidecar_reads_as_absent(self, tmp_path):
        write_trace(generate_trace(fast_config("thrashing", seed=SEED)),
                    tmp_path)
        reference = load_trace(tmp_path, cache=True)
        matrix_path = trace_cache.usage_path(tmp_path)
        raw = matrix_path.read_bytes()
        matrix_path.write_bytes(raw[:len(raw) // 2])
        reloaded = load_trace(tmp_path, cache=True, mmap=True)
        assert reloaded.usage.machine_ids == reference.usage.machine_ids
        assert np.array_equal(np.asarray(reloaded.usage.data),
                              reference.usage.data)

    def test_garbage_usage_sidecar_reads_as_absent(self, tmp_path):
        write_trace(generate_trace(fast_config("healthy", seed=SEED)),
                    tmp_path)
        reference = load_trace(tmp_path, cache=True)
        trace_cache.usage_path(tmp_path).write_bytes(b"not an npy file")
        reloaded = load_trace(tmp_path, cache=True, mmap=True)
        assert np.array_equal(np.asarray(reloaded.usage.data),
                              reference.usage.data)


class TestFloat32Storage:
    @pytest.mark.parametrize("scenario", MATRIX_SCENARIOS)
    def test_float32_pins_verdict_parity(self, scenario, tmp_path,
                                         inram_runs):
        directory = tmp_path / "trace"
        directory.mkdir()
        write_trace(generate_trace(fast_config(scenario, seed=SEED)),
                    directory)
        run32 = _run(directory, {"cache": True, "storage": "float32"})
        reference = inram_runs[scenario]
        assert [r.label for r in run32.detections] \
            == [r.label for r in reference.detections]
        for got, want in zip(run32.detections, reference.detections):
            got_windows = [(e.subject, e.start, e.end, e.kind)
                           for e in got.result.events()]
            want_windows = [(e.subject, e.start, e.end, e.kind)
                            for e in want.result.events()]
            assert got_windows == want_windows, (
                f"{scenario}: {got.label} float32 verdicts diverged")
            assert got.result.flagged_machines() \
                == want.result.flagged_machines()

    def test_float32_mmap_equals_float32_inram(self, tmp_path):
        write_trace(generate_trace(fast_config("thrashing", seed=SEED)),
                    tmp_path)
        inram = _run(tmp_path, {"cache": True, "storage": "float32"})
        mapped = _run(tmp_path, {"cache": True, "storage": "float32",
                                 "mmap": True})
        assert_runs_identical(mapped, inram, "float32 mmap vs in-RAM")

    def test_float32_store_dtype(self, tmp_path):
        write_trace(generate_trace(fast_config("healthy", seed=SEED)),
                    tmp_path)
        bundle = load_trace(tmp_path, cache=True, storage="float32",
                            mmap=True)
        assert bundle.usage.data.dtype == np.float32
        # Cold and warm float32 loads serve the same representation.
        warm = load_trace(tmp_path, cache=True, storage="float32")
        assert warm.usage.data.dtype == np.float32
        assert np.array_equal(np.asarray(bundle.usage.data), warm.usage.data)


class TestOptionValidation:
    def test_mmap_without_cache_is_rejected_by_loader(self, tmp_path):
        write_trace(generate_trace(fast_config("healthy", seed=SEED)),
                    tmp_path)
        with pytest.raises(TraceFormatError, match="cache"):
            load_trace(tmp_path, mmap=True)
        with pytest.raises(TraceFormatError, match="storage"):
            load_trace(tmp_path, cache=True, storage="float16")

    def test_spec_round_trip_and_validation(self, tmp_path):
        from repro.pipeline import SourceSpec

        spec = SourceSpec.from_dict({"kind": "trace-dir", "path": "t",
                                     "cache": True, "mmap": True,
                                     "storage": "float32"})
        assert spec.to_dict() == {"kind": "trace-dir", "path": "t",
                                  "cache": True, "mmap": True,
                                  "storage": "float32"}
        with pytest.raises(PipelineError, match="cache"):
            SourceSpec(kind="trace-dir", path="t", mmap=True)
        with pytest.raises(PipelineError, match="trace-dir"):
            SourceSpec(kind="synthetic", scenario="healthy", cache=True,
                       mmap=True)
        with pytest.raises(PipelineError, match="storage"):
            SourceSpec(kind="trace-dir", path="t", cache=True,
                       storage="float16")

    def test_cli_mmap_implies_cache(self, tmp_path, capsys):
        from repro.cli import main

        write_trace(generate_trace(fast_config("thrashing", seed=SEED)),
                    tmp_path)
        assert main(["detect", str(tmp_path), "--mmap"]) == 0
        assert trace_cache.cache_path(tmp_path).exists()
        assert trace_cache.usage_path(tmp_path).exists()
        capsys.readouterr()
