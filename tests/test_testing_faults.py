"""Tests for the deterministic fault-injection harness (``repro.testing``).

The harness is itself test infrastructure, so its guarantees need pinning
hardest of all: a chaos suite built on a non-deterministic injector is a
flaky suite, and one built on an injector that silently fails to fire
tests nothing.
"""

from __future__ import annotations

import json

import pytest

from repro.testing import faults
from repro.testing.faults import (
    FAULTS_ENV,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    fault_point,
)


class TestFaultSpec:
    def test_from_dict_accepts_scalar_at(self):
        spec = FaultSpec.from_dict({"at": 3})
        assert spec.at == (3,)

    @pytest.mark.parametrize("bad", [
        {"action": "explode"},
        {"error": "nuclear"},
        {"p": 1.5},
        {"unknown_key": 1},
    ])
    def test_invalid_specs_are_loud(self, bad):
        with pytest.raises(ValueError):
            FaultSpec.from_dict(bad)

    def test_error_families(self):
        assert isinstance(
            FaultSpec.from_dict({}).make_error("x", 1), InjectedFault)
        assert isinstance(FaultSpec.from_dict({"error": "os"})
                          .make_error("x", 1), OSError)
        assert isinstance(FaultSpec.from_dict({"error": "conn"})
                          .make_error("x", 1), ConnectionError)


class TestInjector:
    def test_uninstalled_points_are_no_ops(self):
        fault_point("nowhere")  # must not raise

    def test_fires_at_exact_hit_indices(self):
        with faults.inject({"disk.write": {"at": (2, 4)}}) as injector:
            hits = []
            for index in range(1, 6):
                try:
                    fault_point("disk.write")
                    hits.append(index)
                except InjectedFault:
                    pass
            assert hits == [1, 3, 5]
            assert injector.fired == [("disk.write", 2), ("disk.write", 4)]
            assert injector.hits("disk.write") == 5

    def test_unplanned_points_never_fire(self):
        with faults.inject({"disk.write": {"at": 1}}) as injector:
            fault_point("other.point")
            assert injector.fired == []

    def test_probability_draws_are_seed_deterministic(self):
        def firings(seed: int) -> list:
            with faults.inject({"flaky": {"p": 0.3}},
                               seed=seed) as injector:
                for _ in range(50):
                    try:
                        fault_point("flaky")
                    except InjectedFault:
                        pass
                return list(injector.fired)

        run_a, run_b = firings(7), firings(7)
        assert run_a == run_b, "same seed must reproduce the same chaos"
        assert run_a, "p=0.3 over 50 hits fired nothing — harness is inert"
        assert firings(8) != run_a, "seed is not actually feeding the rng"

    def test_times_bounds_total_firings(self):
        with faults.inject({"flaky": {"at": (1, 2, 3), "times": 2}}) as inj:
            failures = 0
            for _ in range(5):
                try:
                    fault_point("flaky")
                except InjectedFault:
                    failures += 1
            assert failures == 2
            assert [hit for _, hit in inj.fired] == [1, 2]

    def test_uninstall_on_context_exit(self):
        with faults.inject({"disk.write": {"at": 1}}):
            pass
        fault_point("disk.write")  # must not raise


class TestEnvInstall:
    def test_env_plan_installs(self):
        plan = {"persist.journal.append": {"at": 5, "action": "kill"}}
        injector = faults.install_from_env(
            {FAULTS_ENV: json.dumps(plan)})
        try:
            assert isinstance(injector, FaultInjector)
            assert injector.plan["persist.journal.append"].action == "kill"
        finally:
            faults.uninstall()

    def test_absent_env_is_none(self):
        assert faults.install_from_env({}) is None

    def test_malformed_env_is_loud(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            faults.install_from_env({FAULTS_ENV: "{nope"})
        faults.uninstall()


class TestTransientWorkerMarker:
    """Production retry semantics must not depend on the testing package."""

    def test_injected_fault_is_a_transient_worker_error(self):
        from repro.errors import BatchLensError, TransientWorkerError

        assert issubclass(InjectedFault, TransientWorkerError)
        # Still an infrastructure failure, not a request-level error.
        assert not issubclass(InjectedFault, BatchLensError)

    def test_shard_module_never_imports_the_testing_package(self):
        """The shard executor recognises retryable failures via the
        TransientWorkerError marker in repro.errors; importing it must
        not drag repro.testing into a production process."""
        import os
        import subprocess
        import sys
        from pathlib import Path

        code = (
            "import sys\n"
            "import repro.analysis.shard\n"
            "bad = [m for m in sys.modules if m.startswith('repro.testing')]\n"
            "sys.exit(1 if bad else 0)\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        env.pop(FAULTS_ENV, None)
        result = subprocess.run([sys.executable, "-c", code], env=env,
                                check=False)
        assert result.returncode == 0, \
            "importing repro.analysis.shard pulled in repro.testing"
