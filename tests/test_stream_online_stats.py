"""Tests for single-pass online statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SeriesError
from repro.stream.online_stats import OnlineEwma, OnlineZScore, P2Quantile, RunningStats


class TestRunningStats:
    def test_matches_numpy_on_fixed_data(self):
        values = [3.0, 7.0, 7.0, 19.0, 24.0, 1.5]
        stats = RunningStats()
        stats.update_many(values)
        assert stats.count == len(values)
        assert stats.mean == pytest.approx(np.mean(values))
        assert stats.variance == pytest.approx(np.var(values))
        assert stats.std == pytest.approx(np.std(values))
        assert stats.minimum == min(values)
        assert stats.maximum == max(values)

    def test_empty_stats(self):
        stats = RunningStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.variance == 0.0
        with pytest.raises(SeriesError):
            _ = stats.minimum
        with pytest.raises(SeriesError):
            _ = stats.maximum

    def test_single_sample(self):
        stats = RunningStats()
        stats.update(42.0)
        assert stats.mean == 42.0
        assert stats.variance == 0.0
        assert stats.minimum == stats.maximum == 42.0

    def test_merge_equals_sequential(self):
        left_values = [1.0, 5.0, 9.0]
        right_values = [2.0, 2.0, 40.0, 7.0]
        left, right, combined = RunningStats(), RunningStats(), RunningStats()
        left.update_many(left_values)
        right.update_many(right_values)
        combined.update_many(left_values + right_values)
        merged = left.merge(right)
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean)
        assert merged.variance == pytest.approx(combined.variance)
        assert merged.minimum == combined.minimum
        assert merged.maximum == combined.maximum

    def test_merge_with_empty(self):
        stats = RunningStats()
        stats.update_many([4.0, 6.0])
        merged = stats.merge(RunningStats())
        assert merged.mean == pytest.approx(5.0)
        merged_other_way = RunningStats().merge(stats)
        assert merged_other_way.count == 2

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0),
                    min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_agrees_with_numpy(self, values):
        stats = RunningStats()
        stats.update_many(values)
        assert stats.mean == pytest.approx(float(np.mean(values)), abs=1e-9)
        assert stats.variance == pytest.approx(float(np.var(values)), abs=1e-6)

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=100),
           st.integers(min_value=1, max_value=99))
    @settings(max_examples=30, deadline=None)
    def test_merge_is_order_insensitive(self, values, split_percent):
        split = max(1, min(len(values) - 1, len(values) * split_percent // 100))
        a, b = RunningStats(), RunningStats()
        a.update_many(values[:split])
        b.update_many(values[split:])
        merged = a.merge(b)
        merged_reverse = b.merge(a)
        assert merged.mean == pytest.approx(merged_reverse.mean)
        assert merged.variance == pytest.approx(merged_reverse.variance, abs=1e-6)


class TestOnlineEwma:
    def test_converges_to_constant_level(self):
        ewma = OnlineEwma(alpha=0.4)
        for _ in range(50):
            ewma.update(70.0)
        assert ewma.mean == pytest.approx(70.0)
        assert ewma.deviation == pytest.approx(0.0, abs=1e-6)

    def test_first_sample_initialises(self):
        ewma = OnlineEwma()
        assert ewma.update(50.0) == 0.0
        assert ewma.mean == 50.0

    def test_spike_is_anomalous(self):
        ewma = OnlineEwma(alpha=0.3)
        for _ in range(30):
            ewma.update(30.0)
        assert ewma.is_anomalous(95.0)
        assert not ewma.is_anomalous(31.0)

    def test_not_anomalous_before_initialisation(self):
        assert not OnlineEwma().is_anomalous(100.0)

    def test_invalid_alpha(self):
        with pytest.raises(SeriesError):
            OnlineEwma(alpha=0.0)
        with pytest.raises(SeriesError):
            OnlineEwma(alpha=1.5)


class TestP2Quantile:
    def test_median_of_uniform_stream(self):
        rng = np.random.default_rng(7)
        values = rng.uniform(0, 100, 5000)
        estimator = P2Quantile(0.5)
        for value in values:
            estimator.update(value)
        assert estimator.value == pytest.approx(np.percentile(values, 50), abs=3.0)

    def test_p95_of_normal_stream(self):
        rng = np.random.default_rng(11)
        values = rng.normal(50, 10, 5000).clip(0, 100)
        estimator = P2Quantile(0.95)
        for value in values:
            estimator.update(value)
        assert estimator.value == pytest.approx(np.percentile(values, 95), abs=3.0)

    def test_small_sample_falls_back_to_sorted(self):
        estimator = P2Quantile(0.5)
        for value in [5.0, 1.0, 9.0]:
            estimator.update(value)
        assert estimator.value == 5.0

    def test_empty_estimator_raises(self):
        with pytest.raises(SeriesError):
            _ = P2Quantile(0.9).value

    def test_invalid_quantile(self):
        with pytest.raises(SeriesError):
            P2Quantile(0.0)
        with pytest.raises(SeriesError):
            P2Quantile(1.0)

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0),
                    min_size=20, max_size=300))
    @settings(max_examples=25, deadline=None)
    def test_estimate_within_observed_range(self, values):
        estimator = P2Quantile(0.9)
        for value in values:
            estimator.update(value)
        assert min(values) - 1e-9 <= estimator.value <= max(values) + 1e-9


class TestOnlineZScore:
    def test_stable_stream_has_low_scores(self):
        scorer = OnlineZScore()
        scores = [scorer.update(40.0) for _ in range(30)]
        assert max(abs(s) for s in scores) < 0.5

    def test_spike_scores_high(self):
        scorer = OnlineZScore()
        for _ in range(30):
            scorer.update(40.0)
        assert scorer.update(95.0) > 3.0

    def test_invalid_min_std(self):
        with pytest.raises(SeriesError):
            OnlineZScore(min_std=0.0)

    def test_counts_track_samples(self):
        scorer = OnlineZScore()
        for value in (1.0, 2.0, 3.0):
            scorer.update(value)
        assert scorer.count == 3
        assert scorer.mean == pytest.approx(2.0)


class TestBulkUpdates:
    """The vectorized bulk paths agree with the scalar folding loops."""

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0),
                    min_size=0, max_size=300),
           st.lists(st.integers(min_value=0, max_value=40),
                    min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_running_stats_bulk_matches_scalar_loop(self, values, cuts):
        scalar = RunningStats()
        for value in values:
            scalar.update(value)
        bulk = RunningStats()
        cursor = 0
        for cut in cuts:   # fold in several arbitrary batches
            bulk.update_many(values[cursor:cursor + cut])
            cursor += cut
        bulk.update_many(values[cursor:])
        assert bulk.count == scalar.count
        if scalar.count:
            assert bulk.minimum == scalar.minimum
            assert bulk.maximum == scalar.maximum
            assert bulk.mean == pytest.approx(scalar.mean, rel=1e-12, abs=1e-12)
            assert bulk.variance == pytest.approx(scalar.variance,
                                                  rel=1e-9, abs=1e-8)

    def test_running_stats_bulk_accepts_arrays_and_generators(self):
        stats = RunningStats()
        stats.update_many(np.array([1.0, 2.0, 3.0]))
        stats.update_many(float(x) for x in (4.0, 5.0))
        assert stats.count == 5
        assert stats.mean == pytest.approx(3.0)

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0),
                    min_size=1, max_size=250),
           st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_ewma_bulk_matches_scalar_loop(self, values, alpha):
        scalar = OnlineEwma(alpha=alpha)
        scalar_residuals = [scalar.update(value) for value in values]
        bulk = OnlineEwma(alpha=alpha)
        split = len(values) // 2
        residuals = list(bulk.update_many(values[:split]))
        residuals.extend(bulk.update_many(values[split:]))
        assert bulk.mean == pytest.approx(scalar.mean, rel=1e-8, abs=1e-8)
        assert bulk.deviation == pytest.approx(scalar.deviation,
                                               rel=1e-8, abs=1e-8)
        assert residuals == pytest.approx(scalar_residuals,
                                          rel=1e-8, abs=1e-8)

    def test_ewma_bulk_empty_and_single(self):
        ewma = OnlineEwma(alpha=0.3)
        assert ewma.update_many([]).size == 0
        residuals = ewma.update_many([42.0])
        assert residuals.tolist() == [0.0]
        assert ewma.mean == 42.0

    def test_p2_bulk_matches_scalar_loop(self):
        rng = np.random.default_rng(5)
        values = rng.uniform(0.0, 100.0, 400)
        scalar = P2Quantile(0.95)
        for value in values:
            scalar.update(value)
        bulk = P2Quantile(0.95)
        bulk.update_many(values)
        assert bulk.count == scalar.count
        assert bulk.value == scalar.value
