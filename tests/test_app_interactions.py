"""Tests for the interaction model (brush, selection, node links)."""

import pytest

from repro.app.interactions import (
    InteractionError,
    NodeLinkIndex,
    SelectionState,
    TimeBrush,
)
from tests.conftest import mid_timestamp


class TestTimeBrush:
    def test_basic_properties(self):
        brush = TimeBrush(100, 400)
        assert brush.duration == 300
        assert brush.contains(250)
        assert not brush.contains(401)
        assert brush.as_tuple() == (100, 400)

    def test_inverted_range_rejected(self):
        with pytest.raises(InteractionError):
            TimeBrush(400, 100)
        with pytest.raises(InteractionError):
            TimeBrush(100, 100)

    def test_clamp_inside_extent(self):
        brush = TimeBrush(-50, 500).clamp(0, 300)
        assert brush.as_tuple() == (0, 300)

    def test_clamp_outside_extent_rejected(self):
        with pytest.raises(InteractionError):
            TimeBrush(1000, 2000).clamp(0, 500)


class TestSelectionState:
    def test_with_methods_are_pure(self):
        state = SelectionState()
        with_time = state.with_timestamp(100.0)
        assert state.timestamp is None
        assert with_time.timestamp == 100.0
        chained = (with_time.with_job("j1").with_metric("mem")
                   .with_brush(TimeBrush(0, 10)).with_hover("m1"))
        assert chained.job_id == "j1"
        assert chained.metric == "mem"
        assert chained.brush.duration == 10
        assert chained.hovered_machine == "m1"
        # original untouched
        assert with_time.job_id is None


class TestNodeLinkIndex:
    def test_from_hierarchy_matches_shared_machines(self, hotjob_bundle,
                                                    hotjob_hierarchy):
        timestamp = mid_timestamp(hotjob_bundle)
        index = NodeLinkIndex.from_hierarchy(hotjob_hierarchy, timestamp)
        expected = hotjob_hierarchy.shared_machines(timestamp)
        assert set(index.shared_machine_ids) == set(expected)
        assert len(index) == len(expected)

    def test_jobs_of_shared_machine(self, hotjob_bundle, hotjob_hierarchy):
        timestamp = mid_timestamp(hotjob_bundle)
        index = NodeLinkIndex.from_hierarchy(hotjob_hierarchy, timestamp)
        if not index.shared_machine_ids:
            pytest.skip("no machine is shared at this timestamp for this seed")
        machine_id = index.shared_machine_ids[0]
        assert index.is_shared(machine_id)
        assert len(index.jobs_of(machine_id)) >= 2

    def test_unshared_machine(self):
        index = NodeLinkIndex(timestamp=0.0, links={})
        assert not index.is_shared("m1")
        assert index.jobs_of("m1") == []
