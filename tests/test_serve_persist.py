"""Unit tests for the durable-tenant storage layer (``repro.serve.persist``).

The crash-consistency contract under test: **anything torn reads as
absent**.  A journal truncated at any byte offset, a corrupted record, a
mangled snapshot — recovery must silently fall back to the longest state
it can prove, never error, never invent samples.  The end-to-end
bit-identity of recovery itself is pinned by
``tests/test_serve_recovery_golden.py``; this file pins the storage
primitives those goldens rest on.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ServeError
from repro.serve.persist import (
    FrameJournal,
    ServerStateDir,
    TenantPersistence,
    read_snapshot,
    write_snapshot,
)

MACHINES = 3
METRICS = 3


def make_batch(seq: int, nsamples: int):
    """A deterministic (timestamps, block) ingest batch for record ``seq``."""
    rng = np.random.default_rng(seq)
    ts = 60.0 * np.arange(seq * 100, seq * 100 + nsamples, dtype=np.float64)
    block = rng.uniform(0.0, 100.0, size=(MACHINES, METRICS, nsamples))
    return ts, block


class TestFrameJournal:
    def test_round_trips_records_in_order(self, tmp_path):
        journal = FrameJournal(tmp_path / "j.wal")
        batches = [make_batch(seq, n) for seq, n in ((1, 4), (2, 1), (3, 16))]
        for seq, (ts, block) in enumerate(batches, start=1):
            journal.append(seq, ts, block)
        journal.close()
        records = FrameJournal.read_records(tmp_path / "j.wal",
                                            MACHINES, METRICS)
        assert [seq for seq, _, _ in records] == [1, 2, 3]
        for (_, ts, block), (ref_ts, ref_block) in zip(records, batches):
            np.testing.assert_array_equal(ts, ref_ts)
            np.testing.assert_array_equal(block, ref_block)

    def test_missing_file_is_empty_journal(self, tmp_path):
        assert FrameJournal.read_records(tmp_path / "absent.wal",
                                         MACHINES, METRICS) == []

    def test_truncate_drops_all_records(self, tmp_path):
        journal = FrameJournal(tmp_path / "j.wal")
        ts, block = make_batch(1, 4)
        journal.append(1, ts, block)
        journal.truncate()
        journal.append(2, ts, block)
        journal.close()
        records = FrameJournal.read_records(tmp_path / "j.wal",
                                            MACHINES, METRICS)
        assert [seq for seq, _, _ in records] == [2]

    def test_torn_tail_at_every_byte_offset_reads_as_absent(self, tmp_path):
        """The kill-anywhere core: cutting the file anywhere only ever
        loses the *last* record, and never produces an error or a phantom
        record."""
        path = tmp_path / "j.wal"
        journal = FrameJournal(path)
        boundaries = [0]
        for seq, n in ((1, 4), (2, 2), (3, 7)):
            ts, block = make_batch(seq, n)
            journal.append(seq, ts, block)
            boundaries.append(path.stat().st_size)
        journal.close()
        raw = path.read_bytes()
        for cut in range(len(raw) + 1):
            torn = tmp_path / "torn.wal"
            torn.write_bytes(raw[:cut])
            records = FrameJournal.read_records(torn, MACHINES, METRICS)
            complete = sum(1 for b in boundaries[1:] if b <= cut)
            assert [seq for seq, _, _ in records] == list(
                range(1, complete + 1)), f"cut at byte {cut}"

    def test_corrupt_byte_ends_the_scan_at_the_defect(self, tmp_path):
        path = tmp_path / "j.wal"
        journal = FrameJournal(path)
        for seq, n in ((1, 4), (2, 4), (3, 4)):
            ts, block = make_batch(seq, n)
            journal.append(seq, ts, block)
        journal.close()
        raw = bytearray(path.read_bytes())
        # Flip one payload byte inside the second record.
        record_bytes = len(raw) // 3
        raw[record_bytes + record_bytes // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        records = FrameJournal.read_records(path, MACHINES, METRICS)
        assert [seq for seq, _, _ in records] == [1]

    def test_impossible_length_field_reads_as_absent(self, tmp_path):
        path = tmp_path / "j.wal"
        import struct

        path.write_bytes(struct.pack("<IIQI", 0, (1 << 31) + 8, 1, 1) + b"x")
        assert FrameJournal.read_records(path, MACHINES, METRICS) == []

    def test_rewind_drops_appends_after_the_mark(self, tmp_path):
        """WAL rollback: a record whose apply failed is removed, freeing
        its sequence number for the retry."""
        journal = FrameJournal(tmp_path / "j.wal")
        ts1, block1 = make_batch(1, 4)
        journal.append(1, ts1, block1)
        mark = journal.size()
        ts2, block2 = make_batch(2, 3)
        journal.append(2, ts2, block2)
        journal.rewind(mark)
        journal.append(2, ts2, block2)  # the seq is free for reuse
        journal.close()
        records = FrameJournal.read_records(tmp_path / "j.wal",
                                            MACHINES, METRICS)
        assert [seq for seq, _, _ in records] == [1, 2]
        np.testing.assert_array_equal(records[1][1], ts2)

    def test_fsync_mode_smoke(self, tmp_path):
        """fsync=True exercises the directory-fsync paths (file creation,
        atomic rename); behaviour must be identical to fsync=False."""
        journal = FrameJournal(tmp_path / "j.wal", fsync=True)
        ts, block = make_batch(1, 4)
        journal.append(1, ts, block)
        journal.rewind(journal.size())
        journal.close()
        assert [seq for seq, _, _ in FrameJournal.read_records(
            tmp_path / "j.wal", MACHINES, METRICS)] == [1]
        write_snapshot(tmp_path / "s.bin", {"seq": 1}, fsync=True)
        assert read_snapshot(tmp_path / "s.bin")["seq"] == 1


class TestSnapshot:
    def test_round_trip(self, tmp_path):
        state = {"seq": 7, "payload": np.arange(5.0)}
        write_snapshot(tmp_path / "s.bin", state, fsync=False)
        loaded = read_snapshot(tmp_path / "s.bin")
        assert loaded["seq"] == 7
        np.testing.assert_array_equal(loaded["payload"], np.arange(5.0))

    def test_absent_reads_as_none(self, tmp_path):
        assert read_snapshot(tmp_path / "nope.bin") is None

    @pytest.mark.parametrize("mangle", ["truncate", "flip", "magic"])
    def test_corrupt_reads_as_none(self, tmp_path, mangle):
        path = tmp_path / "s.bin"
        write_snapshot(path, {"seq": 1}, fsync=False)
        raw = bytearray(path.read_bytes())
        if mangle == "truncate":
            raw = raw[:len(raw) - 3]
        elif mangle == "flip":
            raw[-1] ^= 0xFF
        else:
            raw[0] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert read_snapshot(path) is None

    def test_commit_is_atomic_no_tmp_left_behind(self, tmp_path):
        write_snapshot(tmp_path / "s.bin", {"seq": 1}, fsync=False)
        write_snapshot(tmp_path / "s.bin", {"seq": 2}, fsync=False)
        assert read_snapshot(tmp_path / "s.bin")["seq"] == 2
        assert list(tmp_path.iterdir()) == [tmp_path / "s.bin"]


class TestTenantPersistence:
    def test_load_skips_records_the_snapshot_covers(self, tmp_path):
        """A crash between snapshot rename and journal truncate leaves
        already-snapshotted records in the journal; replay must skip them."""
        persist = TenantPersistence(tmp_path / "t", snapshot_every=0)
        persist.root.mkdir(parents=True)
        for seq in (1, 2, 3):
            ts, block = make_batch(seq, 4)
            persist.append(seq, ts, block)
        # Snapshot covering seq<=2 without the truncate (the crash window).
        write_snapshot(persist.snapshot_path, {"seq": 2}, fsync=False)
        state, tail = persist.load(MACHINES, METRICS)
        assert state["seq"] == 2
        assert [seq for seq, _, _ in tail] == [3]

    def test_load_stops_at_a_sequence_gap(self, tmp_path):
        persist = TenantPersistence(tmp_path / "t", snapshot_every=0)
        persist.root.mkdir(parents=True)
        for seq in (1, 2, 4):
            ts, block = make_batch(seq, 4)
            persist.append(seq, ts, block)
        state, tail = persist.load(MACHINES, METRICS)
        assert state is None
        assert [seq for seq, _, _ in tail] == [1, 2]

    def test_write_snapshot_truncates_journal(self, tmp_path):
        persist = TenantPersistence(tmp_path / "t", snapshot_every=0)
        persist.root.mkdir(parents=True)
        ts, block = make_batch(1, 4)
        persist.append(1, ts, block)
        persist.write_snapshot({"seq": 1})
        assert FrameJournal.read_records(persist.journal.path,
                                         MACHINES, METRICS) == []
        state, tail = persist.load(MACHINES, METRICS)
        assert state["seq"] == 1 and tail == []

    def test_snapshot_due_cadence(self, tmp_path):
        persist = TenantPersistence(tmp_path / "t", snapshot_every=8)
        assert not persist.snapshot_due(7)
        assert persist.snapshot_due(8)
        disabled = TenantPersistence(tmp_path / "u", snapshot_every=0)
        assert not disabled.snapshot_due(10_000)


class TestServerStateDir:
    SPEC = {"id": "alpha", "machines": ["a", "b"], "detectors": "threshold",
            "metrics": ["cpu"], "streaming": {}}

    def test_create_then_stored_tenants_round_trip(self, tmp_path):
        state = ServerStateDir(tmp_path)
        state.create(dict(self.SPEC, id="alpha"))
        state.create(dict(self.SPEC, id="beta"))
        stored = ServerStateDir(tmp_path).stored_tenants()
        assert [spec["id"] for spec, _ in stored] == ["alpha", "beta"]

    def test_create_purges_stale_remnants(self, tmp_path):
        state = ServerStateDir(tmp_path)
        persist = state.create(dict(self.SPEC))
        ts = np.arange(4, dtype=np.float64)
        block = np.zeros((2, 3, 4))
        persist.append(1, ts, block)
        persist.close()
        fresh = state.create(dict(self.SPEC))
        _, tail = fresh.load(2, 3)
        assert tail == [], "a recreated tenant inherited a stale journal"

    def test_remove_forgets_durably(self, tmp_path):
        state = ServerStateDir(tmp_path)
        state.create(dict(self.SPEC))
        state.remove("alpha")
        assert ServerStateDir(tmp_path).stored_tenants() == []

    def test_corrupt_spec_is_skipped_not_fatal(self, tmp_path):
        state = ServerStateDir(tmp_path)
        state.create(dict(self.SPEC))
        (state.tenant_root("alpha") / "spec.json").write_text("{broken")
        reopened = ServerStateDir(tmp_path)
        assert reopened.stored_tenants() == []
        assert reopened.skipped == ["alpha"]

    def test_mismatched_spec_id_is_skipped(self, tmp_path):
        state = ServerStateDir(tmp_path)
        state.create(dict(self.SPEC))
        (state.tenant_root("alpha") / "spec.json").write_text(
            json.dumps(dict(self.SPEC, id="other")))
        reopened = ServerStateDir(tmp_path)
        assert reopened.stored_tenants() == []
        assert reopened.skipped == ["alpha"]

    def test_unsupported_format_version_is_loud(self, tmp_path):
        ServerStateDir(tmp_path)
        (tmp_path / "STATE").write_text(json.dumps({"version": 99}))
        with pytest.raises(ServeError, match="unsupported format"):
            ServerStateDir(tmp_path)

    @pytest.mark.parametrize("bad_id", [
        "..", ".", "", "a/b", "/abs", "../../escape", "a/..",
    ])
    def test_unsafe_tenant_ids_never_reach_the_filesystem(self, tmp_path,
                                                          bad_id):
        """An id like ``..`` resolves to the state dir itself — create's
        stale-remnant rmtree (or remove) on it would wipe every tenant.
        Such ids must fail loudly before any mkdir or rmtree runs."""
        state = ServerStateDir(tmp_path)
        state.create(dict(self.SPEC))
        for attack in (lambda: state.tenant_root(bad_id),
                       lambda: state.create(dict(self.SPEC, id=bad_id)),
                       lambda: state.remove(bad_id)):
            with pytest.raises(ServeError, match="unsafe tenant id"):
                attack()
        survivors = ServerStateDir(tmp_path).stored_tenants()
        assert [spec["id"] for spec, _ in survivors] == ["alpha"], \
            "an unsafe tenant id damaged other tenants' durable state"


class TestIngestRollback:
    """The WAL invariant: journal == applied batches, unique seqs.

    If applying a just-journaled batch fails, the record must be rolled
    back — otherwise the next ingest appends a duplicate seq, and after a
    crash the recovery contiguity scan stops at it, silently dropping
    every later *acknowledged* batch.
    """

    def make_tenant(self, tmp_path):
        from repro.serve.tenants import Tenant, TenantSpec

        spec = TenantSpec.from_dict(
            {"id": "alpha", "machines": ["a", "b", "c"]}, default_id="alpha")
        persist = ServerStateDir(tmp_path).create(spec.to_dict())
        return Tenant(spec, persist=persist)

    def payload(self, seq, nsamples=4):
        from repro.serve.wire import block_to_payload

        ts, block = make_batch(seq, nsamples)
        return block_to_payload(ts, block)

    def journal_seqs(self, tenant):
        records = FrameJournal.read_records(tenant.persist.journal.path,
                                            MACHINES, METRICS)
        return [seq for seq, _, _ in records]

    def test_failed_apply_rolls_back_the_journal_record(self, tmp_path):
        tenant = self.make_tenant(tmp_path)
        tenant.ingest(self.payload(1))
        tenant.monitor.catch_up = lambda chunk: (_ for _ in ()).throw(
            RuntimeError("injected apply failure"))
        with pytest.raises(RuntimeError, match="injected apply failure"):
            tenant.ingest(self.payload(2))
        assert self.journal_seqs(tenant) == [1], \
            "a never-applied batch stayed in the journal"
        del tenant.monitor.catch_up   # restore the real bound method
        tenant.ingest(self.payload(2))
        assert self.journal_seqs(tenant) == [1, 2]
        assert tenant._ingest_seq == 2
        # Recovery replays exactly the applied batches.
        tenant.persist.close()
        state, tail = TenantPersistence(tenant.persist.root).load(
            MACHINES, METRICS)
        assert state is None and [seq for seq, _, _ in tail] == [1, 2]

    def test_unrollbackable_failure_poisons_the_tenant(self, tmp_path):
        """If even the rollback fails, appending again would duplicate the
        orphan record's seq — the tenant must refuse further ingests."""
        tenant = self.make_tenant(tmp_path)
        tenant.ingest(self.payload(1))
        tenant.monitor.catch_up = lambda chunk: (_ for _ in ()).throw(
            RuntimeError("injected apply failure"))
        tenant.persist.journal.rewind = lambda size: (_ for _ in ()).throw(
            OSError("injected rollback failure"))
        with pytest.raises(RuntimeError, match="injected apply failure"):
            tenant.ingest(self.payload(2))
        assert tenant.closed
        with pytest.raises(ServeError, match="journal rollback failed"):
            tenant.ingest(self.payload(3))
