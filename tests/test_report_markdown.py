"""Tests for the Markdown builder."""

import pytest

from repro.errors import RenderError
from repro.report.markdown import MarkdownBuilder, escape_cell, format_table


class TestEscapeCell:
    def test_pipe_escaped(self):
        assert escape_cell("a|b") == "a\\|b"

    def test_newline_flattened(self):
        assert escape_cell("a\nb") == "a b"

    def test_float_formatting(self):
        assert escape_cell(0.12345) == "0.12"

    def test_int_passthrough(self):
        assert escape_cell(7) == "7"


class TestFormatTable:
    def test_simple_table(self):
        table = format_table(["a", "b"], [[1, 2], [3, 4]])
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"
        assert len(lines) == 4

    def test_empty_headers_rejected(self):
        with pytest.raises(RenderError):
            format_table([], [])

    def test_ragged_row_rejected(self):
        with pytest.raises(RenderError):
            format_table(["a", "b"], [[1]])

    def test_no_rows_allowed(self):
        assert format_table(["a"], []).count("\n") == 1


class TestMarkdownBuilder:
    def test_title_becomes_h1(self):
        text = MarkdownBuilder("Report").render()
        assert text.startswith("# Report\n")

    def test_blocks_separated_by_blank_lines(self):
        builder = MarkdownBuilder()
        builder.paragraph("one").paragraph("two")
        assert builder.render() == "one\n\ntwo\n"

    def test_heading_levels(self):
        builder = MarkdownBuilder()
        builder.heading("Sub", level=3)
        assert builder.render().startswith("### Sub")
        with pytest.raises(RenderError):
            builder.heading("bad", level=0)
        with pytest.raises(RenderError):
            builder.heading("bad", level=7)

    def test_bullets_and_numbered(self):
        builder = MarkdownBuilder()
        builder.bullets(["a", "b"]).numbered(["x", "y"])
        text = builder.render()
        assert "* a" in text
        assert "1. x" in text
        assert "2. y" in text

    def test_indented_bullets(self):
        builder = MarkdownBuilder()
        builder.bullets(["child"], indent=1)
        assert "  * child" in builder.render()

    def test_code_block_with_language(self):
        builder = MarkdownBuilder()
        builder.code_block("print('hi')", language="python")
        text = builder.render()
        assert text.startswith("```python\n")
        assert text.rstrip().endswith("```")

    def test_quote_prefixes_every_line(self):
        builder = MarkdownBuilder()
        builder.quote("line1\nline2")
        assert builder.render() == "> line1\n> line2\n"

    def test_table_and_rule_and_raw(self):
        builder = MarkdownBuilder()
        builder.table(["h"], [["v"]]).horizontal_rule().raw("**raw**")
        text = builder.render()
        assert "| h |" in text
        assert "---" in text
        assert text.rstrip().endswith("**raw**")

    def test_len_counts_blocks(self):
        builder = MarkdownBuilder("t")
        builder.paragraph("p")
        assert len(builder) == 2

    def test_save_writes_file(self, tmp_path):
        builder = MarkdownBuilder("Saved")
        path = builder.save(tmp_path / "sub" / "report.md")
        assert path.exists()
        assert path.read_text(encoding="utf-8").startswith("# Saved")

    def test_chaining_returns_builder(self):
        builder = MarkdownBuilder()
        assert builder.paragraph("x") is builder
        assert builder.heading("y") is builder
