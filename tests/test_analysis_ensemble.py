"""Tests for the detector ensemble and detection-quality evaluation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.detectors import EwmaDetector, RollingZScoreDetector, ThresholdDetector
from repro.analysis.ensemble import (
    EnsembleDetector,
    evaluate_events,
    evaluate_machine_sets,
    flag_machines,
    score_detectors,
)
from repro.errors import SeriesError
from repro.metrics.series import TimeSeries


def spike_series(n=60, spike_at=30, spike_len=6, base=30.0, peak=97.0):
    timestamps = np.arange(n) * 60.0
    values = np.full(n, base)
    values[spike_at:spike_at + spike_len] = peak
    return TimeSeries(timestamps, values)


class TestEnsembleDetector:
    def test_obvious_spike_detected(self):
        series = spike_series()
        events = EnsembleDetector(min_votes=2).detect(series, subject="m1")
        assert events
        assert events[0].kind == "ensemble"
        assert events[0].subject == "m1"
        assert events[0].start >= 29 * 60.0

    def test_flat_series_quiet(self):
        series = TimeSeries(np.arange(40) * 60.0, np.full(40, 40.0))
        assert EnsembleDetector().detect(series) == []

    def test_unanimous_vote_stricter_than_single(self):
        series = spike_series(peak=88.0)  # below the 90% threshold detector
        lenient = EnsembleDetector(min_votes=1).detect(series)
        strict = EnsembleDetector(min_votes=3).detect(series)
        assert len(strict) <= len(lenient)

    def test_custom_members(self):
        members = [ThresholdDetector(85.0), ThresholdDetector(95.0)]
        events = EnsembleDetector(members, min_votes=2).detect(spike_series())
        assert events

    def test_invalid_configuration(self):
        with pytest.raises(SeriesError):
            EnsembleDetector([], min_votes=1)
        with pytest.raises(SeriesError):
            EnsembleDetector([ThresholdDetector()], min_votes=2)
        with pytest.raises(SeriesError):
            EnsembleDetector(min_votes=0)

    def test_empty_series(self):
        assert EnsembleDetector().detect(TimeSeries.empty()) == []


class TestEvaluateMachineSets:
    def test_perfect_prediction(self):
        result = evaluate_machine_sets({"a", "b"}, {"a", "b"})
        assert result.precision == 1.0
        assert result.recall == 1.0
        assert result.f1 == pytest.approx(1.0)

    def test_partial_prediction(self):
        result = evaluate_machine_sets({"a", "c"}, {"a", "b"})
        assert result.precision == pytest.approx(0.5)
        assert result.recall == pytest.approx(0.5)
        assert result.true_positives == 1
        assert result.false_positives == 1
        assert result.false_negatives == 1

    def test_empty_prediction_with_truth(self):
        result = evaluate_machine_sets(set(), {"a"})
        assert result.precision == 0.0
        assert result.recall == 0.0
        assert result.f1 == 0.0

    def test_empty_prediction_and_truth(self):
        result = evaluate_machine_sets(set(), set())
        assert result.precision == 1.0
        assert result.recall == 1.0

    @given(predicted=st.sets(st.sampled_from("abcdefgh")),
           truth=st.sets(st.sampled_from("abcdefgh")))
    @settings(max_examples=50, deadline=None)
    def test_counts_are_consistent(self, predicted, truth):
        result = evaluate_machine_sets(predicted, truth)
        assert result.true_positives + result.false_positives == len(predicted)
        assert result.true_positives + result.false_negatives == len(truth)
        assert 0.0 <= result.precision <= 1.0
        assert 0.0 <= result.recall <= 1.0
        assert 0.0 <= result.f1 <= 1.0


class TestEvaluateEvents:
    def test_exact_event_scores_perfectly(self):
        series = spike_series()
        detector = ThresholdDetector(90.0)
        events = detector.detect(series)
        truth = (events[0].start, events[0].end)
        result = evaluate_events(events, truth, series)
        assert result.precision == 1.0
        assert result.recall == 1.0

    def test_missed_window_scores_zero_recall(self):
        series = spike_series()
        result = evaluate_events([], (series.start, series.start + 300.0), series)
        assert result.recall == 0.0

    def test_invalid_window_rejected(self):
        series = spike_series()
        with pytest.raises(SeriesError):
            evaluate_events([], (100.0, 0.0), series)

    def test_empty_series(self):
        result = evaluate_events([], (0.0, 10.0), TimeSeries.empty())
        assert result.true_positives == 0


class TestStoreLevelScoring:
    def test_flag_machines_on_thrashing_scenario(self, thrashing_bundle):
        store = thrashing_bundle.usage
        truth = set(thrashing_bundle.meta["thrashing"]["machines"])
        flagged = flag_machines(store, ThresholdDetector(90.0), metric="mem")
        assert flagged & truth, "threshold on mem should hit some thrashing machines"

    def test_score_detectors_returns_all_names(self, thrashing_bundle):
        store = thrashing_bundle.usage
        truth = set(thrashing_bundle.meta["thrashing"]["machines"])
        results = score_detectors(
            store,
            {"threshold": ThresholdDetector(90.0),
             "zscore": RollingZScoreDetector(window=8),
             "ewma": EwmaDetector(deviation_threshold=20.0),
             "ensemble": EnsembleDetector(min_votes=2)},
            truth, metric="mem")
        assert set(results) == {"threshold", "zscore", "ewma", "ensemble"}
        assert all(0.0 <= r.recall <= 1.0 for r in results.values())

    def test_window_restriction_reduces_or_keeps_flags(self, thrashing_bundle):
        store = thrashing_bundle.usage
        window = tuple(thrashing_bundle.meta["thrashing"]["window"])
        all_flags = flag_machines(store, ThresholdDetector(85.0), metric="mem")
        windowed = flag_machines(store, ThresholdDetector(85.0), metric="mem",
                                 window=window)
        assert windowed <= all_flags
