"""Tests for the job → task → instance → machine hierarchy."""

import pytest

from repro.cluster.hierarchy import BatchHierarchy, InstanceNode, JobNode, TaskNode
from repro.errors import UnknownEntityError
from repro.trace.records import BatchInstanceRecord, BatchTaskRecord, MachineEvent, TraceBundle


def small_hierarchy() -> BatchHierarchy:
    tasks = [
        BatchTaskRecord(0, 200, "jA", "t1", 2, "Terminated"),
        BatchTaskRecord(0, 300, "jA", "t2", 1, "Terminated"),
        BatchTaskRecord(100, 400, "jB", "t1", 2, "Terminated"),
    ]
    instances = [
        BatchInstanceRecord(0, 200, "jA", "t1", "m1", "Terminated", 1, 2),
        BatchInstanceRecord(0, 200, "jA", "t1", "m2", "Terminated", 2, 2),
        BatchInstanceRecord(0, 300, "jA", "t2", "m3", "Terminated", 1, 1),
        BatchInstanceRecord(100, 400, "jB", "t1", "m2", "Terminated", 1, 2),
        BatchInstanceRecord(100, 350, "jB", "t1", "m4", "Terminated", 2, 2),
    ]
    events = [MachineEvent(0, m, "add") for m in ("m1", "m2", "m3", "m4")]
    return BatchHierarchy.from_bundle(
        TraceBundle(machine_events=events, tasks=tasks, instances=instances))


class TestConstruction:
    def test_structure(self):
        hierarchy = small_hierarchy()
        assert len(hierarchy) == 2
        assert set(hierarchy.job_ids) == {"jA", "jB"}
        job = hierarchy.job("jA")
        assert job.num_tasks == 2
        assert job.num_instances == 3
        assert set(job.machine_ids()) == {"m1", "m2", "m3"}

    def test_orphan_instance_creates_task(self):
        bundle = TraceBundle(instances=[
            BatchInstanceRecord(0, 10, "jX", "tX", "m1", "Terminated", 1, 1)])
        hierarchy = BatchHierarchy.from_bundle(bundle)
        assert "jX" in hierarchy
        assert hierarchy.job("jX").num_instances == 1

    def test_unknown_job_lookup(self):
        with pytest.raises(UnknownEntityError):
            small_hierarchy().job("ghost")

    def test_unknown_task_lookup(self):
        with pytest.raises(UnknownEntityError):
            small_hierarchy().job("jA").task("ghost")


class TestTimeQueries:
    def test_job_start_end(self):
        job = small_hierarchy().job("jA")
        assert job.start == 0
        assert job.end == 300

    def test_jobs_at(self):
        hierarchy = small_hierarchy()
        assert {j.job_id for j in hierarchy.jobs_at(50)} == {"jA"}
        assert {j.job_id for j in hierarchy.jobs_at(150)} == {"jA", "jB"}
        assert hierarchy.jobs_at(1000) == []

    def test_task_active_instances(self):
        task = small_hierarchy().job("jB").task("t1")
        assert len(task.active_instances(360)) == 1
        assert task.active_at(360)
        assert not task.active_at(500)

    def test_task_end_times_and_start_times(self):
        job = small_hierarchy().job("jA")
        assert job.task_end_times() == {"t1": 200, "t2": 300}
        assert job.start_times_by_machine() == {"m1": 0, "m2": 0, "m3": 0}


class TestMachineQueries:
    def test_instances_on_machine(self):
        hierarchy = small_hierarchy()
        assert len(hierarchy.instances_on_machine("m2")) == 2
        assert hierarchy.instances_on_machine("ghost") == []

    def test_jobs_on_machine(self):
        hierarchy = small_hierarchy()
        assert set(hierarchy.jobs_on_machine("m2")) == {"jA", "jB"}
        assert hierarchy.jobs_on_machine("m2", timestamp=50) == ["jA"]

    def test_shared_machines(self):
        hierarchy = small_hierarchy()
        shared = hierarchy.shared_machines(150)
        assert set(shared) == {"m2"}
        assert ("jA", "t1") in shared["m2"]
        assert ("jB", "t1") in shared["m2"]
        assert hierarchy.shared_machines(250) == {}


class TestStats:
    def test_stats_on_synthetic_bundle(self, healthy_bundle, healthy_hierarchy):
        stats = healthy_hierarchy.stats()
        assert stats.num_jobs == len(healthy_bundle.job_ids())
        assert stats.num_tasks == len(healthy_bundle.tasks)
        assert stats.num_instances == len(healthy_bundle.instances)
        assert stats.num_machines == len(healthy_bundle.machine_ids())
        assert 0.0 <= stats.single_task_job_fraction <= 1.0
        assert 0.0 <= stats.multi_instance_task_fraction <= 1.0

    def test_stats_small(self):
        stats = small_hierarchy().stats()
        assert stats.num_jobs == 2
        assert stats.num_tasks == 3
        assert stats.num_instances == 5
        assert stats.single_task_job_fraction == 0.5


class TestNodeDataclasses:
    def test_instance_active_at(self):
        inst = InstanceNode("j", "t", 1, "m", 10, 20, "Terminated")
        assert inst.active_at(15)
        assert not inst.active_at(25)

    def test_empty_task_and_job_times(self):
        assert TaskNode("j", "t").start == 0
        assert JobNode("j").end == 0
