"""Tests for the stateful analysis session."""

import pytest

from repro.app.interactions import InteractionError
from repro.app.session import AnalysisSession
from repro.errors import UnknownEntityError
from repro.trace.records import TraceBundle
from tests.conftest import mid_timestamp


@pytest.fixture()
def session(hotjob_bundle):
    return AnalysisSession(hotjob_bundle)


class TestSessionLifecycle:
    def test_requires_usage_data(self, healthy_bundle):
        empty = TraceBundle(tasks=healthy_bundle.tasks,
                            instances=healthy_bundle.instances)
        with pytest.raises(InteractionError):
            AnalysisSession(empty)

    def test_initial_state(self, session, hotjob_bundle):
        start, _ = hotjob_bundle.time_range()
        assert session.state.timestamp == start
        assert session.state.job_id is None
        assert session.time_extent == hotjob_bundle.time_range()


class TestSelection:
    def test_select_timestamp_bounds(self, session):
        lo, hi = session.time_extent
        session.select_timestamp((lo + hi) / 2)
        with pytest.raises(InteractionError):
            session.select_timestamp(hi + 1000)

    def test_select_job_and_metric(self, session, hotjob_bundle):
        job_id = hotjob_bundle.job_ids()[0]
        session.select_job(job_id)
        session.select_metric("mem")
        assert session.state.job_id == job_id
        assert session.state.metric == "mem"

    def test_select_unknown_job(self, session):
        with pytest.raises(UnknownEntityError):
            session.select_job("ghost")

    def test_select_unknown_metric(self, session):
        with pytest.raises(InteractionError):
            session.select_metric("gpu")

    def test_brush_and_clear(self, session):
        lo, hi = session.time_extent
        brush = session.brush(lo + 100, lo + 1000)
        assert session.state.brush == brush
        session.clear_brush()
        assert session.state.brush is None

    def test_brush_outside_extent(self, session):
        lo, hi = session.time_extent
        with pytest.raises(InteractionError):
            session.brush(hi + 100, hi + 200)

    def test_hover(self, session, hotjob_bundle):
        machine_id = hotjob_bundle.machine_ids()[0]
        session.hover(machine_id)
        assert session.state.hovered_machine == machine_id
        session.hover(None)
        assert session.state.hovered_machine is None


class TestDerivedViews:
    def test_bubble_model_follows_selected_timestamp(self, session, hotjob_bundle):
        timestamp = mid_timestamp(hotjob_bundle)
        session.select_timestamp(timestamp)
        model = session.bubble_model()
        assert model.timestamp == timestamp

    def test_line_model_requires_job(self, session, hotjob_bundle):
        with pytest.raises(InteractionError):
            session.line_model()
        timestamp = mid_timestamp(hotjob_bundle)
        session.select_timestamp(timestamp)
        job_id = hotjob_bundle.active_jobs(timestamp)[0]
        session.select_job(job_id)
        model = session.line_model()
        assert model.job_id == job_id

    def test_line_model_carries_brush(self, session, hotjob_bundle):
        timestamp = mid_timestamp(hotjob_bundle)
        session.select_timestamp(timestamp)
        job_id = hotjob_bundle.active_jobs(timestamp)[0]
        session.select_job(job_id)
        session.brush(timestamp - 500, timestamp + 500)
        model = session.line_model()
        assert model.brush is not None

    def test_timeline_model_reflects_state(self, session, hotjob_bundle):
        timestamp = mid_timestamp(hotjob_bundle)
        session.select_timestamp(timestamp)
        model = session.timeline_model()
        assert model.selected_timestamp == timestamp

    def test_regime_and_active_jobs(self, session, hotjob_bundle):
        timestamp = mid_timestamp(hotjob_bundle)
        session.select_timestamp(timestamp)
        assessment = session.regime()
        assert assessment.timestamp == timestamp
        rows = session.active_jobs()
        assert {row["job_id"] for row in rows} == set(
            hotjob_bundle.active_jobs(timestamp))

    def test_hover_linked_jobs(self, session, hotjob_bundle):
        timestamp = mid_timestamp(hotjob_bundle)
        session.select_timestamp(timestamp)
        assert session.hovered_machine_jobs() == []
        links = session.node_links()
        if links.shared_machine_ids:
            machine_id = links.shared_machine_ids[0]
            session.hover(machine_id)
            assert len(session.hovered_machine_jobs()) >= 2
