"""Shared fixtures: small, fast trace bundles for every scenario."""

from __future__ import annotations

import numpy as np
import pytest

from repro.app.batchlens import BatchLens
from repro.cluster.hierarchy import BatchHierarchy
from repro.config import ClusterConfig, TraceConfig, UsageConfig, WorkloadConfig
from repro.metrics.series import TimeSeries
from repro.trace.synthetic import generate_trace


def fast_config(scenario: str = "healthy", seed: int = 11, *,
                num_machines: int = 12, num_jobs: int = 10,
                horizon_s: int = 2 * 3600, resolution_s: int = 120) -> TraceConfig:
    """A configuration small enough for sub-second generation in tests."""
    return TraceConfig(
        cluster=ClusterConfig(num_machines=num_machines),
        workload=WorkloadConfig(num_jobs=num_jobs, max_instances=6),
        usage=UsageConfig(resolution_s=resolution_s),
        horizon_s=horizon_s,
        scenario=scenario,
        seed=seed,
    )


@pytest.fixture(scope="session")
def healthy_bundle():
    return generate_trace(fast_config("healthy", seed=11))


@pytest.fixture(scope="session")
def hotjob_bundle():
    return generate_trace(fast_config("hotjob", seed=12))


@pytest.fixture(scope="session")
def thrashing_bundle():
    return generate_trace(fast_config("thrashing", seed=13))


@pytest.fixture(scope="session")
def healthy_hierarchy(healthy_bundle):
    return BatchHierarchy.from_bundle(healthy_bundle)


@pytest.fixture(scope="session")
def hotjob_hierarchy(hotjob_bundle):
    return BatchHierarchy.from_bundle(hotjob_bundle)


@pytest.fixture(scope="session")
def healthy_lens(healthy_bundle):
    return BatchLens.from_bundle(healthy_bundle)


@pytest.fixture(scope="session")
def hotjob_lens(hotjob_bundle):
    return BatchLens.from_bundle(hotjob_bundle)


@pytest.fixture(scope="session")
def thrashing_lens(thrashing_bundle):
    return BatchLens.from_bundle(thrashing_bundle)


@pytest.fixture()
def simple_series() -> TimeSeries:
    """A small deterministic series used across metric-layer tests."""
    timestamps = np.arange(0, 600, 60, dtype=float)
    values = np.array([10, 12, 14, 40, 90, 85, 30, 20, 15, 12], dtype=float)
    return TimeSeries(timestamps, values)


def mid_timestamp(bundle) -> float:
    """Middle of a bundle's time extent (helper used by many tests)."""
    start, end = bundle.time_range()
    return (start + end) / 2.0
