"""Tests for the BatchLens facade."""

import pytest

from repro.app.batchlens import BatchLens
from repro.errors import BatchLensError
from repro.trace.records import TraceBundle
from repro.trace.writer import write_trace
from tests.conftest import fast_config, mid_timestamp


class TestConstruction:
    def test_from_bundle(self, healthy_bundle):
        lens = BatchLens.from_bundle(healthy_bundle)
        assert lens.time_extent == healthy_bundle.time_range()

    def test_requires_usage(self, healthy_bundle):
        with pytest.raises(BatchLensError):
            BatchLens(TraceBundle(tasks=healthy_bundle.tasks,
                                  instances=healthy_bundle.instances))

    def test_requires_scheduler_tables(self, healthy_bundle):
        with pytest.raises(BatchLensError):
            BatchLens(TraceBundle(usage=healthy_bundle.usage))

    def test_generate(self):
        lens = BatchLens.generate(fast_config("healthy", seed=42))
        assert lens.bundle.meta["seed"] == 42

    def test_generate_with_overrides(self):
        lens = BatchLens.generate(fast_config(), scenario="hotjob", seed=3)
        assert lens.bundle.meta["scenario"] == "hotjob"

    def test_from_directory_roundtrip(self, tmp_path, healthy_bundle):
        write_trace(healthy_bundle, tmp_path)
        lens = BatchLens.from_directory(tmp_path)
        assert set(lens.hierarchy.job_ids) == set(healthy_bundle.job_ids())


class TestQueries:
    def test_stats_match_hierarchy(self, healthy_lens, healthy_bundle):
        stats = healthy_lens.stats()
        assert stats.num_jobs == len(healthy_bundle.job_ids())
        assert stats.num_machines == len(healthy_bundle.machine_ids())

    def test_snapshot_regime(self, thrashing_lens, thrashing_bundle):
        t0, t1 = thrashing_bundle.meta["thrashing"]["window"]
        assessment = thrashing_lens.snapshot((t0 + t1) / 2)
        assert assessment.regime.value in ("busy", "saturated")

    def test_active_jobs(self, healthy_lens, healthy_bundle):
        timestamp = mid_timestamp(healthy_bundle)
        rows = healthy_lens.active_jobs(timestamp)
        assert {row["job_id"] for row in rows} == set(
            healthy_bundle.active_jobs(timestamp))

    def test_session_factory(self, healthy_lens):
        session = healthy_lens.session()
        assert session.hierarchy is healthy_lens.hierarchy

    def test_detect_sweeps_cluster(self, thrashing_lens, thrashing_bundle):
        events = thrashing_lens.detect("threshold", metric="mem")
        flagged = {e.subject for e in events}
        truth = set(thrashing_bundle.meta["thrashing"]["machines"])
        assert truth & flagged
        assert all(e.kind == "threshold" and e.metric == "mem" for e in events)

    def test_detect_window_filters_instead_of_slicing(self, thrashing_lens,
                                                      thrashing_bundle):
        # window filters the full-sweep events by overlap (scoring
        # semantics) — it must not re-run detection on a slice, where
        # stateful warm-ups would restart
        t0, t1 = thrashing_bundle.meta["thrashing"]["window"]
        full = thrashing_lens.detect("zscore", metric="mem")
        windowed = thrashing_lens.detect("zscore", metric="mem",
                                         window=(t0, t1))
        assert windowed == [e for e in full if e.overlaps(t0, t1)]


class TestCharts:
    def test_bubble_chart_renders(self, hotjob_lens, hotjob_bundle):
        chart = hotjob_lens.bubble_chart(mid_timestamp(hotjob_bundle), max_jobs=5)
        svg = chart.to_svg()
        assert "job-bubble" in svg
        assert "node-ring-cpu" in svg

    def test_job_lines_render_with_annotations(self, hotjob_lens, hotjob_bundle):
        job_id = hotjob_bundle.job_ids()[0]
        chart = hotjob_lens.job_lines(job_id)
        svg = chart.to_svg()
        assert "metric-line" in svg
        assert "annotation-start" in svg
        assert "annotation-end" in svg

    def test_job_lines_zoom(self, hotjob_lens, hotjob_bundle):
        job_id = hotjob_bundle.job_ids()[0]
        chart = hotjob_lens.job_lines(job_id)
        t0, t1 = chart.model.time_extent()
        zoomed = chart.zoomed(t0 + (t1 - t0) * 0.25, t0 + (t1 - t0) * 0.75)
        assert "zoom" in zoomed.title

    def test_timeline_and_heatmap(self, healthy_lens, healthy_bundle):
        timestamp = mid_timestamp(healthy_bundle)
        assert "timeline-line" in healthy_lens.timeline(
            selected_timestamp=timestamp).to_svg()
        assert "heat-cell" in healthy_lens.heatmap(metric="mem").to_svg()


class TestDashboard:
    def test_dashboard_contains_linked_views(self, hotjob_lens, hotjob_bundle):
        timestamp = mid_timestamp(hotjob_bundle)
        dash = hotjob_lens.dashboard(timestamp, max_line_panels=2)
        html = dash.to_html()
        assert "panel-timeline" in html
        assert "panel-bubble" in html
        assert html.count("<section") >= 3
        assert "data-machine" in html

    def test_dashboard_explicit_jobs(self, hotjob_lens, hotjob_bundle):
        timestamp = mid_timestamp(hotjob_bundle)
        job_id = hotjob_bundle.active_jobs(timestamp)[0]
        dash = hotjob_lens.dashboard(timestamp, jobs=[job_id], metrics=("cpu",))
        assert f"panel-job-{job_id}" in dash.to_html()

    def test_dashboard_unknown_metric_rejected(self, hotjob_lens, hotjob_bundle):
        with pytest.raises(BatchLensError):
            hotjob_lens.dashboard(mid_timestamp(hotjob_bundle), metrics=("gpu",))

    def test_save_dashboard(self, tmp_path, healthy_lens, healthy_bundle):
        path = healthy_lens.save_dashboard(mid_timestamp(healthy_bundle),
                                           tmp_path / "dash.html",
                                           max_line_panels=1)
        assert path.exists()
        assert path.read_text().startswith("<!DOCTYPE html>")
