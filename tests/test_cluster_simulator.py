"""Tests for the cluster simulator pipeline."""

import numpy as np
import pytest

from repro.cluster.simulator import ClusterSimulator, simulate
from repro.config import ClusterConfig, TraceConfig, UsageConfig, WorkloadConfig
from repro.errors import ConfigError
from repro.trace import schema
from repro.trace.validate import validate_bundle
from tests.conftest import fast_config


class TestPipelineOutputs:
    def test_bundle_sections_populated(self, healthy_bundle):
        assert healthy_bundle.machine_events
        assert healthy_bundle.tasks
        assert healthy_bundle.instances
        assert healthy_bundle.usage is not None
        assert healthy_bundle.usage.num_samples > 0

    def test_machine_count_matches_config(self):
        config = fast_config(num_machines=7)
        bundle = simulate(config)
        assert len(bundle.machine_ids()) == 7
        assert bundle.usage.num_machines == 7

    def test_usage_grid_matches_resolution_and_horizon(self):
        config = fast_config(resolution_s=300, horizon_s=3600)
        bundle = simulate(config)
        timestamps = bundle.usage.timestamps
        assert timestamps[0] == 0.0
        assert timestamps[-1] == 3600.0
        assert np.all(np.diff(timestamps) == 300.0)

    def test_usage_bounded(self, thrashing_bundle):
        assert thrashing_bundle.usage.data.min() >= 0.0
        assert thrashing_bundle.usage.data.max() <= 100.0

    def test_instances_reference_known_entities(self, healthy_bundle):
        machine_ids = set(healthy_bundle.machine_ids())
        task_keys = {(t.job_id, t.task_id) for t in healthy_bundle.tasks}
        for inst in healthy_bundle.instances:
            assert inst.machine_id in machine_ids
            assert (inst.job_id, inst.task_id) in task_keys

    def test_task_instance_counts_match(self, healthy_bundle):
        counts = {}
        for inst in healthy_bundle.instances:
            counts[(inst.job_id, inst.task_id)] = counts.get(
                (inst.job_id, inst.task_id), 0) + 1
        for task in healthy_bundle.tasks:
            assert counts[(task.job_id, task.task_id)] == task.instance_num

    def test_instance_usage_summaries_populated(self, healthy_bundle):
        with_stats = [inst for inst in healthy_bundle.instances
                      if inst.cpu_avg is not None]
        assert len(with_stats) > 0
        for inst in with_stats[:20]:
            assert 0.0 <= inst.cpu_avg <= inst.cpu_max <= 100.0

    def test_meta_records_provenance(self, hotjob_bundle):
        meta = hotjob_bundle.meta
        assert meta["scenario"] == "hotjob"
        assert meta["scheduler"] == "least-loaded"
        assert "seed" in meta and "horizon_s" in meta

    def test_generated_bundle_passes_validation(self):
        report = validate_bundle(simulate(fast_config("hotjob", seed=77)))
        assert report.ok, report.errors


class TestDeterminismAndVariation:
    def test_same_seed_same_usage(self):
        a = simulate(fast_config(seed=9))
        b = simulate(fast_config(seed=9))
        np.testing.assert_array_equal(a.usage.data, b.usage.data)

    def test_different_seed_different_usage(self):
        a = simulate(fast_config(seed=9))
        b = simulate(fast_config(seed=10))
        assert not np.array_equal(a.usage.data, b.usage.data)


class TestScenarios:
    def test_band_ordering_across_scenarios(self):
        means = {}
        for scenario in ("healthy", "hotjob", "thrashing"):
            bundle = simulate(fast_config(scenario, seed=31))
            means[scenario] = bundle.usage.aggregate("cpu").mean()
        assert means["healthy"] < means["hotjob"] <= means["thrashing"] + 5.0

    def test_healthy_band_roughly_matches_paper(self):
        bundle = simulate(TraceConfig(scenario="healthy", seed=2022))
        mean_cpu = bundle.usage.aggregate("cpu").mean()
        assert 15.0 <= mean_cpu <= 45.0

    def test_round_robin_scheduler_option(self):
        bundle = simulate(fast_config(seed=3), scheduler="round-robin")
        assert bundle.meta["scheduler"] == "round-robin"


class TestErrorHandling:
    def test_invalid_config_rejected_at_construction(self):
        with pytest.raises(ConfigError):
            ClusterSimulator(TraceConfig(horizon_s=-1))

    def test_zero_noise_supported(self):
        config = TraceConfig(
            cluster=ClusterConfig(num_machines=4),
            workload=WorkloadConfig(num_jobs=3, max_instances=4),
            usage=UsageConfig(resolution_s=300, noise_std=0.0),
            horizon_s=3600, scenario="none", seed=1)
        bundle = simulate(config)
        assert bundle.usage.data.max() <= 100.0

    def test_statuses_are_valid(self, thrashing_bundle):
        for inst in thrashing_bundle.instances:
            assert inst.status in schema.VALID_STATUSES
        for task in thrashing_bundle.tasks:
            assert task.status in schema.VALID_STATUSES
