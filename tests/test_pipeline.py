"""Unit tests for the declarative pipeline (:mod:`repro.pipeline`)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.detectors import ThresholdDetector
from repro.errors import BatchLensError, PipelineError
from repro.metrics.store import MetricStore
from repro.pipeline import (
    DetectorPlan,
    ExecutionOptions,
    Pipeline,
    SourceSpec,
    StreamingOptions,
    canonical_detector_spec,
    default_detector_names,
    detector_names,
    get_detector,
    parse_detector_spec,
    register_detector,
    register_sink,
    resolve_detectors,
    sink_names,
)
from repro.stream.monitor import MonitorConfig, OnlineMonitor


def make_store(num_machines: int = 4, num_samples: int = 24,
               seed: int = 0) -> MetricStore:
    rng = np.random.default_rng(seed)
    ids = [f"m{i}" for i in range(num_machines)]
    store = MetricStore(ids, np.arange(num_samples) * 60.0)
    store.data[:] = rng.uniform(10.0, 70.0, store.data.shape)
    store.metric_block("cpu")[0, 5:9] = 97.0
    store.metric_block("mem")[1, 10:] = 99.0
    return store


class TestDetectorRegistry:
    def test_default_names(self):
        assert detector_names() == ["ewma", "flatline", "imbalance",
                                    "sla_risk", "sync_break", "threshold",
                                    "zscore"]
        # the no-spec pipeline stack stays the per-machine quartet; the
        # cluster detectors are opt-in via spec strings
        assert default_detector_names() == ["ewma", "flatline", "threshold",
                                            "zscore"]

    def test_parse_spec_with_params(self):
        parts = parse_detector_spec("threshold(threshold=85)+flatline")
        assert parts == [("threshold", {"threshold": 85}), ("flatline", {})]

    def test_resolve_builds_instances(self):
        stack = resolve_detectors("threshold(threshold=85,min_duration_s=120)")
        (name, instance), = stack
        assert name == "threshold"
        assert instance.threshold == 85
        assert instance.min_duration_s == 120

    def test_unknown_name_lists_registered(self):
        with pytest.raises(PipelineError) as err:
            parse_detector_spec("threshold+wormhole")
        assert "wormhole" in str(err.value)
        for name in detector_names():
            assert name in str(err.value)

    def test_bad_params_are_actionable(self):
        with pytest.raises(PipelineError, match="rejected parameters"):
            get_detector("flatline", not_a_param=3)

    def test_malformed_spec(self):
        with pytest.raises(PipelineError, match="malformed"):
            parse_detector_spec("threshold(=")

    def test_errors_are_batchlens_errors(self):
        with pytest.raises(BatchLensError):
            get_detector("wormhole")

    def test_canonical_spec_round_trips(self):
        spec = "threshold(threshold=85)+ewma"
        assert canonical_detector_spec(" threshold( threshold = 85) + ewma ") \
            == spec

    def test_register_custom_detector(self):
        class Spiky(ThresholdDetector):
            kind = "spiky"

        register_detector("spiky", Spiky, "test-only")
        try:
            assert "spiky" in detector_names()
            (_, instance), = resolve_detectors("spiky(threshold=50)")
            assert isinstance(instance, Spiky)
        finally:
            from repro.pipeline import detectors as registry_module

            del registry_module._DETECTORS["spiky"]

    def test_invalid_registration_name(self):
        with pytest.raises(PipelineError):
            register_detector("a+b", ThresholdDetector)


class TestSpecs:
    def test_source_requires_known_kind(self):
        with pytest.raises(PipelineError, match="unknown source kind"):
            SourceSpec(kind="carrier-pigeon")

    def test_trace_dir_requires_path(self):
        with pytest.raises(PipelineError, match="path"):
            SourceSpec.from_dict({"kind": "trace-dir"})

    def test_shorthand_directory_vs_scenario(self, tmp_path):
        assert SourceSpec.from_shorthand(str(tmp_path)).kind == "trace-dir"
        source = SourceSpec.from_shorthand("diurnal+network-storm")
        assert source.kind == "synthetic"
        assert source.scenario == "diurnal+network-storm"

    def test_synthetic_config_keys_validated(self):
        with pytest.raises(PipelineError, match="num_gpus"):
            SourceSpec.from_dict({"kind": "synthetic", "scenario": "healthy",
                                  "config": {"num_gpus": 8}})

    def test_streaming_options_validated(self):
        with pytest.raises(PipelineError, match="cadence"):
            StreamingOptions(cadence="yearly")
        with pytest.raises(PipelineError, match="unknown streaming option"):
            StreamingOptions.from_dict({"cadnce": "sample"})

    def test_unknown_spec_key(self):
        with pytest.raises(PipelineError, match="detektors"):
            Pipeline.from_spec({"source": {"kind": "synthetic"},
                                "detektors": "threshold"})

    def test_unknown_mode_and_sink(self):
        source = {"kind": "synthetic", "scenario": "healthy"}
        with pytest.raises(PipelineError, match="mode"):
            Pipeline.from_spec({"source": source, "mode": "quantum"})
        with pytest.raises(PipelineError) as err:
            Pipeline.from_spec({"source": source, "sinks": ["telegram"]})
        for name in sink_names():
            assert name in str(err.value)

    def test_spec_needs_source(self):
        with pytest.raises(PipelineError, match="source"):
            Pipeline.from_spec({"detectors": "threshold"})

    def test_non_integer_seed_is_a_clean_error(self):
        with pytest.raises(PipelineError, match="seed"):
            SourceSpec.from_dict({"kind": "synthetic", "scenario": "healthy",
                                  "seed": "abc"})
        with pytest.raises(PipelineError, match="config.num_machines"):
            SourceSpec.from_dict({"kind": "synthetic", "scenario": "healthy",
                                  "config": {"num_machines": "lots"}})
        with pytest.raises(PipelineError, match="window_samples"):
            StreamingOptions.from_dict({"window_samples": "many"})

    def test_sinks_accept_a_bare_string(self):
        pipeline = Pipeline.from_spec({
            "source": {"kind": "synthetic", "scenario": "healthy"},
            "sinks": "report"})
        assert pipeline.sinks == ({"kind": "report"},)

    def test_json_string_spec(self):
        text = json.dumps({"source": {"kind": "synthetic",
                                      "scenario": "healthy", "seed": 3},
                           "detectors": "threshold"})
        pipeline = Pipeline.from_spec(text)
        assert pipeline.source.scenario == "healthy"
        assert [plan.label for plan in pipeline.plans] == ["threshold"]

    def test_invalid_json_string(self):
        with pytest.raises(PipelineError, match="JSON"):
            Pipeline.from_spec("{not json")

    def test_detector_list_form(self):
        pipeline = Pipeline.from_spec({
            "source": {"kind": "synthetic", "scenario": "healthy"},
            "detectors": ["flatline", "threshold"]})
        assert [plan.label for plan in pipeline.plans] \
            == ["flatline", "threshold"]

    def test_to_spec_rejects_in_memory_sources(self):
        pipeline = Pipeline.from_store(make_store(), detectors="threshold")
        with pytest.raises(PipelineError, match="serialis"):
            pipeline.to_spec()

    def test_to_spec_rejects_instance_detectors(self):
        pipeline = Pipeline(
            SourceSpec(kind="synthetic", scenario="healthy"),
            detectors={"threshold": ThresholdDetector(90.0)})
        with pytest.raises(PipelineError, match="spec-string"):
            pipeline.to_spec()

    def test_execution_options_validated(self):
        with pytest.raises(PipelineError, match="backend"):
            ExecutionOptions(backend="quantum")
        with pytest.raises(PipelineError, match="shards"):
            ExecutionOptions(shards=0)
        with pytest.raises(PipelineError, match="workers"):
            ExecutionOptions.from_dict({"workers": "many"})
        with pytest.raises(PipelineError, match="unknown execution option"):
            ExecutionOptions.from_dict({"wrokers": 4})

    def test_execution_spec_round_trip(self):
        source = {"kind": "synthetic", "scenario": "healthy", "seed": 2}
        pipeline = Pipeline.from_spec({
            "source": source,
            "execution": {"backend": "threads", "shards": 3, "workers": 2}})
        assert pipeline.execution == ExecutionOptions(
            backend="threads", shards=3, workers=2)
        assert pipeline.to_spec()["execution"] \
            == {"backend": "threads", "shards": 3, "workers": 2}
        assert Pipeline.from_spec(pipeline.to_spec()) == pipeline
        # the default execution stays out of the canonical spec
        assert "execution" not in Pipeline.from_spec({"source": source}).to_spec()

    def test_execution_workers_alone_implies_threads(self):
        """Asking for workers IS asking for parallelism — on the spec path,
        the programmatic constructor, and the CLI alike."""
        assert ExecutionOptions.from_dict({"workers": 8}) \
            == ExecutionOptions(backend="threads", workers=8)
        assert ExecutionOptions.from_dict({"shards": 4}).backend == "threads"
        assert ExecutionOptions.from_dict(
            {"backend": "serial", "workers": 8}).backend == "serial"
        assert ExecutionOptions.from_dict({}).backend == "serial"
        assert ExecutionOptions(workers=8).backend == "threads"
        assert ExecutionOptions(workers=8).sharded
        assert ExecutionOptions(shards=2).backend == "threads"

    def test_streaming_mode_rejects_execution_options(self):
        with pytest.raises(PipelineError, match="batch mode only"):
            Pipeline.from_spec({
                "source": {"kind": "synthetic", "scenario": "healthy"},
                "mode": "streaming",
                "execution": {"workers": 4}})

    def test_default_execution_is_serial_unsharded(self):
        pipeline = Pipeline.from_spec(
            {"source": {"kind": "synthetic", "scenario": "healthy"}})
        assert pipeline.execution == ExecutionOptions()
        assert not pipeline.execution.sharded
        assert ExecutionOptions(backend="threads").sharded
        assert ExecutionOptions(shards=4).sharded

    def test_plans_and_detectors_are_exclusive(self):
        plan = DetectorPlan(label="t", name="threshold", metric="cpu",
                            detector=ThresholdDetector(90.0))
        with pytest.raises(PipelineError, match="not both"):
            Pipeline(SourceSpec(kind="synthetic", scenario="healthy"),
                     detectors="threshold", plans=(plan,))


class TestBatchRun:
    def test_run_matches_engine_directly(self):
        from repro.analysis.engine import DetectionEngine

        store = make_store()
        detector = ThresholdDetector(90.0)
        result = Pipeline.from_store(
            store, detectors={"threshold": detector}, sinks=()).run()
        direct = DetectionEngine().run(store, detector, metric="cpu")
        assert result.events() == direct.events()
        assert result.flagged_machines() == direct.flagged_machines()
        assert result.num_events == direct.num_events

    def test_multi_metric_labels(self):
        store = make_store()
        result = Pipeline.from_store(
            store, detectors="threshold(threshold=95)",
            metrics=("cpu", "mem"), sinks=()).run()
        assert [run.label for run in result.detections] \
            == ["threshold@cpu", "threshold@mem"]
        assert result.flagged_machines("threshold@cpu") == {"m0"}
        assert result.flagged_machines("threshold@mem") == {"m1"}
        assert result.flagged_machines() == {"m0", "m1"}

    def test_duplicate_detectors_get_distinct_labels(self):
        store = make_store()
        result = Pipeline.from_store(
            store, detectors="threshold(threshold=95)+threshold(threshold=50)",
            sinks=()).run()
        assert [run.label for run in result.detections] \
            == ["threshold", "threshold#2"]

    def test_unknown_detection_label(self):
        result = Pipeline.from_store(make_store(), detectors="threshold",
                                     sinks=()).run()
        with pytest.raises(PipelineError, match="no detection labelled"):
            result.detection("zscore")

    def test_window_filter_matches_engine_semantics(self):
        from repro.analysis.engine import DetectionEngine

        store = make_store()
        result = Pipeline.from_store(
            store, detectors="threshold(threshold=95)", sinks=()).run()
        window = (0.0, 6 * 60.0)
        direct = DetectionEngine().run(store, ThresholdDetector(95.0))
        assert result.flagged_machines(window=window) \
            == direct.flagged_machines(window)

    def test_timings_recorded(self):
        result = Pipeline.from_store(make_store(), detectors="threshold",
                                     sinks=()).run()
        assert set(result.timings) \
            == {"source_s", "detect_s", "sinks_s", "total_s"}
        assert result.timings["total_s"] >= 0.0


class TestEmptyAndTinyStores:
    """The edge-case satellite: degenerate stores yield empty results."""

    @pytest.mark.parametrize("num_samples", [0, 1])
    def test_engine_run_degenerate_store(self, num_samples):
        from repro.analysis.engine import DetectionEngine

        store = MetricStore(["a", "b"], np.arange(num_samples) * 60.0)
        engine = DetectionEngine()
        for name in detector_names():
            # cluster detectors are registered only with the pipeline, so
            # hand the engine an instance rather than a name
            result = engine.run(store, get_detector(name))
            assert result.num_events == 0
            assert result.events() == []
            assert result.flagged_machines() == set()

    def test_engine_run_no_machines(self):
        from repro.analysis.engine import DetectionEngine

        store = MetricStore([], np.arange(5) * 60.0)
        assert DetectionEngine().run(store, "zscore").num_events == 0

    @pytest.mark.parametrize("num_samples", [0, 1])
    def test_catch_up_degenerate_store(self, num_samples):
        # all-zero data below the threshold: neither sample count may error,
        # and neither produces an alert
        store = MetricStore(["a", "b"], np.arange(num_samples) * 60.0)
        monitor = OnlineMonitor(store.machine_ids,
                                config=MonitorConfig(utilisation_threshold=50))
        assert monitor.catch_up(store) == []
        assert monitor._samples_seen == num_samples

    def test_pipeline_empty_store_returns_empty_result(self):
        store = MetricStore(["a"], np.array([]))
        for mode in ("batch", "streaming"):
            result = Pipeline.from_store(store, detectors="threshold",
                                         mode=mode, sinks=()).run()
            assert result.empty
            assert result.detections == ()
            assert result.alerts == ()
            assert result.events() == []
            assert result.flagged_machines() == set()

    def test_pipeline_single_sample_store_runs(self):
        store = MetricStore(["a"], np.array([0.0]))
        store.metric_block("cpu")[0, 0] = 99.0
        batch = Pipeline.from_store(store, detectors="threshold",
                                    sinks=()).run()
        assert not batch.empty
        assert batch.num_events == 1
        streaming = Pipeline.from_store(store, mode="streaming",
                                        sinks=()).run()
        assert streaming.alerts_by_kind() == {"threshold": 1}

    def test_pipeline_usage_less_bundle_returns_empty_result(self,
                                                             healthy_bundle):
        import dataclasses

        bundle = dataclasses.replace(healthy_bundle, usage=None)
        result = Pipeline.from_bundle(bundle).run()
        assert result.empty

    def test_empty_source_still_produces_sink_outputs(self, tmp_path):
        target = tmp_path / "empty.md"
        store = MetricStore(["a"], np.array([]))
        result = Pipeline.from_store(
            store, detectors="threshold",
            sinks=({"kind": "report", "path": str(target)}, "json",
                   "score")).run()
        assert result.empty
        assert target.exists()
        assert "Pipeline run" in result.outputs["report"]
        assert result.outputs["json"]["num_samples"] == 0
        assert result.outputs["score"] == ()

    def test_comparison_sink_rejects_empty_source_cleanly(self):
        store = MetricStore(["a"], np.array([]))
        pipeline = Pipeline.from_store(store, plans=(), sinks=("comparison",))
        with pytest.raises(PipelineError, match="empty"):
            pipeline.run()


class TestStreaming:
    def test_catch_up_parity_with_monitor(self):
        store = make_store()
        result = Pipeline.from_store(
            store, mode="streaming", sinks=("alerts",),
            streaming=StreamingOptions(threshold=92.0,
                                       window_samples=64)).run()
        monitor = OnlineMonitor(store.machine_ids,
                                config=MonitorConfig(utilisation_threshold=92.0),
                                window_samples=64)
        direct = monitor.catch_up(store)
        assert list(result.alerts) == direct
        assert result.outputs["alerts"] == result.alerts_by_kind()
        assert result.monitor is not None

    def test_sample_cadence_matches_replayer(self, thrashing_bundle):
        from repro.stream.replay import replay_with_alerts

        result = Pipeline.from_bundle(
            thrashing_bundle, mode="streaming",
            streaming=StreamingOptions(threshold=92.0, cadence="sample"),
            sinks=()).run()
        report, _manager = replay_with_alerts(
            thrashing_bundle,
            monitor_config=MonitorConfig(utilisation_threshold=92.0))
        assert result.replay.samples_replayed == report.samples_replayed
        assert result.replay.alerts_by_kind == report.alerts_by_kind
        assert result.replay.final_regime == report.final_regime
        assert result.alert_manager is not None

    def test_sample_cadence_needs_a_bundle(self):
        pipeline = Pipeline.from_store(
            make_store(), mode="streaming",
            streaming=StreamingOptions(cadence="sample"), sinks=())
        with pytest.raises(PipelineError, match="catch-up"):
            pipeline.run()


class TestSinks:
    def test_report_and_json_sinks(self, tmp_path):
        target = tmp_path / "run.json"
        result = Pipeline.from_store(
            make_store(), detectors="threshold(threshold=95)",
            sinks=("report", {"kind": "json", "path": str(target)})).run()
        assert "Pipeline run" in result.outputs["report"]
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert payload == result.outputs["json"]
        assert payload["detections"][0]["detector"] == "threshold"
        assert payload["detections"][0]["flagged_machines"] == ["m0"]

    def test_score_sink_empty_without_bundle(self):
        result = Pipeline.from_store(make_store(), detectors="threshold",
                                     sinks=("score",)).run()
        assert result.scores == ()

    def test_score_sink_matches_score_bundle(self, thrashing_bundle):
        from repro.scenarios.scoring import score_bundle

        result = Pipeline.from_bundle(thrashing_bundle, plans=(),
                                      sinks=("score",)).run()
        assert list(result.scores) == score_bundle(thrashing_bundle)

    def test_comparison_sink_needs_bundle(self):
        pipeline = Pipeline.from_store(make_store(), plans=(),
                                       sinks=("comparison",))
        with pytest.raises(PipelineError, match="comparison"):
            pipeline.run()

    def test_dashboard_sink(self, tmp_path, hotjob_bundle):
        target = tmp_path / "dash.html"
        result = Pipeline.from_bundle(
            hotjob_bundle, plans=(),
            sinks=({"kind": "dashboard", "path": str(target)},)).run()
        assert target.exists()
        assert result.outputs["dashboard"] == target

    def test_dashboard_sink_needs_path(self, hotjob_bundle):
        pipeline = Pipeline.from_bundle(hotjob_bundle, plans=(),
                                        sinks=("dashboard",))
        with pytest.raises(PipelineError, match="path"):
            pipeline.run()

    def test_register_custom_sink(self):
        def count_sink(result, *, bundle, store, options):
            result.outputs["count"] = result.num_events

        register_sink("count", count_sink)
        try:
            result = Pipeline.from_store(
                make_store(), detectors="threshold(threshold=95)",
                sinks=("count",)).run()
            assert result.outputs["count"] == result.num_events
        finally:
            from repro.pipeline import sinks as sinks_module

            del sinks_module._SINKS["count"]


class TestShims:
    def test_batchlens_detect_is_deprecated_but_identical(self, hotjob_bundle):
        from repro.analysis.engine import default_engine
        from repro.app.batchlens import BatchLens

        lens = BatchLens.from_bundle(hotjob_bundle)
        with pytest.warns(DeprecationWarning, match="pipeline"):
            events = lens.detect("zscore", metric="mem")
        assert events == default_engine().run(lens.store, "zscore",
                                              metric="mem").events()

    def test_threshold_monitor_scan_is_deprecated_but_identical(self):
        from repro.baselines.threshold_monitor import ThresholdMonitor

        store = make_store()
        deprecated = ThresholdMonitor(cpu_threshold=92.0)
        with pytest.warns(DeprecationWarning, match="pipeline"):
            old_alerts = deprecated.scan(store)
        fresh = ThresholdMonitor(cpu_threshold=92.0)
        new_alerts = fresh.ingest(fresh.scan_pipeline(store).run())
        assert old_alerts == new_alerts
