"""Property suite: the mirrored ring buffer equals a deque-of-frames model.

The streaming store's storage was rewritten from a deque of per-sample
frames to a preallocated mirrored NumPy ring; these tests pin the rewrite
bit-identical to the original semantics across interleaved ``append`` /
``append_block`` / ``snapshot_store`` sequences — including window
overflow, oversized blocks and the ``is_full()`` transition — via a
reference model implementing the old deque behaviour verbatim.
"""

from __future__ import annotations

from collections import deque

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import METRICS
from repro.errors import SeriesError
from repro.stream.store import StreamingMetricStore

MACHINES = ("m0", "m1", "m2")


class DequeReference:
    """The pre-refactor deque-of-frames store, kept as the test oracle."""

    def __init__(self, machine_ids, window_samples):
        self.machine_ids = list(machine_ids)
        self.window = window_samples
        self.timestamps: deque[float] = deque(maxlen=window_samples)
        self.frames: deque[np.ndarray] = deque(maxlen=window_samples)

    def append(self, timestamp, sample):
        frame = (self.frames[-1].copy() if self.frames
                 else np.zeros((len(self.machine_ids), len(METRICS))))
        for machine_id, values in sample.items():
            row = self.machine_ids.index(machine_id)
            for metric, value in values.items():
                frame[row, METRICS.index(metric)] = float(value)
        self.timestamps.append(float(timestamp))
        self.frames.append(frame)

    def append_block(self, timestamps, block):
        self.timestamps.extend(np.asarray(timestamps, dtype=float).tolist())
        for i in range(block.shape[2]):
            self.frames.append(np.array(block[:, :, i], dtype=float))

    @property
    def data(self):
        stacked = np.stack(list(self.frames), axis=0)
        return np.transpose(stacked, (1, 2, 0))


def values_strategy():
    return st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


def sample_op():
    return st.tuples(
        st.just("sample"),
        st.dictionaries(
            st.sampled_from(MACHINES),
            st.dictionaries(st.sampled_from(METRICS), values_strategy(),
                            min_size=1, max_size=len(METRICS)),
            min_size=1, max_size=len(MACHINES)))


def block_op():
    return st.tuples(
        st.just("block"),
        st.lists(st.lists(values_strategy(), min_size=len(MACHINES) * len(METRICS),
                          max_size=len(MACHINES) * len(METRICS)),
                 min_size=1, max_size=9))


@settings(max_examples=60, deadline=None)
@given(window=st.integers(min_value=2, max_value=6),
       steps=st.lists(st.integers(min_value=1, max_value=100), min_size=1,
                      max_size=12),
       ops=st.lists(st.one_of(sample_op(), block_op()), min_size=1,
                    max_size=12))
def test_ring_matches_deque_reference(window, steps, ops):
    store = StreamingMetricStore(MACHINES, window_samples=window)
    reference = DequeReference(MACHINES, window)
    clock = 0.0
    for op, step in zip(ops, steps + steps * (len(ops) // len(steps))):
        kind, payload = op
        if kind == "sample":
            clock += step
            store.append(clock, payload)
            reference.append(clock, payload)
        else:
            timestamps = clock + np.arange(1, len(payload) + 1) * float(step)
            clock = float(timestamps[-1])
            block = np.asarray(payload, dtype=float).reshape(
                len(payload), len(MACHINES), len(METRICS))
            block = np.transpose(block, (1, 2, 0))
            store.append_block(timestamps, block)
            reference.append_block(timestamps, block)
        # bit-identical window content, length and overflow state after
        # every single operation — wrap-around has no grace period
        assert len(store) == len(reference.timestamps)
        assert store.is_full() == (len(reference.timestamps) == window)
        snapshot = store.snapshot_store()
        assert snapshot.timestamps.tolist() == list(reference.timestamps)
        np.testing.assert_array_equal(snapshot.data, reference.data)
        assert store.latest_timestamp == reference.timestamps[-1]
        for row, machine_id in enumerate(MACHINES):
            assert store.latest(machine_id, "cpu") \
                == reference.frames[-1][row, METRICS.index("cpu")]


class TestWindowView:
    def test_zero_copy_and_read_only(self):
        store = StreamingMetricStore(["a", "b"], window_samples=4)
        for i in range(6):   # force wrap-around
            store.append(float(i), {"a": {"cpu": float(i * 10)}})
        view = store.window_view()
        assert np.shares_memory(view.data, store._buffer)
        assert not view.data.flags.writeable
        assert view.timestamps.tolist() == [2.0, 3.0, 4.0, 5.0]
        np.testing.assert_array_equal(view.metric_block("cpu")[0],
                                      [20.0, 30.0, 40.0, 50.0])

    def test_view_matches_snapshot_after_every_append(self):
        store = StreamingMetricStore(["a"], window_samples=3)
        for i in range(8):
            store.append(float(i), {"a": {"cpu": float(i)}})
            view = store.window_view()
            snapshot = store.snapshot_store()
            np.testing.assert_array_equal(view.data, snapshot.data)
            np.testing.assert_array_equal(view.timestamps,
                                          snapshot.timestamps)

    def test_snapshot_is_independent_copy(self):
        store = StreamingMetricStore(["a"], window_samples=3)
        store.append(0.0, {"a": {"cpu": 10.0}})
        snapshot = store.snapshot_store()
        store.append(60.0, {"a": {"cpu": 99.0}})
        assert snapshot.num_samples == 1
        assert snapshot.series("a", "cpu").values.tolist() == [10.0]

    def test_empty_store_view_raises(self):
        store = StreamingMetricStore(["a"], window_samples=3)
        with pytest.raises(SeriesError):
            store.window_view()


class TestLatestAccessorErrors:
    def test_unknown_machine_raises_series_error(self):
        store = StreamingMetricStore(["a"], window_samples=4)
        store.append(0.0, {"a": {"cpu": 5.0}})
        with pytest.raises(SeriesError, match="unknown machine"):
            store.latest("ghost", "cpu")

    def test_unknown_metric_raises_series_error(self):
        store = StreamingMetricStore(["a"], window_samples=4)
        store.append(0.0, {"a": {"cpu": 5.0}})
        with pytest.raises(SeriesError, match="unknown metric"):
            store.latest("a", "gpu")

    def test_append_frame_validations(self):
        store = StreamingMetricStore(["a"], window_samples=4)
        with pytest.raises(SeriesError):
            store.append_frame(0.0, np.zeros((2, 3)))
        with pytest.raises(SeriesError):
            store.append_frame(0.0, np.full((1, 3), 120.0))
        store.append_frame(0.0, np.full((1, 3), 50.0))
        with pytest.raises(SeriesError):
            store.append_frame(0.0, np.full((1, 3), 50.0))  # not after
        assert store.latest("a", "cpu") == 50.0

    def test_append_frame_rejects_nan(self):
        # `min() < 0 or max() > 100` is False for NaN — the dense path must
        # reject NaN exactly like the dict path does
        store = StreamingMetricStore(["a"], window_samples=4)
        frame = np.full((1, 3), 50.0)
        frame[0, 0] = np.nan
        with pytest.raises(SeriesError):
            store.append_frame(0.0, frame)
        with pytest.raises(SeriesError):
            store.append_block(np.array([0.0]), frame[:, :, np.newaxis])
