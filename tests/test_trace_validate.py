"""Tests for trace-bundle validation."""

import numpy as np
import pytest

from repro.errors import TraceValidationError
from repro.metrics.store import MetricStore
from repro.trace.records import (
    BatchInstanceRecord,
    BatchTaskRecord,
    MachineEvent,
    TraceBundle,
)
from repro.trace.validate import validate_bundle


def minimal_bundle() -> TraceBundle:
    store = MetricStore(["m1"], np.array([0.0, 100.0]))
    store.set_series("m1", "cpu", [10, 20])
    return TraceBundle(
        machine_events=[MachineEvent(0, "m1", "add")],
        tasks=[BatchTaskRecord(0, 100, "j1", "t1", 1, "Terminated")],
        instances=[BatchInstanceRecord(0, 100, "j1", "t1", "m1", "Terminated",
                                       1, 1, 10.0, 20.0, 10.0, 20.0)],
        usage=store,
    )


class TestValidBundle:
    def test_generated_bundles_are_valid(self, healthy_bundle, hotjob_bundle,
                                         thrashing_bundle):
        for bundle in (healthy_bundle, hotjob_bundle, thrashing_bundle):
            report = validate_bundle(bundle)
            assert report.ok, report.errors

    def test_minimal_bundle_valid(self):
        report = validate_bundle(minimal_bundle())
        assert report.ok
        report.raise_if_failed()


class TestMachineEventChecks:
    def test_unknown_event_type(self):
        bundle = minimal_bundle()
        bundle.machine_events.append(MachineEvent(5, "m1", "explode"))
        report = validate_bundle(bundle)
        assert any("unknown event type" in e for e in report.errors)

    def test_negative_timestamp(self):
        bundle = minimal_bundle()
        bundle.machine_events.append(MachineEvent(-5, "m2", "add"))
        report = validate_bundle(bundle)
        assert any("negative timestamp" in e for e in report.errors)

    def test_duplicate_add_is_warning(self):
        bundle = minimal_bundle()
        bundle.machine_events.append(MachineEvent(10, "m1", "add"))
        report = validate_bundle(bundle)
        assert report.ok
        assert any("added twice" in w for w in report.warnings)


class TestTaskChecks:
    def test_duplicate_task(self):
        bundle = minimal_bundle()
        bundle.tasks.append(BatchTaskRecord(0, 50, "j1", "t1", 1, "Terminated"))
        report = validate_bundle(bundle)
        assert any("duplicate task" in e for e in report.errors)

    def test_non_positive_instance_num(self):
        bundle = minimal_bundle()
        bundle.tasks.append(BatchTaskRecord(0, 50, "j2", "t1", 0, "Terminated"))
        report = validate_bundle(bundle)
        assert any("instance_num" in e for e in report.errors)

    def test_modified_before_created(self):
        bundle = minimal_bundle()
        bundle.tasks.append(BatchTaskRecord(100, 50, "j3", "t1", 1, "Terminated"))
        report = validate_bundle(bundle)
        assert any("modified before created" in e for e in report.errors)


class TestInstanceChecks:
    def test_unknown_task_reference(self):
        bundle = minimal_bundle()
        bundle.instances.append(BatchInstanceRecord(0, 10, "ghost", "t1", "m1",
                                                    "Terminated", 1, 1))
        report = validate_bundle(bundle)
        assert any("unknown task" in e for e in report.errors)

    def test_end_before_start(self):
        bundle = minimal_bundle()
        bundle.instances[0] = BatchInstanceRecord(100, 50, "j1", "t1", "m1",
                                                  "Terminated", 1, 1)
        report = validate_bundle(bundle)
        assert any("ends before it starts" in e for e in report.errors)

    def test_terminated_without_machine(self):
        bundle = minimal_bundle()
        bundle.instances[0] = BatchInstanceRecord(0, 100, "j1", "t1", None,
                                                  "Terminated", 1, 1)
        report = validate_bundle(bundle)
        assert any("no machine" in e for e in report.errors)

    def test_unknown_machine_reference(self):
        bundle = minimal_bundle()
        bundle.instances[0] = BatchInstanceRecord(0, 100, "j1", "t1", "m9",
                                                  "Terminated", 1, 1)
        report = validate_bundle(bundle)
        assert any("unknown machine" in e for e in report.errors)

    def test_out_of_range_cpu(self):
        bundle = minimal_bundle()
        bundle.instances[0] = BatchInstanceRecord(0, 100, "j1", "t1", "m1",
                                                  "Terminated", 1, 1,
                                                  cpu_avg=140.0)
        report = validate_bundle(bundle)
        assert any("outside [0, 100]" in e for e in report.errors)

    def test_instance_count_mismatch_is_warning(self):
        bundle = minimal_bundle()
        bundle.tasks[0] = BatchTaskRecord(0, 100, "j1", "t1", 5, "Terminated")
        report = validate_bundle(bundle)
        assert report.ok
        assert any("declares" in w for w in report.warnings)


class TestUsageChecks:
    def test_out_of_range_usage(self):
        bundle = minimal_bundle()
        bundle.usage.data[0, 0, 0] = 150.0
        report = validate_bundle(bundle)
        assert any("outside [0, 100]" in e for e in report.errors)

    def test_usage_for_unknown_machine(self):
        bundle = minimal_bundle()
        store = MetricStore(["m1", "m_unknown"], np.array([0.0]))
        bundle.usage = store
        report = validate_bundle(bundle)
        assert any("absent from machine_events" in e for e in report.errors)

    def test_missing_usage_is_warning_only(self):
        bundle = minimal_bundle()
        bundle.usage = None
        report = validate_bundle(bundle)
        assert report.ok
        assert any("no usage samples" in w for w in report.warnings)


class TestReportBehaviour:
    def test_raise_if_failed(self):
        bundle = minimal_bundle()
        bundle.machine_events.append(MachineEvent(-1, "mX", "add"))
        report = validate_bundle(bundle)
        with pytest.raises(TraceValidationError):
            report.raise_if_failed()
