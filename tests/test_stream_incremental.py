"""Golden suite: the incremental streaming engine is a full rescan, bit for bit.

The streaming refactor's core invariant: feeding a trace through
:meth:`DetectionEngine.run_incremental` in chunks — any chunks — produces
exactly the verdict of one batch :meth:`DetectionEngine.run` over the whole
trace.  These tests pin that for every registered detector × scenario ×
chunk size (including 1 and whole-trace), at every chunk boundary, and the
same chunk-invariance for the online monitor's threshold alerts and the
streaming pipeline's detections.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.engine import DetectionEngine
from repro.errors import SeriesError
from repro.pipeline import Pipeline, StreamingOptions, default_detector_names
from repro.stream.monitor import MonitorConfig, OnlineMonitor
from repro.trace.synthetic import generate_trace

from tests.conftest import fast_config

SEED = 808
SCENARIOS = ("thrashing", "machine-failure+network-storm",
             "diurnal+memory-thrash")
CHUNKS = (1, 7, 64, None)   # None = the whole trace in one chunk


@pytest.fixture(scope="module")
def stores():
    return {scenario: generate_trace(fast_config(scenario, seed=SEED)).usage
            for scenario in SCENARIOS}


def chunk_bounds(num_samples: int, chunk: int | None):
    step = chunk or num_samples
    return [(lo, min(lo + step, num_samples))
            for lo in range(0, num_samples, step)]


class TestEngineIncrementalGolden:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    @pytest.mark.parametrize("detector", default_detector_names())
    @pytest.mark.parametrize("chunk", CHUNKS)
    def test_incremental_equals_batch(self, scenario, detector, chunk, stores):
        store = stores[scenario]
        engine = DetectionEngine()
        state = engine.stream(store.machine_ids, detector)
        for lo, hi in chunk_bounds(store.num_samples, chunk):
            engine.run_incremental(state, store.sample_slice(lo, hi))
        batch = engine.run(store, detector)
        assert state.events() == batch.events(), (
            f"{scenario}/{detector}/chunk={chunk} diverged from batch")
        assert state.flagged_machines() == batch.flagged_machines()
        assert state.num_events == batch.num_events

    @pytest.mark.parametrize("detector", default_detector_names())
    def test_every_boundary_is_a_valid_prefix(self, detector, stores):
        """At ANY chunk boundary the stream equals a batch run of the prefix."""
        store = stores["thrashing"]
        engine = DetectionEngine()
        state = engine.stream(store.machine_ids, detector)
        for lo, hi in chunk_bounds(store.num_samples, 7):
            engine.run_incremental(state, store.sample_slice(lo, hi))
            prefix = engine.run(store.sample_slice(0, hi), detector)
            assert state.events() == prefix.events(), (
                f"{detector}: prefix [0, {hi}) diverged")

    def test_windowed_flagging_matches_batch(self, stores):
        store = stores["machine-failure+network-storm"]
        engine = DetectionEngine()
        state = engine.stream(store.machine_ids, "flatline")
        for lo, hi in chunk_bounds(store.num_samples, 16):
            engine.run_incremental(state, store.sample_slice(lo, hi))
        batch = engine.run(store, "flatline")
        mid = float(store.timestamps[store.num_samples // 2])
        window = (mid, float(store.timestamps[-1]))
        assert state.flagged_machines(window) == batch.flagged_machines(window)

    def test_raw_block_form(self, stores):
        store = stores["thrashing"]
        engine = DetectionEngine()
        state = engine.stream(store.machine_ids, "threshold", metric="mem")
        block = store.metric_block("mem")
        for lo, hi in chunk_bounds(store.num_samples, 13):
            engine.run_incremental(state, block[:, lo:hi],
                                   timestamps=store.timestamps[lo:hi])
        assert state.events() == engine.run(store, "threshold",
                                            metric="mem").events()

    def test_detector_parameters_respected(self, stores):
        """Keep-filters (min duration / samples) survive chunk boundaries."""
        from repro.analysis.detectors import FlatlineDetector, ThresholdDetector

        store = stores["machine-failure+network-storm"]
        engine = DetectionEngine()
        for det in (FlatlineDetector(min_samples=5),
                    ThresholdDetector(80.0, min_duration_s=600.0)):
            batch = engine.run(store, det)
            state = engine.stream(store.machine_ids, det)
            for lo, hi in chunk_bounds(store.num_samples, 3):
                engine.run_incremental(state, store.sample_slice(lo, hi))
            assert state.events() == batch.events()

    def test_rejects_stale_and_mismatched_chunks(self, stores):
        store = stores["thrashing"]
        engine = DetectionEngine()
        state = engine.stream(store.machine_ids, "threshold")
        engine.run_incremental(state, store.sample_slice(0, 4))
        with pytest.raises(SeriesError):
            engine.run_incremental(state, store.sample_slice(0, 4))  # not after
        with pytest.raises(SeriesError):
            engine.run_incremental(state, np.zeros((2, 3)),
                                   timestamps=np.arange(3.0) + 1e9)
        with pytest.raises(SeriesError):
            engine.run_incremental(state, store.metric_block("cpu")[:, 4:8])

    def test_empty_chunk_is_a_noop(self, stores):
        store = stores["thrashing"]
        engine = DetectionEngine()
        state = engine.stream(store.machine_ids, "ewma")
        engine.run_incremental(state, store.sample_slice(0, 10))
        before = state.events()
        engine.run_incremental(state, store.sample_slice(10, 10))
        assert state.events() == before

    def test_per_series_only_detector_cannot_stream(self):
        class LegacyDetector:
            def detect(self, series, *, metric="cpu", subject=""):
                return []

        with pytest.raises(SeriesError):
            DetectionEngine().stream(["a"], LegacyDetector())


class TestMonitorChunkInvariance:
    def _sample_loop_monitor(self, store, config):
        from repro.stream.monitor import iter_frames

        monitor = OnlineMonitor(store.machine_ids, config=config,
                                window_samples=64)
        for timestamp, frame in iter_frames(store):
            monitor.observe_frame(timestamp, frame)
        return monitor

    @pytest.mark.parametrize("chunk", (1, 5, 17, None))
    def test_threshold_alerts_chunk_invariant(self, chunk, stores):
        store = stores["thrashing"]
        config = MonitorConfig(utilisation_threshold=90.0)
        sample_loop = self._sample_loop_monitor(store, config)
        chunked = OnlineMonitor(store.machine_ids, config=config,
                                window_samples=64)
        for lo, hi in chunk_bounds(store.num_samples, chunk):
            chunked.catch_up(store.sample_slice(lo, hi))
        assert (chunked.alerts_of_kind("threshold")
                == sample_loop.alerts_of_kind("threshold"))
        assert chunked._over_threshold == sample_loop._over_threshold

    def test_observe_frame_equals_observe_dict(self, stores):
        from repro.stream.monitor import iter_frames, iter_samples

        store = stores["thrashing"]
        config = MonitorConfig(utilisation_threshold=90.0,
                               thrashing_scan_every=2)
        dense = OnlineMonitor(store.machine_ids, config=config,
                              window_samples=64)
        for timestamp, frame in iter_frames(store):
            dense.observe_frame(timestamp, frame)
        dicts = OnlineMonitor(store.machine_ids, config=config,
                              window_samples=64)
        for timestamp, sample in iter_samples(store):
            dicts.observe(timestamp, sample)
        assert dense.alerts == dicts.alerts
        assert dense.current_regime == dicts.current_regime


class TestStreamingPipeline:
    @pytest.mark.parametrize("chunk", (1, 16, None))
    def test_streaming_detections_equal_batch(self, chunk, stores):
        store = stores["machine-failure+network-storm"]
        batch = Pipeline.from_store(store, sinks=()).run()
        streaming = Pipeline.from_store(
            store, mode="streaming", sinks=(),
            streaming=StreamingOptions(chunk=chunk)).run()
        assert [run.label for run in streaming.detections] \
            == [run.label for run in batch.detections]
        for s_run, b_run in zip(streaming.detections, batch.detections):
            assert s_run.result.events() == b_run.result.events()
            assert s_run.result.flagged_machines() \
                == b_run.result.flagged_machines()

    def test_chunked_threshold_alerts_match_single_catch_up(self, stores):
        store = stores["thrashing"]
        single = Pipeline.from_store(store, plans=(), mode="streaming",
                                     sinks=()).run()
        chunked = Pipeline.from_store(
            store, plans=(), mode="streaming", sinks=(),
            streaming=StreamingOptions(chunk=9)).run()
        assert ([a for a in chunked.alerts if a.kind == "threshold"]
                == [a for a in single.alerts if a.kind == "threshold"])

    def test_spec_round_trip_with_chunk(self):
        spec = {"source": {"kind": "synthetic", "scenario": "memory-thrash",
                           "seed": 3},
                "mode": "streaming",
                "detectors": "threshold(threshold=88)+flatline",
                "streaming": {"threshold": 88.0, "chunk": 32}}
        pipeline = Pipeline.from_spec(spec)
        assert pipeline.streaming.chunk == 32
        respun = Pipeline.from_spec(pipeline.to_spec())
        assert respun == pipeline
        assert respun.to_spec()["streaming"]["chunk"] == 32

    def test_chunk_rejected_for_sample_cadence(self):
        from repro.errors import PipelineError

        with pytest.raises(PipelineError):
            StreamingOptions(cadence="sample", chunk=8)
        with pytest.raises(PipelineError):
            StreamingOptions(chunk=0)

    def test_streaming_run_result_serialises(self, stores):
        store = stores["thrashing"]
        result = Pipeline.from_store(
            store, mode="streaming", detectors="threshold",
            sinks=("json",),
            streaming=StreamingOptions(chunk=8)).run()
        payload = result.outputs["json"]
        assert payload["mode"] == "streaming"
        assert payload["detections"][0]["detector"] == "threshold"
        batch = Pipeline.from_store(store, detectors="threshold",
                                    sinks=()).run()
        assert (payload["detections"][0]["flagged_machines"]
                == sorted(batch.detections[0].result.flagged_machines()))


class TestMonitorStateStaysBounded:
    def test_flapping_threshold_episodes_do_not_accumulate(self):
        """A forever-lived monitor keeps O(machines) threshold state, not
        one archived run per closed episode."""
        monitor = OnlineMonitor(["m1"],
                                config=MonitorConfig(utilisation_threshold=90.0,
                                                     thrashing_scan_every=10**9),
                                window_samples=8)
        for i in range(200):   # machine flaps across the threshold each sample
            value = 95.0 if i % 2 else 10.0
            monitor.observe(float(i), {"m1": {"cpu": value, "mem": 10.0,
                                              "disk": 0.0}})
        for _position, _metric, _column, state in monitor._threshold_streams:
            assert state._closed == []
        assert len(monitor.alerts_of_kind("threshold")) == 100
