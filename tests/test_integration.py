"""Cross-module integration tests: the full analyst workflow end to end."""

import numpy as np
import pytest

from repro.analysis.patterns import Regime, classify_regime
from repro.analysis.rootcause import anomalous_machines_in_window, rank_root_causes
from repro.app.batchlens import BatchLens
from repro.app.export import case_study_narrative
from repro.baselines.flat_dashboard import FlatDashboard
from repro.baselines.threshold_monitor import ThresholdMonitor
from repro.cluster.hierarchy import BatchHierarchy
from repro.trace.loader import load_trace
from repro.trace.validate import validate_bundle
from repro.trace.writer import write_trace
from tests.conftest import fast_config, mid_timestamp


class TestGenerateSaveLoadAnalyse:
    """Generate → write CSV → reload → analyse, as a downstream user would."""

    def test_full_pipeline_via_disk(self, tmp_path):
        lens = BatchLens.generate(fast_config("hotjob", seed=55))
        write_trace(lens.bundle, tmp_path / "trace")
        reloaded = load_trace(tmp_path / "trace")
        assert validate_bundle(reloaded).ok

        lens2 = BatchLens.from_bundle(reloaded)
        assert lens2.stats().num_jobs == lens.stats().num_jobs

        timestamp = mid_timestamp(reloaded)
        dashboard = lens2.dashboard(timestamp, max_line_panels=1)
        path = dashboard.save(tmp_path / "dash.html")
        html = path.read_text()
        assert "panel-bubble" in html
        assert "node-ring-cpu" in html


class TestAnalystWorkflow:
    """The §IV workflow: timeline → snapshot → bubble chart → job drill-down."""

    def test_interactive_drilldown(self, hotjob_bundle):
        lens = BatchLens.from_bundle(hotjob_bundle)
        session = lens.session()

        # 1. pick the moment of peak cluster CPU from the timeline
        timeline = session.timeline_model()
        peak_time = timeline.layers["cpu"].argmax()
        session.select_timestamp(peak_time)

        # 2. the bubble chart shows the active jobs at that moment
        bubble = session.bubble_model()
        assert bubble.jobs
        assert {j.job_id for j in bubble.jobs} <= set(
            hotjob_bundle.active_jobs(peak_time))

        # 3. drill into the busiest job's line chart and brush a window
        busiest = session.active_jobs()[0]["job_id"]
        session.select_job(busiest)
        lo, hi = session.time_extent
        session.brush(max(lo, peak_time - 1200), min(hi, peak_time + 1200))
        model = session.line_model()
        assert model.brush is not None
        assert len(model.lines) >= 1

        # 4. the zoomed detail view restricts itself to the brushed window
        from repro.vis.charts.line import MultiLineChart

        chart = MultiLineChart(model)
        zoomed = chart.zoomed(*model.brush)
        z0, z1 = zoomed.model.time_extent()
        assert z0 >= model.brush[0] - 1e-6
        assert z1 <= model.brush[1] + 1e-6

    def test_hot_job_is_visually_hotter_than_cluster(self, hotjob_bundle):
        """The Fig. 3(b) reading: the hot job's nodes are redder than the rest."""
        lens = BatchLens.from_bundle(hotjob_bundle)
        hot_id = hotjob_bundle.meta["hot_job_id"]
        instances = hotjob_bundle.instances_of_job(hot_id)
        during = (min(i.start_timestamp for i in instances)
                  + max(i.end_timestamp for i in instances)) / 2
        model = lens.session()
        model.select_timestamp(during)
        bubble = model.bubble_model()
        hot_nodes = [n for j in bubble.jobs if j.job_id == hot_id
                     for t in j.tasks for n in t.nodes]
        other_nodes = [n for j in bubble.jobs if j.job_id != hot_id
                       for t in j.tasks for n in t.nodes]
        if hot_nodes and other_nodes:
            assert (np.mean([n.cpu for n in hot_nodes])
                    >= np.mean([n.cpu for n in other_nodes]) - 5.0)


class TestCaseStudyRegimes:
    """The three Fig. 3 regimes are distinguishable programmatically."""

    def test_regime_progression(self, healthy_bundle, hotjob_bundle,
                                thrashing_bundle):
        order = [Regime.IDLE, Regime.HEALTHY, Regime.BUSY, Regime.SATURATED]
        ranks = {}
        for name, bundle in (("healthy", healthy_bundle), ("hotjob", hotjob_bundle),
                             ("thrashing", thrashing_bundle)):
            if name == "thrashing":
                t0, t1 = bundle.meta["thrashing"]["window"]
                timestamp = (t0 + t1) / 2
            else:
                timestamp = mid_timestamp(bundle)
            ranks[name] = order.index(classify_regime(bundle.usage, timestamp).regime)
        assert ranks["healthy"] <= ranks["hotjob"] <= ranks["thrashing"]
        assert ranks["thrashing"] == order.index(Regime.SATURATED)

    def test_thrashing_root_cause_analysis_closes_the_loop(self, thrashing_bundle):
        hierarchy = BatchHierarchy.from_bundle(thrashing_bundle)
        t0, t1 = thrashing_bundle.meta["thrashing"]["window"]
        machines = anomalous_machines_in_window(
            thrashing_bundle.usage, (t0, t1), metric="mem", threshold=80.0)
        assert machines
        candidates = rank_root_causes(thrashing_bundle, hierarchy, machines, (t0, t1))
        assert candidates
        assert candidates[0].score >= candidates[-1].score

    def test_narratives_differ_between_regimes(self, healthy_bundle,
                                               thrashing_bundle):
        healthy_text = case_study_narrative(healthy_bundle,
                                            mid_timestamp(healthy_bundle))
        t0, t1 = thrashing_bundle.meta["thrashing"]["window"]
        thrash_text = case_study_narrative(thrashing_bundle, (t0 + t1) / 2)
        assert "Thrashing detected" in thrash_text
        assert "Thrashing detected" not in healthy_text


class TestBatchLensVsBaselines:
    """BatchLens exposes the attribution the baselines cannot."""

    def test_baseline_alerts_but_cannot_attribute(self, thrashing_bundle):
        monitor = ThresholdMonitor(mem_threshold=90.0)
        monitor.scan(thrashing_bundle.usage)
        alerted = monitor.alerted_machines()
        assert alerted, "the baseline does notice the saturated machines"

        # BatchLens goes one step further: from machines to the causing job
        hierarchy = BatchHierarchy.from_bundle(thrashing_bundle)
        t0, t1 = thrashing_bundle.meta["thrashing"]["window"]
        candidates = rank_root_causes(thrashing_bundle, hierarchy,
                                      sorted(alerted), (t0, t1))
        assert candidates, "BatchLens names candidate jobs, the baseline cannot"

    def test_both_dashboards_render_from_same_bundle(self, tmp_path, hotjob_bundle):
        timestamp = mid_timestamp(hotjob_bundle)
        lens_path = BatchLens.from_bundle(hotjob_bundle).save_dashboard(
            timestamp, tmp_path / "batchlens.html", max_line_panels=1)
        flat_path = FlatDashboard.from_bundle(hotjob_bundle).save(
            tmp_path / "flat.html")
        assert lens_path.exists() and flat_path.exists()
        assert 'class="job-bubble"' in lens_path.read_text()
        assert 'class="job-bubble"' not in flat_path.read_text()


class TestDeterminismAcrossTheStack:
    def test_same_seed_same_dashboard(self, tmp_path):
        html_a = BatchLens.generate(fast_config("hotjob", seed=99)).dashboard(
            3600, max_line_panels=1).to_html()
        html_b = BatchLens.generate(fast_config("hotjob", seed=99)).dashboard(
            3600, max_line_panels=1).to_html()
        assert html_a == html_b
