"""Golden equivalence: the engine must reproduce the per-series loop exactly.

The vectorized :class:`~repro.analysis.engine.DetectionEngine` replaced
every hand-written ``for machine_id in store.machine_ids`` detection loop in
the repository.  These tests pin the contract that made the rewiring safe:

* for every registered detector, the engine's cluster-wide events are
  *identical* (same intervals, same scores, same order per machine) to
  looping ``detector.detect(store.series(...))`` over every machine, across
  every registered scenario and several seeds;
* the engine-backed scoring runners of :mod:`repro.scenarios.scoring`
  produce bit-identical precision/recall to the legacy per-series loops
  they replaced.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.detectors import (
    EwmaDetector,
    FlatlineDetector,
    RollingZScoreDetector,
    ThresholdDetector,
)
from repro.analysis.engine import DetectionEngine
from repro.analysis.ensemble import evaluate_machine_sets
from repro.scenarios import scenario_names
from repro.scenarios.groundtruth import manifest_from_meta
from repro.scenarios.scoring import score_bundle
from repro.trace.synthetic import generate_trace

from tests.conftest import fast_config

SEEDS = (101, 202, 303)

#: One default-ish instance per registered detector, tuned low enough that
#: most scenarios actually produce events (an all-empty comparison would be
#: vacuous).
GOLDEN_DETECTORS = {
    "threshold": ThresholdDetector(80.0),
    "zscore": RollingZScoreDetector(window=8, z_threshold=2.5),
    "ewma": EwmaDetector(alpha=0.3, deviation_threshold=10.0),
    "flatline": FlatlineDetector(epsilon=1.0, min_samples=2),
}


def legacy_loop(store, detector, metric):
    """The pre-engine consumer pattern: one ``detect`` call per machine."""
    events = []
    for machine_id in store.machine_ids:
        events.extend(detector.detect(store.series(machine_id, metric),
                                      metric=metric, subject=machine_id))
    return events


def by_machine(events):
    return sorted(events, key=lambda e: (e.subject, e.start, e.kind))


@pytest.mark.parametrize("scenario", scenario_names())
@pytest.mark.parametrize("seed", SEEDS)
def test_engine_events_identical_to_series_loop(scenario, seed):
    bundle = generate_trace(fast_config(scenario, seed=seed))
    store = bundle.usage
    engine = DetectionEngine()
    total = 0
    for name, detector in GOLDEN_DETECTORS.items():
        for metric in store.metrics:
            engine_events = engine.run(store, detector, metric=metric).events()
            loop_events = legacy_loop(store, detector, metric)
            assert by_machine(engine_events) == by_machine(loop_events), (
                f"{scenario}/{seed}: {name} on {metric} diverged")
            total += len(engine_events)
    # the sweep across all detectors/metrics must not be vacuous
    assert total > 0, f"{scenario}/{seed}: no detector produced any event"


# -- score_bundle stays bit-identical -----------------------------------------
def _legacy_flag(store, detector, metric, window):
    flagged = set()
    for machine_id in store.machine_ids:
        events = detector.detect(store.series(machine_id, metric),
                                 metric=metric, subject=machine_id)
        if any(event.overlaps(window[0], window[1]) for event in events):
            flagged.add(machine_id)
    return flagged


def _legacy_predicted(bundle, entry):
    """The pre-engine bodies of the rewired scoring runners."""
    store = bundle.usage
    if entry.window is not None:
        t0, t1 = entry.window
    else:
        t0, t1 = (float(t) for t in bundle.time_range())
    name = entry.detectors[0]
    if name == "flatline":
        return _legacy_flag(store, FlatlineDetector(epsilon=0.5, min_samples=3),
                            "cpu", (t0, t1))
    if name == "disk-burst":
        threshold = max(10.0, 0.5 * float(entry.params.get("disk_boost", 45.0)))
        return _legacy_flag(store, EwmaDetector(alpha=0.3,
                                                deviation_threshold=threshold),
                            "disk", (t0, t1))
    if name == "drain":
        level = float(entry.params.get("drained_mem_level", 3.0))
        return _legacy_flag(store,
                            FlatlineDetector(epsilon=max(1.0, 2.0 * level),
                                             min_samples=2),
                            "mem", (t0, t1))
    if name == "outlier":
        windowed = store.window(t0 + 0.1 * (t1 - t0), t1)
        means = {machine_id: float(windowed.series(machine_id, "cpu").mean())
                 for machine_id in windowed.machine_ids}
        values = np.asarray(list(means.values()), dtype=np.float64)
        mu = float(values.mean()) if values.size else 0.0
        sd = float(values.std()) if values.size else 0.0
        if sd <= 1e-9:
            return set()
        return {machine_id for machine_id, value in means.items()
                if (value - mu) / sd >= 1.5}
    return None  # runner not rewired in this refactor


SCORED_SCENARIOS = (
    "machine-failure",
    "network-storm",
    "maintenance-drain",
    "load-imbalance",
    "machine-failure+network-storm+load-imbalance",
)


@pytest.mark.parametrize("scenario", SCORED_SCENARIOS)
@pytest.mark.parametrize("seed", SEEDS)
def test_score_bundle_identical_to_legacy_runners(scenario, seed):
    bundle = generate_trace(fast_config(scenario, seed=seed))
    manifest = manifest_from_meta(bundle.meta)
    assert manifest, f"{scenario} produced no ground-truth manifest"
    scored = score_bundle(bundle)
    assert len(scored) == len(manifest)
    compared = 0
    for entry_score in scored:
        legacy = _legacy_predicted(bundle, entry_score.entry)
        if legacy is None:
            continue
        compared += 1
        assert set(entry_score.predicted) == legacy, (
            f"{scenario}/{seed}: {entry_score.detector} flagged differently")
        expected = evaluate_machine_sets(legacy, set(entry_score.entry.machines))
        assert entry_score.result == expected
    assert compared > 0
