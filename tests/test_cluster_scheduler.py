"""Tests for instance placement (least-loaded and round-robin schedulers)."""

import numpy as np
import pytest

from repro.cluster.machine import make_machines
from repro.cluster.scheduler import (
    LeastLoadedScheduler,
    RoundRobinScheduler,
    make_scheduler,
)
from repro.config import ClusterConfig
from repro.errors import SchedulingError
from repro.trace.workload import JobSpec, TaskSpec


def make_job(job_id="j1", submit=0, instances=8, cpu=20.0, duration=1200) -> JobSpec:
    return JobSpec(job_id, submit, tasks=[
        TaskSpec("t1", instances, cpu, cpu, 5.0, 0, duration)])


@pytest.fixture()
def machines():
    return make_machines(ClusterConfig(num_machines=4))


class TestLeastLoaded:
    def test_every_instance_placed_exactly_once(self, machines):
        scheduler = LeastLoadedScheduler(machines, horizon_s=7200)
        placements = scheduler.place([make_job(instances=10)])
        assert len(placements) == 10
        assert all(p.machine_id in {m.machine_id for m in machines}
                   for p in placements)
        assert [p.seq_no for p in placements] == list(range(1, 11))
        assert all(p.total_seq_no == 10 for p in placements)

    def test_balances_across_machines(self, machines):
        scheduler = LeastLoadedScheduler(machines, horizon_s=7200)
        placements = scheduler.place([make_job(instances=8)])
        counts = {}
        for p in placements:
            counts[p.machine_id] = counts.get(p.machine_id, 0) + 1
        assert set(counts.values()) == {2}

    def test_non_overlapping_jobs_reuse_machines(self, machines):
        scheduler = LeastLoadedScheduler(machines, horizon_s=7200)
        early = make_job("j1", submit=0, instances=4, duration=600)
        late = make_job("j2", submit=3600, instances=4, duration=600)
        placements = scheduler.place([early, late])
        late_machines = {p.machine_id for p in placements if p.job_id == "j2"}
        assert len(late_machines) == 4  # spread again, no stacking needed

    def test_interval_times_recorded(self, machines):
        scheduler = LeastLoadedScheduler(machines, horizon_s=7200)
        job = JobSpec("j", 600, tasks=[TaskSpec("t", 2, 10, 10, 10, 300, 900)])
        placements = scheduler.place([job])
        assert all(p.start_s == 900 and p.end_s == 1800 for p in placements)
        assert placements[0].duration_s == 900
        assert placements[0].overlaps(1000)
        assert not placements[0].overlaps(100)

    def test_committed_load_accumulates(self, machines):
        scheduler = LeastLoadedScheduler(machines, horizon_s=7200)
        scheduler.place([make_job(instances=4, cpu=25.0)])
        assert scheduler.committed_load.max() == pytest.approx(25.0)

    def test_empty_cluster_rejected(self):
        with pytest.raises(SchedulingError):
            LeastLoadedScheduler([], horizon_s=100)

    def test_invalid_horizon_rejected(self, machines):
        with pytest.raises(SchedulingError):
            LeastLoadedScheduler(machines, horizon_s=0)


class TestRoundRobin:
    def test_strict_rotation(self, machines):
        scheduler = RoundRobinScheduler(machines, horizon_s=7200)
        placements = scheduler.place([make_job(instances=8)])
        ids = [p.machine_id for p in placements]
        expected = [m.machine_id for m in machines] * 2
        assert ids == expected

    def test_ignores_load(self, machines):
        scheduler = RoundRobinScheduler(machines, horizon_s=7200)
        heavy = make_job("j1", instances=1, cpu=90.0)
        light = make_job("j2", instances=1, cpu=1.0)
        placements = scheduler.place([heavy, light])
        # round-robin stacks the second instance on the next machine regardless
        assert placements[0].machine_id != placements[1].machine_id


class TestRegistry:
    def test_make_scheduler(self, machines):
        assert isinstance(make_scheduler("least-loaded", machines, horizon_s=100),
                          LeastLoadedScheduler)
        assert isinstance(make_scheduler("round-robin", machines, horizon_s=100),
                          RoundRobinScheduler)

    def test_unknown_scheduler(self, machines):
        with pytest.raises(SchedulingError):
            make_scheduler("magic", machines, horizon_s=100)


class TestLoadBalanceQuality:
    def test_least_loaded_beats_round_robin_on_peak(self):
        machines = make_machines(ClusterConfig(num_machines=6))
        jobs = []
        rng = np.random.default_rng(0)
        for index in range(12):
            jobs.append(JobSpec(f"j{index}", int(rng.integers(0, 3600)), tasks=[
                TaskSpec("t", int(rng.integers(1, 6)),
                         float(rng.uniform(5, 30)), 10.0, 5.0, 0, 1800)]))
        balanced = LeastLoadedScheduler(machines, horizon_s=7200)
        balanced.place(jobs)
        rr = RoundRobinScheduler(machines, horizon_s=7200)
        rr.place(jobs)
        assert balanced.committed_load.max() <= rr.committed_load.max() + 1e-9
