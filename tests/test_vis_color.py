"""Tests for colours and colour scales."""

import pytest

from repro.errors import RenderError
from repro.vis.color import (
    CATEGORICAL_PALETTE,
    Color,
    LinearColormap,
    UTILISATION_CMAP,
    categorical_color,
    lerp,
    utilisation_color,
)


class TestColor:
    def test_hex_roundtrip(self):
        color = Color.from_hex("#1c7ed6")
        assert color.to_hex() == "#1c7ed6"

    def test_short_hex(self):
        assert Color.from_hex("#fff").to_hex() == "#ffffff"
        assert Color.from_hex("000").to_hex() == "#000000"

    def test_invalid_hex(self):
        with pytest.raises(RenderError):
            Color.from_hex("#12345")
        with pytest.raises(RenderError):
            Color.from_hex("#zzzzzz")

    def test_from_bytes(self):
        assert Color.from_bytes(255, 0, 0).to_hex() == "#ff0000"

    def test_component_range_enforced(self):
        with pytest.raises(RenderError):
            Color(1.5, 0, 0)
        with pytest.raises(RenderError):
            Color(0, -0.1, 0)

    def test_with_alpha(self):
        assert Color(1, 0, 0).with_alpha(0.5) == "rgba(255,0,0,0.5)"
        with pytest.raises(RenderError):
            Color(1, 0, 0).with_alpha(1.5)

    def test_luminance_and_readable_text(self):
        assert Color(1, 1, 1).luminance() == pytest.approx(1.0)
        assert Color(1, 1, 1).readable_text_color().to_hex() == "#000000"
        assert Color(0, 0, 0).readable_text_color().to_hex() == "#ffffff"

    def test_lighten_darken(self):
        grey = Color(0.5, 0.5, 0.5)
        assert grey.lighten(1.0).to_hex() == "#ffffff"
        assert grey.darken(1.0).to_hex() == "#000000"

    def test_lerp_endpoints_and_clamping(self):
        a, b = Color(0, 0, 0), Color(1, 1, 1)
        assert lerp(a, b, 0.0) == a
        assert lerp(a, b, 1.0) == b
        assert lerp(a, b, 2.0) == b
        assert lerp(a, b, 0.5).r == pytest.approx(0.5)


class TestLinearColormap:
    def test_requires_well_formed_stops(self):
        with pytest.raises(RenderError):
            LinearColormap([(0.0, Color(0, 0, 0))])
        with pytest.raises(RenderError):
            LinearColormap([(0.1, Color(0, 0, 0)), (1.0, Color(1, 1, 1))])
        with pytest.raises(RenderError):
            LinearColormap([(0.0, Color(0, 0, 0)), (0.5, Color(0, 0, 0)),
                            (0.5, Color(1, 1, 1)), (1.0, Color(1, 1, 1))])

    def test_interpolation(self):
        cmap = LinearColormap([(0.0, Color(0, 0, 0)), (1.0, Color(1, 1, 1))])
        assert cmap(0.5).r == pytest.approx(0.5)
        assert cmap(-1).to_hex() == "#000000"
        assert cmap(2).to_hex() == "#ffffff"

    def test_sample(self):
        cmap = LinearColormap([(0.0, Color(0, 0, 0)), (1.0, Color(1, 1, 1))])
        samples = cmap.sample(5)
        assert len(samples) == 5
        assert samples[0].to_hex() == "#000000"
        assert samples[-1].to_hex() == "#ffffff"
        with pytest.raises(RenderError):
            cmap.sample(1)


class TestUtilisationColor:
    def test_low_is_green_high_is_red(self):
        low = utilisation_color(5.0)
        high = utilisation_color(98.0)
        assert low.g > low.r
        assert high.r > high.g

    def test_mid_is_warm(self):
        mid = utilisation_color(60.0)
        assert mid.r > 0.5 and mid.g > 0.5

    def test_custom_domain(self):
        assert utilisation_color(0.5, vmin=0, vmax=1).to_hex() == \
            UTILISATION_CMAP(0.5).to_hex()
        with pytest.raises(RenderError):
            utilisation_color(10, vmin=5, vmax=5)


class TestCategoricalPalette:
    def test_palette_size_and_wraparound(self):
        assert len(CATEGORICAL_PALETTE) == 10
        assert categorical_color(0) == CATEGORICAL_PALETTE[0]
        assert categorical_color(10) == CATEGORICAL_PALETTE[0]
        assert categorical_color(3) != categorical_color(4)
