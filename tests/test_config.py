"""Tests for the configuration objects and their validation."""

import dataclasses

import pytest

from repro.config import (
    METRICS,
    PAPER_HORIZON_S,
    PAPER_MACHINE_COUNT,
    ClusterConfig,
    TraceConfig,
    UsageConfig,
    WorkloadConfig,
    paper_scale_config,
    small_config,
)
from repro.errors import ConfigError


class TestClusterConfig:
    def test_defaults_validate(self):
        ClusterConfig().validate()

    def test_rejects_zero_machines(self):
        with pytest.raises(ConfigError):
            ClusterConfig(num_machines=0).validate()

    def test_rejects_negative_capacity(self):
        with pytest.raises(ConfigError):
            ClusterConfig(memory_gb=-1).validate()

    def test_rejects_baseline_above_100(self):
        with pytest.raises(ConfigError):
            ClusterConfig(baseline_cpu=120.0).validate()


class TestWorkloadConfig:
    def test_defaults_validate(self):
        WorkloadConfig().validate()

    def test_rejects_zero_jobs(self):
        with pytest.raises(ConfigError):
            WorkloadConfig(num_jobs=0).validate()

    def test_rejects_fraction_above_one(self):
        with pytest.raises(ConfigError):
            WorkloadConfig(single_task_job_fraction=1.5).validate()

    def test_rejects_inverted_instance_bounds(self):
        with pytest.raises(ConfigError):
            WorkloadConfig(min_instances=10, max_instances=2).validate()

    def test_rejects_inverted_duration_bounds(self):
        with pytest.raises(ConfigError):
            WorkloadConfig(min_duration_s=5000, max_duration_s=100).validate()

    def test_rejects_zero_resource_request(self):
        with pytest.raises(ConfigError):
            WorkloadConfig(mean_cpu_request=0.0).validate()

    def test_rejects_single_task_max(self):
        with pytest.raises(ConfigError):
            WorkloadConfig(max_tasks_per_job=1).validate()


class TestUsageConfig:
    def test_defaults_validate(self):
        UsageConfig().validate()

    def test_rejects_zero_resolution(self):
        with pytest.raises(ConfigError):
            UsageConfig(resolution_s=0).validate()

    def test_rejects_negative_noise(self):
        with pytest.raises(ConfigError):
            UsageConfig(noise_std=-1).validate()

    def test_rejects_huge_ramp(self):
        with pytest.raises(ConfigError):
            UsageConfig(ramp_fraction=0.6).validate()


class TestTraceConfig:
    def test_defaults_validate(self):
        TraceConfig().validate()

    def test_rejects_zero_horizon(self):
        with pytest.raises(ConfigError):
            TraceConfig(horizon_s=0).validate()

    def test_rejects_horizon_below_batch_resolution(self):
        with pytest.raises(ConfigError):
            TraceConfig(horizon_s=100, batch_resolution_s=300).validate()

    def test_rejects_usage_resolution_above_horizon(self):
        with pytest.raises(ConfigError):
            TraceConfig(horizon_s=600,
                        usage=UsageConfig(resolution_s=1200)).validate()

    def test_is_frozen(self):
        config = TraceConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.horizon_s = 1  # type: ignore[misc]

    def test_nested_validation_propagates(self):
        config = TraceConfig(workload=WorkloadConfig(num_jobs=-5))
        with pytest.raises(ConfigError):
            config.validate()


class TestPresets:
    def test_metric_names(self):
        assert METRICS == ("cpu", "mem", "disk")

    def test_paper_scale_matches_paper(self):
        config = paper_scale_config()
        config.validate()
        assert config.cluster.num_machines == PAPER_MACHINE_COUNT == 1300
        assert config.horizon_s == PAPER_HORIZON_S == 86400
        assert config.batch_resolution_s == 300

    def test_paper_scale_scenario_override(self):
        assert paper_scale_config(scenario="thrashing").scenario == "thrashing"

    def test_small_config_is_small_and_valid(self):
        config = small_config()
        config.validate()
        assert config.cluster.num_machines <= 20
        assert config.horizon_s <= 4 * 3600
