"""Tests for scales, ticks and label formatting."""

import pytest

from repro.errors import RenderError
from repro.vis.scale import (
    BandScale,
    LinearScale,
    TimeScale,
    format_number,
    format_percent,
    format_seconds,
    nice_step,
)


class TestLinearScale:
    def test_maps_domain_to_range(self):
        scale = LinearScale((0, 100), (0, 500))
        assert scale(0) == 0
        assert scale(50) == 250
        assert scale(100) == 500

    def test_inverted_range(self):
        scale = LinearScale((0, 100), (400, 0))
        assert scale(0) == 400
        assert scale(100) == 0

    def test_invert(self):
        scale = LinearScale((0, 100), (0, 500))
        assert scale.invert(250) == pytest.approx(50)

    def test_degenerate_domain_does_not_crash(self):
        scale = LinearScale((5, 5), (0, 100))
        assert 0 <= scale(5) <= 100

    def test_clamp(self):
        scale = LinearScale((0, 100), (0, 10))
        assert scale.clamp(-5) == 0
        assert scale.clamp(105) == 100
        assert scale.clamp(42) == 42

    def test_ticks_are_nice_and_within_domain(self):
        scale = LinearScale((0, 87), (0, 400))
        ticks = scale.ticks(5)
        values = [t.value for t in ticks]
        assert all(0 <= v <= 87 for v in values)
        steps = {round(b - a, 6) for a, b in zip(values, values[1:])}
        assert len(steps) == 1
        assert 3 <= len(ticks) <= 8

    def test_tick_positions_match_scale(self):
        scale = LinearScale((0, 100), (0, 200))
        for tick in scale.ticks(4):
            assert tick.position == pytest.approx(scale(tick.value))

    def test_tick_count_validation(self):
        with pytest.raises(RenderError):
            LinearScale((0, 1), (0, 1)).ticks(1)


class TestNiceStep:
    def test_powers_of_ten_family(self):
        for span, count in ((100, 5), (87, 5), (3, 4), (0.42, 5), (12345, 6)):
            step = nice_step(span, count)
            mantissa = step / (10 ** __import__("math").floor(__import__("math").log10(step)))
            assert round(mantissa, 6) in (1.0, 2.0, 5.0, 10.0)

    def test_zero_span(self):
        assert nice_step(0, 5) == 1.0


class TestFormatters:
    def test_format_number(self):
        assert format_number(1500) == "1,500"
        assert format_number(2.5) == "2.5"
        assert format_number(3.0) == "3"

    def test_format_seconds(self):
        assert format_seconds(0) == "0:00:00"
        assert format_seconds(3661) == "1:01:01"
        assert format_seconds(47400) == "13:10:00"
        assert format_seconds(-60) == "-0:01:00"

    def test_format_percent(self):
        assert format_percent(42.4) == "42%"


class TestTimeScale:
    def test_ticks_use_clock_labels(self):
        scale = TimeScale((0, 7200), (0, 100))
        labels = [t.label for t in scale.ticks(4)]
        assert all(":" in label for label in labels)


class TestBandScale:
    def test_bands_partition_the_range(self):
        scale = BandScale(["a", "b", "c"], (0, 300), padding=0.0)
        assert scale("a") == 0
        assert scale("b") == 100
        assert scale.bandwidth == pytest.approx(100)
        assert scale.center("a") == pytest.approx(50)

    def test_padding_shrinks_bands(self):
        scale = BandScale(["a", "b"], (0, 100), padding=0.2)
        assert scale.bandwidth == pytest.approx(40)
        assert scale("a") == pytest.approx(5)

    def test_unknown_category(self):
        with pytest.raises(RenderError):
            BandScale(["a"], (0, 10))("z")

    def test_empty_categories_rejected(self):
        with pytest.raises(RenderError):
            BandScale([], (0, 10))
