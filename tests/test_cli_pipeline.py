"""Tests for the pipeline-backed CLI: --json, --detectors, `repro pipeline`,
and clean one-line errors for unknown scenario/detector names."""

import json

import pytest

from repro.cli import build_parser, main
from repro.trace.writer import write_trace


class TestDetectJson:
    def test_detect_json_is_machine_readable(self, tmp_path, thrashing_bundle,
                                             capsys):
        write_trace(thrashing_bundle, tmp_path)
        assert main(["detect", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "batch"
        assert payload["num_machines"] == len(
            thrashing_bundle.usage.machine_ids)
        labels = [row["label"] for row in payload["detections"]]
        assert labels == ["ewma", "flatline", "threshold", "zscore"]
        for row in payload["detections"]:
            assert isinstance(row["num_events"], int)
            assert isinstance(row["flagged_machines"], list)
        assert "scores" in payload
        assert "scenario" in payload

    def test_detect_json_carries_scores(self, capsys):
        assert main(["detect", "--synthetic", "--scenario", "machine-failure",
                     "--seed", "5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "machine-failure"
        (score,) = payload["scores"]
        assert score["kind"] == "machine-failure"
        assert score["detector"] == "flatline"
        assert set(score) >= {"precision", "recall", "f1", "true_positives",
                              "false_positives", "false_negatives"}

    def test_detect_custom_detector_spec(self, tmp_path, thrashing_bundle,
                                         capsys):
        write_trace(thrashing_bundle, tmp_path)
        assert main(["detect", str(tmp_path),
                     "--detectors", "threshold(threshold=85)+flatline",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [row["label"] for row in payload["detections"]] \
            == ["threshold", "flatline"]


class TestCompareJson:
    def test_compare_json_is_machine_readable(self, tmp_path, thrashing_bundle,
                                              capsys):
        write_trace(thrashing_bundle, tmp_path)
        assert main(["compare", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        for tool in ("batchlens", "threshold_monitor"):
            assert set(payload[tool]) == {"precision", "recall", "f1",
                                          "true_positives", "false_positives",
                                          "false_negatives"}
        assert isinstance(payload["truth_machines"], list)
        assert payload["capabilities"][0]["capability"]

    def test_compare_json_respects_output_flag(self, tmp_path,
                                               thrashing_bundle, capsys):
        write_trace(thrashing_bundle, tmp_path / "trace")
        target = tmp_path / "comparison.json"
        assert main(["compare", str(tmp_path / "trace"), "--json",
                     "--output", str(target)]) == 0
        assert "written to" in capsys.readouterr().out
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert "batchlens" in payload


class TestPipelineSubcommand:
    def test_runs_a_spec_file(self, tmp_path, capsys):
        spec = {
            "source": {"kind": "synthetic", "scenario": "machine-failure",
                       "seed": 5,
                       "config": {"num_machines": 12, "num_jobs": 10,
                                  "horizon_s": 7200, "resolution_s": 120}},
            "detectors": "flatline",
            "sinks": ["score", "report"],
        }
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec), encoding="utf-8")
        assert main(["pipeline", str(spec_path)]) == 0
        output = capsys.readouterr().out
        assert "Pipeline run" in output
        assert "machine-failure" in output

    def test_json_output(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "source": {"kind": "synthetic", "scenario": "healthy", "seed": 3,
                       "config": {"num_machines": 8, "num_jobs": 6,
                                  "horizon_s": 3600, "resolution_s": 120}},
            "detectors": "threshold",
            "sinks": [],
        }), encoding="utf-8")
        assert main(["pipeline", str(spec_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "batch"
        assert payload["num_machines"] == 8

    def test_trace_dir_shorthand(self, tmp_path, thrashing_bundle, capsys):
        write_trace(thrashing_bundle, tmp_path)
        assert main(["pipeline", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_machines"] == len(
            thrashing_bundle.usage.machine_ids)

    def test_registered_in_help(self):
        assert "pipeline" in build_parser().format_help()


class TestExecutionFlags:
    """--backend/--workers/--shards shard the sweep; --timings surfaces
    the run's wall-clock breakdown; verdicts never change."""

    SYNTH = ["--synthetic", "--scenario", "machine-failure", "--seed", "5"]

    def test_detect_timings_line(self, capsys):
        assert main(["detect", *self.SYNTH, "--timings"]) == 0
        output = capsys.readouterr().out
        (line,) = [ln for ln in output.splitlines()
                   if ln.startswith("timings:")]
        for part in ("source", "detect", "sinks", "total"):
            assert f"{part} " in line

    def test_detect_parallel_flags_keep_verdict_identical(self, capsys):
        assert main(["detect", *self.SYNTH, "--json"]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(["detect", *self.SYNTH, "--json",
                     "--backend", "threads", "--workers", "2",
                     "--shards", "3"]) == 0
        sharded = json.loads(capsys.readouterr().out)
        assert sharded["detections"] == serial["detections"]
        assert sharded["scores"] == serial["scores"]

    def test_workers_alone_implies_threads_backend(self, capsys):
        assert main(["detect", *self.SYNTH, "--json", "--workers", "2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["detections"]

    def test_pipeline_flags_override_spec(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "source": {"kind": "synthetic", "scenario": "healthy", "seed": 3,
                       "config": {"num_machines": 8, "num_jobs": 6,
                                  "horizon_s": 3600, "resolution_s": 120}},
            "detectors": "threshold",
            "sinks": [],
        }), encoding="utf-8")
        assert main(["pipeline", str(spec_path), "--json"]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(["pipeline", str(spec_path), "--json",
                     "--backend", "serial", "--shards", "3"]) == 0
        sharded = json.loads(capsys.readouterr().out)
        assert sharded["detections"] == serial["detections"]

    def test_pipeline_flags_merge_with_spec_execution_block(self):
        """`--shards 4` alone must keep the spec's backend/workers, not
        silently swap a configured process pool for default threads."""
        from repro.cli import _execution_from_args
        from repro.pipeline import ExecutionOptions

        args = build_parser().parse_args(["pipeline", "spec.json",
                                          "--shards", "4"])
        base = ExecutionOptions(backend="process", workers=6)
        assert _execution_from_args(args, base=base) \
            == ExecutionOptions(backend="process", shards=4, workers=6)
        # no spec block: --shards alone implies the threads backend
        assert _execution_from_args(args, base=ExecutionOptions()) \
            == ExecutionOptions(backend="threads", shards=4)
        # ... but an explicitly pinned serial backend survives the flags
        pinned = _execution_from_args(
            args, base=ExecutionOptions(backend="serial"))
        assert pinned == ExecutionOptions(backend="serial", shards=4)
        # a merely implied backend re-resolves from the merged fields
        implied = _execution_from_args(
            args, base=ExecutionOptions(workers=16))
        assert implied == ExecutionOptions(backend="threads", shards=4,
                                           workers=16)
        # no flags at all: nothing to override
        bare = build_parser().parse_args(["pipeline", "spec.json"])
        assert _execution_from_args(bare, base=base) is None

    def test_pipeline_timings_line(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "source": {"kind": "synthetic", "scenario": "healthy", "seed": 3,
                       "config": {"num_machines": 8, "num_jobs": 6,
                                  "horizon_s": 3600, "resolution_s": 120}},
            "detectors": "threshold",
            "sinks": [],
        }), encoding="utf-8")
        assert main(["pipeline", str(spec_path), "--timings"]) == 0
        output = capsys.readouterr().out
        assert any(line.startswith("timings:")
                   for line in output.splitlines())

    def test_detect_cache_flag_builds_and_reuses_sidecar(
            self, tmp_path, thrashing_bundle, capsys):
        from repro.trace.cache import cache_path

        write_trace(thrashing_bundle, tmp_path)
        assert main(["detect", str(tmp_path), "--cache", "--json"]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cache_path(tmp_path).exists()
        assert main(["detect", str(tmp_path), "--cache", "--json"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["detections"] == cold["detections"]


class TestCleanErrors:
    """Unknown names exit nonzero with a one-line message listing what IS
    registered — never a traceback."""

    def test_unknown_detector_lists_registered(self, tmp_path,
                                               thrashing_bundle, capsys):
        write_trace(thrashing_bundle, tmp_path)
        assert main(["detect", str(tmp_path), "--detectors", "wormhole"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert err.count("\n") == 1
        for name in ("ewma", "flatline", "threshold", "zscore", "wormhole"):
            assert name in err

    def test_unknown_scenario_lists_registered(self, capsys):
        assert main(["detect", "--synthetic", "--scenario",
                     "wormhole+diurnal"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "wormhole" in err
        assert "diurnal" in err          # the registered names are listed
        assert "network-storm" in err

    def test_unknown_sink_in_pipeline_spec(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "source": {"kind": "synthetic", "scenario": "healthy"},
            "sinks": ["telegram"]}), encoding="utf-8")
        assert main(["pipeline", str(spec_path)]) == 2
        err = capsys.readouterr().err
        assert "telegram" in err
        assert "score" in err

    def test_malformed_pipeline_json(self, capsys):
        assert main(["pipeline", "{broken json"]) == 2
        assert "JSON" in capsys.readouterr().err

    def test_monitor_unknown_scenario(self, capsys):
        assert main(["monitor", "--synthetic", "--scenario", "wormhole"]) == 2
        assert "error:" in capsys.readouterr().err


class TestScenariosListsDetectorsAndSinks:
    def test_scenarios_lists_pipeline_registries(self, capsys):
        assert main(["scenarios"]) == 0
        output = capsys.readouterr().out
        assert "registered detectors" in output
        for name in ("threshold", "zscore", "ewma", "flatline"):
            assert name in output
        assert "registered pipeline sinks" in output
        assert "score" in output


class TestMonitorStillIdentical:
    def test_monitor_output_shape_unchanged(self, tmp_path, thrashing_bundle,
                                            capsys):
        write_trace(thrashing_bundle, tmp_path)
        assert main(["monitor", str(tmp_path), "--threshold", "85"]) == 0
        output = capsys.readouterr().out
        assert "replayed" in output
        assert "final regime" in output
