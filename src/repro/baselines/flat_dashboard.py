"""Baseline 2: a flat, Grafana-style per-machine dashboard.

The "existing tools ... generally designed for system administrators" the
paper contrasts against: one heat map and one aggregate line per metric,
with no batch hierarchy, no job grouping and no cross-view linking.  The
scalability benchmark (E8) measures its rendering cost next to BatchLens,
and the detection benchmark (E9) shows what an operator can and cannot read
off it.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import BatchLensError
from repro.metrics.store import MetricStore
from repro.trace.records import TraceBundle
from repro.vis.charts.heatmap import HeatmapModel, UtilisationHeatmap
from repro.vis.charts.timeline import TimelineChart, TimelineModel
from repro.vis.html import Dashboard


class FlatDashboard:
    """Per-machine metric dashboard without hierarchy awareness."""

    def __init__(self, store: MetricStore, *, title: str = "Cluster metrics") -> None:
        if store.num_samples == 0:
            raise BatchLensError("flat dashboard needs usage data")
        self.store = store
        self.title = title

    @classmethod
    def from_bundle(cls, bundle: TraceBundle, **kwargs) -> "FlatDashboard":
        if bundle.usage is None:
            raise BatchLensError("bundle has no usage data")
        return cls(bundle.usage, **kwargs)

    # -- charts ---------------------------------------------------------------------
    def heatmap(self, metric: str = "cpu", *, width: float = 900.0,
                height: float = 480.0) -> UtilisationHeatmap:
        model = HeatmapModel.from_store(self.store, metric=metric)
        return UtilisationHeatmap(model, width=width, height=height)

    def aggregate_timeline(self, *, width: float = 900.0,
                           height: float = 220.0) -> TimelineChart:
        from repro.metrics.aggregate import cluster_timeline

        model = TimelineModel(layers=cluster_timeline(self.store))
        return TimelineChart(model, width=width, height=height,
                             title="Cluster-wide averages")

    # -- dashboard --------------------------------------------------------------------
    def build(self) -> Dashboard:
        """Assemble the flat dashboard (heat map per metric + averages)."""
        dash = Dashboard(title=self.title,
                         subtitle="Baseline view: per-machine metrics only, "
                                  "no batch-job hierarchy.")
        dash.add_panel("Cluster-wide averages", self.aggregate_timeline(),
                       full_width=True)
        for metric in self.store.metrics:
            dash.add_panel(f"Per-machine {metric.upper()} heat map",
                           self.heatmap(metric),
                           description="Rows are machines, columns are time "
                                       "buckets.",
                           full_width=True)
        return dash

    def save(self, path: str | Path) -> Path:
        return self.build().save(path)
