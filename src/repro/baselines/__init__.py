"""Baselines BatchLens is compared against (flat dashboards, threshold alerts)."""

from repro.baselines.flat_dashboard import FlatDashboard
from repro.baselines.tabular import TabularReport
from repro.baselines.threshold_monitor import Alert, ThresholdMonitor

__all__ = ["Alert", "FlatDashboard", "TabularReport", "ThresholdMonitor"]
