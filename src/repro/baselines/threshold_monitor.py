"""Baseline 1: a classic threshold-alert monitor.

This is the "metrics-based approach" of the related work: per-machine static
thresholds firing alerts, with no notion of the batch hierarchy.  The E9
benchmark compares its alert quality against the BatchLens analysis layer
(which knows which job caused what) on traces with injected anomalies.

The scan is a thin adapter over the declarative pipeline
(:mod:`repro.pipeline`): one :class:`~repro.pipeline.Pipeline` batch run
sweeps every metric of the whole cluster through the vectorized
:class:`~repro.analysis.engine.DetectionEngine` — one array pass per metric
instead of a per-machine, per-metric series loop.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.analysis.detectors import AnomalyEvent, ThresholdDetector
from repro.metrics.store import MetricStore


@dataclass(frozen=True)
class Alert:
    """One alert raised by the monitor."""

    machine_id: str
    metric: str
    start: float
    end: float
    peak: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ThresholdMonitor:
    """Fires an alert whenever any machine crosses a per-metric threshold."""

    cpu_threshold: float = 90.0
    mem_threshold: float = 90.0
    disk_threshold: float = 90.0
    min_duration_s: float = 0.0
    alerts: list[Alert] = field(default_factory=list)

    def _threshold_for(self, metric: str) -> float:
        return {"cpu": self.cpu_threshold, "mem": self.mem_threshold,
                "disk": self.disk_threshold}[metric]

    def scan(self, store: MetricStore) -> list[Alert]:
        """Scan every machine/metric block and collect alerts.

        .. deprecated::
            Thin shim over :class:`~repro.pipeline.Pipeline`; new code
            should build the pipeline directly (see :meth:`scan_pipeline`)
            and read alerts off the :class:`~repro.pipeline.RunResult`.
        """
        warnings.warn(
            "ThresholdMonitor.scan is deprecated; run "
            "ThresholdMonitor.scan_pipeline(store).run() (or build a "
            "repro.pipeline.Pipeline directly)", DeprecationWarning,
            stacklevel=2)
        result = self.scan_pipeline(store).run()
        return self.ingest(result)

    def scan_pipeline(self, store: MetricStore):
        """The pipeline equivalent of one scan: one plan per metric.

        One batch :class:`~repro.pipeline.Pipeline` run judges the whole
        cluster — one vectorized engine pass per metric.
        """
        from repro.pipeline import DetectorPlan, Pipeline

        plans = tuple(
            DetectorPlan(
                label=f"threshold@{metric}", name="threshold", metric=metric,
                detector=ThresholdDetector(self._threshold_for(metric),
                                           min_duration_s=self.min_duration_s))
            for metric in store.metrics)
        return Pipeline.from_store(store, plans=plans,
                                   metrics=tuple(store.metrics), sinks=())

    def ingest(self, result) -> list[Alert]:
        """Fold a pipeline :class:`~repro.pipeline.RunResult` into alerts."""
        self.alerts = []
        for run in result.detections:
            threshold = self._threshold_for(run.metric)
            for event in run.result.events():
                self.alerts.append(Alert(
                    machine_id=event.subject, metric=run.metric,
                    start=event.start, end=event.end,
                    peak=event.score + threshold))
        self.alerts.sort(key=lambda a: (a.start, a.machine_id, a.metric))
        return self.alerts

    # -- evaluation helpers ---------------------------------------------------------
    def alerted_machines(self, window: tuple[float, float] | None = None) -> set[str]:
        """Machines with at least one alert (optionally within a window)."""
        out = set()
        for alert in self.alerts:
            if window is None or (alert.start <= window[1] and alert.end >= window[0]):
                out.add(alert.machine_id)
        return out

    def precision_recall(self, true_machines: set[str],
                         window: tuple[float, float] | None = None) -> tuple[float, float]:
        """Machine-level precision/recall against a ground-truth set."""
        predicted = self.alerted_machines(window)
        if not predicted:
            return (0.0, 0.0 if true_machines else 1.0)
        true_positives = len(predicted & true_machines)
        precision = true_positives / len(predicted)
        recall = (true_positives / len(true_machines)) if true_machines else 1.0
        return (precision, recall)

    def to_events(self) -> list[AnomalyEvent]:
        """Expose alerts in the common :class:`AnomalyEvent` shape."""
        return [AnomalyEvent(start=a.start, end=a.end, metric=a.metric,
                             subject=a.machine_id, kind="threshold-alert",
                             score=a.peak) for a in self.alerts]
