"""Baseline 3: the raw tabular report.

"The preceding methods are neither intuitive nor efficient as they consist
of large-scale general metric data" — this module is that status quo: plain
text tables of the busiest machines and longest jobs, the kind of output
``sar``/``top``-style tooling or a SQL query over the trace would give an
operator.  Useful both as a comparison point and as a quick CLI-style
summary in the examples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BatchLensError
from repro.metrics.aggregate import busiest_machines
from repro.trace.records import TraceBundle


def _format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Render a fixed-width text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
             "  ".join("-" * widths[i] for i in range(len(headers)))]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


@dataclass
class TabularReport:
    """Plain-text summary tables over one trace bundle."""

    bundle: TraceBundle
    top_n: int = 10

    def __post_init__(self) -> None:
        if self.top_n <= 0:
            raise BatchLensError("top_n must be positive")

    def busiest_machines_table(self, timestamp: float, metric: str = "cpu") -> str:
        """Top machines by utilisation at one timestamp."""
        if self.bundle.usage is None:
            raise BatchLensError("bundle has no usage data")
        ranked = busiest_machines(self.bundle.usage, metric, timestamp,
                                  top_n=self.top_n)
        rows = [[machine_id, f"{value:.1f}%"] for machine_id, value in ranked]
        return _format_table(["machine", f"{metric} util"], rows)

    def longest_jobs_table(self) -> str:
        """Jobs ordered by wall-clock duration."""
        durations: dict[str, tuple[int, int, int]] = {}
        for inst in self.bundle.instances:
            start, end, count = durations.get(
                inst.job_id, (inst.start_timestamp, inst.end_timestamp, 0))
            durations[inst.job_id] = (min(start, inst.start_timestamp),
                                      max(end, inst.end_timestamp), count + 1)
        ranked = sorted(durations.items(), key=lambda kv: -(kv[1][1] - kv[1][0]))
        rows = [[job_id, f"{end - start}s", str(count)]
                for job_id, (start, end, count) in ranked[:self.top_n]]
        return _format_table(["job", "duration", "instances"], rows)

    def largest_jobs_table(self) -> str:
        """Jobs ordered by instance count."""
        counts: dict[str, int] = {}
        for inst in self.bundle.instances:
            counts[inst.job_id] = counts.get(inst.job_id, 0) + 1
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        rows = [[job_id, str(count)] for job_id, count in ranked[:self.top_n]]
        return _format_table(["job", "instances"], rows)

    def report(self, timestamp: float) -> str:
        """The full report an operator would scroll through."""
        sections = [
            f"=== Busiest machines at t={timestamp:.0f}s ===",
            self.busiest_machines_table(timestamp),
            "",
            "=== Longest jobs ===",
            self.longest_jobs_table(),
            "",
            "=== Largest jobs ===",
            self.largest_jobs_table(),
        ]
        return "\n".join(sections)
