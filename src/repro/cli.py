"""Command-line interface.

The CLI wraps the most common workflows so a trace can be explored without
writing Python::

    python -m repro generate --scenario hotjob --output-dir trace/
    python -m repro validate trace/
    python -m repro stats trace/
    python -m repro dashboard trace/ --timestamp 9000 --output batchlens.html
    python -m repro report trace/ --timestamp 9000
    python -m repro figures trace/ --job job_1042 --output-dir figs/
    python -m repro scenarios
    python -m repro detect --synthetic --scenario "memory-thrash+network-storm"
    python -m repro detect --synthetic --scenario hotjob --json
    python -m repro detect trace/ --detectors "threshold(threshold=85)+flatline"
    python -m repro detect trace/ --workers 8 --timings --cache
    python -m repro detect trace/ --mmap --backend process --shards 8
    python -m repro detect trace/ --result-cache results/ --timings
    python -m repro cache stats results/
    python -m repro cache prune results/ --max-bytes 50000000
    python -m repro monitor --synthetic --scenario thrashing
    python -m repro monitor --synthetic --scenario "diurnal+network-storm"
    python -m repro monitor --synthetic --scenario thrashing --chunk 256
    python -m repro compare --synthetic --scenario thrashing
    python -m repro pipeline spec.json
    python -m repro serve --host 127.0.0.1 --port 8377 --backend threads
    python -m repro sla trace/
    python -m repro experiments --seed 2022 --output EXPERIMENTS_generated.md

Every sub-command accepts either a directory of Alibaba-format CSVs or
``--synthetic`` to generate a trace on the fly.  The detection
sub-commands (``detect``, ``monitor``, ``compare``) are thin adapters over
the declarative pipeline (:mod:`repro.pipeline`); ``pipeline`` runs a full
spec — a JSON file or inline JSON — end to end.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.sla import SlaPolicy, cluster_sla_report, summarize_sla
from repro.app.batchlens import BatchLens
from repro.app.export import case_study_narrative, export_job_figures
from repro.config import TraceConfig, paper_scale_config
from repro.errors import BatchLensError
from repro.report.comparison import comparison_to_dict
from repro.report.experiments import render_experiments, run_experiment_suite
from repro.trace.loader import load_trace
from repro.trace.records import TraceBundle
from repro.trace.synthetic import generate_trace
from repro.trace.validate import validate_bundle
from repro.trace.writer import write_trace


def _add_trace_source(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("trace_dir", nargs="?", default=None,
                        help="directory holding the Alibaba-format CSV tables")
    parser.add_argument("--synthetic", action="store_true",
                        help="generate a synthetic trace instead of loading one")
    parser.add_argument("--scenario", default="hotjob",
                        help="scenario for --synthetic: a registered name or a "
                             "composed spec such as 'diurnal+network-storm' "
                             "(see `repro scenarios`; default: hotjob)")
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--paper-scale", action="store_true",
                        help="synthetic trace at 1300 machines / 24 h")
    parser.add_argument("--cache", action="store_true",
                        help="maintain the columnar binary sidecar cache of "
                             "the trace directory (repeat loads skip CSV "
                             "parsing; invalidated by content hash)")
    parser.add_argument("--mmap", action="store_true",
                        help="open the cached dense usage matrix "
                             "memory-mapped: read-only windows into the "
                             "sidecar file instead of RAM, so peak RSS "
                             "stays bounded on clusters bigger than memory "
                             "(implies --cache)")
    parser.add_argument("--storage", choices=("float64", "float32"),
                        default="float64",
                        help="dtype the sidecar cache stores the dense "
                             "usage matrix in; float32 halves the file and "
                             "page-cache footprint (implies --cache)")


def _resolve_bundle(args: argparse.Namespace) -> TraceBundle:
    if args.trace_dir and not args.synthetic:
        mmap = getattr(args, "mmap", False)
        storage = getattr(args, "storage", "float64")
        cache = (getattr(args, "cache", False) or mmap
                 or storage != "float64")
        return load_trace(args.trace_dir, cache=cache, mmap=mmap,
                          storage=storage)
    if args.paper_scale:
        config = paper_scale_config(scenario=args.scenario, seed=args.seed)
    else:
        config = TraceConfig(scenario=args.scenario, seed=args.seed)
    return generate_trace(config)


def _source_spec_from_args(args: argparse.Namespace):
    """The declarative :class:`~repro.pipeline.SourceSpec` of the CLI flags.

    Unlike :func:`_resolve_bundle` this does not load or generate anything:
    the pipeline resolves the source itself, which lets a result-cache hit
    skip the load entirely.
    """
    from repro.pipeline import SourceSpec

    if args.trace_dir and not args.synthetic:
        mmap = getattr(args, "mmap", False)
        storage = getattr(args, "storage", "float64")
        cache = (getattr(args, "cache", False) or mmap
                 or storage != "float64")
        return SourceSpec(kind="trace-dir", path=str(args.trace_dir),
                          cache=cache, mmap=mmap, storage=storage)
    return SourceSpec(kind="synthetic", scenario=args.scenario,
                      seed=args.seed, paper_scale=args.paper_scale)


def _result_cache_from_args(args: argparse.Namespace):
    """ResultCacheOptions for ``--result-cache DIR``, or None."""
    from repro.pipeline import ResultCacheOptions

    if getattr(args, "result_cache", None) is None:
        return None
    return ResultCacheOptions(dir=str(args.result_cache))


def _add_execution_flags(parser: argparse.ArgumentParser) -> None:
    """Sharded-execution knobs shared by `detect` and `pipeline`."""
    parser.add_argument("--backend", default=None,
                        choices=["serial", "threads", "process"],
                        help="execution backend for the detector sweeps "
                             "(default: serial; threads/process shard the "
                             "store along the machine axis)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker count for a parallel backend (default: "
                             "one per core; implies --backend threads when "
                             "no backend is given)")
    parser.add_argument("--shards", type=int, default=None,
                        help="machine shards per sweep (default: the worker "
                             "count)")
    parser.add_argument("--timings", action="store_true",
                        help="print the run's source/detect/sinks/total "
                             "wall-clock timings (and the result-cache "
                             "state when one is configured)")
    parser.add_argument("--result-cache", type=Path, default=None,
                        help="content-hashed run-result cache directory: a "
                             "rerun over an unchanged trace with the same "
                             "detectors restores the stored result instead "
                             "of sweeping the engine (see `repro cache`)")


def _execution_from_args(args: argparse.Namespace, base=None):
    """ExecutionOptions from CLI flags, or None when all flags defaulted.

    With ``base`` (a spec's execution block), each given flag overrides
    its field and ungiven flags keep the spec's choice — ``--shards 4``
    must not silently swap a configured process pool for threads, and a
    spec that explicitly pins ``"backend": "serial"`` keeps it.  Without a
    base, the flags stand alone (``--workers``/``--shards`` without
    ``--backend`` resolve to the threads backend, ExecutionOptions' own
    defaulting — as does a base whose backend was itself only implied).
    """
    from repro.pipeline import ExecutionOptions

    if args.backend is None and args.workers is None and args.shards is None:
        return None
    if base is None or (base == ExecutionOptions()
                        and not base.explicit_backend):
        return ExecutionOptions(backend=args.backend, shards=args.shards,
                                workers=args.workers)
    backend = args.backend
    if backend is None and base.explicit_backend:
        backend = base.backend
    return ExecutionOptions(
        backend=backend,
        shards=args.shards if args.shards is not None else base.shards,
        workers=args.workers if args.workers is not None else base.workers)


def _print_timings(result) -> None:
    """One-line `--timings` rendering of RunResult.timings."""
    order = ("source_s", "detect_s", "sinks_s", "cache_s", "total_s")
    parts = [f"{name[:-2]} {result.timings[name] * 1000:.1f} ms"
             for name in order if name in result.timings]
    state = result.timings.get("result_cache")
    if state is not None:
        parts.append(f"result_cache {state}")
    print("timings: " + ", ".join(parts))


def _default_timestamp(bundle: TraceBundle, timestamp: float | None) -> float:
    if timestamp is not None:
        return timestamp
    start, end = bundle.time_range()
    return (start + end) / 2


# -- sub-commands -------------------------------------------------------------------
def cmd_generate(args: argparse.Namespace) -> int:
    if args.paper_scale:
        config = paper_scale_config(scenario=args.scenario, seed=args.seed)
    else:
        config = TraceConfig(scenario=args.scenario, seed=args.seed)
    bundle = generate_trace(config)
    written = write_trace(bundle, args.output_dir, compress=args.compress)
    print(f"scenario={args.scenario} seed={args.seed}")
    for table, rows in written.items():
        print(f"  {table}: {rows} rows")
    print(f"trace written to {args.output_dir}")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    bundle = _resolve_bundle(args)
    report = validate_bundle(bundle)
    for warning in report.warnings:
        print(f"WARNING: {warning}")
    for error in report.errors:
        print(f"ERROR: {error}")
    print(f"{len(report.errors)} error(s), {len(report.warnings)} warning(s)")
    return 0 if report.ok else 1


def cmd_stats(args: argparse.Namespace) -> int:
    bundle = _resolve_bundle(args)
    lens = BatchLens.from_bundle(bundle)
    stats = lens.stats()
    start, end = lens.time_extent
    print(f"time extent: {start:.0f}s .. {end:.0f}s "
          f"({(end - start) / 3600:.1f} h)")
    for key, value in stats.as_dict().items():
        if isinstance(value, float):
            print(f"  {key}: {value:.3f}")
        else:
            print(f"  {key}: {value}")
    return 0


def cmd_dashboard(args: argparse.Namespace) -> int:
    bundle = _resolve_bundle(args)
    lens = BatchLens.from_bundle(bundle)
    timestamp = _default_timestamp(bundle, args.timestamp)
    path = lens.save_dashboard(timestamp, args.output,
                               max_jobs=args.max_jobs,
                               max_line_panels=args.max_line_panels)
    print(f"dashboard for t={timestamp:.0f}s written to {path}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    bundle = _resolve_bundle(args)
    timestamp = _default_timestamp(bundle, args.timestamp)
    print(case_study_narrative(bundle, timestamp))
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    bundle = _resolve_bundle(args)
    job_id = args.job
    if job_id is None:
        counts: dict[str, int] = {}
        for inst in bundle.instances:
            counts[inst.job_id] = counts.get(inst.job_id, 0) + 1
        job_id = max(counts, key=counts.get)
        print(f"no --job given; using the largest job {job_id}")
    for path in export_job_figures(bundle, job_id, args.output_dir):
        print(f"  {path}")
    return 0


def cmd_monitor(args: argparse.Namespace) -> int:
    """Replay a trace through the online monitor (the §VI real-time extension).

    A thin adapter over a streaming-mode :class:`~repro.pipeline.Pipeline`
    with sample cadence — alert-for-alert identical to the pre-pipeline
    replay loop.  With ``--chunk N`` the trace is instead folded through
    the incremental engine ``N`` samples at a time (threshold alerts are
    identical to the sample cadence; regime/thrashing are assessed once
    per chunk).
    """
    from repro.pipeline import Pipeline, StreamingOptions

    bundle = _resolve_bundle(args)
    if args.chunk is not None:
        result = Pipeline.from_bundle(
            bundle, mode="streaming", plans=(), sinks=(),
            streaming=StreamingOptions(threshold=args.threshold,
                                       window_samples=args.window_samples,
                                       cadence="catch-up",
                                       chunk=args.chunk)).run()
        print(f"folded {result.num_samples} samples through the incremental "
              f"monitor ({args.chunk} per chunk)")
        monitor = result.monitor
        regime = monitor.current_regime if monitor is not None else None
        print(f"final regime: {regime.value if regime is not None else None}")
        counts = result.alerts_by_kind()
        if counts:
            print("alerts by kind:")
            for kind, count in sorted(counts.items()):
                print(f"  {kind}: {count}")
        else:
            print("no alerts raised")
        return 0
    result = Pipeline.from_bundle(
        bundle, mode="streaming", plans=(), sinks=(),
        streaming=StreamingOptions(threshold=args.threshold,
                                   window_samples=args.window_samples,
                                   cadence="sample")).run()
    report, manager = result.replay, result.alert_manager
    if report is None:
        print("trace carries no samples to replay")
        return 0
    print(f"replayed {report.samples_replayed} samples "
          f"({report.duration_s / 3600:.1f} h of trace time)")
    print(f"final regime: {report.final_regime}; "
          f"mean CPU {report.mean_cpu:.0f}%, p95 CPU {report.p95_cpu:.0f}%")
    if report.alerts_by_kind:
        print("alerts by kind:")
        for kind, count in sorted(report.alerts_by_kind.items()):
            print(f"  {kind}: {count}")
    else:
        print("no alerts raised")
    lines = manager.summary_lines(limit=args.max_alerts)
    if lines:
        print(f"most urgent pending alerts (top {len(lines)}):")
        for line in lines:
            print(f"  {line}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Compare BatchLens detection quality against the threshold baseline.

    A thin adapter over a :class:`~repro.pipeline.Pipeline` whose
    ``comparison`` sink produces the report; ``--json`` emits the
    machine-readable form for CI.  ``--result-cache`` is accepted for
    flag symmetry with ``detect``/``pipeline``, but a plans-built
    pipeline carries no detector spec so comparison runs always bypass
    the cache (the comparison itself re-sweeps inside its sink).
    """
    from repro.pipeline import Pipeline

    result = Pipeline(
        _source_spec_from_args(args), plans=(),
        sinks=({"kind": "comparison", "threshold": args.threshold},),
        result_cache=_result_cache_from_args(args)).run()
    comparison = result.outputs["comparison"]
    text = (json.dumps(comparison_to_dict(comparison), indent=2) if args.json
            else result.outputs["comparison_markdown"])
    if args.output is not None:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"comparison written to {args.output}")
    else:
        print(text)
    return 0


def cmd_sla(args: argparse.Namespace) -> int:
    """Evaluate every job of a trace against the SLA policy."""
    bundle = _resolve_bundle(args)
    policy = SlaPolicy(max_runtime_stretch=args.max_stretch,
                       saturation_level=args.saturation_level)
    reports = cluster_sla_report(bundle, policy=policy)
    summary = summarize_sla(reports)
    print(f"{summary.violated_jobs}/{summary.total_jobs} job(s) in violation "
          f"({summary.violation_rate * 100:.0f}%)")
    for kind, count in sorted(summary.violations_by_kind.items()):
        print(f"  {kind}: {count} job(s)")
    violated = [r for r in reports.values() if r.violated]
    for job_report in sorted(violated, key=lambda r: r.job_id)[:args.max_jobs]:
        reasons = "; ".join(v.detail for v in job_report.violations)
        print(f"  {job_report.job_id}: {reasons}")
    return 0


def cmd_detect(args: argparse.Namespace) -> int:
    """Sweep the cluster with the detection engine and score the manifest.

    A thin adapter over a batch :class:`~repro.pipeline.Pipeline`: every
    detector of ``--detectors`` (default: the per-machine stack
    ``ewma+flatline+threshold+zscore``) judges every machine in one
    vectorized array pass, and when the trace carries a ground-truth
    manifest the ``score`` sink turns every entry into a precision/recall
    row.  The cluster-topology detectors (``sync_break``, ``imbalance``,
    ``sla_risk``) are opt-in via the spec — they sweep the whole store at
    once and are routed around any ``--backend``/``--shards`` plan, so
    mixed stacks still match an unsharded run bit for bit.  ``--json``
    emits the machine-readable run summary instead of the pretty-printed
    tables.  With ``--result-cache DIR`` a rerun over an unchanged trace
    restores the stored result without loading the trace or sweeping the
    engine (the summary line notes ``(cached)``).
    """
    from repro.pipeline import Pipeline

    source = _source_spec_from_args(args)
    run = Pipeline(source, detectors=args.detectors,
                   metrics=(args.metric,),
                   sinks=({"kind": "score"},),
                   execution=_execution_from_args(args),
                   result_cache=_result_cache_from_args(args)).run()
    if run.empty:
        raise BatchLensError("trace carries no server-usage data to sweep")
    cached = run.timings.get("result_cache") == "hit"
    if args.json:
        payload = run.to_dict()
        payload["scenario"] = (str(args.scenario)
                               if source.kind == "synthetic" else "unknown")
        print(json.dumps(payload, indent=2))
        return 0
    print(f"engine sweep on {args.metric!r}: {len(run.machine_ids)} "
          f"machine(s), {run.num_samples} sample(s)"
          + (" (cached)" if cached else ""))
    if args.timings:
        _print_timings(run)
    for detection in run.detections:
        flagged = detection.result.flagged_machines()
        print(f"  {detection.label}: {detection.result.num_events} event(s) on "
              f"{len(flagged)} machine(s)")

    scored = run.scores
    if not scored:
        print("\nno ground-truth manifest to score (generate with --synthetic "
              "and a composed --scenario)")
        return 0
    print("\nper-detector precision/recall vs. injected ground truth:")
    header = (f"  {'anomaly':<20} {'detector':<20} {'prec':>6} {'recall':>6} "
              f"{'f1':>6} {'tp':>4} {'fp':>4} {'fn':>4}")
    print(header)
    print("  " + "-" * (len(header) - 2))
    worst_f1 = 1.0
    for entry in scored:
        result = entry.result
        worst_f1 = min(worst_f1, result.f1)
        print(f"  {entry.entry.kind:<20} {entry.detector:<20} "
              f"{result.precision:>6.2f} {result.recall:>6.2f} "
              f"{result.f1:>6.2f} {result.true_positives:>4} "
              f"{result.false_positives:>4} {result.false_negatives:>4}")
    print(f"\n{len(scored)} entr{'y' if len(scored) == 1 else 'ies'} scored; "
          f"worst F1 {worst_f1:.2f}")
    return 0


def cmd_pipeline(args: argparse.Namespace) -> int:
    """Run a full declarative pipeline spec end to end.

    ``spec`` is a path to a JSON spec file, inline JSON, or a shorthand
    (an existing trace directory, or a scenario spec for a synthetic
    source).  Prints the Markdown run report, or the JSON summary with
    ``--json``.
    """
    from repro.pipeline import Pipeline
    from repro.report.pipeline import render_run_markdown

    text = args.spec
    path = Path(text)
    if path.is_file():
        text = path.read_text(encoding="utf-8")
    pipeline = Pipeline.from_spec(text)
    execution = _execution_from_args(args, base=pipeline.execution)
    if execution is not None:
        from repro.errors import PipelineError

        if pipeline.mode == "streaming":
            raise PipelineError(
                "--backend/--workers/--shards apply to batch pipelines "
                "only; this spec runs in streaming mode")
        pipeline.execution = execution
    if args.chunk is not None:
        from dataclasses import replace

        from repro.errors import PipelineError

        if pipeline.mode != "streaming":
            raise PipelineError(
                "--chunk applies to streaming pipelines only; this spec "
                "runs in batch mode")
        pipeline.streaming = replace(pipeline.streaming, chunk=args.chunk)
    override = _result_cache_from_args(args)
    if override is not None:
        pipeline.result_cache = override
    result = pipeline.run()
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    elif "report" in result.outputs:
        print(result.outputs["report"])
    else:
        print(render_run_markdown(result))
    if args.timings and not args.json:
        _print_timings(result)
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or prune a run-result cache directory.

    ``stats`` prints the entry count and byte total; ``prune --max-bytes N``
    evicts least-recently-used entries (hits refresh recency) until the
    ledger fits the budget.
    """
    from repro.pipeline import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.cache_command == "prune":
        stats = cache.prune(args.max_bytes)
        print(f"evicted {stats['evicted']} entr"
              f"{'y' if stats['evicted'] == 1 else 'ies'}; "
              f"{stats['entries']} left ({stats['bytes']} bytes)")
        return 0
    stats = cache.stats()
    print(f"{stats['entries']} entr{'y' if stats['entries'] == 1 else 'ies'}, "
          f"{stats['bytes']} bytes in {args.cache_dir}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the resident multi-tenant detection service until signalled.

    Binds immediately (``--port 0`` picks an ephemeral port, printed on
    the ``serving on`` line), then blocks until SIGTERM or SIGINT.  Either
    signal drains gracefully: tenants close (waking long-poll
    subscribers), in-flight requests finish, the shared worker pool joins
    every worker — no leaked processes — and the command exits 0.
    """
    import signal
    import threading

    from repro.serve import DetectionServer
    from repro.serve.persist import DEFAULT_SNAPSHOT_EVERY
    from repro.serve.server import DEFAULT_DETECT_CACHE_SIZE

    snapshot_every = (DEFAULT_SNAPSHOT_EVERY if args.snapshot_every is None
                      else args.snapshot_every)
    detect_cache_size = (DEFAULT_DETECT_CACHE_SIZE
                         if args.detect_cache_size is None
                         else args.detect_cache_size)
    server = DetectionServer(args.host, args.port, backend=args.backend,
                             workers=args.workers,
                             max_tenants=args.max_tenants,
                             state_dir=args.state_dir, fsync=args.fsync,
                             snapshot_every=snapshot_every,
                             snapshot_bytes=args.snapshot_bytes,
                             detect_timeout_s=args.detect_timeout,
                             detect_cache_size=detect_cache_size)
    stop = threading.Event()
    previous = {}

    def _on_signal(signum, frame):  # noqa: ARG001 - signal signature
        stop.set()

    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, _on_signal)
    try:
        server.start()
        if args.state_dir is not None:
            print(f"recovered {len(server.recovered)} tenant(s) from "
                  f"{args.state_dir}", flush=True)
        print(f"serving on {server.host}:{server.port} "
              f"(backend={args.backend}, max_tenants={args.max_tenants})",
              flush=True)
        stop.wait()
        print("draining...", flush=True)
        server.close()
        print("shutdown complete", flush=True)
    finally:
        server.close()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    return 0


def cmd_scenarios(args: argparse.Namespace) -> int:
    """List registered scenarios, fault injectors and composition syntax."""
    from repro.scenarios import SCENARIO_ALIASES, list_injectors

    print("scenario aliases (paper case-study regimes):")
    for name in sorted(SCENARIO_ALIASES):
        scenario = SCENARIO_ALIASES[name]
        print(f"  {name}: {scenario.description}")
    print("\nregistered fault injectors (composable with '+'):")
    for info in list_injectors():
        extra = ""
        if info.detectors:
            extra = f" [detector: {', '.join(info.detectors)}]"
        print(f"  {info.name}: {info.summary}{extra}")
    print("\ncompose injectors into one scenario, with optional parameters:")
    print("  --scenario 'diurnal(amplitude=40)+network-storm'")
    print("  --scenario 'background(cpu_offset=35)+maintenance-drain'")

    from repro.pipeline import list_detectors, sink_names

    print("\nregistered detectors (composable with '+', see `repro detect "
          "--detectors`):")
    for info in list_detectors():
        marker = "" if info.in_default else " [cluster detector, opt-in]"
        print(f"  {info.name}: {info.summary}{marker}")
    print("\nregistered pipeline sinks (for `repro pipeline` specs):")
    print(f"  {', '.join(sink_names())}")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    """Run the paper-claim vs. measured experiment suite."""
    records = run_experiment_suite(paper_scale=args.paper_scale, seed=args.seed)
    markdown = render_experiments(records)
    if args.output is not None:
        Path(args.output).write_text(markdown, encoding="utf-8")
        print(f"experiment report written to {args.output}")
    else:
        print(markdown)
    mismatches = sum(1 for record in records if not record.matches)
    print(f"{len(records) - mismatches}/{len(records)} claims hold")
    return 0 if mismatches == 0 else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BatchLens: visual analytics for batch jobs in cloud systems")
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="write a synthetic trace to CSVs")
    generate.add_argument("--output-dir", type=Path, required=True)
    generate.add_argument("--scenario", default="hotjob",
                          help="registered scenario name or composed spec "
                               "(see `repro scenarios`)")
    generate.add_argument("--seed", type=int, default=2022)
    generate.add_argument("--paper-scale", action="store_true")
    generate.add_argument("--compress", action="store_true",
                          help="gzip the CSV tables")
    generate.set_defaults(func=cmd_generate)

    validate = sub.add_parser("validate", help="check a trace against the schema "
                                               "and structural invariants")
    _add_trace_source(validate)
    validate.set_defaults(func=cmd_validate)

    stats = sub.add_parser("stats", help="print dataset statistics (paper §II)")
    _add_trace_source(stats)
    stats.set_defaults(func=cmd_stats)

    dashboard = sub.add_parser("dashboard", help="export the linked-view dashboard")
    _add_trace_source(dashboard)
    dashboard.add_argument("--timestamp", type=float, default=None)
    dashboard.add_argument("--output", type=Path, default=Path("batchlens.html"))
    dashboard.add_argument("--max-jobs", type=int, default=18)
    dashboard.add_argument("--max-line-panels", type=int, default=4)
    dashboard.set_defaults(func=cmd_dashboard)

    report = sub.add_parser("report", help="print the case-study narrative")
    _add_trace_source(report)
    report.add_argument("--timestamp", type=float, default=None)
    report.set_defaults(func=cmd_report)

    figures = sub.add_parser("figures", help="export Fig. 2-style charts for a job")
    _add_trace_source(figures)
    figures.add_argument("--job", default=None)
    figures.add_argument("--output-dir", type=Path, default=Path("figures"))
    figures.set_defaults(func=cmd_figures)

    monitor = sub.add_parser("monitor", help="replay a trace through the online "
                                             "monitor (real-time extension)")
    _add_trace_source(monitor)
    monitor.add_argument("--threshold", type=float, default=92.0,
                         help="utilisation alert threshold in percent")
    monitor.add_argument("--window-samples", type=int, default=128)
    monitor.add_argument("--max-alerts", type=int, default=10,
                         help="how many pending alerts to print")
    monitor.add_argument("--chunk", type=int, default=None,
                         help="fold the trace through the incremental "
                              "engine this many samples at a time instead "
                              "of replaying sample by sample")
    monitor.set_defaults(func=cmd_monitor)

    compare = sub.add_parser("compare", help="BatchLens vs. baseline detection "
                                             "quality on one trace")
    _add_trace_source(compare)
    compare.add_argument("--threshold", type=float, default=95.0,
                         help="baseline alert threshold in percent")
    compare.add_argument("--output", type=Path, default=None,
                         help="write the Markdown report here instead of stdout")
    compare.add_argument("--json", action="store_true",
                         help="emit the machine-readable comparison for CI")
    compare.add_argument("--result-cache", type=Path, default=None,
                         help="accepted for symmetry with detect/pipeline; "
                              "comparison runs carry no detector spec and "
                              "always bypass the result cache")
    compare.set_defaults(func=cmd_compare)

    sla = sub.add_parser("sla", help="evaluate every job against the SLA policy")
    _add_trace_source(sla)
    sla.add_argument("--max-stretch", type=float, default=2.0,
                     help="allowed instance-runtime stretch over the task median")
    sla.add_argument("--saturation-level", type=float, default=90.0)
    sla.add_argument("--max-jobs", type=int, default=10,
                     help="how many violated jobs to list")
    sla.set_defaults(func=cmd_sla)

    detect = sub.add_parser(
        "detect", help="vectorized cluster-wide detection sweep and "
                       "ground-truth precision/recall table")
    _add_trace_source(detect)
    detect.add_argument("--metric", default="cpu",
                        help="metric the engine sweep judges (default: cpu)")
    detect.add_argument("--detectors", default=None,
                        help="composed detector spec such as "
                             "'threshold(threshold=85)+flatline' or "
                             "'flatline+sync_break+imbalance' "
                             "(default: every default-stack detector; "
                             "cluster detectors are opt-in)")
    detect.add_argument("--json", action="store_true",
                        help="emit the machine-readable run summary for CI")
    _add_execution_flags(detect)
    detect.set_defaults(func=cmd_detect)

    pipeline = sub.add_parser(
        "pipeline", help="run a declarative pipeline spec "
                         "(JSON file, inline JSON, or shorthand) end to end")
    pipeline.add_argument("spec",
                          help="path to a JSON spec file, inline JSON, an "
                               "existing trace directory, or a scenario spec "
                               "for a synthetic source")
    pipeline.add_argument("--json", action="store_true",
                          help="emit the machine-readable run summary for CI")
    pipeline.add_argument("--chunk", type=int, default=None,
                          help="streaming mode: feed the monitor and "
                               "detector streams this many samples at a "
                               "time through the incremental engine")
    _add_execution_flags(pipeline)
    pipeline.set_defaults(func=cmd_pipeline)

    serve = sub.add_parser(
        "serve", help="run the resident multi-tenant detection service "
                      "(JSON over HTTP; SIGTERM/SIGINT drain gracefully)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8377,
                       help="listen port; 0 picks an ephemeral port "
                            "(printed on startup)")
    serve.add_argument("--backend", default="threads",
                       choices=["serial", "threads", "process"],
                       help="shared worker-pool backend for batch /detect "
                            "requests (default: threads)")
    serve.add_argument("--workers", type=int, default=None,
                       help="worker count for the shared pool (default: one "
                            "per core)")
    serve.add_argument("--max-tenants", type=int, default=64,
                       help="tenant capacity (default: 64)")
    serve.add_argument("--state-dir", type=Path, default=None,
                       help="directory for durable tenant state (spec + "
                            "frame journal + snapshots); a restarted server "
                            "recovers every tenant from it bit-identically")
    serve.add_argument("--fsync", action="store_true",
                       help="fsync journal appends and snapshots (survives "
                            "power loss, not just process crashes)")
    serve.add_argument("--snapshot-every", type=int, default=None,
                       help="ring-snapshot cadence in ingested samples "
                            "(default: 1024); smaller means faster recovery, "
                            "more write amplification")
    serve.add_argument("--snapshot-bytes", type=int, default=0,
                       help="also snapshot (and truncate the journal) as "
                            "soon as a tenant's journal file crosses this "
                            "many bytes, whatever the sample cadence says "
                            "(default: 0 = size trigger off); bounds journal "
                            "growth for wide tenants")
    serve.add_argument("--detect-cache-size", type=int, default=None,
                       help="per-server LRU capacity for cached /detect "
                            "responses keyed on the ring window's content "
                            "hash (default: 128; 0 disables caching)")
    serve.add_argument("--detect-timeout", type=float, default=120.0,
                       help="per-unit wall-clock budget for batch /detect "
                            "sweeps; a hung worker returns an error instead "
                            "of wedging the request (default: 120s)")
    serve.set_defaults(func=cmd_serve)

    cache = sub.add_parser(
        "cache", help="inspect or prune a run-result cache directory")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="print the cache's entry count and byte total")
    cache_stats.add_argument("cache_dir", type=Path,
                             help="the --result-cache directory")
    cache_stats.set_defaults(func=cmd_cache)
    cache_prune = cache_sub.add_parser(
        "prune", help="evict least-recently-used entries until the cache "
                      "fits a byte budget")
    cache_prune.add_argument("cache_dir", type=Path,
                             help="the --result-cache directory")
    cache_prune.add_argument("--max-bytes", type=int, required=True,
                             help="byte budget the cache must fit after "
                                  "pruning")
    cache_prune.set_defaults(func=cmd_cache)
    cache.set_defaults(func=cmd_cache)

    scenarios = sub.add_parser(
        "scenarios", help="list registered scenarios and fault injectors")
    scenarios.set_defaults(func=cmd_scenarios)

    experiments = sub.add_parser(
        "experiments", help="run the paper-claim vs. measured experiment suite")
    experiments.add_argument("--seed", type=int, default=2022)
    experiments.add_argument("--paper-scale", action="store_true")
    experiments.add_argument("--output", type=Path, default=None,
                             help="write the Markdown report here instead of stdout")
    experiments.set_defaults(func=cmd_experiments)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BatchLensError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
