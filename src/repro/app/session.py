"""An interactive analysis session over one trace.

:class:`AnalysisSession` mirrors how an analyst uses BatchLens: pick a
timestamp on the timeline, look at the bubble chart, select a job, brush a
range on its line chart, hover a node.  It keeps the selection state and
hands out consistent view models — which is also exactly what the
integration tests exercise end to end.
"""

from __future__ import annotations

from repro.analysis.patterns import RegimeAssessment, classify_regime
from repro.app.interactions import InteractionError, NodeLinkIndex, SelectionState, TimeBrush
from repro.app.views import (
    active_job_summary,
    build_bubble_model,
    build_line_model,
    build_timeline_model,
)
from repro.cluster.hierarchy import BatchHierarchy
from repro.config import METRICS
from repro.errors import UnknownEntityError
from repro.metrics.store import MetricStore
from repro.trace.records import TraceBundle
from repro.vis.charts.bubble import BubbleChartModel
from repro.vis.charts.line import LineChartModel
from repro.vis.charts.timeline import TimelineModel


class AnalysisSession:
    """Stateful exploration of one trace bundle."""

    def __init__(self, bundle: TraceBundle, *,
                 hierarchy: BatchHierarchy | None = None) -> None:
        if bundle.usage is None or bundle.usage.num_samples == 0:
            raise InteractionError("the bundle carries no usage data to explore")
        self.bundle = bundle
        self.hierarchy = (hierarchy if hierarchy is not None
                          else BatchHierarchy.from_bundle(bundle))
        self.store: MetricStore = bundle.usage
        start, end = bundle.time_range()
        self._extent = (start, end)
        self.state = SelectionState(timestamp=start)

    # -- selection --------------------------------------------------------------
    @property
    def time_extent(self) -> tuple[float, float]:
        return self._extent

    def select_timestamp(self, timestamp: float) -> SelectionState:
        lo, hi = self._extent
        if not lo <= timestamp <= hi:
            raise InteractionError(
                f"timestamp {timestamp} outside the trace extent [{lo}, {hi}]")
        self.state = self.state.with_timestamp(timestamp)
        return self.state

    def select_job(self, job_id: str) -> SelectionState:
        if job_id not in self.hierarchy:
            raise UnknownEntityError("job", job_id)
        self.state = self.state.with_job(job_id)
        return self.state

    def select_metric(self, metric: str) -> SelectionState:
        if metric not in METRICS:
            raise InteractionError(
                f"unknown metric {metric!r}; expected one of {METRICS}")
        self.state = self.state.with_metric(metric)
        return self.state

    def brush(self, start: float, end: float) -> TimeBrush:
        brush = TimeBrush(start, end).clamp(*self._extent)
        self.state = self.state.with_brush(brush)
        return brush

    def clear_brush(self) -> None:
        self.state = self.state.with_brush(None)

    def hover(self, machine_id: str | None) -> SelectionState:
        self.state = self.state.with_hover(machine_id)
        return self.state

    # -- derived views -------------------------------------------------------------
    def _current_timestamp(self) -> float:
        return self.state.timestamp if self.state.timestamp is not None else self._extent[0]

    def bubble_model(self, *, max_jobs: int | None = None) -> BubbleChartModel:
        return build_bubble_model(self.hierarchy, self.store,
                                  self._current_timestamp(), max_jobs=max_jobs)

    def line_model(self, job_id: str | None = None,
                   metric: str | None = None) -> LineChartModel:
        job = job_id if job_id is not None else self.state.job_id
        if job is None:
            raise InteractionError("no job selected; call select_job() first")
        brush = self.state.brush.as_tuple() if self.state.brush else None
        return build_line_model(self.hierarchy, self.store, job,
                                metric=metric or self.state.metric, brush=brush)

    def timeline_model(self) -> TimelineModel:
        brush = self.state.brush.as_tuple() if self.state.brush else None
        return build_timeline_model(self.store,
                                    selected_timestamp=self.state.timestamp,
                                    brush=brush)

    def node_links(self) -> NodeLinkIndex:
        return NodeLinkIndex.from_hierarchy(self.hierarchy,
                                            self._current_timestamp())

    def regime(self) -> RegimeAssessment:
        return classify_regime(self.store, self._current_timestamp())

    def active_jobs(self) -> list[dict]:
        return active_job_summary(self.bundle, self.hierarchy, self.store,
                                  self._current_timestamp())

    def hovered_machine_jobs(self) -> list[str]:
        """Jobs sharing the currently hovered machine (empty without hover)."""
        if self.state.hovered_machine is None:
            return []
        return self.hierarchy.jobs_on_machine(self.state.hovered_machine,
                                              self._current_timestamp())
