"""View-model builders: from trace data to chart models.

These functions translate the analysis-side objects (bundle, hierarchy,
metric store) into the declarative models the chart classes render.  They
are the linkage layer of the "multiple mutually-linked views": every view
of one dashboard is built from the same bundle, hierarchy and selection
state, so they stay consistent by construction.
"""

from __future__ import annotations

from repro.cluster.hierarchy import BatchHierarchy, JobNode
from repro.config import METRICS
from repro.errors import UnknownEntityError
from repro.metrics.aggregate import cluster_timeline
from repro.metrics.store import MetricStore
from repro.trace.records import TraceBundle
from repro.vis.charts.bubble import BubbleChartModel, JobBubble, NodeGlyph, TaskBubble
from repro.vis.charts.heatmap import HeatmapModel
from repro.vis.charts.line import Annotation, LineChartModel, LineSeries
from repro.vis.charts.timeline import TimelineModel


def build_bubble_model(hierarchy: BatchHierarchy, store: MetricStore,
                       timestamp: float, *, max_jobs: int | None = None,
                       include_shared_links: bool = True) -> BubbleChartModel:
    """The hierarchical bubble chart model for one timestamp.

    Jobs active at the timestamp become root bubbles; their tasks become the
    middle layer; every machine executing an active instance becomes a node
    glyph coloured by its utilisation at that instant.  ``max_jobs`` keeps
    paper-scale renders readable by taking the busiest jobs first.
    """
    active_jobs = hierarchy.jobs_at(timestamp)
    active_jobs.sort(key=lambda job: (-job.num_instances, job.job_id))
    if max_jobs is not None:
        active_jobs = active_jobs[:max_jobs]

    job_bubbles: list[JobBubble] = []
    for job in active_jobs:
        bubble = JobBubble(job_id=job.job_id)
        for task in job.tasks:
            if not task.active_at(timestamp):
                continue
            task_bubble = TaskBubble(task_id=task.task_id)
            machine_instances: dict[str, int] = {}
            for inst in task.active_instances(timestamp):
                if inst.machine_id is None:
                    continue
                machine_instances[inst.machine_id] = (
                    machine_instances.get(inst.machine_id, 0) + 1)
            for machine_id, count in sorted(machine_instances.items()):
                if machine_id in store:
                    usage = store.machine_snapshot(machine_id, timestamp)
                else:
                    usage = {metric: 0.0 for metric in METRICS}
                task_bubble.nodes.append(NodeGlyph(
                    machine_id=machine_id,
                    cpu=usage["cpu"], mem=usage["mem"], disk=usage["disk"],
                    weight=float(count)))
            if task_bubble.nodes:
                bubble.tasks.append(task_bubble)
        if bubble.tasks:
            job_bubbles.append(bubble)

    shared = hierarchy.shared_machines(timestamp) if include_shared_links else {}
    if max_jobs is not None:
        visible = {job.job_id for job in job_bubbles}
        shared = {machine_id: [pair for pair in pairs if pair[0] in visible]
                  for machine_id, pairs in shared.items()}
        shared = {machine_id: pairs for machine_id, pairs in shared.items()
                  if len({job_id for job_id, _ in pairs}) >= 2}
    return BubbleChartModel(timestamp=timestamp, jobs=job_bubbles,
                            shared_machines=shared)


def build_line_model(hierarchy: BatchHierarchy, store: MetricStore, job_id: str,
                     *, metric: str = "cpu",
                     brush: tuple[float, float] | None = None,
                     context_s: float = 1800.0) -> LineChartModel:
    """The per-job multi-line chart model (Fig. 2).

    One line per (machine, task) pair executing the job, clipped to the job's
    lifetime plus ``context_s`` of context on either side; green start
    annotations per machine and per-task end annotations.
    """
    job: JobNode = hierarchy.job(job_id)
    start = job.start - context_s
    end = job.end + context_s

    lines: list[LineSeries] = []
    for task in job.tasks:
        for machine_id in task.machine_ids():
            if machine_id not in store:
                continue
            series = store.series(machine_id, metric).slice(start, end)
            if len(series) < 2:
                continue
            lines.append(LineSeries(machine_id=machine_id, task_id=task.task_id,
                                    series=series))
    if not lines:
        raise UnknownEntityError("job with usage data", job_id)

    annotations: list[Annotation] = []
    start_times = sorted(set(job.start_times_by_machine().values()))
    for timestamp in start_times:
        annotations.append(Annotation(timestamp=float(timestamp), kind="start",
                                      label=None))
    if start_times:
        annotations[0] = Annotation(timestamp=float(start_times[0]), kind="start",
                                    label="start")
    for task_id, end_time in sorted(job.task_end_times().items()):
        annotations.append(Annotation(timestamp=float(end_time), kind="end",
                                      task_id=task_id, label=f"end {task_id}"))

    return LineChartModel(job_id=job_id, metric=metric, lines=lines,
                          annotations=annotations, brush=brush)


def build_timeline_model(store: MetricStore, *,
                         selected_timestamp: float | None = None,
                         brush: tuple[float, float] | None = None,
                         reducer: str = "mean") -> TimelineModel:
    """The cluster-aggregate timeline model (one layer per metric)."""
    return TimelineModel(layers=cluster_timeline(store, reducer=reducer),
                         selected_timestamp=selected_timestamp, brush=brush)


def build_heatmap_model(store: MetricStore, *, metric: str = "cpu",
                        machine_ids: list[str] | None = None) -> HeatmapModel:
    """The baseline machine × time heat-map model."""
    return HeatmapModel.from_store(store, metric=metric, machine_ids=machine_ids)


def active_job_summary(bundle: TraceBundle, hierarchy: BatchHierarchy,
                       store: MetricStore, timestamp: float) -> list[dict]:
    """Tabular summary of active jobs at a timestamp (for reports and tests)."""
    rows = []
    for job in hierarchy.jobs_at(timestamp):
        machine_ids = [mid for mid in job.machine_ids() if mid in store]
        cpu_values = [store.machine_snapshot(mid, timestamp)["cpu"]
                      for mid in machine_ids]
        mem_values = [store.machine_snapshot(mid, timestamp)["mem"]
                      for mid in machine_ids]
        rows.append({
            "job_id": job.job_id,
            "num_tasks": job.num_tasks,
            "num_instances": job.num_instances,
            "num_machines": len(machine_ids),
            "mean_cpu": sum(cpu_values) / len(cpu_values) if cpu_values else 0.0,
            "mean_mem": sum(mem_values) / len(mem_values) if mem_values else 0.0,
            "start": job.start,
            "end": job.end,
        })
    rows.sort(key=lambda row: (-row["num_machines"], row["job_id"]))
    return rows
