"""Interaction model: brushing, timestamp selection and node linking.

The paper's §III-C interactions, expressed as plain objects so they can be
exercised from tests and the examples without a browser:

* brushing a time range on the timeline or a line chart → a validated
  :class:`TimeBrush` that the detail (zoom) views consume;
* choosing a timestamp → drives which jobs/bubbles are shown;
* mousing over a compute node → a :class:`NodeLinkIndex` lookup of every
  (job, task) pair the machine currently serves, i.e. the dotted links.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cluster.hierarchy import BatchHierarchy
from repro.errors import BatchLensError


class InteractionError(BatchLensError):
    """An interaction was requested with out-of-range arguments."""


@dataclass(frozen=True)
class TimeBrush:
    """A validated, clamped time-range selection."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise InteractionError(
                f"brush end ({self.end}) must be after start ({self.start})")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def clamp(self, lo: float, hi: float) -> "TimeBrush":
        """Clamp the brush into ``[lo, hi]`` (raises if nothing remains)."""
        start = max(self.start, lo)
        end = min(self.end, hi)
        if end <= start:
            raise InteractionError(
                f"brush [{self.start}, {self.end}] lies outside the data "
                f"extent [{lo}, {hi}]")
        return TimeBrush(start, end)

    def contains(self, timestamp: float) -> bool:
        return self.start <= timestamp <= self.end

    def as_tuple(self) -> tuple[float, float]:
        return (self.start, self.end)


@dataclass(frozen=True)
class SelectionState:
    """The current selection of the linked views."""

    timestamp: float | None = None
    job_id: str | None = None
    metric: str = "cpu"
    brush: TimeBrush | None = None
    hovered_machine: str | None = None

    def with_timestamp(self, timestamp: float) -> "SelectionState":
        return replace(self, timestamp=timestamp)

    def with_job(self, job_id: str | None) -> "SelectionState":
        return replace(self, job_id=job_id)

    def with_metric(self, metric: str) -> "SelectionState":
        return replace(self, metric=metric)

    def with_brush(self, brush: TimeBrush | None) -> "SelectionState":
        return replace(self, brush=brush)

    def with_hover(self, machine_id: str | None) -> "SelectionState":
        return replace(self, hovered_machine=machine_id)


@dataclass
class NodeLinkIndex:
    """Lookup of machines serving several jobs at one timestamp."""

    timestamp: float
    links: dict[str, list[tuple[str, str]]] = field(default_factory=dict)

    @classmethod
    def from_hierarchy(cls, hierarchy: BatchHierarchy,
                       timestamp: float) -> "NodeLinkIndex":
        return cls(timestamp=timestamp,
                   links=hierarchy.shared_machines(timestamp))

    @property
    def shared_machine_ids(self) -> list[str]:
        return sorted(self.links)

    def jobs_of(self, machine_id: str) -> list[str]:
        """Distinct jobs the machine serves at the index's timestamp."""
        seen: dict[str, None] = {}
        for job_id, _ in self.links.get(machine_id, []):
            seen.setdefault(job_id, None)
        return list(seen)

    def is_shared(self, machine_id: str) -> bool:
        return machine_id in self.links

    def __len__(self) -> int:
        return len(self.links)
