"""The BatchLens application layer: facade, sessions, views, export."""

from repro.app.batchlens import BatchLens
from repro.app.export import case_study_narrative, export_case_study, export_job_figures
from repro.app.interactions import InteractionError, NodeLinkIndex, SelectionState, TimeBrush
from repro.app.session import AnalysisSession
from repro.app.views import (
    active_job_summary,
    build_bubble_model,
    build_heatmap_model,
    build_line_model,
    build_timeline_model,
)

__all__ = [
    "AnalysisSession",
    "BatchLens",
    "InteractionError",
    "NodeLinkIndex",
    "SelectionState",
    "TimeBrush",
    "active_job_summary",
    "build_bubble_model",
    "build_heatmap_model",
    "build_line_model",
    "build_timeline_model",
    "case_study_narrative",
    "export_case_study",
    "export_job_figures",
]
