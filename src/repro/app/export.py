"""Bulk export helpers: case-study reports and figure regeneration.

These functions back the examples and the benchmark harness: they take one
or more trace bundles and write out the artefacts the paper presents — the
three Fig. 3 dashboards, per-job Fig. 2 line charts, and a textual
case-study narrative with the programmatically-detected evidence.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.balance import cluster_balance
from repro.analysis.patterns import classify_regime
from repro.analysis.rootcause import anomalous_machines_in_window, rank_root_causes
from repro.analysis.spikes import largest_spike
from repro.analysis.thrashing import cluster_thrashing_report
from repro.app.batchlens import BatchLens
from repro.trace.records import TraceBundle


def export_case_study(bundles: dict[str, TraceBundle], output_dir: str | Path,
                      *, timestamps: dict[str, float] | None = None) -> dict[str, Path]:
    """Write one dashboard per scenario bundle; returns scenario → HTML path.

    By default each scenario is rendered at the timestamp where its defining
    behaviour is most visible (mid-trace for healthy/hotjob, inside the
    thrash window for thrashing).
    """
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    written: dict[str, Path] = {}
    for scenario, bundle in bundles.items():
        lens = BatchLens.from_bundle(bundle)
        start, end = lens.time_extent
        if timestamps and scenario in timestamps:
            timestamp = timestamps[scenario]
        elif scenario == "thrashing" and "thrashing" in bundle.meta:
            window = bundle.meta["thrashing"].get("window")
            timestamp = (window[0] + window[1]) / 2 if window else (start + end) / 2
        else:
            timestamp = (start + end) / 2
        path = output_dir / f"fig3_{scenario}.html"
        lens.save_dashboard(timestamp, path,
                            title=f"BatchLens — {scenario} regime "
                                  f"(t={timestamp:.0f}s)")
        written[scenario] = path
    return written


def case_study_narrative(bundle: TraceBundle, timestamp: float) -> str:
    """A textual walk-through of one snapshot, with detected evidence.

    Mirrors the structure of §IV: the regime, the load-balance observation,
    the busiest jobs, hot-job spike evidence and any thrashing machines with
    their most likely root-cause jobs.
    """
    lens = BatchLens.from_bundle(bundle)
    lines: list[str] = []
    assessment = classify_regime(lens.store, timestamp)
    lines.append(assessment.summary())

    balance = cluster_balance(lens.store, timestamp)
    cpu_balance = balance["cpu"]
    lines.append(
        f"Load balance (CPU): mean {cpu_balance.mean:.0f}%, CV "
        f"{cpu_balance.cv:.2f}, Gini {cpu_balance.gini:.2f} — "
        + ("uniform colour distribution" if cpu_balance.balanced
           else "visibly imbalanced"))

    jobs = lens.active_jobs(timestamp)
    lines.append(f"{len(jobs)} job(s) active; busiest:")
    for row in jobs[:5]:
        lines.append(
            f"  {row['job_id']}: {row['num_tasks']} task(s), "
            f"{row['num_machines']} node(s), mean CPU {row['mean_cpu']:.0f}%, "
            f"mean MEM {row['mean_mem']:.0f}%")

    hot_job_id = bundle.meta.get("hot_job_id")
    if hot_job_id and hot_job_id in lens.hierarchy:
        job = lens.hierarchy.job(hot_job_id)
        spikes = []
        for machine_id in job.machine_ids():
            if machine_id not in lens.store:
                continue
            spike = largest_spike(lens.store.series(machine_id, "cpu"),
                                  subject=machine_id)
            if spike is not None:
                spikes.append(spike)
        if spikes:
            top = max(spikes, key=lambda s: s.prominence)
            lines.append(
                f"Hot job {hot_job_id}: CPU spike on {len(spikes)} of "
                f"{len(job.machine_ids())} node(s); largest peak "
                f"{top.value:.0f}% at t={top.timestamp:.0f}s.")

    thrash = cluster_thrashing_report(lens.store)
    if thrash:
        machines = sorted(thrash)
        window_start = min(w.start for ws in thrash.values() for w in ws)
        window_end = max(w.end for ws in thrash.values() for w in ws)
        lines.append(
            f"Thrashing detected on {len(machines)} machine(s) between "
            f"t={window_start:.0f}s and t={window_end:.0f}s "
            f"(memory overcommit with CPU collapse).")
        candidates = rank_root_causes(
            bundle, lens.hierarchy,
            anomalous_machines_in_window(lens.store, (window_start, window_end),
                                         metric="mem", threshold=85.0)
            or machines,
            (window_start, window_end))
        for candidate in candidates[:3]:
            lines.append("  root-cause candidate: " + candidate.explain())
    return "\n".join(lines)


def export_job_figures(bundle: TraceBundle, job_id: str, output_dir: str | Path,
                       *, metrics: tuple[str, ...] = ("cpu", "mem")) -> list[Path]:
    """Write the Fig. 2-style overview + zoomed line charts for one job."""
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    lens = BatchLens.from_bundle(bundle)
    job = lens.hierarchy.job(job_id)
    written: list[Path] = []
    for metric in metrics:
        chart = lens.job_lines(job_id, metric=metric)
        path = output_dir / f"{job_id}_{metric}_overview.svg"
        chart.save(path)
        written.append(path)
        span = max(1.0, job.end - job.start)
        zoom = chart.zoomed(job.start + 0.25 * span, job.start + 0.75 * span)
        zoom_path = output_dir / f"{job_id}_{metric}_zoom.svg"
        zoom.save(zoom_path)
        written.append(zoom_path)
    return written
