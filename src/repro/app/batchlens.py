"""The BatchLens facade: the library's primary public API.

Typical use::

    from repro import BatchLens

    lens = BatchLens.generate(scenario="hotjob", seed=7)   # or .from_directory(...)
    lens.dashboard(timestamp=9000).save("batchlens.html")

    chart = lens.bubble_chart(timestamp=9000)
    lines = lens.job_lines("job_1042", metric="cpu")
    detail = lines.zoomed(8000, 12000)                      # Fig. 2(b)

Detection goes through the declarative pipeline
(:mod:`repro.pipeline`) — :meth:`BatchLens.pipeline` wraps the lens's
bundle as a pipeline source, so a detector sweep plus ground-truth scoring
is one spec away::

    result = lens.pipeline(detectors="threshold(threshold=85)+flatline",
                           sinks=("score",)).run()
    result.flagged_machines()
    result.scores                       # precision/recall per anomaly

(The older :meth:`BatchLens.detect` survives as a deprecation-warned shim
over the same pipeline.)  Every chart is also available as a plain *model*
(``*_model`` methods via :class:`~repro.app.session.AnalysisSession`) for
programmatic analysis.
"""

from __future__ import annotations

import warnings
from pathlib import Path

from repro.analysis.patterns import RegimeAssessment, classify_regime
from repro.app.session import AnalysisSession
from repro.app.views import (
    active_job_summary,
    build_bubble_model,
    build_heatmap_model,
    build_line_model,
    build_timeline_model,
)
from repro.cluster.hierarchy import BatchHierarchy
from repro.config import METRICS, TraceConfig
from repro.errors import BatchLensError
from repro.metrics.stats import HierarchyStats
from repro.metrics.store import MetricStore
from repro.trace.loader import load_trace
from repro.trace.records import TraceBundle
from repro.vis.charts.area import StackedAreaChart, StackedAreaModel
from repro.vis.charts.bubble import HierarchicalBubbleChart
from repro.vis.charts.distribution import HistogramModel, UtilisationHistogram
from repro.vis.charts.heatmap import UtilisationHeatmap
from repro.vis.charts.line import MultiLineChart
from repro.vis.charts.scatter import MachineScatterChart, ScatterModel
from repro.vis.charts.smallmultiples import SmallMultiplesChart, SmallMultiplesModel
from repro.vis.charts.timeline import TimelineChart
from repro.vis.html import Dashboard


class BatchLens:
    """Interactive visual analytics over one Alibaba-style trace bundle."""

    def __init__(self, bundle: TraceBundle) -> None:
        if bundle.usage is None or bundle.usage.num_samples == 0:
            raise BatchLensError(
                "BatchLens needs server-usage data; the bundle has none")
        if not bundle.tasks and not bundle.instances:
            raise BatchLensError(
                "BatchLens needs batch scheduler data; the bundle has none")
        self.bundle = bundle
        self.hierarchy: BatchHierarchy = BatchHierarchy.from_bundle(bundle)
        self.store: MetricStore = bundle.usage

    # -- constructors ---------------------------------------------------------------
    @classmethod
    def from_bundle(cls, bundle: TraceBundle) -> "BatchLens":
        """Wrap an already-loaded or freshly-generated bundle."""
        return cls(bundle)

    @classmethod
    def from_directory(cls, directory: str | Path) -> "BatchLens":
        """Load the Alibaba CSV tables under ``directory`` and wrap them."""
        return cls(load_trace(directory))

    @classmethod
    def generate(cls, config: TraceConfig | None = None, *,
                 scenario=None, seed: int | None = None) -> "BatchLens":
        """Generate a synthetic trace (see :func:`repro.trace.generate_trace`).

        ``scenario`` accepts a legacy alias (``"healthy"``, ``"hotjob"``,
        ``"thrashing"``), any registered fault-injector name, or a composed
        spec stacking several injectors::

            lens = BatchLens.generate(
                scenario="diurnal(amplitude=40)+network-storm", seed=7)
            manifest = lens.ground_truth()      # what was injected where
        """
        from repro.trace.synthetic import generate_trace

        return cls(generate_trace(config, scenario=scenario, seed=seed))

    # -- basic queries -----------------------------------------------------------------
    @property
    def time_extent(self) -> tuple[float, float]:
        return self.bundle.time_range()

    def stats(self) -> HierarchyStats:
        """Structural statistics of the batch hierarchy (§II numbers)."""
        return self.hierarchy.stats()

    def snapshot(self, timestamp: float) -> RegimeAssessment:
        """Regime classification of the cluster at one timestamp."""
        return classify_regime(self.store, timestamp)

    def active_jobs(self, timestamp: float) -> list[dict]:
        """Summary rows of every job active at a timestamp."""
        return active_job_summary(self.bundle, self.hierarchy, self.store, timestamp)

    def session(self) -> AnalysisSession:
        """Start a stateful exploration session (brushing, selection, hover)."""
        return AnalysisSession(self.bundle, hierarchy=self.hierarchy)

    def ground_truth(self):
        """Ground-truth manifest of the injected anomalies (may be empty)."""
        return self.bundle.ground_truth()

    def detection_scorecard(self) -> dict:
        """Precision/recall of the declared detectors per injected anomaly.

        Scores every entry of the ground-truth manifest with the detector it
        names (see :mod:`repro.scenarios.scoring`); empty for bundles without
        a manifest.  The mask-based runners sweep the whole cluster through
        the vectorized :class:`~repro.analysis.engine.DetectionEngine`.
        """
        from repro.scenarios.scoring import scorecard

        return scorecard(self.bundle)

    def pipeline(self, **kwargs):
        """A :class:`~repro.pipeline.Pipeline` over this lens's bundle.

        Keyword arguments are the pipeline's (``detectors``, ``metrics``,
        ``mode``, ``sinks``, ``streaming``)::

            result = lens.pipeline(detectors="zscore(window=8)+flatline",
                                   sinks=("score",)).run()
        """
        from repro.pipeline import Pipeline

        return Pipeline.from_bundle(self.bundle, **kwargs)

    def detect(self, detector="threshold", *, metric: str = "cpu",
               window: tuple[float, float] | None = None) -> list:
        """Cluster-wide anomaly events of one detector, in a single pass.

        .. deprecated::
            Thin shim over :meth:`pipeline`; new code should run
            ``lens.pipeline(detectors=..., sinks=()).run()`` and read
            events / flagged machines / scores off the
            :class:`~repro.pipeline.RunResult`.

        ``detector`` is a registered name (``threshold``, ``zscore``,
        ``ewma``, ``flatline``) or any detector instance; the sweep runs
        through the :class:`~repro.analysis.engine.DetectionEngine` over the
        zero-copy metric block, never copying per-machine series.  The full
        trace is always swept; ``window`` filters the *returned events* by
        overlap (the same semantics the ground-truth scoring uses), so
        stateful detectors keep their full warm-up history::

            events = lens.detect("zscore", metric="mem")
        """
        warnings.warn(
            "BatchLens.detect is deprecated; use "
            "lens.pipeline(detectors=..., sinks=()).run() instead",
            DeprecationWarning, stacklevel=2)
        if isinstance(detector, str):
            from repro.pipeline import get_detector

            name, instance = detector, get_detector(detector)
        else:
            from repro.analysis.engine import detector_kind

            name, instance = detector_kind(detector), detector
        result = self.pipeline(detectors={name: instance}, metrics=(metric,),
                               sinks=()).run()
        events = result.events()
        if window is not None:
            events = [e for e in events if e.overlaps(window[0], window[1])]
        return events

    # -- charts -------------------------------------------------------------------------
    def bubble_chart(self, timestamp: float, *, max_jobs: int | None = None,
                     width: float = 760.0, height: float = 720.0,
                     title: str | None = None) -> HierarchicalBubbleChart:
        """The hierarchical bubble chart at one timestamp (Fig. 1 / Fig. 3)."""
        model = build_bubble_model(self.hierarchy, self.store, timestamp,
                                   max_jobs=max_jobs)
        if title is None:
            title = f"Batch hierarchy at t={timestamp:.0f}s"
        return HierarchicalBubbleChart(model, width=width, height=height,
                                       title=title)

    def job_lines(self, job_id: str, *, metric: str = "cpu",
                  brush: tuple[float, float] | None = None,
                  width: float = 680.0, height: float = 300.0) -> MultiLineChart:
        """The per-job multi-line chart with annotations (Fig. 2)."""
        model = build_line_model(self.hierarchy, self.store, job_id,
                                 metric=metric, brush=brush)
        return MultiLineChart(model, width=width, height=height)

    def timeline(self, *, selected_timestamp: float | None = None,
                 brush: tuple[float, float] | None = None,
                 width: float = 900.0, height: float = 220.0) -> TimelineChart:
        """The cluster-aggregate timeline (§III-C)."""
        model = build_timeline_model(self.store,
                                     selected_timestamp=selected_timestamp,
                                     brush=brush)
        return TimelineChart(model, width=width, height=height)

    def coallocation_matrix(self, timestamp: float | None = None, *,
                            max_jobs: int | None = 20,
                            width: float = 520.0, height: float = 520.0):
        """The job × job shared-machine matrix (co-allocation view)."""
        from repro.vis.charts.matrix import CoAllocationMatrix, CoAllocationMatrixModel

        model = CoAllocationMatrixModel.from_hierarchy(self.hierarchy, timestamp,
                                                       max_jobs=max_jobs)
        return CoAllocationMatrix(model, width=width, height=height)

    def heatmap(self, *, metric: str = "cpu",
                machine_ids: list[str] | None = None,
                width: float = 900.0, height: float = 480.0) -> UtilisationHeatmap:
        """The flat per-machine heat map (baseline-style view)."""
        model = build_heatmap_model(self.store, metric=metric,
                                    machine_ids=machine_ids)
        return UtilisationHeatmap(model, width=width, height=height)

    def scatter(self, timestamp: float, *,
                highlight: dict[str, str] | None = None,
                width: float = 480.0, height: float = 440.0) -> MachineScatterChart:
        """CPU-vs-memory scatter of every machine at one timestamp."""
        model = ScatterModel.from_store(self.store, timestamp, highlight=highlight)
        return MachineScatterChart(model, width=width, height=height)

    def histogram(self, timestamp: float, *, metric: str = "cpu",
                  bins: int = 10, width: float = 420.0,
                  height: float = 260.0) -> UtilisationHistogram:
        """Utilisation histogram across machines at one timestamp."""
        model = HistogramModel.from_store(self.store, metric, timestamp, bins=bins)
        return UtilisationHistogram(model, width=width, height=height)

    def _job_machines(self, *, active_at: float | None = None) -> dict[str, list[str]]:
        """Machines of every job (optionally only jobs active at a time)."""
        jobs = (self.hierarchy.jobs_at(active_at) if active_at is not None
                else self.hierarchy.jobs)
        return {job.job_id: job.machine_ids() for job in jobs}

    def stacked_area(self, *, metric: str = "cpu", max_groups: int = 10,
                     width: float = 900.0, height: float = 300.0) -> StackedAreaChart:
        """Per-job stacked contribution to cluster load over time."""
        model = StackedAreaModel.from_job_machines(
            self.store, self._job_machines(), metric=metric, max_groups=max_groups)
        return StackedAreaChart(model, width=width, height=height)

    def small_multiples(self, *, metric: str = "cpu", columns: int = 4,
                        width: float = 920.0) -> SmallMultiplesChart:
        """One sparkline per job: mean utilisation of its machines over time."""
        job_windows = {
            job.job_id: (float(job.start), float(job.end))
            for job in self.hierarchy.jobs}
        model = SmallMultiplesModel.per_job(self.store, self._job_machines(),
                                            metric=metric,
                                            job_windows=job_windows)
        return SmallMultiplesChart(model, columns=columns, width=width)

    # -- dashboards ------------------------------------------------------------------------
    def dashboard(self, timestamp: float, *, jobs: list[str] | None = None,
                  metrics: tuple[str, ...] = ("cpu", "mem"),
                  max_jobs: int | None = 18, max_line_panels: int = 4,
                  title: str | None = None, extended: bool = False) -> Dashboard:
        """Assemble the linked views for one timestamp into an HTML dashboard.

        The layout mirrors Fig. 3: the timeline on top, the hierarchical
        bubble chart as the main view, and per-job line-chart detail views
        below it.  ``jobs`` selects which jobs get line charts; by default
        the jobs running on the most machines at the timestamp are used.
        ``extended`` appends the overview panels that go beyond the paper's
        layout: the machine scatter plot, the utilisation histogram and the
        per-job stacked area chart.
        """
        for metric in metrics:
            if metric not in METRICS:
                raise BatchLensError(f"unknown metric {metric!r}")
        assessment = self.snapshot(timestamp)
        dash = Dashboard(
            title=title if title is not None else
            f"BatchLens — cluster at t={timestamp:.0f}s",
            subtitle=(f"{assessment.summary()}  |  scenario: "
                      f"{self.bundle.meta.get('scenario', 'unknown')}"),
        )
        dash.add_panel("Cluster timeline",
                       self.timeline(selected_timestamp=timestamp),
                       description="Cluster-aggregate utilisation; the marker "
                                   "shows the selected timestamp.",
                       full_width=True, panel_id="panel-timeline")
        dash.add_panel("Batch hierarchy (jobs ▸ tasks ▸ compute nodes)",
                       self.bubble_chart(timestamp, max_jobs=max_jobs),
                       description="Ring colours: CPU (outer), memory (middle), "
                                   "disk (inner). Hover a node to highlight the "
                                   "same machine everywhere; click a job to jump "
                                   "to its line charts.",
                       full_width=True, panel_id="panel-bubble")

        if jobs is None:
            summary = self.active_jobs(timestamp)
            jobs = [row["job_id"] for row in summary[:max_line_panels]]
        for job_id in jobs:
            for metric in metrics:
                try:
                    chart = self.job_lines(job_id, metric=metric)
                except BatchLensError:
                    continue
                dash.add_panel(
                    f"{job_id} — {metric.upper()} per compute node",
                    chart,
                    description="Green lines: execution start per node; "
                                "coloured lines: per-task end timestamps.",
                    panel_id=f"panel-job-{job_id}" if metric == metrics[0]
                    else f"panel-job-{job_id}-{metric}")

        if extended:
            dash.add_panel("Machines by CPU and memory",
                           self.scatter(timestamp),
                           description="Each dot is a machine; the high-memory / "
                                       "low-CPU corner is the thrashing signature.",
                           panel_id="panel-scatter")
            dash.add_panel("CPU utilisation distribution",
                           self.histogram(timestamp),
                           description="How many machines sit in each utilisation "
                                       "band at the selected timestamp.",
                           panel_id="panel-histogram")
            try:
                area = self.stacked_area()
            except BatchLensError:
                area = None
            if area is not None:
                dash.add_panel("Per-job cluster load",
                               area,
                               description="Summed utilisation of each job's "
                                           "machines over the whole trace.",
                               full_width=True, panel_id="panel-stacked-area")
        return dash

    def save_dashboard(self, timestamp: float, path: str | Path,
                       **kwargs) -> Path:
        """Render :meth:`dashboard` and write it to ``path``."""
        return self.dashboard(timestamp, **kwargs).save(path)
