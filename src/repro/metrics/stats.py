"""Descriptive statistics over traces and hierarchies.

These are the §II numbers of the paper (machine count, horizon, fraction of
single-task jobs, fraction of multi-instance tasks) plus the distributional
summaries the dashboards surface in tooltips and reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np


@dataclass(frozen=True)
class HierarchyStats:
    """Structural statistics of a batch hierarchy (paper §II)."""

    num_jobs: int
    num_tasks: int
    num_instances: int
    num_machines: int
    single_task_job_fraction: float
    multi_instance_task_fraction: float
    mean_tasks_per_job: float
    mean_instances_per_task: float
    max_instances_per_task: int

    def as_dict(self) -> dict[str, float]:
        return {
            "num_jobs": self.num_jobs,
            "num_tasks": self.num_tasks,
            "num_instances": self.num_instances,
            "num_machines": self.num_machines,
            "single_task_job_fraction": self.single_task_job_fraction,
            "multi_instance_task_fraction": self.multi_instance_task_fraction,
            "mean_tasks_per_job": self.mean_tasks_per_job,
            "mean_instances_per_task": self.mean_instances_per_task,
            "max_instances_per_task": self.max_instances_per_task,
        }


def hierarchy_stats(tasks_per_job: Mapping[str, int],
                    instances_per_task: Mapping[str, int],
                    num_machines: int) -> HierarchyStats:
    """Compute structural statistics from per-job and per-task counts."""
    job_counts = np.asarray(list(tasks_per_job.values()), dtype=np.int64)
    task_counts = np.asarray(list(instances_per_task.values()), dtype=np.int64)
    num_jobs = int(job_counts.shape[0])
    num_tasks = int(task_counts.shape[0])
    num_instances = int(task_counts.sum()) if num_tasks else 0
    return HierarchyStats(
        num_jobs=num_jobs,
        num_tasks=num_tasks,
        num_instances=num_instances,
        num_machines=num_machines,
        single_task_job_fraction=(
            float(np.mean(job_counts == 1)) if num_jobs else 0.0),
        multi_instance_task_fraction=(
            float(np.mean(task_counts > 1)) if num_tasks else 0.0),
        mean_tasks_per_job=float(job_counts.mean()) if num_jobs else 0.0,
        mean_instances_per_task=float(task_counts.mean()) if num_tasks else 0.0,
        max_instances_per_task=int(task_counts.max()) if num_tasks else 0,
    )


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number-plus summary of a sample of values."""

    count: int
    mean: float
    std: float
    minimum: float
    p25: float
    p50: float
    p75: float
    p95: float
    maximum: float


def summarize(values: Sequence[float] | np.ndarray) -> DistributionSummary:
    """Summarise a non-empty sample of values."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty sample")
    return DistributionSummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        p25=float(np.percentile(arr, 25)),
        p50=float(np.percentile(arr, 50)),
        p75=float(np.percentile(arr, 75)),
        p95=float(np.percentile(arr, 95)),
        maximum=float(arr.max()),
    )


def coefficient_of_variation(values: Sequence[float] | np.ndarray, *,
                             axis: int | None = None) -> float | np.ndarray:
    """Standard deviation divided by mean; 0 for constant or empty samples.

    With ``axis`` the same rule is applied along one axis of a block and an
    array of per-slice coefficients is returned (zero wherever the slice mean
    is exactly zero, matching the scalar short-circuit).
    """
    arr = np.asarray(values, dtype=np.float64)
    if axis is not None:
        if arr.size == 0:
            reduced = tuple(extent for dim, extent in enumerate(arr.shape)
                            if dim != axis % max(arr.ndim, 1))
            return np.zeros(reduced, dtype=np.float64)
        means = arr.mean(axis=axis)
        stds = arr.std(axis=axis)
        out = np.zeros_like(means)
        np.divide(stds, np.abs(means), out=out, where=means != 0.0)
        return out
    if arr.size == 0:
        return 0.0
    mean = float(arr.mean())
    if mean == 0.0:
        return 0.0
    return float(arr.std() / abs(mean))


def gini(values: Sequence[float] | np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 = perfectly balanced)."""
    arr = np.sort(np.asarray(values, dtype=np.float64))
    if arr.size == 0:
        return 0.0
    if np.any(arr < 0):
        raise ValueError("gini requires non-negative values")
    total = arr.sum()
    if total == 0.0:
        return 0.0
    n = arr.size
    index = np.arange(1, n + 1, dtype=np.float64)
    return float((2.0 * np.sum(index * arr) / (n * total)) - (n + 1.0) / n)
