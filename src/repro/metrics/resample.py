"""Resampling of time series onto regular grids.

The Alibaba trace mixes resolutions: batch-scheduler events land on a
300-second grid while server usage is sampled much more frequently.  The
views in BatchLens need both downsampling (timeline overview of a day) and
upsampling (aligning sparse scheduler events with dense usage samples).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import SeriesError
from repro.metrics.series import TimeSeries

#: Reducers accepted by :func:`downsample` by name.
REDUCERS: dict[str, Callable[[np.ndarray], float]] = {
    "mean": lambda a: float(np.mean(a)),
    "max": lambda a: float(np.max(a)),
    "min": lambda a: float(np.min(a)),
    "sum": lambda a: float(np.sum(a)),
    "median": lambda a: float(np.median(a)),
    "last": lambda a: float(a[-1]),
    "first": lambda a: float(a[0]),
}


def regular_grid(start: float, end: float, resolution_s: float) -> np.ndarray:
    """Return the inclusive regular grid ``start, start+res, ... <= end``."""
    if resolution_s <= 0:
        raise SeriesError(f"resolution must be positive, got {resolution_s}")
    if end < start:
        raise SeriesError(f"end ({end}) precedes start ({start})")
    count = int(np.floor((end - start) / resolution_s)) + 1
    return start + np.arange(count, dtype=np.float64) * resolution_s


def downsample(series: TimeSeries, resolution_s: float,
               reducer: str = "mean") -> TimeSeries:
    """Bucket samples into ``resolution_s``-wide bins and reduce each bin.

    Bin ``k`` covers ``[start + k*res, start + (k+1)*res)`` and is stamped at
    its left edge.  Empty bins are dropped rather than filled, which keeps
    gaps in the source data visible downstream.
    """
    if reducer not in REDUCERS:
        raise SeriesError(
            f"unknown reducer {reducer!r}; expected one of {sorted(REDUCERS)}")
    if len(series) == 0:
        return series
    reduce = REDUCERS[reducer]
    start = series.start
    bins = np.floor((series.timestamps - start) / resolution_s).astype(np.int64)
    out_ts: list[float] = []
    out_vs: list[float] = []
    for bin_id in np.unique(bins):
        mask = bins == bin_id
        out_ts.append(start + float(bin_id) * resolution_s)
        out_vs.append(reduce(series.values[mask]))
    return TimeSeries(np.asarray(out_ts), np.asarray(out_vs))


def upsample(series: TimeSeries, resolution_s: float,
             *, interpolate: bool = True) -> TimeSeries:
    """Re-sample onto a finer regular grid spanning the series' extent."""
    if len(series) == 0:
        return series
    grid = regular_grid(series.start, series.end, resolution_s)
    if interpolate:
        values = np.interp(grid, series.timestamps, series.values)
    else:
        values = np.asarray([series.value_at(t) for t in grid])
    return TimeSeries(grid, values)


def to_grid(series: TimeSeries, grid: np.ndarray,
            *, interpolate: bool = True) -> TimeSeries:
    """Re-sample a series onto an arbitrary caller-supplied grid."""
    grid = np.asarray(grid, dtype=np.float64)
    if len(series) == 0:
        return TimeSeries(grid, np.zeros(grid.shape[0]))
    if interpolate:
        values = np.interp(grid, series.timestamps, series.values)
    else:
        values = np.asarray([series.value_at(t) for t in grid])
    return TimeSeries(grid, values)


def fill_gaps(series: TimeSeries, resolution_s: float,
              fill_value: float = 0.0) -> TimeSeries:
    """Insert ``fill_value`` samples wherever the series skips a grid step."""
    if len(series) == 0:
        return series
    grid = regular_grid(series.start, series.end, resolution_s)
    existing = {float(t): float(v) for t, v in series}
    values = np.asarray([existing.get(float(t), fill_value) for t in grid])
    return TimeSeries(grid, values)
