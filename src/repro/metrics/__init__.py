"""Time-series and aggregation layer.

Public surface:

* :class:`~repro.metrics.series.TimeSeries` — immutable numpy-backed series.
* :class:`~repro.metrics.store.MetricStore` — dense per-machine utilisation.
* :mod:`~repro.metrics.resample` — regular-grid resampling helpers.
* :mod:`~repro.metrics.aggregate` — hierarchy roll-ups and timelines.
* :mod:`~repro.metrics.stats` — descriptive statistics of traces.
"""

from repro.metrics.aggregate import (
    GroupUtilisation,
    busiest_machines,
    cluster_timeline,
    group_series,
    group_snapshot,
    utilisation_histogram,
    windowed_mean,
)
from repro.metrics.resample import downsample, fill_gaps, regular_grid, to_grid, upsample
from repro.metrics.series import SeriesSummary, TimeSeries, align, merge_mean, merge_sum
from repro.metrics.stats import (
    DistributionSummary,
    HierarchyStats,
    coefficient_of_variation,
    gini,
    hierarchy_stats,
    summarize,
)
from repro.metrics.store import MetricStore

__all__ = [
    "DistributionSummary",
    "GroupUtilisation",
    "HierarchyStats",
    "MetricStore",
    "SeriesSummary",
    "TimeSeries",
    "align",
    "busiest_machines",
    "cluster_timeline",
    "coefficient_of_variation",
    "downsample",
    "fill_gaps",
    "gini",
    "group_series",
    "group_snapshot",
    "hierarchy_stats",
    "merge_mean",
    "merge_sum",
    "regular_grid",
    "summarize",
    "to_grid",
    "upsample",
    "utilisation_histogram",
    "windowed_mean",
]
