"""A small, numpy-backed time-series container.

The visual-analytics pipeline manipulates thousands of short utilisation
series (one per machine and metric).  :class:`TimeSeries` keeps timestamps
and values as aligned numpy arrays and offers the handful of operations the
rest of the library needs: slicing by time, resampling, rolling statistics,
exponentially-weighted smoothing, and alignment of several series onto a
common time grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import SeriesError


@dataclass(frozen=True)
class SeriesSummary:
    """Summary statistics of one series."""

    count: int
    minimum: float
    maximum: float
    mean: float
    std: float
    p50: float
    p95: float
    p99: float


class TimeSeries:
    """An immutable, time-ordered sequence of ``(timestamp, value)`` samples."""

    __slots__ = ("_timestamps", "_values")

    def __init__(self, timestamps: Sequence[float] | np.ndarray,
                 values: Sequence[float] | np.ndarray) -> None:
        ts = np.asarray(timestamps, dtype=np.float64)
        vs = np.asarray(values, dtype=np.float64)
        if ts.ndim != 1 or vs.ndim != 1:
            raise SeriesError("timestamps and values must be one-dimensional")
        if ts.shape[0] != vs.shape[0]:
            raise SeriesError(
                f"length mismatch: {ts.shape[0]} timestamps vs {vs.shape[0]} values")
        if ts.shape[0] > 1 and np.any(np.diff(ts) < 0):
            order = np.argsort(ts, kind="stable")
            ts = ts[order]
            vs = vs[order]
        self._timestamps = ts
        self._values = vs
        self._timestamps.setflags(write=False)
        self._values.setflags(write=False)

    # -- construction -----------------------------------------------------
    @classmethod
    def empty(cls) -> "TimeSeries":
        """Return a series with no samples."""
        return cls(np.empty(0), np.empty(0))

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[float, float]]) -> "TimeSeries":
        """Build a series from an iterable of ``(timestamp, value)`` pairs."""
        pairs = list(pairs)
        if not pairs:
            return cls.empty()
        ts, vs = zip(*pairs)
        return cls(np.asarray(ts), np.asarray(vs))

    @classmethod
    def constant(cls, timestamps: Sequence[float] | np.ndarray,
                 value: float) -> "TimeSeries":
        """Build a series holding ``value`` at every timestamp."""
        ts = np.asarray(timestamps, dtype=np.float64)
        return cls(ts, np.full(ts.shape[0], float(value)))

    # -- basic accessors ---------------------------------------------------
    @property
    def timestamps(self) -> np.ndarray:
        """Read-only array of sample timestamps (seconds)."""
        return self._timestamps

    @property
    def values(self) -> np.ndarray:
        """Read-only array of sample values."""
        return self._values

    def __len__(self) -> int:
        return int(self._timestamps.shape[0])

    def __iter__(self):
        return iter(zip(self._timestamps.tolist(), self._values.tolist()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return (self._timestamps.shape == other._timestamps.shape
                and np.array_equal(self._timestamps, other._timestamps)
                and np.array_equal(self._values, other._values))

    def __repr__(self) -> str:
        if len(self) == 0:
            return "TimeSeries(empty)"
        return (f"TimeSeries(n={len(self)}, "
                f"t=[{self._timestamps[0]:.0f}..{self._timestamps[-1]:.0f}], "
                f"mean={float(np.mean(self._values)):.2f})")

    @property
    def is_empty(self) -> bool:
        return len(self) == 0

    @property
    def start(self) -> float:
        """Timestamp of the first sample."""
        self._require_non_empty("start")
        return float(self._timestamps[0])

    @property
    def end(self) -> float:
        """Timestamp of the last sample."""
        self._require_non_empty("end")
        return float(self._timestamps[-1])

    @property
    def duration(self) -> float:
        """Time spanned between the first and last samples."""
        return self.end - self.start if len(self) else 0.0

    def _require_non_empty(self, operation: str) -> None:
        if len(self) == 0:
            raise SeriesError(f"cannot compute {operation} of an empty series")

    # -- point queries -----------------------------------------------------
    def value_at(self, timestamp: float, *, interpolate: bool = False) -> float:
        """Return the value at ``timestamp``.

        Without interpolation the most recent sample at or before the
        timestamp is returned (step semantics, matching how monitoring
        systems hold the last reported value).  With ``interpolate=True``
        a linear interpolation between the neighbouring samples is used.
        """
        self._require_non_empty("value_at")
        ts = self._timestamps
        if timestamp <= ts[0]:
            return float(self._values[0])
        if timestamp >= ts[-1]:
            return float(self._values[-1])
        if interpolate:
            return float(np.interp(timestamp, ts, self._values))
        idx = int(np.searchsorted(ts, timestamp, side="right")) - 1
        return float(self._values[idx])

    # -- transformations ---------------------------------------------------
    def slice(self, start: float | None = None,
              end: float | None = None) -> "TimeSeries":
        """Return the sub-series with ``start <= t <= end``."""
        if len(self) == 0:
            return self
        mask = np.ones(len(self), dtype=bool)
        if start is not None:
            mask &= self._timestamps >= start
        if end is not None:
            mask &= self._timestamps <= end
        return TimeSeries(self._timestamps[mask], self._values[mask])

    def shift(self, offset: float) -> "TimeSeries":
        """Return a copy with every timestamp shifted by ``offset`` seconds."""
        return TimeSeries(self._timestamps + offset, self._values)

    def scale(self, factor: float) -> "TimeSeries":
        """Return a copy with every value multiplied by ``factor``."""
        return TimeSeries(self._timestamps, self._values * factor)

    def clip(self, lower: float, upper: float) -> "TimeSeries":
        """Return a copy with values clipped to ``[lower, upper]``."""
        if lower > upper:
            raise SeriesError(f"invalid clip range: [{lower}, {upper}]")
        return TimeSeries(self._timestamps, np.clip(self._values, lower, upper))

    def map(self, func) -> "TimeSeries":
        """Return a copy with ``func`` applied element-wise to the values."""
        return TimeSeries(self._timestamps, np.asarray([func(v) for v in self._values]))

    def add(self, other: "TimeSeries") -> "TimeSeries":
        """Point-wise sum of two series sharing the same timestamps."""
        self._check_aligned(other)
        return TimeSeries(self._timestamps, self._values + other._values)

    def subtract(self, other: "TimeSeries") -> "TimeSeries":
        """Point-wise difference of two series sharing the same timestamps."""
        self._check_aligned(other)
        return TimeSeries(self._timestamps, self._values - other._values)

    def _check_aligned(self, other: "TimeSeries") -> None:
        if len(self) != len(other) or not np.array_equal(
                self._timestamps, other._timestamps):
            raise SeriesError("series are not aligned on the same timestamps")

    # -- smoothing & rolling statistics -------------------------------------
    def ewma(self, alpha: float) -> "TimeSeries":
        """Exponentially-weighted moving average with smoothing factor alpha."""
        if not 0.0 < alpha <= 1.0:
            raise SeriesError(f"alpha must be in (0, 1], got {alpha}")
        if len(self) == 0:
            return self
        smoothed = np.empty_like(self._values)
        smoothed[0] = self._values[0]
        for i in range(1, len(self._values)):
            smoothed[i] = alpha * self._values[i] + (1.0 - alpha) * smoothed[i - 1]
        return TimeSeries(self._timestamps, smoothed)

    def rolling_mean(self, window: int) -> "TimeSeries":
        """Centered-free rolling mean over ``window`` trailing samples."""
        return self._rolling(window, np.mean)

    def rolling_std(self, window: int) -> "TimeSeries":
        """Rolling standard deviation over ``window`` trailing samples."""
        return self._rolling(window, np.std)

    def _rolling(self, window: int, reducer) -> "TimeSeries":
        if window <= 0:
            raise SeriesError(f"window must be positive, got {window}")
        if len(self) == 0:
            return self
        out = np.empty_like(self._values)
        for i in range(len(self._values)):
            lo = max(0, i - window + 1)
            out[i] = reducer(self._values[lo:i + 1])
        return TimeSeries(self._timestamps, out)

    def diff(self) -> "TimeSeries":
        """First difference of the values (length ``n - 1``)."""
        if len(self) < 2:
            return TimeSeries.empty()
        return TimeSeries(self._timestamps[1:], np.diff(self._values))

    # -- statistics ---------------------------------------------------------
    def mean(self) -> float:
        self._require_non_empty("mean")
        return float(np.mean(self._values))

    def std(self) -> float:
        self._require_non_empty("std")
        return float(np.std(self._values))

    def min(self) -> float:
        self._require_non_empty("min")
        return float(np.min(self._values))

    def max(self) -> float:
        self._require_non_empty("max")
        return float(np.max(self._values))

    def percentile(self, q: float) -> float:
        self._require_non_empty("percentile")
        if not 0.0 <= q <= 100.0:
            raise SeriesError(f"percentile must be within [0, 100], got {q}")
        return float(np.percentile(self._values, q))

    def summary(self) -> SeriesSummary:
        """Return the summary statistics used by reports and tooltips."""
        self._require_non_empty("summary")
        return SeriesSummary(
            count=len(self),
            minimum=self.min(),
            maximum=self.max(),
            mean=self.mean(),
            std=self.std(),
            p50=self.percentile(50),
            p95=self.percentile(95),
            p99=self.percentile(99),
        )

    def argmax(self) -> float:
        """Timestamp at which the maximum value occurs (first occurrence)."""
        self._require_non_empty("argmax")
        return float(self._timestamps[int(np.argmax(self._values))])

    def argmin(self) -> float:
        """Timestamp at which the minimum value occurs (first occurrence)."""
        self._require_non_empty("argmin")
        return float(self._timestamps[int(np.argmin(self._values))])


def align(series: Sequence[TimeSeries], timestamps: np.ndarray | None = None,
          *, interpolate: bool = True) -> list[TimeSeries]:
    """Re-sample every series onto a shared time grid.

    When ``timestamps`` is omitted the union of all sample timestamps is used.
    Empty series stay empty.
    """
    non_empty = [s for s in series if len(s)]
    if timestamps is None:
        if not non_empty:
            return [TimeSeries.empty() for _ in series]
        timestamps = np.unique(np.concatenate([s.timestamps for s in non_empty]))
    grid = np.asarray(timestamps, dtype=np.float64)
    out: list[TimeSeries] = []
    for s in series:
        if len(s) == 0:
            out.append(TimeSeries.empty())
        elif interpolate:
            out.append(TimeSeries(grid, np.interp(grid, s.timestamps, s.values)))
        else:
            values = np.asarray([s.value_at(t) for t in grid])
            out.append(TimeSeries(grid, values))
    return out


def merge_sum(series: Sequence[TimeSeries]) -> TimeSeries:
    """Sum several series after aligning them on the union of timestamps."""
    aligned = [s for s in align(series) if len(s)]
    if not aligned:
        return TimeSeries.empty()
    total = aligned[0].values.copy()
    for s in aligned[1:]:
        total = total + s.values
    return TimeSeries(aligned[0].timestamps, total)


def merge_mean(series: Sequence[TimeSeries]) -> TimeSeries:
    """Average several series after aligning them on the union of timestamps."""
    non_empty = [s for s in series if len(s)]
    if not non_empty:
        return TimeSeries.empty()
    summed = merge_sum(non_empty)
    return TimeSeries(summed.timestamps, summed.values / len(non_empty))
