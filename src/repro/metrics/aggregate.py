"""Hierarchy roll-ups and windowed aggregation.

BatchLens constantly summarises utilisation along the batch hierarchy:
"how busy are the machines running task T / job J right now" drives the
bubble-chart colouring, and "cluster-wide metric over time" drives the
timeline.  These helpers express those roll-ups over a :class:`MetricStore`
and a set of machine groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.config import METRICS
from repro.errors import SeriesError
from repro.metrics.series import TimeSeries
from repro.metrics.store import MetricStore


@dataclass(frozen=True)
class GroupUtilisation:
    """Aggregated utilisation of a group of machines at one timestamp."""

    group_id: str
    machine_count: int
    mean: dict[str, float]
    maximum: dict[str, float]


def group_snapshot(store: MetricStore, groups: Mapping[str, Sequence[str]],
                   timestamp: float,
                   metrics: Sequence[str] = METRICS) -> list[GroupUtilisation]:
    """Summarise each machine group (task, job, ...) at one timestamp.

    ``groups`` maps a group id to the machine ids that belong to it; machines
    missing from the store are ignored so partially-known hierarchies still
    aggregate.
    """
    results: list[GroupUtilisation] = []
    for group_id, machine_ids in groups.items():
        known = [mid for mid in machine_ids if mid in store]
        if not known:
            results.append(GroupUtilisation(group_id, 0,
                                            {m: 0.0 for m in metrics},
                                            {m: 0.0 for m in metrics}))
            continue
        values = {m: [] for m in metrics}
        for mid in known:
            snap = store.machine_snapshot(mid, timestamp)
            for m in metrics:
                values[m].append(snap[m])
        results.append(GroupUtilisation(
            group_id=group_id,
            machine_count=len(known),
            mean={m: float(np.mean(values[m])) for m in metrics},
            maximum={m: float(np.max(values[m])) for m in metrics},
        ))
    return results


def group_series(store: MetricStore, machine_ids: Sequence[str], metric: str,
                 reducer: str = "mean") -> TimeSeries:
    """Aggregate one metric over time across a group of machines."""
    known = [mid for mid in machine_ids if mid in store]
    if not known:
        return TimeSeries.empty()
    return store.subset(known).aggregate(metric, reducer)


def cluster_timeline(store: MetricStore,
                     metrics: Sequence[str] = METRICS,
                     reducer: str = "mean") -> dict[str, TimeSeries]:
    """Cluster-wide aggregate of every metric (the BatchLens timeline view)."""
    return {metric: store.aggregate(metric, reducer) for metric in metrics}


def windowed_mean(series: TimeSeries, window_s: float) -> TimeSeries:
    """Mean of the series over trailing windows of ``window_s`` seconds."""
    if window_s <= 0:
        raise SeriesError(f"window_s must be positive, got {window_s}")
    if len(series) == 0:
        return series
    ts = series.timestamps
    vs = series.values
    out = np.empty_like(vs)
    lo = 0
    for i in range(len(vs)):
        while ts[i] - ts[lo] > window_s:
            lo += 1
        out[i] = np.mean(vs[lo:i + 1])
    return TimeSeries(ts, out)


def utilisation_histogram(store: MetricStore, metric: str, timestamp: float,
                          bin_edges: Sequence[float] = (0, 20, 40, 60, 80, 100)) -> dict[str, int]:
    """Bucket machines by utilisation at one timestamp.

    Returns a mapping like ``{"0-20": 12, "20-40": 31, ...}`` used by the
    regime classifier and the case-study narrative ("all machines are at
    20-40 %").
    """
    edges = list(bin_edges)
    if len(edges) < 2 or any(hi <= lo for lo, hi in zip(edges, edges[1:])):
        raise SeriesError("bin_edges must be strictly increasing with >= 2 edges")
    snapshot = store.snapshot(timestamp, metric=metric)
    counts = {f"{int(lo)}-{int(hi)}": 0 for lo, hi in zip(edges, edges[1:])}
    labels = list(counts)
    for value in snapshot.values():
        placed = False
        for k, (lo, hi) in enumerate(zip(edges, edges[1:])):
            if lo <= value < hi or (k == len(labels) - 1 and value == hi):
                counts[labels[k]] += 1
                placed = True
                break
        if not placed and value >= edges[-1]:
            counts[labels[-1]] += 1
    return counts


def busiest_machines(store: MetricStore, metric: str, timestamp: float,
                     top_n: int = 10) -> list[tuple[str, float]]:
    """Return the ``top_n`` machines by utilisation at one timestamp."""
    if top_n <= 0:
        raise SeriesError(f"top_n must be positive, got {top_n}")
    snapshot = store.snapshot(timestamp, metric=metric)
    ranked = sorted(snapshot.items(), key=lambda kv: kv[1], reverse=True)
    return ranked[:top_n]
