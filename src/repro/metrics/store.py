"""Dense storage of per-machine utilisation series.

A :class:`MetricStore` keeps the server-usage table of a trace as one dense
array of shape ``(machines, metrics, samples)`` on a shared regular time
grid.  That is the natural layout for the queries BatchLens issues
constantly: "utilisation of machine M at time T", "CPU of every machine at
time T" (bubble chart colouring), and "whole series for machine M"
(line charts).

It is also the layout the cluster-wide detection engine
(:mod:`repro.analysis.engine`) sweeps in one NumPy pass:
:meth:`MetricStore.metric_block` hands out a zero-copy ``(machines,
samples)`` view of one metric, and :meth:`MetricStore.window` /
:meth:`MetricStore.subset` produce zero-copy views wherever basic slicing
allows, so engine queries never duplicate the usage matrix.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.config import METRICS
from repro.errors import SeriesError, UnknownEntityError
from repro.metrics.series import TimeSeries


def _validate_axes(machine_ids: Sequence[str],
                   timestamps: np.ndarray) -> tuple[list[str], np.ndarray]:
    """Shared machine/time axis validation (constructor and
    :meth:`MetricStore.from_dense`): unique ids, 1-D strictly increasing
    timestamps.  Returns the normalised ``(ids, timestamps)`` pair."""
    machine_ids = list(machine_ids)
    if len(set(machine_ids)) != len(machine_ids):
        raise SeriesError("machine ids must be unique")
    timestamps = np.asarray(timestamps, dtype=np.float64)
    if timestamps.ndim != 1:
        raise SeriesError("timestamps must be one-dimensional")
    if timestamps.shape[0] > 1 and np.any(np.diff(timestamps) <= 0):
        raise SeriesError("timestamps must be strictly increasing")
    return machine_ids, timestamps


@dataclass(frozen=True)
class MmapBacking:
    """Where a memory-mapped store's dense matrix lives on disk.

    A store opened from the trace cache with ``mmap=True`` carries one of
    these: pickling the store then ships this descriptor instead of the
    array bytes, and the receiving process reopens the file with
    ``np.load(mmap_mode="r")`` and re-slices its machine rows — so a
    process-pool shard worker pages in only the rows it sweeps, never the
    whole matrix.  ``size``/``mtime_ns`` pin the file as observed at open
    time: a store must never silently reattach to different bytes.
    """

    path: str
    dtype: str
    shape: tuple[int, int, int]
    row_start: int
    row_stop: int
    size: int
    mtime_ns: int

    def reopen(self) -> np.ndarray:
        """Re-mmap the backing file (read-only) and slice our rows."""
        try:
            stat = os.stat(self.path)
        except OSError as exc:
            raise SeriesError(
                f"mmap backing file is gone: {self.path} ({exc}); "
                f"reload the trace") from exc
        if (stat.st_size, stat.st_mtime_ns) != (self.size, self.mtime_ns):
            raise SeriesError(
                f"mmap backing file changed since the store was opened: "
                f"{self.path}; reload the trace")
        data = np.load(self.path, mmap_mode="r", allow_pickle=False)
        if tuple(data.shape) != self.shape or str(data.dtype) != self.dtype:
            raise SeriesError(
                f"mmap backing file changed layout: {self.path} holds "
                f"{data.shape}/{data.dtype}, expected "
                f"{self.shape}/{self.dtype}")
        return data[self.row_start:self.row_stop]


class MetricStore:
    """Dense ``(machine, metric, time)`` utilisation storage."""

    def __init__(self, machine_ids: Sequence[str], timestamps: np.ndarray,
                 metrics: Sequence[str] = METRICS) -> None:
        self._machine_ids, self._timestamps = _validate_axes(machine_ids,
                                                             timestamps)
        self._metrics = tuple(metrics)
        self._machine_index = {mid: i for i, mid in enumerate(self._machine_ids)}
        self._metric_index = {name: i for i, name in enumerate(self._metrics)}
        self._data = np.zeros(
            (len(self._machine_ids), len(self._metrics), self._timestamps.shape[0]),
            dtype=np.float64)
        self._backing: MmapBacking | None = None

    @classmethod
    def _view(cls, machine_ids: Sequence[str], timestamps: np.ndarray,
              metrics: Sequence[str], data: np.ndarray) -> "MetricStore":
        """Wrap existing arrays without copying (or re-validating) them.

        Used by :meth:`window` and :meth:`subset` to build zero-copy views:
        the inputs come from an already-validated store, so the constructor
        checks (and its zero-fill allocation) are skipped.
        """
        store = cls.__new__(cls)
        store._machine_ids = list(machine_ids)
        store._metrics = tuple(metrics)
        store._timestamps = timestamps
        store._machine_index = {mid: i for i, mid in enumerate(store._machine_ids)}
        store._metric_index = {name: i for i, name in enumerate(store._metrics)}
        store._data = data
        store._backing = None
        return store

    # -- mmap backing --------------------------------------------------------
    @property
    def mmap_backed(self) -> bool:
        """Whether the dense matrix is a read-only window into a file."""
        return self._backing is not None

    def _attach_backing(self, backing: MmapBacking) -> None:
        """Adopt an on-disk backing descriptor (trace-cache internal)."""
        self._backing = backing

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        if self._backing is not None:
            # Ship the descriptor, not the bytes: the receiving process
            # reopens the mmap by path and pages in only its rows.
            state["_data"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if self._data is None and self._backing is not None:
            self._data = self._backing.reopen()

    # -- accessors ----------------------------------------------------------
    @property
    def machine_ids(self) -> list[str]:
        return list(self._machine_ids)

    @property
    def metrics(self) -> tuple[str, ...]:
        return self._metrics

    @property
    def timestamps(self) -> np.ndarray:
        return self._timestamps

    @property
    def data(self) -> np.ndarray:
        """The raw ``(machines, metrics, samples)`` array (mutable view)."""
        return self._data

    @property
    def num_machines(self) -> int:
        return len(self._machine_ids)

    @property
    def num_samples(self) -> int:
        return int(self._timestamps.shape[0])

    def __contains__(self, machine_id: str) -> bool:
        return machine_id in self._machine_index

    def _machine_row(self, machine_id: str) -> int:
        try:
            return self._machine_index[machine_id]
        except KeyError:
            raise UnknownEntityError("machine", machine_id) from None

    def _metric_row(self, metric: str) -> int:
        try:
            return self._metric_index[metric]
        except KeyError:
            raise UnknownEntityError("metric", metric) from None

    # -- mutation -----------------------------------------------------------
    def _require_writable(self, operation: str) -> None:
        """Fail mutations of read-only stores with a clear error.

        Without this, NumPy raises an opaque ``ValueError: assignment
        destination is read-only`` from deep inside the assignment.
        """
        if not self._data.flags.writeable:
            origin = ("it is memory-mapped from the trace cache"
                      if self._backing is not None else
                      "it is a read-only view (subset / shard slice)")
            raise SeriesError(
                f"cannot {operation} on a read-only store: {origin}; "
                f"materialise a writable copy first, e.g. "
                f"MetricStore.from_dense(store.machine_ids, "
                f"store.timestamps, store.metrics, store.data.copy())")

    def set_series(self, machine_id: str, metric: str,
                   values: np.ndarray | Sequence[float]) -> None:
        """Overwrite the full series for one machine/metric pair."""
        self._require_writable("set_series")
        values = np.asarray(values, dtype=np.float64)
        if values.shape[0] != self.num_samples:
            raise SeriesError(
                f"expected {self.num_samples} samples, got {values.shape[0]}")
        self._data[self._machine_row(machine_id), self._metric_row(metric), :] = values

    def add_to_series(self, machine_id: str, metric: str,
                      values: np.ndarray | Sequence[float]) -> None:
        """Accumulate values onto an existing series (used by the simulator)."""
        self._require_writable("add_to_series")
        values = np.asarray(values, dtype=np.float64)
        if values.shape[0] != self.num_samples:
            raise SeriesError(
                f"expected {self.num_samples} samples, got {values.shape[0]}")
        self._data[self._machine_row(machine_id), self._metric_row(metric), :] += values

    def clip(self, lower: float = 0.0, upper: float = 100.0) -> None:
        """Clip every stored value into ``[lower, upper]`` in place."""
        self._require_writable("clip")
        np.clip(self._data, lower, upper, out=self._data)

    # -- queries ------------------------------------------------------------
    def series(self, machine_id: str, metric: str) -> TimeSeries:
        """Return the utilisation series of one machine for one metric."""
        row = self._data[self._machine_row(machine_id), self._metric_row(metric), :]
        return TimeSeries(self._timestamps, row.copy())

    def machine_snapshot(self, machine_id: str, timestamp: float) -> dict[str, float]:
        """Return ``{metric: value}`` for one machine at one timestamp."""
        idx = self._time_index(timestamp)
        row = self._data[self._machine_row(machine_id), :, idx]
        return {metric: float(row[i]) for i, metric in enumerate(self._metrics)}

    def snapshot(self, timestamp: float,
                 metric: str | None = None) -> dict[str, dict[str, float]] | dict[str, float]:
        """Return the utilisation of every machine at ``timestamp``.

        With ``metric`` set, a flat ``{machine_id: value}`` mapping is
        returned; otherwise a nested ``{machine_id: {metric: value}}``.
        """
        idx = self._time_index(timestamp)
        if metric is not None:
            column = self._data[:, self._metric_row(metric), idx]
            return {mid: float(column[i]) for i, mid in enumerate(self._machine_ids)}
        out: dict[str, dict[str, float]] = {}
        for i, mid in enumerate(self._machine_ids):
            out[mid] = {m: float(self._data[i, j, idx])
                        for j, m in enumerate(self._metrics)}
        return out

    def metric_block(self, metric: str) -> np.ndarray:
        """Zero-copy ``(machines, samples)`` view of one metric.

        This is the array the cluster-wide detection engine sweeps: row ``i``
        is the full series of ``machine_ids[i]``.  Mutating the view mutates
        the store.
        """
        return self._data[:, self._metric_row(metric), :]

    def aggregate(self, metric: str, reducer: str = "mean") -> TimeSeries:
        """Aggregate one metric across all machines at every timestamp."""
        block = self._data[:, self._metric_row(metric), :]
        if reducer == "mean":
            values = block.mean(axis=0)
        elif reducer == "max":
            values = block.max(axis=0)
        elif reducer == "min":
            values = block.min(axis=0)
        elif reducer == "sum":
            values = block.sum(axis=0)
        elif reducer == "p95":
            values = np.percentile(block, 95, axis=0)
        else:
            raise SeriesError(f"unknown reducer {reducer!r}")
        return TimeSeries(self._timestamps, values)

    def subset(self, machine_ids: Iterable[str]) -> "MetricStore":
        """Return a read-only store restricted to the given machines.

        When the requested machines form a contiguous ascending block of
        this store's rows (including the identity subset), the result is a
        zero-copy view sharing this store's data; otherwise the selected
        rows are gathered into a fresh array.  Either way the subset's data
        is marked read-only, so the mutation contract does not depend on
        which machines were picked.
        """
        ids = [mid for mid in machine_ids]
        if len(set(ids)) != len(ids):
            raise SeriesError("machine ids must be unique")
        rows = np.asarray([self._machine_row(mid) for mid in ids], dtype=np.intp)
        if rows.size and np.array_equal(
                rows, np.arange(rows[0], rows[0] + rows.size)):
            data = self._data[rows[0]:rows[0] + rows.size]
        else:
            data = self._data[rows]
        data.setflags(write=False)
        return MetricStore._view(ids, self._timestamps, self._metrics, data)

    def machine_slice(self, start: int, stop: int) -> "MetricStore":
        """Zero-copy view of a contiguous run of machine rows.

        This is the primitive the shard planner
        (:mod:`repro.analysis.shard`) splits a store with: the returned
        view shares this store's data (``np.shares_memory``) and is marked
        read-only, mirroring :meth:`subset`'s contiguous fast path without
        the id-list round trip.
        """
        start, stop = int(start), int(stop)
        if start < 0 or stop > self.num_machines or stop < start:
            raise SeriesError(
                f"machine slice [{start}, {stop}) out of range for "
                f"{self.num_machines} machine(s)")
        data = self._data[start:stop]
        data.setflags(write=False)
        view = MetricStore._view(self._machine_ids[start:stop],
                                 self._timestamps, self._metrics, data)
        if self._backing is not None:
            # The shard keeps a window descriptor into the same file, so
            # pickling it (process backend) ships a path + row range, not
            # the rows themselves.
            view._backing = replace(
                self._backing,
                row_start=self._backing.row_start + start,
                row_stop=self._backing.row_start + stop)
        return view

    def sample_slice(self, start: int, stop: int) -> "MetricStore":
        """Zero-copy view of a contiguous run of samples (by index).

        The time-axis sibling of :meth:`machine_slice`: the chunked
        streaming pipeline cuts a store into sample blocks with it, and
        every chunk shares this store's data (``np.shares_memory``).
        Unlike :meth:`window` (which resolves timestamps), the bounds are
        plain sample indices.
        """
        start, stop = int(start), int(stop)
        if start < 0 or stop > self.num_samples or stop < start:
            raise SeriesError(
                f"sample slice [{start}, {stop}) out of range for "
                f"{self.num_samples} sample(s)")
        return MetricStore._view(self._machine_ids,
                                 self._timestamps[start:stop],
                                 self._metrics, self._data[:, :, start:stop])

    def window(self, start: float, end: float) -> "MetricStore":
        """Return a zero-copy view restricted to ``start <= t <= end``.

        Timestamps are sorted, so the window is always a contiguous slice;
        the returned store shares this store's data (mutations propagate).
        """
        if end < start:
            raise SeriesError(f"end ({end}) precedes start ({start})")
        lo = int(np.searchsorted(self._timestamps, start, side="left"))
        hi = int(np.searchsorted(self._timestamps, end, side="right"))
        return MetricStore._view(self._machine_ids, self._timestamps[lo:hi],
                                 self._metrics, self._data[:, :, lo:hi])

    def time_index(self, timestamp: float) -> int:
        """Index of the newest sample at or before ``timestamp`` (clamped).

        The lookup behind every snapshot query, public so array consumers
        (the regime classifier, the online monitor) can address a dense
        column directly instead of round-tripping through snapshot dicts.
        """
        if self.num_samples == 0:
            raise SeriesError("store holds no samples")
        idx = int(np.searchsorted(self._timestamps, timestamp, side="right")) - 1
        return max(0, min(idx, self.num_samples - 1))

    #: Backwards-compatible internal alias (pre-streaming-refactor name).
    _time_index = time_index

    # -- dense conversion ------------------------------------------------------
    @classmethod
    def from_dense(cls, machine_ids: Sequence[str], timestamps: np.ndarray,
                   metrics: Sequence[str], data: np.ndarray, *,
                   dtype: np.dtype | type | None = np.float64) -> "MetricStore":
        """Adopt an existing dense ``(machines, metrics, samples)`` array.

        The inverse of reading :attr:`data` out of a store — the columnar
        trace cache (:mod:`repro.trace.cache`) round-trips stores through
        it.  Ids/timestamps get the constructor's validation, but ``data``
        is adopted without copying and no zero matrix is allocated (this
        sits on the warm cache-load hot path).  ``dtype=None`` adopts the
        array exactly as passed — the cache uses it so a ``float32`` or
        memory-mapped matrix is not silently materialised as a fresh
        ``float64`` copy.
        """
        machine_ids, timestamps = _validate_axes(machine_ids, timestamps)
        data = np.asarray(data) if dtype is None else np.asarray(data,
                                                                 dtype=dtype)
        expected = (len(machine_ids), len(metrics), timestamps.shape[0])
        if data.shape != expected:
            raise SeriesError(
                f"dense block has shape {data.shape}, expected {expected}")
        return cls._view(machine_ids, timestamps, tuple(metrics), data)

    # -- record conversion ----------------------------------------------------
    def iter_records(self) -> Iterator[tuple[float, str, dict[str, float]]]:
        """Yield ``(timestamp, machine_id, {metric: value})`` for every sample."""
        for t_idx, timestamp in enumerate(self._timestamps):
            for m_idx, machine_id in enumerate(self._machine_ids):
                values = {metric: float(self._data[m_idx, j, t_idx])
                          for j, metric in enumerate(self._metrics)}
                yield float(timestamp), machine_id, values

    @classmethod
    def from_records(cls, records: Iterable[tuple[float, str, Mapping[str, float]]],
                     metrics: Sequence[str] = METRICS) -> "MetricStore":
        """Build a store from ``(timestamp, machine_id, {metric: value})`` rows.

        Rows may arrive in any order, share timestamps across machines, and
        omit metrics (missing metrics stay 0).  When the same
        ``(timestamp, machine, metric)`` cell appears more than once, the
        last row wins.  Cell placement is one bulk ``searchsorted``
        scatter-assignment per metric instead of a per-row Python loop.
        """
        rows = list(records)
        raw_ts = np.asarray([r[0] for r in rows], dtype=np.float64)
        timestamps = np.unique(raw_ts)
        machine_ids = sorted({r[1] for r in rows})
        store = cls(machine_ids, timestamps, metrics)
        if not rows:
            return store
        num_rows = len(rows)
        t_idx = np.searchsorted(timestamps, raw_ts)
        m_idx = np.fromiter((store._machine_index[r[1]] for r in rows),
                            dtype=np.intp, count=num_rows)
        for j, metric in enumerate(store._metrics):
            present = np.fromiter((metric in r[2] for r in rows),
                                  dtype=bool, count=num_rows)
            if not present.any():
                continue
            values = np.fromiter(
                (float(r[2][metric]) if ok else 0.0
                 for ok, r in zip(present.tolist(), rows)),
                dtype=np.float64, count=num_rows)
            store._data[m_idx[present], j, t_idx[present]] = values[present]
        return store
