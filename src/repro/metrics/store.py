"""Dense storage of per-machine utilisation series.

A :class:`MetricStore` keeps the server-usage table of a trace as one dense
array of shape ``(machines, metrics, samples)`` on a shared regular time
grid.  That is the natural layout for the queries BatchLens issues
constantly: "utilisation of machine M at time T", "CPU of every machine at
time T" (bubble chart colouring), and "whole series for machine M"
(line charts).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.config import METRICS
from repro.errors import SeriesError, UnknownEntityError
from repro.metrics.series import TimeSeries


class MetricStore:
    """Dense ``(machine, metric, time)`` utilisation storage."""

    def __init__(self, machine_ids: Sequence[str], timestamps: np.ndarray,
                 metrics: Sequence[str] = METRICS) -> None:
        self._machine_ids = list(machine_ids)
        if len(set(self._machine_ids)) != len(self._machine_ids):
            raise SeriesError("machine ids must be unique")
        self._metrics = tuple(metrics)
        self._timestamps = np.asarray(timestamps, dtype=np.float64)
        if self._timestamps.ndim != 1:
            raise SeriesError("timestamps must be one-dimensional")
        if self._timestamps.shape[0] > 1 and np.any(np.diff(self._timestamps) <= 0):
            raise SeriesError("timestamps must be strictly increasing")
        self._machine_index = {mid: i for i, mid in enumerate(self._machine_ids)}
        self._metric_index = {name: i for i, name in enumerate(self._metrics)}
        self._data = np.zeros(
            (len(self._machine_ids), len(self._metrics), self._timestamps.shape[0]),
            dtype=np.float64)

    # -- accessors ----------------------------------------------------------
    @property
    def machine_ids(self) -> list[str]:
        return list(self._machine_ids)

    @property
    def metrics(self) -> tuple[str, ...]:
        return self._metrics

    @property
    def timestamps(self) -> np.ndarray:
        return self._timestamps

    @property
    def data(self) -> np.ndarray:
        """The raw ``(machines, metrics, samples)`` array (mutable view)."""
        return self._data

    @property
    def num_machines(self) -> int:
        return len(self._machine_ids)

    @property
    def num_samples(self) -> int:
        return int(self._timestamps.shape[0])

    def __contains__(self, machine_id: str) -> bool:
        return machine_id in self._machine_index

    def _machine_row(self, machine_id: str) -> int:
        try:
            return self._machine_index[machine_id]
        except KeyError:
            raise UnknownEntityError("machine", machine_id) from None

    def _metric_row(self, metric: str) -> int:
        try:
            return self._metric_index[metric]
        except KeyError:
            raise UnknownEntityError("metric", metric) from None

    # -- mutation -----------------------------------------------------------
    def set_series(self, machine_id: str, metric: str,
                   values: np.ndarray | Sequence[float]) -> None:
        """Overwrite the full series for one machine/metric pair."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape[0] != self.num_samples:
            raise SeriesError(
                f"expected {self.num_samples} samples, got {values.shape[0]}")
        self._data[self._machine_row(machine_id), self._metric_row(metric), :] = values

    def add_to_series(self, machine_id: str, metric: str,
                      values: np.ndarray | Sequence[float]) -> None:
        """Accumulate values onto an existing series (used by the simulator)."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape[0] != self.num_samples:
            raise SeriesError(
                f"expected {self.num_samples} samples, got {values.shape[0]}")
        self._data[self._machine_row(machine_id), self._metric_row(metric), :] += values

    def clip(self, lower: float = 0.0, upper: float = 100.0) -> None:
        """Clip every stored value into ``[lower, upper]`` in place."""
        np.clip(self._data, lower, upper, out=self._data)

    # -- queries ------------------------------------------------------------
    def series(self, machine_id: str, metric: str) -> TimeSeries:
        """Return the utilisation series of one machine for one metric."""
        row = self._data[self._machine_row(machine_id), self._metric_row(metric), :]
        return TimeSeries(self._timestamps, row.copy())

    def machine_snapshot(self, machine_id: str, timestamp: float) -> dict[str, float]:
        """Return ``{metric: value}`` for one machine at one timestamp."""
        idx = self._time_index(timestamp)
        row = self._data[self._machine_row(machine_id), :, idx]
        return {metric: float(row[i]) for i, metric in enumerate(self._metrics)}

    def snapshot(self, timestamp: float,
                 metric: str | None = None) -> dict[str, dict[str, float]] | dict[str, float]:
        """Return the utilisation of every machine at ``timestamp``.

        With ``metric`` set, a flat ``{machine_id: value}`` mapping is
        returned; otherwise a nested ``{machine_id: {metric: value}}``.
        """
        idx = self._time_index(timestamp)
        if metric is not None:
            column = self._data[:, self._metric_row(metric), idx]
            return {mid: float(column[i]) for i, mid in enumerate(self._machine_ids)}
        out: dict[str, dict[str, float]] = {}
        for i, mid in enumerate(self._machine_ids):
            out[mid] = {m: float(self._data[i, j, idx])
                        for j, m in enumerate(self._metrics)}
        return out

    def aggregate(self, metric: str, reducer: str = "mean") -> TimeSeries:
        """Aggregate one metric across all machines at every timestamp."""
        block = self._data[:, self._metric_row(metric), :]
        if reducer == "mean":
            values = block.mean(axis=0)
        elif reducer == "max":
            values = block.max(axis=0)
        elif reducer == "min":
            values = block.min(axis=0)
        elif reducer == "sum":
            values = block.sum(axis=0)
        elif reducer == "p95":
            values = np.percentile(block, 95, axis=0)
        else:
            raise SeriesError(f"unknown reducer {reducer!r}")
        return TimeSeries(self._timestamps, values)

    def subset(self, machine_ids: Iterable[str]) -> "MetricStore":
        """Return a new store restricted to the given machines."""
        ids = [mid for mid in machine_ids]
        store = MetricStore(ids, self._timestamps, self._metrics)
        for mid in ids:
            store._data[store._machine_index[mid]] = self._data[self._machine_row(mid)]
        return store

    def window(self, start: float, end: float) -> "MetricStore":
        """Return a new store restricted to ``start <= t <= end``."""
        if end < start:
            raise SeriesError(f"end ({end}) precedes start ({start})")
        mask = (self._timestamps >= start) & (self._timestamps <= end)
        store = MetricStore(self._machine_ids, self._timestamps[mask], self._metrics)
        store._data = self._data[:, :, mask].copy()
        return store

    def _time_index(self, timestamp: float) -> int:
        if self.num_samples == 0:
            raise SeriesError("store holds no samples")
        idx = int(np.searchsorted(self._timestamps, timestamp, side="right")) - 1
        return max(0, min(idx, self.num_samples - 1))

    # -- record conversion ----------------------------------------------------
    def iter_records(self) -> Iterator[tuple[float, str, dict[str, float]]]:
        """Yield ``(timestamp, machine_id, {metric: value})`` for every sample."""
        for t_idx, timestamp in enumerate(self._timestamps):
            for m_idx, machine_id in enumerate(self._machine_ids):
                values = {metric: float(self._data[m_idx, j, t_idx])
                          for j, metric in enumerate(self._metrics)}
                yield float(timestamp), machine_id, values

    @classmethod
    def from_records(cls, records: Iterable[tuple[float, str, Mapping[str, float]]],
                     metrics: Sequence[str] = METRICS) -> "MetricStore":
        """Build a store from ``(timestamp, machine_id, {metric: value})`` rows."""
        rows = list(records)
        timestamps = np.unique(np.asarray([r[0] for r in rows], dtype=np.float64))
        machine_ids = sorted({r[1] for r in rows})
        store = cls(machine_ids, timestamps, metrics)
        time_index = {float(t): i for i, t in enumerate(timestamps)}
        for timestamp, machine_id, values in rows:
            t_idx = time_index[float(timestamp)]
            m_idx = store._machine_index[machine_id]
            for j, metric in enumerate(store._metrics):
                if metric in values:
                    store._data[m_idx, j, t_idx] = float(values[metric])
        return store
