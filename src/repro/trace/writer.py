"""Writing trace bundles back to Alibaba-format CSV files.

Round-tripping through :mod:`repro.trace.loader` is lossless for every field
the schema defines, which the integration tests rely on.
"""

from __future__ import annotations

import csv
import gzip
import io
from pathlib import Path
from typing import Iterable

from repro.trace import schema
from repro.trace.records import TraceBundle


def _open_out(path: Path) -> io.TextIOBase:
    """Open a (possibly gzip-compressed) table file for text writing.

    The gzip handle is adopted by the returned :class:`io.TextIOWrapper`
    (closing the wrapper flushes and closes it); if wrapper construction
    itself fails, the handle is closed here instead of leaking a
    half-open file.
    """
    if path.suffix == ".gz":
        raw = gzip.open(path, "wb")
        try:
            return io.TextIOWrapper(raw, encoding="utf-8", newline="")
        except Exception:
            raw.close()
            raise
    return open(path, "w", encoding="utf-8", newline="")


def write_table(path: str | Path, table: schema.TableSchema,
                rows: Iterable[dict]) -> int:
    """Write dict rows to one table file; returns the number of rows written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with _open_out(path) as handle:
        writer = csv.writer(handle)
        for row in rows:
            writer.writerow(table.format_row(row))
            count += 1
    return count


def write_trace(bundle: TraceBundle, directory: str | Path,
                *, compress: bool = False) -> dict[str, int]:
    """Write every non-empty section of a bundle under ``directory``.

    Returns a mapping of table name to row count so callers can log what was
    produced.  Empty sections are skipped (no zero-byte files).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    suffix = ".gz" if compress else ""
    written: dict[str, int] = {}

    if bundle.machine_events:
        written["machine_events"] = write_table(
            directory / (schema.MACHINE_EVENTS.filename + suffix),
            schema.MACHINE_EVENTS,
            (event.to_row() for event in bundle.machine_events))
    if bundle.tasks:
        written["batch_task"] = write_table(
            directory / (schema.BATCH_TASK.filename + suffix),
            schema.BATCH_TASK,
            (task.to_row() for task in bundle.tasks))
    if bundle.instances:
        written["batch_instance"] = write_table(
            directory / (schema.BATCH_INSTANCE.filename + suffix),
            schema.BATCH_INSTANCE,
            (inst.to_row() for inst in bundle.instances))
    if bundle.usage is not None and bundle.usage.num_samples:
        written["server_usage"] = write_table(
            directory / (schema.SERVER_USAGE.filename + suffix),
            schema.SERVER_USAGE,
            (record.to_row() for record in bundle.usage_records()))
    return written
