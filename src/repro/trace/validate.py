"""Structural validation of trace bundles.

The checks mirror the invariants §II of the paper states about the Alibaba
dataset: every instance belongs to a known task, runs on exactly one machine,
within its task's lifetime; task ``instance_num`` matches the instance rows;
utilisation stays within [0, 100]; machine events use known event types.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TraceValidationError
from repro.trace import schema
from repro.trace.records import TraceBundle


@dataclass
class ValidationReport:
    """Outcome of validating one bundle."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_failed(self) -> None:
        if self.errors:
            raise TraceValidationError(
                f"{len(self.errors)} validation error(s); first: {self.errors[0]}")

    def extend(self, other: "ValidationReport") -> None:
        self.errors.extend(other.errors)
        self.warnings.extend(other.warnings)


def _validate_machine_events(bundle: TraceBundle) -> ValidationReport:
    report = ValidationReport()
    seen_add: set[str] = set()
    for event in bundle.machine_events:
        if event.event_type not in schema.VALID_EVENT_TYPES:
            report.errors.append(
                f"machine_events: unknown event type {event.event_type!r} "
                f"for machine {event.machine_id}")
        if event.timestamp < 0:
            report.errors.append(
                f"machine_events: negative timestamp for machine {event.machine_id}")
        if event.event_type == schema.EVENT_ADD:
            if event.machine_id in seen_add:
                report.warnings.append(
                    f"machine_events: machine {event.machine_id} added twice")
            seen_add.add(event.machine_id)
    return report


def _validate_tasks(bundle: TraceBundle) -> ValidationReport:
    report = ValidationReport()
    seen: set[tuple[str, str]] = set()
    for task in bundle.tasks:
        key = (task.job_id, task.task_id)
        if key in seen:
            report.errors.append(
                f"batch_task: duplicate task {task.task_id} in job {task.job_id}")
        seen.add(key)
        if task.instance_num <= 0:
            report.errors.append(
                f"batch_task: task {task.job_id}/{task.task_id} has "
                f"instance_num={task.instance_num}")
        if task.modify_timestamp < task.create_timestamp:
            report.errors.append(
                f"batch_task: task {task.job_id}/{task.task_id} modified before created")
        if task.status not in schema.VALID_STATUSES:
            report.warnings.append(
                f"batch_task: task {task.job_id}/{task.task_id} has unusual "
                f"status {task.status!r}")
    return report


def _validate_instances(bundle: TraceBundle) -> ValidationReport:
    report = ValidationReport()
    task_index = {(task.job_id, task.task_id): task for task in bundle.tasks}
    machine_ids = set(bundle.machine_ids())
    counts: dict[tuple[str, str], int] = {}

    for inst in bundle.instances:
        key = (inst.job_id, inst.task_id)
        counts[key] = counts.get(key, 0) + 1
        if key not in task_index:
            report.errors.append(
                f"batch_instance: instance references unknown task "
                f"{inst.job_id}/{inst.task_id}")
            continue
        task = task_index[key]
        if inst.end_timestamp < inst.start_timestamp:
            report.errors.append(
                f"batch_instance: instance {inst.seq_no} of {inst.job_id}/"
                f"{inst.task_id} ends before it starts")
        if inst.start_timestamp < task.create_timestamp:
            report.warnings.append(
                f"batch_instance: instance {inst.seq_no} of {inst.job_id}/"
                f"{inst.task_id} starts before its task is created")
        if inst.machine_id is None and inst.status == schema.STATUS_TERMINATED:
            report.errors.append(
                f"batch_instance: terminated instance {inst.seq_no} of "
                f"{inst.job_id}/{inst.task_id} has no machine")
        if (inst.machine_id is not None and machine_ids
                and inst.machine_id not in machine_ids):
            report.errors.append(
                f"batch_instance: instance of {inst.job_id}/{inst.task_id} runs on "
                f"unknown machine {inst.machine_id}")
        for name in ("cpu_avg", "cpu_max", "mem_avg", "mem_max"):
            value = getattr(inst, name)
            if value is not None and not 0.0 <= value <= 100.0:
                report.errors.append(
                    f"batch_instance: {name}={value} outside [0, 100] for "
                    f"{inst.job_id}/{inst.task_id}")

    for (job_id, task_id), task in task_index.items():
        actual = counts.get((job_id, task_id), 0)
        if actual and actual != task.instance_num:
            report.warnings.append(
                f"batch_task: task {job_id}/{task_id} declares "
                f"{task.instance_num} instances but {actual} rows exist")
    return report


def _validate_usage(bundle: TraceBundle) -> ValidationReport:
    report = ValidationReport()
    store = bundle.usage
    if store is None or store.num_samples == 0:
        report.warnings.append("server_usage: bundle carries no usage samples")
        return report
    if np.any(store.data < -1e-9) or np.any(store.data > 100.0 + 1e-9):
        report.errors.append("server_usage: utilisation values outside [0, 100]")
    machine_ids = set(bundle.machine_ids())
    if machine_ids:
        unknown = [mid for mid in store.machine_ids if mid not in machine_ids]
        if unknown:
            report.errors.append(
                f"server_usage: {len(unknown)} machines absent from machine_events "
                f"(e.g. {unknown[0]})")
    return report


def validate_bundle(bundle: TraceBundle) -> ValidationReport:
    """Run every structural check and return the combined report."""
    report = ValidationReport()
    report.extend(_validate_machine_events(bundle))
    report.extend(_validate_tasks(bundle))
    report.extend(_validate_instances(bundle))
    report.extend(_validate_usage(bundle))
    return report
