"""Loading Alibaba-format trace CSV files from disk.

The loader accepts a directory holding any subset of the four v2017 tables
(``machine_events.csv``, ``batch_task.csv``, ``batch_instance.csv``,
``server_usage.csv``) and returns a :class:`~repro.trace.records.TraceBundle`.
It parses the real public trace unchanged, and of course the files produced
by :mod:`repro.trace.writer`.
"""

from __future__ import annotations

import csv
import gzip
import io
from pathlib import Path
from typing import Callable, Iterable, Iterator, TypeVar

from repro.errors import TraceFormatError
from repro.metrics.store import MetricStore
from repro.trace import schema
from repro.trace.records import (
    BatchInstanceRecord,
    BatchTaskRecord,
    MachineEvent,
    ServerUsageRecord,
    TraceBundle,
)

R = TypeVar("R")


def _open_text(path: Path) -> io.TextIOBase:
    """Open a possibly gzip-compressed CSV file as text."""
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="utf-8")
    return open(path, "r", encoding="utf-8", newline="")


def _resolve(directory: Path, filename: str) -> Path | None:
    """Locate a table file, accepting an optional ``.gz`` suffix."""
    plain = directory / filename
    if plain.exists():
        return plain
    compressed = directory / (filename + ".gz")
    if compressed.exists():
        return compressed
    return None


def iter_table(path: Path, table: schema.TableSchema,
               *, skip_malformed: bool = False) -> Iterator[dict]:
    """Stream parsed rows from one table file.

    With ``skip_malformed=True`` rows that fail schema validation are
    silently dropped, which matches how operators usually cope with the
    occasional truncated line in multi-gigabyte production traces.
    """
    with _open_text(path) as handle:
        reader = csv.reader(handle)
        for line_number, cells in enumerate(reader, start=1):
            if not cells or all(cell.strip() == "" for cell in cells):
                continue
            try:
                yield table.parse_row(cells, line_number)
            except TraceFormatError:
                if skip_malformed:
                    continue
                raise


def _load_records(path: Path | None, table: schema.TableSchema,
                  factory: Callable[[dict], R],
                  skip_malformed: bool) -> list[R]:
    if path is None:
        return []
    return [factory(row) for row in iter_table(path, table,
                                               skip_malformed=skip_malformed)]


def load_machine_events(path: Path, *, skip_malformed: bool = False) -> list[MachineEvent]:
    """Load ``machine_events.csv`` into typed records."""
    return _load_records(path, schema.MACHINE_EVENTS, MachineEvent.from_row,
                         skip_malformed)


def load_batch_tasks(path: Path, *, skip_malformed: bool = False) -> list[BatchTaskRecord]:
    """Load ``batch_task.csv`` into typed records."""
    return _load_records(path, schema.BATCH_TASK, BatchTaskRecord.from_row,
                         skip_malformed)


def load_batch_instances(path: Path,
                         *, skip_malformed: bool = False) -> list[BatchInstanceRecord]:
    """Load ``batch_instance.csv`` into typed records."""
    return _load_records(path, schema.BATCH_INSTANCE, BatchInstanceRecord.from_row,
                         skip_malformed)


def load_server_usage(path: Path,
                      *, skip_malformed: bool = False) -> list[ServerUsageRecord]:
    """Load ``server_usage.csv`` into typed records."""
    return _load_records(path, schema.SERVER_USAGE, ServerUsageRecord.from_row,
                         skip_malformed)


def usage_records_to_store(records: Iterable[ServerUsageRecord]) -> MetricStore | None:
    """Convert usage records into a dense :class:`MetricStore`."""
    rows = [record.as_metric_tuple() for record in records]
    if not rows:
        return None
    return MetricStore.from_records(rows)


def load_trace(directory: str | Path, *, skip_malformed: bool = False) -> TraceBundle:
    """Load every available table under ``directory`` into a bundle.

    Missing table files simply produce empty sections; an entirely empty
    directory raises :class:`TraceFormatError` because nothing could be
    analysed.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise TraceFormatError(f"trace directory does not exist: {directory}")

    paths = {
        name: _resolve(directory, table.filename)
        for name, table in schema.SCHEMAS.items()
    }
    if all(path is None for path in paths.values()):
        raise TraceFormatError(
            f"no Alibaba trace tables found under {directory} "
            f"(expected one of {[t.filename for t in schema.SCHEMAS.values()]})")

    machine_events = _load_records(paths["machine_events"], schema.MACHINE_EVENTS,
                                   MachineEvent.from_row, skip_malformed)
    tasks = _load_records(paths["batch_task"], schema.BATCH_TASK,
                          BatchTaskRecord.from_row, skip_malformed)
    instances = _load_records(paths["batch_instance"], schema.BATCH_INSTANCE,
                              BatchInstanceRecord.from_row, skip_malformed)
    usage_rows = _load_records(paths["server_usage"], schema.SERVER_USAGE,
                               ServerUsageRecord.from_row, skip_malformed)

    return TraceBundle(
        machine_events=machine_events,
        tasks=tasks,
        instances=instances,
        usage=usage_records_to_store(usage_rows),
        meta={"source": str(directory)},
    )
