"""Loading Alibaba-format trace CSV files from disk.

The loader accepts a directory holding any subset of the four v2017 tables
(``machine_events.csv``, ``batch_task.csv``, ``batch_instance.csv``,
``server_usage.csv``) and returns a :class:`~repro.trace.records.TraceBundle`.
It parses the real public trace unchanged, and of course the files produced
by :mod:`repro.trace.writer`.

Two fast paths keep cold-start load time from dominating cluster-scale
runs:

* the server-usage table — by far the largest — is ingested **columnar**:
  the file is split into columns once and each column decoded by one bulk
  NumPy conversion instead of per-row dicts (bit-identical to the row-wise
  parser, which remains the fallback for malformed/quoted input and the
  ``skip_malformed`` mode);
* ``load_trace(directory, cache=True)`` maintains a columnar **binary
  sidecar cache** (:mod:`repro.trace.cache`) keyed by a content hash of
  the CSVs, so repeat loads skip parsing entirely; a stat ledger skips
  even the re-hash when the table files' ``(size, mtime_ns)`` are
  unchanged.

Beyond fast, the cache is also the **out-of-core backing format**:
``load_trace(directory, cache=True, mmap=True)`` opens the dense usage
matrix memory-mapped (read-only windows into the sidecar file instead of
RAM), and ``storage="float32"`` halves its on-disk/page-cache footprint.
"""

from __future__ import annotations

import csv
import gzip
import io
from pathlib import Path
from typing import Callable, Iterable, Iterator, TypeVar

import numpy as np

from repro.errors import TraceFormatError
from repro.metrics.store import MetricStore
from repro.trace import schema
from repro.trace.records import (
    BatchInstanceRecord,
    BatchTaskRecord,
    MachineEvent,
    ServerUsageRecord,
    TraceBundle,
)

R = TypeVar("R")


def _open_text(path: Path) -> io.TextIOBase:
    """Open a possibly gzip-compressed CSV file as text.

    The gzip handle is adopted by the returned :class:`io.TextIOWrapper`
    (closing the wrapper closes it); if wrapper construction itself fails,
    the handle is closed here instead of leaking.
    """
    if path.suffix == ".gz":
        raw = gzip.open(path, "rb")
        try:
            return io.TextIOWrapper(raw, encoding="utf-8")
        except Exception:
            raw.close()
            raise
    return open(path, "r", encoding="utf-8", newline="")


def _resolve(directory: Path, filename: str) -> Path | None:
    """Locate a table file, accepting an optional ``.gz`` suffix."""
    plain = directory / filename
    if plain.exists():
        return plain
    compressed = directory / (filename + ".gz")
    if compressed.exists():
        return compressed
    return None


def resolve_table_paths(directory: str | Path) -> "dict[str, Path | None]":
    """Locate every schema table under ``directory`` (``.gz`` accepted).

    Re-exported from :mod:`repro.trace.cache`, the single owner of the
    ``{table: path}`` shape, so loader fingerprints and result-cache
    fingerprints always key the same files.
    """
    from repro.trace.cache import resolve_table_paths as _resolve_table_paths

    return _resolve_table_paths(directory)


def iter_table(path: Path, table: schema.TableSchema,
               *, skip_malformed: bool = False) -> Iterator[dict]:
    """Stream parsed rows from one table file.

    With ``skip_malformed=True`` rows that fail schema validation are
    silently dropped, which matches how operators usually cope with the
    occasional truncated line in multi-gigabyte production traces.
    """
    with _open_text(path) as handle:
        reader = csv.reader(handle)
        for line_number, cells in enumerate(reader, start=1):
            if not cells or all(cell.strip() == "" for cell in cells):
                continue
            try:
                yield table.parse_row(cells, line_number)
            except TraceFormatError:
                if skip_malformed:
                    continue
                raise


def _load_records(path: Path | None, table: schema.TableSchema,
                  factory: Callable[[dict], R],
                  skip_malformed: bool) -> list[R]:
    if path is None:
        return []
    return [factory(row) for row in iter_table(path, table,
                                               skip_malformed=skip_malformed)]


def load_machine_events(path: Path, *, skip_malformed: bool = False) -> list[MachineEvent]:
    """Load ``machine_events.csv`` into typed records."""
    return _load_records(path, schema.MACHINE_EVENTS, MachineEvent.from_row,
                         skip_malformed)


def load_batch_tasks(path: Path, *, skip_malformed: bool = False) -> list[BatchTaskRecord]:
    """Load ``batch_task.csv`` into typed records."""
    return _load_records(path, schema.BATCH_TASK, BatchTaskRecord.from_row,
                         skip_malformed)


def load_batch_instances(path: Path,
                         *, skip_malformed: bool = False) -> list[BatchInstanceRecord]:
    """Load ``batch_instance.csv`` into typed records."""
    return _load_records(path, schema.BATCH_INSTANCE, BatchInstanceRecord.from_row,
                         skip_malformed)


def load_server_usage(path: Path,
                      *, skip_malformed: bool = False) -> list[ServerUsageRecord]:
    """Load ``server_usage.csv`` into typed records."""
    return _load_records(path, schema.SERVER_USAGE, ServerUsageRecord.from_row,
                         skip_malformed)


def usage_records_to_store(records: Iterable[ServerUsageRecord]) -> MetricStore | None:
    """Convert usage records into a dense :class:`MetricStore`."""
    rows = [record.as_metric_tuple() for record in records]
    if not rows:
        return None
    return MetricStore.from_records(rows)


class _BulkIngestUnavailable(Exception):
    """Internal: the columnar fast path cannot represent this file.

    Raised for anything the bulk decoder does not model exactly — quoted
    cells, ragged rows, unparsable numerics, empty mandatory cells — so the
    caller falls back to the row-wise parser, which either handles the
    construct or raises the proper :class:`TraceFormatError` with a line
    number.
    """


def _bulk_usage_store(path: Path) -> MetricStore | None:
    """Columnar ingest of ``server_usage.csv`` (the vectorized cold path).

    Splits the file into columns once and decodes each column with one
    bulk NumPy conversion — no per-row dicts, no per-cell ``ColumnSpec``
    dispatch.  Produces a store bit-identical to
    ``usage_records_to_store(load_server_usage(path))``; raises
    :class:`_BulkIngestUnavailable` whenever exact equivalence cannot be
    guaranteed.
    """
    # Read line by line: the peak is the per-cell string list the column
    # decoder needs anyway, never an extra whole-file text copy on top.
    # Rows break on \n / \r\n exactly like the csv module; a quote or a
    # stray \r in a line (the separators str.splitlines() would
    # over-honour — \f, \v, \x1c-\x1e, \x85, U+2028, U+2029 — likewise
    # stay in the line) means csv semantics the bulk path cannot mirror,
    # so those files fall back wholesale.
    rows: list[list[str]] = []
    with _open_text(path) as handle:
        for line in handle:
            line = line.rstrip("\n")
            if line.endswith("\r"):
                line = line[:-1]
            if not line or line.isspace():
                continue
            if '"' in line or "\r" in line:
                raise _BulkIngestUnavailable("needs the csv module")
            rows.append(line.split(","))
    if not rows:
        return None
    columns = tuple(schema.SERVER_USAGE.columns)
    if any(len(row) != len(columns) for row in rows):
        raise _BulkIngestUnavailable("ragged rows")
    raw_columns = list(zip(*rows))
    del rows   # halve the peak: the transpose duplicates every cell ref
    try:
        # int columns parse as int(float(text)); astype truncates toward
        # zero exactly like int() — but only for finite values, so guard.
        raw_ts = np.asarray(raw_columns[0], dtype=np.float64)
        if not np.isfinite(raw_ts).all() or np.abs(raw_ts).max() >= 2.0 ** 63:
            # astype(int64) would wrap instead of raising like int() does
            raise _BulkIngestUnavailable("timestamps outside int64 range")
        ts = raw_ts.astype(np.int64).astype(np.float64)
        values = [np.asarray(raw_columns[i], dtype=np.float64)
                  for i in (2, 3, 4)]
    except ValueError:
        raise _BulkIngestUnavailable("unparsable numeric cell") from None
    machine_ids = np.char.strip(np.asarray(raw_columns[1], dtype=np.str_))
    if (machine_ids == "").any():
        raise _BulkIngestUnavailable("empty machine id")
    timestamps = np.unique(ts)
    unique_ids, machine_rows = np.unique(machine_ids, return_inverse=True)
    store = MetricStore(unique_ids.tolist(), timestamps)
    time_cols = np.searchsorted(timestamps, ts)
    by_name = {"cpu": values[0], "mem": values[1], "disk": values[2]}
    for index, metric in enumerate(store.metrics):
        store.data[machine_rows, index, time_cols] = by_name[metric]
    return store


def _load_usage_store(path: Path | None,
                      skip_malformed: bool) -> MetricStore | None:
    """The usage table as a store: columnar fast path, row-wise fallback."""
    if path is None:
        return None
    if not skip_malformed:
        try:
            return _bulk_usage_store(path)
        except _BulkIngestUnavailable:
            pass
    return usage_records_to_store(
        _load_records(path, schema.SERVER_USAGE, ServerUsageRecord.from_row,
                      skip_malformed))


def load_trace(directory: str | Path, *, skip_malformed: bool = False,
               cache: bool = False, mmap: bool = False,
               storage: str = "float64") -> TraceBundle:
    """Load every available table under ``directory`` into a bundle.

    Missing table files simply produce empty sections; an entirely empty
    directory raises :class:`TraceFormatError` because nothing could be
    analysed.

    With ``cache=True`` the loader maintains a columnar binary sidecar
    under ``<directory>/.repro-cache/`` (:mod:`repro.trace.cache`): when a
    cache matching the current content hash of the CSVs exists, parsing is
    skipped entirely; otherwise the trace is parsed once and the cache
    (re)written.  The flag never changes the returned bundle — only how
    fast repeat loads are.

    ``mmap=True`` (requires ``cache=True``) serves the dense usage matrix
    as a read-only memory map of the sidecar instead of materialising it:
    every zero-copy store view becomes a window into the file, pickled
    shard views reopen it by path, and peak RSS stays bounded by what the
    detectors touch, not by the cluster size.  ``storage="float32"``
    (also cache-backed) halves the sidecar's footprint; both options
    still return verdict-identical bundles on the registered scenarios
    (golden-pinned), modulo the float32 rounding of the stored samples.
    """
    if storage not in ("float64", "float32"):
        raise TraceFormatError(
            f"unknown storage dtype {storage!r}; expected 'float64' or "
            f"'float32'")
    if (mmap or storage != "float64") and not cache:
        raise TraceFormatError(
            "mmap/storage options require cache=True: the memory-mapped "
            "backing and the converted matrix live in the sidecar cache")
    directory = Path(directory)
    if not directory.is_dir():
        raise TraceFormatError(f"trace directory does not exist: {directory}")

    paths = resolve_table_paths(directory)
    if all(path is None for path in paths.values()):
        raise TraceFormatError(
            f"no Alibaba trace tables found under {directory} "
            f"(expected one of {[t.filename for t in schema.SCHEMAS.values()]})")

    fingerprint = None
    if cache:
        from repro.trace.cache import (
            load_trace_cache,
            resolve_fingerprint,
            save_trace_cache,
        )

        fingerprint = resolve_fingerprint(directory, paths)
        cached = load_trace_cache(directory, fingerprint,
                                  skip_malformed=skip_malformed,
                                  mmap=mmap, storage=storage)
        if cached is not None:
            # The sidecar travels with the directory (copy/move keeps the
            # fingerprint valid), so the recorded source path may be stale
            # — always report where the trace was actually loaded from.
            cached.meta["source"] = str(directory)
            return cached

    machine_events = _load_records(paths["machine_events"], schema.MACHINE_EVENTS,
                                   MachineEvent.from_row, skip_malformed)
    tasks = _load_records(paths["batch_task"], schema.BATCH_TASK,
                          BatchTaskRecord.from_row, skip_malformed)
    instances = _load_records(paths["batch_instance"], schema.BATCH_INSTANCE,
                              BatchInstanceRecord.from_row, skip_malformed)
    usage = _load_usage_store(paths["server_usage"], skip_malformed)

    bundle = TraceBundle(
        machine_events=machine_events,
        tasks=tasks,
        instances=instances,
        usage=usage,
        meta={"source": str(directory)},
    )
    if cache:
        written = save_trace_cache(bundle, directory, fingerprint,
                                   skip_malformed=skip_malformed,
                                   storage=storage)
        if written is not None and (mmap or storage != "float64"):
            # Serve the representation actually requested (memory-mapped
            # and/or down-converted) by reopening the cache just written,
            # so a cold load returns the same thing every warm load will.
            cached = load_trace_cache(directory, fingerprint,
                                      skip_malformed=skip_malformed,
                                      mmap=mmap, storage=storage)
            if cached is not None:
                cached.meta["source"] = str(directory)
                return cached
        if storage == "float32" and bundle.usage is not None:
            # The sidecar could not be (re)read — still honour the dtype
            # in RAM so the verdict never depends on cache writability.
            usage = bundle.usage
            bundle.usage = MetricStore.from_dense(
                usage.machine_ids, usage.timestamps, usage.metrics,
                usage.data, dtype=np.float32)
    return bundle
