"""Columnar binary sidecar cache for Alibaba-format trace directories.

Parsing a trace directory goes row by row through Python string handling —
fine once, wasteful every time the same immutable CSVs are re-analysed.
This module persists a parsed :class:`~repro.trace.records.TraceBundle` as
one uncompressed ``.npz`` next to the CSVs (``<dir>/.repro-cache/``):

* every record table becomes one NumPy array per schema column (plus a
  boolean null-mask per nullable column) — columnar, binary, no parsing on
  reload;
* the server-usage table is stored as the dense ``(machines, metrics,
  samples)`` matrix of its :class:`~repro.metrics.store.MetricStore`, so a
  warm load rebuilds the store with zero per-row work.

The cache is keyed by a **content hash** of the table files
(:func:`trace_fingerprint`): edit, replace or re-compress any CSV and the
fingerprint changes, the stale cache is ignored, and the next parse
rewrites it.  Corrupt or incompatible cache files are treated as absent —
the cache can always be deleted (or the whole ``.repro-cache`` directory
removed) without losing anything.

Callers normally never touch this module directly:
``load_trace(directory, cache=True)`` (or ``--cache`` on the CLI, or
``{"kind": "trace-dir", "path": ..., "cache": true}`` in a pipeline spec)
checks the cache first and maintains it after a cold parse.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
from pathlib import Path
from typing import Callable, Mapping

import numpy as np

from repro.errors import SeriesError
from repro.metrics.store import MetricStore
from repro.trace import schema
from repro.trace.records import (
    BatchInstanceRecord,
    BatchTaskRecord,
    MachineEvent,
    TraceBundle,
)

#: Bump when the array layout changes; old caches are silently re-built.
CACHE_VERSION = 1
CACHE_DIR_NAME = ".repro-cache"
CACHE_FILENAME = "trace.npz"

_FACTORIES: dict[str, Callable[[dict], object]] = {
    "machine_events": MachineEvent.from_row,
    "batch_task": BatchTaskRecord.from_row,
    "batch_instance": BatchInstanceRecord.from_row,
}

_NULL_SUFFIX = "#null"


def cache_path(directory: str | Path) -> Path:
    """Where the sidecar cache of a trace directory lives."""
    return Path(directory) / CACHE_DIR_NAME / CACHE_FILENAME


def trace_fingerprint(paths: Mapping[str, Path | None]) -> str:
    """Content hash of the table files backing one trace directory.

    ``paths`` maps table name to the resolved file (or ``None`` when the
    table is absent) — the shape :func:`repro.trace.loader.load_trace`
    resolves.  The digest covers table name, file name and raw bytes, so
    renaming ``x.csv`` to ``x.csv.gz`` (different bytes) or swapping a
    table in or out always invalidates the cache.
    """
    digest = hashlib.sha256()
    for name in sorted(schema.SCHEMAS):
        path = paths.get(name)
        if path is None:
            continue
        digest.update(name.encode("utf-8") + b"\0")
        digest.update(path.name.encode("utf-8") + b"\0")
        # Stream the bytes: production tables run to gigabytes, and the
        # fingerprint is computed on every cached load.
        with open(path, "rb") as handle:
            for chunk in iter(lambda: handle.read(1 << 20), b""):
                digest.update(chunk)
        digest.update(b"\0")
    return digest.hexdigest()


def _column_arrays(name: str, records: list) -> dict[str, np.ndarray]:
    """Columnar arrays of one record table (one array per schema column)."""
    table = schema.SCHEMAS[name]
    rows = [record.to_row() for record in records]
    arrays: dict[str, np.ndarray] = {}
    for column in table.columns:
        key = f"{name}:{column.name}"
        values = [row[column.name] for row in rows]
        if column.kind == "str":
            arrays[key] = np.asarray(
                ["" if value is None else str(value) for value in values],
                dtype=np.str_)
        else:
            dtype = np.int64 if column.kind == "int" else np.float64
            arrays[key] = np.asarray(
                [0 if value is None else value for value in values],
                dtype=dtype)
        if column.nullable:
            arrays[key + _NULL_SUFFIX] = np.asarray(
                [value is None for value in values], dtype=bool)
    return arrays


def _records_from_arrays(name: str, data) -> list:
    """Rebuild one table's typed records from its columnar arrays.

    Raises :class:`ValueError` (read as "cache absent" by the caller) when
    the column arrays disagree on row count — ``zip`` would otherwise
    silently truncate a damaged cache to its shortest column.
    """
    table = schema.SCHEMAS[name]
    columns: list[list] = []
    for column in table.columns:
        key = f"{name}:{column.name}"
        values = data[key].tolist()
        if column.nullable:
            nulls = data[key + _NULL_SUFFIX].tolist()
            if len(nulls) != len(values):
                raise ValueError(f"cache table {name}: null-mask length "
                                 f"mismatch on {column.name}")
            values = [None if null else value
                      for value, null in zip(values, nulls)]
        columns.append(values)
    if len({len(column) for column in columns}) > 1:
        raise ValueError(f"cache table {name}: column lengths disagree")
    factory = _FACTORIES[name]
    names = table.column_names
    return [factory(dict(zip(names, row))) for row in zip(*columns)]


def save_trace_cache(bundle: TraceBundle, directory: str | Path,
                     fingerprint: str, *,
                     skip_malformed: bool = False) -> Path | None:
    """Persist a parsed bundle as the directory's sidecar cache.

    ``skip_malformed`` records the parse mode the bundle was produced
    under: a lenient parse may have dropped rows a strict parse would
    reject, so the two modes never share a cache entry.

    Best-effort: a read-only directory, an unserialisable ``meta`` or any
    other failure returns ``None`` instead of raising — caching must never
    break a load that already succeeded.  The file is written atomically
    (temp file + rename), so readers never observe a half-written cache.
    """
    path = cache_path(directory)
    tmp: Path | None = None
    try:
        header = json.dumps({
            "version": CACHE_VERSION,
            "fingerprint": fingerprint,
            "skip_malformed": bool(skip_malformed),
            "meta": bundle.meta,
        })
        arrays: dict[str, np.ndarray] = {}
        arrays.update(_column_arrays("machine_events", bundle.machine_events))
        arrays.update(_column_arrays("batch_task", bundle.tasks))
        arrays.update(_column_arrays("batch_instance", bundle.instances))
        usage = bundle.usage
        arrays["usage:present"] = np.asarray(usage is not None)
        if usage is not None:
            arrays["usage:machine_ids"] = np.asarray(usage.machine_ids,
                                                     dtype=np.str_)
            arrays["usage:metrics"] = np.asarray(list(usage.metrics),
                                                 dtype=np.str_)
            arrays["usage:timestamps"] = np.asarray(usage.timestamps,
                                                    dtype=np.float64)
            arrays["usage:data"] = np.ascontiguousarray(usage.data,
                                                        dtype=np.float64)
        path.parent.mkdir(parents=True, exist_ok=True)
        # A unique temp name per writer keeps concurrent cold loads of the
        # same directory from interleaving on one file; whichever replace
        # lands last wins with a complete cache either way.
        fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                        prefix=path.name + ".", suffix=".tmp")
        tmp = Path(tmp_name)
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, __header__=np.asarray(header), **arrays)
        os.replace(tmp, path)
    except (OSError, OverflowError, TypeError, ValueError):
        # Column building can fail on values the row parser accepted (e.g.
        # ints beyond int64); the load already succeeded, so skip caching.
        try:
            if tmp is not None:
                tmp.unlink(missing_ok=True)
        except OSError:
            pass
        return None
    return path


def load_trace_cache(directory: str | Path, fingerprint: str, *,
                     skip_malformed: bool = False) -> TraceBundle | None:
    """Load the sidecar cache, or ``None`` when absent, stale or corrupt.

    A cache written under a different ``skip_malformed`` mode reads as
    absent: a lenient parse may hold a partial bundle a strict load must
    re-validate (and possibly reject) instead of serving.
    """
    path = cache_path(directory)
    try:
        with np.load(path, allow_pickle=False) as data:
            header = json.loads(str(data["__header__"][()]))
            if (header.get("version") != CACHE_VERSION
                    or header.get("fingerprint") != fingerprint
                    or header.get("skip_malformed") != bool(skip_malformed)):
                return None
            usage = None
            if bool(data["usage:present"][()]):
                usage = MetricStore.from_dense(
                    data["usage:machine_ids"].tolist(),
                    data["usage:timestamps"],
                    tuple(data["usage:metrics"].tolist()),
                    data["usage:data"])
            return TraceBundle(
                machine_events=_records_from_arrays("machine_events", data),
                tasks=_records_from_arrays("batch_task", data),
                instances=_records_from_arrays("batch_instance", data),
                usage=usage,
                meta=dict(header.get("meta", {})),
            )
    except (OSError, KeyError, ValueError, TypeError, SeriesError,
            json.JSONDecodeError, zipfile.BadZipFile):
        # SeriesError covers from_dense rejecting inconsistent cached
        # arrays (shape/id/timestamp mismatches) — corrupt reads as absent.
        return None


__all__ = [
    "CACHE_DIR_NAME",
    "CACHE_FILENAME",
    "CACHE_VERSION",
    "cache_path",
    "load_trace_cache",
    "save_trace_cache",
    "trace_fingerprint",
]
