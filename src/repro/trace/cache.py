"""Columnar binary sidecar cache for Alibaba-format trace directories.

Parsing a trace directory goes row by row through Python string handling —
fine once, wasteful every time the same immutable CSVs are re-analysed.
This module persists a parsed :class:`~repro.trace.records.TraceBundle`
under ``<dir>/.repro-cache/`` as three files:

* ``trace.npz`` — every record table as one NumPy array per schema column
  (plus a boolean null-mask per nullable column), the usage axes, and the
  authoritative JSON header (version, fingerprint, storage dtype);
* ``usage.npy`` — the dense ``(machines, metrics, samples)`` matrix of the
  server-usage :class:`~repro.metrics.store.MetricStore`, as a **plain
  npy sibling** so it can be opened memory-mapped (``np.load`` cannot mmap
  a zip member).  ``load_trace_cache(..., mmap=True)`` opens it with
  ``mmap_mode="r"`` and attaches a
  :class:`~repro.metrics.store.MmapBacking` descriptor, making every
  zero-copy store view a read-only window into the file instead of RAM —
  detection on clusters bigger than memory pages rows in on demand.  An
  opt-in ``storage="float32"`` dtype halves the file and page-cache
  footprint;
* ``stats.json`` — a git-style stat ledger mapping each table file to the
  ``(name, size, mtime_ns)`` it had when its content hash was last
  computed, so warm loads skip re-reading gigabytes just to prove nothing
  changed (:func:`resolve_fingerprint`).

The cache is keyed by a **content hash** of the table files
(:func:`trace_fingerprint`): edit, replace or re-compress any CSV and the
fingerprint changes, the stale cache is ignored, and the next parse
rewrites it.  Corrupt, truncated or incompatible cache files are treated
as absent — the cache can always be deleted (or the whole ``.repro-cache``
directory removed) without losing anything.

Callers normally never touch this module directly:
``load_trace(directory, cache=True, mmap=True)`` (or ``--cache --mmap`` on
the CLI, or ``{"kind": "trace-dir", "path": ..., "cache": true, "mmap":
true}`` in a pipeline spec) checks the cache first and maintains it after
a cold parse.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
from pathlib import Path
from typing import Callable, Mapping

import numpy as np

from repro.errors import SeriesError
from repro.metrics.store import MetricStore, MmapBacking
from repro.trace import schema
from repro.trace.records import (
    BatchInstanceRecord,
    BatchTaskRecord,
    MachineEvent,
    TraceBundle,
)

#: Bump when the array layout changes; old caches are silently re-built.
#: v2 moved the dense usage matrix out of the npz into a mmap-able
#: ``usage.npy`` sibling and added the storage dtype to the header.
CACHE_VERSION = 2
CACHE_DIR_NAME = ".repro-cache"
CACHE_FILENAME = "trace.npz"
USAGE_FILENAME = "usage.npy"
LEDGER_FILENAME = "stats.json"

#: Dtypes the sidecar can store the dense usage matrix in.  ``float32``
#: halves the file and page-cache footprint; the goldens pin verdict
#: parity on the registered scenarios.
STORAGE_DTYPES = {"float64": np.float64, "float32": np.float32}

_FACTORIES: dict[str, Callable[[dict], object]] = {
    "machine_events": MachineEvent.from_row,
    "batch_task": BatchTaskRecord.from_row,
    "batch_instance": BatchInstanceRecord.from_row,
}

_NULL_SUFFIX = "#null"


def cache_path(directory: str | Path) -> Path:
    """Where the sidecar cache of a trace directory lives."""
    return Path(directory) / CACHE_DIR_NAME / CACHE_FILENAME


def usage_path(directory: str | Path) -> Path:
    """Where the dense usage matrix sidecar (mmap-able ``.npy``) lives."""
    return Path(directory) / CACHE_DIR_NAME / USAGE_FILENAME


def ledger_path(directory: str | Path) -> Path:
    """Where the table-file stat ledger lives."""
    return Path(directory) / CACHE_DIR_NAME / LEDGER_FILENAME


def resolve_table_paths(directory: str | Path) -> dict[str, Path | None]:
    """Locate every schema table file under ``directory`` (``.gz`` accepted).

    The single source of the ``{table: path}`` shape every fingerprint
    helper and the loader consume — a fingerprint computed through this
    mapping keys exactly the bytes :func:`~repro.trace.loader.load_trace`
    would parse.
    """
    directory = Path(directory)
    paths: dict[str, Path | None] = {}
    for name, table in schema.SCHEMAS.items():
        plain = directory / table.filename
        if plain.exists():
            paths[name] = plain
            continue
        compressed = directory / (table.filename + ".gz")
        paths[name] = compressed if compressed.exists() else None
    return paths


def directory_fingerprint(directory: str | Path) -> str:
    """Content hash of a trace directory's table files.

    Resolves the table files and routes through the stat ledger
    (:func:`resolve_fingerprint`), so an unchanged directory costs four
    ``stat`` calls, not a re-read.  This is the source identity the
    run-result cache (:mod:`repro.pipeline.resultcache`) keys trace-dir
    pipelines on: same bytes ⇒ same key wherever the directory lives,
    any byte change ⇒ a different key.  A directory with no table files
    at all (missing, empty, or just not a trace) has **no** identity and
    raises ``FileNotFoundError`` — otherwise every such directory would
    share the empty hash.
    """
    paths = resolve_table_paths(directory)
    if all(path is None for path in paths.values()):
        raise FileNotFoundError(
            f"no trace table files under {directory!s}")
    return resolve_fingerprint(directory, paths)


def trace_fingerprint(paths: Mapping[str, Path | None]) -> str:
    """Content hash of the table files backing one trace directory.

    ``paths`` maps table name to the resolved file (or ``None`` when the
    table is absent) — the shape :func:`repro.trace.loader.load_trace`
    resolves.  The digest covers table name, file name and raw bytes, so
    renaming ``x.csv`` to ``x.csv.gz`` (different bytes) or swapping a
    table in or out always invalidates the cache.
    """
    digest = hashlib.sha256()
    for name in sorted(schema.SCHEMAS):
        path = paths.get(name)
        if path is None:
            continue
        digest.update(name.encode("utf-8") + b"\0")
        digest.update(path.name.encode("utf-8") + b"\0")
        # Stream the bytes: production tables run to gigabytes, and the
        # fingerprint is computed on every cached load.
        with open(path, "rb") as handle:
            for chunk in iter(lambda: handle.read(1 << 20), b""):
                digest.update(chunk)
        digest.update(b"\0")
    return digest.hexdigest()


def _file_stats(paths: Mapping[str, Path | None]) -> dict[str, dict]:
    """``{table: {file, size, mtime_ns}}`` for every present table file."""
    stats: dict[str, dict] = {}
    for name in sorted(schema.SCHEMAS):
        path = paths.get(name)
        if path is None:
            continue
        st = os.stat(path)
        stats[name] = {"file": path.name, "size": st.st_size,
                       "mtime_ns": st.st_mtime_ns}
    return stats


def _write_ledger(directory: str | Path, fingerprint: str,
                  stats: dict[str, dict]) -> None:
    """Best-effort atomic rewrite of the stat ledger."""
    path = ledger_path(directory)
    tmp: Path | None = None
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                        prefix=path.name + ".", suffix=".tmp")
        tmp = Path(tmp_name)
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump({"version": CACHE_VERSION, "fingerprint": fingerprint,
                       "files": stats}, handle)
        os.replace(tmp, path)
    except (OSError, TypeError, ValueError):
        try:
            if tmp is not None:
                tmp.unlink(missing_ok=True)
        except OSError:
            pass


def resolve_fingerprint(directory: str | Path,
                        paths: Mapping[str, Path | None]) -> str:
    """Content hash of the table files, via the stat ledger when possible.

    ``trace_fingerprint`` re-reads every byte of every table — the right
    source of truth, but wasteful on every warm load of a multi-gigabyte
    trace that has not changed.  Like git's index, the sidecar keeps a
    ledger recording each table file's ``(name, size, mtime_ns)`` as of
    the last full hash: when every stat still matches, the recorded
    fingerprint is returned without opening a single table file.  Any
    difference — size, mtime, a table swapped in or out, a missing or
    damaged ledger — falls back to the full hash and rewrites the ledger.
    (A same-size rewrite landing inside one mtime tick could in principle
    fool the stats, but with nanosecond mtimes that takes a deliberate
    ``os.utime``; content-addressed correctness is restored by deleting
    ``stats.json``.)
    """
    stats: dict[str, dict] | None = None
    try:
        stats = _file_stats(paths)
        raw = json.loads(ledger_path(directory).read_text(encoding="utf-8"))
        if (raw.get("version") == CACHE_VERSION
                and raw.get("files") == stats
                and isinstance(raw.get("fingerprint"), str)):
            return raw["fingerprint"]
    except (OSError, TypeError, ValueError, AttributeError,
            json.JSONDecodeError):
        pass
    fingerprint = trace_fingerprint(paths)
    if stats is not None:
        _write_ledger(directory, fingerprint, stats)
    return fingerprint


def _column_arrays(name: str, records: list) -> dict[str, np.ndarray]:
    """Columnar arrays of one record table (one array per schema column)."""
    table = schema.SCHEMAS[name]
    rows = [record.to_row() for record in records]
    arrays: dict[str, np.ndarray] = {}
    for column in table.columns:
        key = f"{name}:{column.name}"
        values = [row[column.name] for row in rows]
        if column.kind == "str":
            arrays[key] = np.asarray(
                ["" if value is None else str(value) for value in values],
                dtype=np.str_)
        else:
            dtype = np.int64 if column.kind == "int" else np.float64
            arrays[key] = np.asarray(
                [0 if value is None else value for value in values],
                dtype=dtype)
        if column.nullable:
            arrays[key + _NULL_SUFFIX] = np.asarray(
                [value is None for value in values], dtype=bool)
    return arrays


def _records_from_arrays(name: str, data) -> list:
    """Rebuild one table's typed records from its columnar arrays.

    Raises :class:`ValueError` (read as "cache absent" by the caller) when
    the column arrays disagree on row count — ``zip`` would otherwise
    silently truncate a damaged cache to its shortest column.
    """
    table = schema.SCHEMAS[name]
    columns: list[list] = []
    for column in table.columns:
        key = f"{name}:{column.name}"
        values = data[key].tolist()
        if column.nullable:
            nulls = data[key + _NULL_SUFFIX].tolist()
            if len(nulls) != len(values):
                raise ValueError(f"cache table {name}: null-mask length "
                                 f"mismatch on {column.name}")
            values = [None if null else value
                      for value, null in zip(values, nulls)]
        columns.append(values)
    if len({len(column) for column in columns}) > 1:
        raise ValueError(f"cache table {name}: column lengths disagree")
    factory = _FACTORIES[name]
    names = table.column_names
    return [factory(dict(zip(names, row))) for row in zip(*columns)]


def save_trace_cache(bundle: TraceBundle, directory: str | Path,
                     fingerprint: str, *,
                     skip_malformed: bool = False,
                     storage: str = "float64") -> Path | None:
    """Persist a parsed bundle as the directory's sidecar cache.

    ``skip_malformed`` records the parse mode the bundle was produced
    under: a lenient parse may have dropped rows a strict parse would
    reject, so the two modes never share a cache entry.  ``storage`` picks
    the dtype the dense usage matrix is written in (``usage.npy``); a
    cache written under one dtype never serves a load requesting another.

    Best-effort: a read-only directory, an unserialisable ``meta`` or any
    other failure returns ``None`` instead of raising — caching must never
    break a load that already succeeded.  Both files are written
    atomically (temp file + rename), the matrix sidecar strictly before
    the npz: the npz holds the authoritative fingerprinted header, so its
    rename is the commit point and a reader never observes a header
    pointing at a missing or older matrix.
    """
    if storage not in STORAGE_DTYPES:
        raise ValueError(f"unknown storage dtype {storage!r}; expected one "
                         f"of {sorted(STORAGE_DTYPES)}")
    path = cache_path(directory)
    matrix_path = usage_path(directory)
    tmp: Path | None = None
    usage_tmp: Path | None = None
    try:
        header = json.dumps({
            "version": CACHE_VERSION,
            "fingerprint": fingerprint,
            "skip_malformed": bool(skip_malformed),
            "storage": storage,
            "meta": bundle.meta,
        })
        arrays: dict[str, np.ndarray] = {}
        arrays.update(_column_arrays("machine_events", bundle.machine_events))
        arrays.update(_column_arrays("batch_task", bundle.tasks))
        arrays.update(_column_arrays("batch_instance", bundle.instances))
        usage = bundle.usage
        arrays["usage:present"] = np.asarray(usage is not None)
        if usage is not None:
            arrays["usage:machine_ids"] = np.asarray(usage.machine_ids,
                                                     dtype=np.str_)
            arrays["usage:metrics"] = np.asarray(list(usage.metrics),
                                                 dtype=np.str_)
            arrays["usage:timestamps"] = np.asarray(usage.timestamps,
                                                    dtype=np.float64)
        path.parent.mkdir(parents=True, exist_ok=True)
        # A unique temp name per writer keeps concurrent cold loads of the
        # same directory from interleaving on one file; whichever replace
        # lands last wins with a complete cache either way.
        fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                        prefix=path.name + ".", suffix=".tmp")
        tmp = Path(tmp_name)
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, __header__=np.asarray(header), **arrays)
        if usage is not None:
            ufd, usage_tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=matrix_path.name + ".", suffix=".tmp")
            usage_tmp = Path(usage_tmp_name)
            with os.fdopen(ufd, "wb") as handle:
                np.save(handle, np.ascontiguousarray(
                    usage.data, dtype=STORAGE_DTYPES[storage]))
            os.replace(usage_tmp, matrix_path)
            usage_tmp = None
        else:
            matrix_path.unlink(missing_ok=True)
        os.replace(tmp, path)
        tmp = None
    except (OSError, OverflowError, TypeError, ValueError):
        # Column building can fail on values the row parser accepted (e.g.
        # ints beyond int64); the load already succeeded, so skip caching.
        for leftover in (tmp, usage_tmp):
            try:
                if leftover is not None:
                    leftover.unlink(missing_ok=True)
            except OSError:
                pass
        return None
    return path


def _open_usage_matrix(directory: str | Path, storage: str,
                       mmap: bool) -> tuple[np.ndarray, MmapBacking | None]:
    """Open the ``usage.npy`` matrix sidecar (optionally memory-mapped).

    Raises ``OSError``/``ValueError`` on a missing, truncated or
    wrong-dtype file — the caller's corrupt-reads-as-absent net.
    """
    path = usage_path(directory)
    stat = os.stat(path)
    matrix = np.load(path, mmap_mode="r" if mmap else None,
                     allow_pickle=False)
    if str(matrix.dtype) != storage or matrix.ndim != 3:
        raise ValueError(
            f"usage sidecar holds {matrix.dtype}/{matrix.ndim}d, expected "
            f"{storage}/3d")
    backing = None
    if mmap:
        backing = MmapBacking(
            path=str(path), dtype=storage,
            shape=tuple(int(n) for n in matrix.shape),
            row_start=0, row_stop=int(matrix.shape[0]),
            size=stat.st_size, mtime_ns=stat.st_mtime_ns)
    return matrix, backing


def load_trace_cache(directory: str | Path, fingerprint: str, *,
                     skip_malformed: bool = False, mmap: bool = False,
                     storage: str = "float64") -> TraceBundle | None:
    """Load the sidecar cache, or ``None`` when absent, stale or corrupt.

    A cache written under a different ``skip_malformed`` mode reads as
    absent: a lenient parse may hold a partial bundle a strict load must
    re-validate (and possibly reject) instead of serving.  Likewise a
    cache written under a different ``storage`` dtype — the caller
    re-parses and rewrites it in the dtype actually requested.

    With ``mmap=True`` the dense usage matrix is opened with
    ``np.load(mmap_mode="r")`` instead of materialised: the returned
    store's views are read-only windows into ``usage.npy``, and the store
    pickles as a path descriptor (:class:`~repro.metrics.store.MmapBacking`)
    so process-pool shard workers reopen the file rather than receiving
    array bytes.
    """
    path = cache_path(directory)
    try:
        with np.load(path, allow_pickle=False) as data:
            header = json.loads(str(data["__header__"][()]))
            if (header.get("version") != CACHE_VERSION
                    or header.get("fingerprint") != fingerprint
                    or header.get("skip_malformed") != bool(skip_malformed)
                    or header.get("storage") != storage):
                return None
            usage = None
            if bool(data["usage:present"][()]):
                matrix, backing = _open_usage_matrix(directory, storage, mmap)
                usage = MetricStore.from_dense(
                    data["usage:machine_ids"].tolist(),
                    data["usage:timestamps"],
                    tuple(data["usage:metrics"].tolist()),
                    matrix, dtype=None)
                if backing is not None:
                    usage._attach_backing(backing)
            return TraceBundle(
                machine_events=_records_from_arrays("machine_events", data),
                tasks=_records_from_arrays("batch_task", data),
                instances=_records_from_arrays("batch_instance", data),
                usage=usage,
                meta=dict(header.get("meta", {})),
            )
    except (OSError, KeyError, ValueError, TypeError, SeriesError,
            json.JSONDecodeError, zipfile.BadZipFile):
        # SeriesError covers from_dense rejecting inconsistent cached
        # arrays (shape/id/timestamp mismatches) — corrupt reads as absent.
        return None


__all__ = [
    "CACHE_DIR_NAME",
    "CACHE_FILENAME",
    "CACHE_VERSION",
    "LEDGER_FILENAME",
    "STORAGE_DTYPES",
    "USAGE_FILENAME",
    "cache_path",
    "directory_fingerprint",
    "ledger_path",
    "load_trace_cache",
    "resolve_fingerprint",
    "resolve_table_paths",
    "save_trace_cache",
    "trace_fingerprint",
    "usage_path",
]
