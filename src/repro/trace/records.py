"""Typed records for the Alibaba trace tables and the in-memory bundle.

A :class:`TraceBundle` is the unit the rest of the library works on: the
three scheduler-side tables as typed record lists plus the server-usage
table as a dense :class:`~repro.metrics.store.MetricStore`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import UnknownEntityError
from repro.metrics.store import MetricStore
from repro.trace import schema


@dataclass(frozen=True)
class MachineEvent:
    """One row of ``machine_events``: a machine joining/leaving/failing."""

    timestamp: int
    machine_id: str
    event_type: str
    event_detail: str | None = None
    capacity_cpu: float | None = None
    capacity_mem: float | None = None
    capacity_disk: float | None = None

    def to_row(self) -> dict:
        return {
            "timestamp": self.timestamp,
            "machine_id": self.machine_id,
            "event_type": self.event_type,
            "event_detail": self.event_detail,
            "capacity_cpu": self.capacity_cpu,
            "capacity_mem": self.capacity_mem,
            "capacity_disk": self.capacity_disk,
        }

    @classmethod
    def from_row(cls, row: dict) -> "MachineEvent":
        return cls(**row)


@dataclass(frozen=True)
class BatchTaskRecord:
    """One row of ``batch_task``: a task of a batch job."""

    create_timestamp: int
    modify_timestamp: int
    job_id: str
    task_id: str
    instance_num: int
    status: str
    plan_cpu: float | None = None
    plan_mem: float | None = None

    def to_row(self) -> dict:
        return {
            "create_timestamp": self.create_timestamp,
            "modify_timestamp": self.modify_timestamp,
            "job_id": self.job_id,
            "task_id": self.task_id,
            "instance_num": self.instance_num,
            "status": self.status,
            "plan_cpu": self.plan_cpu,
            "plan_mem": self.plan_mem,
        }

    @classmethod
    def from_row(cls, row: dict) -> "BatchTaskRecord":
        return cls(**row)


@dataclass(frozen=True)
class BatchInstanceRecord:
    """One row of ``batch_instance``: one instance of a task on one machine."""

    start_timestamp: int
    end_timestamp: int
    job_id: str
    task_id: str
    machine_id: str | None
    status: str
    seq_no: int
    total_seq_no: int
    cpu_avg: float | None = None
    cpu_max: float | None = None
    mem_avg: float | None = None
    mem_max: float | None = None

    @property
    def duration(self) -> int:
        """Wall-clock duration of the instance in seconds."""
        return max(0, self.end_timestamp - self.start_timestamp)

    def to_row(self) -> dict:
        return {
            "start_timestamp": self.start_timestamp,
            "end_timestamp": self.end_timestamp,
            "job_id": self.job_id,
            "task_id": self.task_id,
            "machine_id": self.machine_id,
            "status": self.status,
            "seq_no": self.seq_no,
            "total_seq_no": self.total_seq_no,
            "cpu_avg": self.cpu_avg,
            "cpu_max": self.cpu_max,
            "mem_avg": self.mem_avg,
            "mem_max": self.mem_max,
        }

    @classmethod
    def from_row(cls, row: dict) -> "BatchInstanceRecord":
        return cls(**row)


@dataclass(frozen=True)
class ServerUsageRecord:
    """One row of ``server_usage``: utilisation of one machine at one time."""

    timestamp: int
    machine_id: str
    cpu_util: float
    mem_util: float
    disk_util: float

    def to_row(self) -> dict:
        return {
            "timestamp": self.timestamp,
            "machine_id": self.machine_id,
            "cpu_util": self.cpu_util,
            "mem_util": self.mem_util,
            "disk_util": self.disk_util,
        }

    @classmethod
    def from_row(cls, row: dict) -> "ServerUsageRecord":
        return cls(**row)

    def as_metric_tuple(self) -> tuple[float, str, dict[str, float]]:
        """Convert into the ``MetricStore.from_records`` input shape."""
        return (float(self.timestamp), self.machine_id,
                {"cpu": self.cpu_util, "mem": self.mem_util, "disk": self.disk_util})


@dataclass
class TraceBundle:
    """An in-memory Alibaba-style trace: three record tables + usage store."""

    machine_events: list[MachineEvent] = field(default_factory=list)
    tasks: list[BatchTaskRecord] = field(default_factory=list)
    instances: list[BatchInstanceRecord] = field(default_factory=list)
    usage: MetricStore | None = None
    #: Free-form metadata (scenario name, seed, generator config, ...).
    meta: dict = field(default_factory=dict)

    # -- id sets ------------------------------------------------------------
    def job_ids(self) -> list[str]:
        """Distinct job ids in creation order."""
        seen: dict[str, None] = {}
        for task in self.tasks:
            seen.setdefault(task.job_id, None)
        return list(seen)

    def task_ids(self, job_id: str | None = None) -> list[str]:
        """Distinct task ids, optionally restricted to one job."""
        out: list[str] = []
        for task in self.tasks:
            if job_id is None or task.job_id == job_id:
                out.append(task.task_id)
        return out

    def machine_ids(self) -> list[str]:
        """Machine ids known from machine events (falls back to usage store)."""
        ids = [event.machine_id for event in self.machine_events
               if event.event_type == schema.EVENT_ADD]
        if ids:
            seen: dict[str, None] = {}
            for mid in ids:
                seen.setdefault(mid, None)
            return list(seen)
        if self.usage is not None:
            return self.usage.machine_ids
        return []

    # -- lookups ------------------------------------------------------------
    def tasks_of_job(self, job_id: str) -> list[BatchTaskRecord]:
        records = [task for task in self.tasks if task.job_id == job_id]
        if not records:
            raise UnknownEntityError("job", job_id)
        return records

    def instances_of_task(self, job_id: str, task_id: str) -> list[BatchInstanceRecord]:
        records = [inst for inst in self.instances
                   if inst.job_id == job_id and inst.task_id == task_id]
        if not records:
            raise UnknownEntityError("task", f"{job_id}/{task_id}")
        return records

    def instances_of_job(self, job_id: str) -> list[BatchInstanceRecord]:
        records = [inst for inst in self.instances if inst.job_id == job_id]
        if not records:
            raise UnknownEntityError("job", job_id)
        return records

    def instances_on_machine(self, machine_id: str) -> list[BatchInstanceRecord]:
        return [inst for inst in self.instances if inst.machine_id == machine_id]

    def machines_of_job(self, job_id: str) -> list[str]:
        """Machines executing at least one instance of the job."""
        seen: dict[str, None] = {}
        for inst in self.instances_of_job(job_id):
            if inst.machine_id is not None:
                seen.setdefault(inst.machine_id, None)
        return list(seen)

    # -- time extent ---------------------------------------------------------
    def time_range(self) -> tuple[float, float]:
        """Earliest and latest timestamp across all tables."""
        lows: list[float] = []
        highs: list[float] = []
        if self.usage is not None and self.usage.num_samples:
            lows.append(float(self.usage.timestamps[0]))
            highs.append(float(self.usage.timestamps[-1]))
        if self.instances:
            lows.append(float(min(inst.start_timestamp for inst in self.instances)))
            highs.append(float(max(inst.end_timestamp for inst in self.instances)))
        if self.tasks:
            lows.append(float(min(task.create_timestamp for task in self.tasks)))
            highs.append(float(max(task.modify_timestamp for task in self.tasks)))
        if not lows:
            return (0.0, 0.0)
        return (min(lows), max(highs))

    def active_jobs(self, timestamp: float) -> list[str]:
        """Job ids with at least one instance running at ``timestamp``."""
        seen: dict[str, None] = {}
        for inst in self.instances:
            if inst.start_timestamp <= timestamp <= inst.end_timestamp:
                seen.setdefault(inst.job_id, None)
        return list(seen)

    # -- usage round-tripping --------------------------------------------------
    def usage_records(self) -> Iterable[ServerUsageRecord]:
        """Yield the usage store back as :class:`ServerUsageRecord` rows."""
        if self.usage is None:
            return
        for timestamp, machine_id, values in self.usage.iter_records():
            yield ServerUsageRecord(
                timestamp=int(timestamp),
                machine_id=machine_id,
                cpu_util=values["cpu"],
                mem_util=values["mem"],
                disk_util=values["disk"],
            )

    def ground_truth(self):
        """The ground-truth manifest recorded by the scenario engine.

        Returns a :class:`~repro.scenarios.groundtruth.GroundTruthManifest`
        (empty for loaded traces and scenarios without fault injectors).
        """
        from repro.scenarios.groundtruth import manifest_from_meta

        return manifest_from_meta(self.meta)

    def summary(self) -> dict:
        """Small human-readable description of the bundle."""
        start, end = self.time_range()
        return {
            "jobs": len(self.job_ids()),
            "tasks": len(self.tasks),
            "instances": len(self.instances),
            "machines": len(self.machine_ids()),
            "usage_samples": 0 if self.usage is None else
            self.usage.num_samples * self.usage.num_machines,
            "start": start,
            "end": end,
            "scenario": self.meta.get("scenario"),
        }
