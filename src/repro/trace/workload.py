"""Logical batch-workload generation.

The generator produces *specifications* of jobs and tasks (how many
instances, what they request, when they arrive, how long they run) with the
statistical shape §II of the paper reports for the Alibaba trace: roughly
75 % of jobs consist of a single task and roughly 94 % of tasks run more
than one instance.  Placement onto machines is the scheduler's job
(:mod:`repro.cluster.scheduler`), not the workload's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import WorkloadConfig
from repro.errors import ConfigError


@dataclass
class TaskSpec:
    """Specification of one task inside a job."""

    task_id: str
    num_instances: int
    cpu_request: float
    mem_request: float
    disk_request: float
    #: Offset of the task start relative to the job submit time, in seconds.
    start_offset_s: int
    #: Nominal duration of the task's instances, in seconds.
    duration_s: int

    def __post_init__(self) -> None:
        if self.num_instances <= 0:
            raise ConfigError(f"task {self.task_id}: num_instances must be positive")
        if self.duration_s <= 0:
            raise ConfigError(f"task {self.task_id}: duration must be positive")
        for name in ("cpu_request", "mem_request", "disk_request"):
            value = getattr(self, name)
            if not 0.0 <= value <= 100.0:
                raise ConfigError(
                    f"task {self.task_id}: {name}={value} outside [0, 100]")


@dataclass
class JobSpec:
    """Specification of one batch job (a set of tasks)."""

    job_id: str
    submit_time_s: int
    tasks: list[TaskSpec] = field(default_factory=list)
    #: Free-form labels the anomaly layer uses ("hot", "victim", ...).
    labels: set[str] = field(default_factory=set)

    @property
    def num_instances(self) -> int:
        return sum(task.num_instances for task in self.tasks)

    @property
    def end_time_s(self) -> int:
        """Latest end time over all tasks (submit + offset + duration)."""
        if not self.tasks:
            return self.submit_time_s
        return self.submit_time_s + max(
            task.start_offset_s + task.duration_s for task in self.tasks)

    def scale_demand(self, cpu: float = 1.0, mem: float = 1.0,
                     disk: float = 1.0) -> None:
        """Multiply the resource requests of every task (anomaly hook)."""
        for task in self.tasks:
            task.cpu_request = float(min(100.0, task.cpu_request * cpu))
            task.mem_request = float(min(100.0, task.mem_request * mem))
            task.disk_request = float(min(100.0, task.disk_request * disk))


class WorkloadGenerator:
    """Draws :class:`JobSpec` populations matching a :class:`WorkloadConfig`."""

    def __init__(self, config: WorkloadConfig, *, horizon_s: int,
                 batch_resolution_s: int, rng: np.random.Generator) -> None:
        config.validate()
        if horizon_s <= 0:
            raise ConfigError("horizon_s must be positive")
        if batch_resolution_s <= 0:
            raise ConfigError("batch_resolution_s must be positive")
        self._config = config
        self._horizon_s = horizon_s
        self._resolution_s = batch_resolution_s
        self._rng = rng

    # -- helpers --------------------------------------------------------------
    def _quantize(self, t: float) -> int:
        """Snap a time to the batch-scheduler resolution grid."""
        return int(round(t / self._resolution_s)) * self._resolution_s

    def _draw_duration(self) -> int:
        """Log-uniform duration between the configured bounds."""
        cfg = self._config
        lo, hi = np.log(cfg.min_duration_s), np.log(cfg.max_duration_s)
        raw = float(np.exp(self._rng.uniform(lo, hi)))
        return max(self._resolution_s, self._quantize(raw))

    def _draw_instances(self) -> int:
        cfg = self._config
        if self._rng.random() >= cfg.multi_instance_task_fraction:
            return 1
        if cfg.max_instances <= cfg.min_instances:
            return max(2, cfg.min_instances)
        # Geometric-ish tail: most tasks are small, a few fan out widely.
        span = cfg.max_instances - cfg.min_instances
        draw = int(np.floor(span * self._rng.power(2.0)))
        return int(np.clip(cfg.min_instances + draw, 2, cfg.max_instances))

    def _draw_request(self, mean: float) -> float:
        """Gamma-distributed resource request, clipped into (1, 95]."""
        value = float(self._rng.gamma(shape=4.0, scale=mean / 4.0))
        return float(np.clip(value, 1.0, 95.0))

    def _make_task(self, job_index: int, task_index: int,
                   job_duration_s: int) -> TaskSpec:
        cfg = self._config
        # Tasks of a DAG job start together but finish at different times,
        # matching the bundled start / staggered end annotation lines of Fig. 2.
        duration = max(self._resolution_s,
                       self._quantize(job_duration_s * float(self._rng.uniform(0.55, 1.0))))
        return TaskSpec(
            task_id=f"task_{job_index}_{task_index}",
            num_instances=self._draw_instances(),
            cpu_request=self._draw_request(cfg.mean_cpu_request),
            mem_request=self._draw_request(cfg.mean_mem_request),
            disk_request=self._draw_request(cfg.mean_disk_request),
            start_offset_s=0,
            duration_s=duration,
        )

    # -- public API -------------------------------------------------------------
    def generate_job(self, job_index: int) -> JobSpec:
        """Generate one job with its tasks."""
        cfg = self._config
        duration = self._draw_duration()
        latest_submit = max(0, self._horizon_s - duration)
        submit = self._quantize(float(self._rng.uniform(0, latest_submit)))
        if self._rng.random() < cfg.single_task_job_fraction:
            task_count = 1
        else:
            task_count = int(self._rng.integers(2, cfg.max_tasks_per_job + 1))
        job = JobSpec(job_id=f"job_{1000 + job_index}", submit_time_s=submit)
        job.tasks = [self._make_task(job_index, t, duration)
                     for t in range(task_count)]
        return job

    def generate(self) -> list[JobSpec]:
        """Generate the whole population of jobs, sorted by submit time."""
        jobs = [self.generate_job(i) for i in range(self._config.num_jobs)]
        jobs.sort(key=lambda job: (job.submit_time_s, job.job_id))
        return jobs


def workload_summary(jobs: list[JobSpec]) -> dict[str, float]:
    """Summarise a workload (used by tests and the dataset-stats benchmark)."""
    if not jobs:
        return {"jobs": 0, "tasks": 0, "instances": 0,
                "single_task_job_fraction": 0.0,
                "multi_instance_task_fraction": 0.0}
    task_counts = [len(job.tasks) for job in jobs]
    instance_counts = [task.num_instances for job in jobs for task in job.tasks]
    return {
        "jobs": len(jobs),
        "tasks": int(np.sum(task_counts)),
        "instances": int(np.sum(instance_counts)),
        "single_task_job_fraction": float(np.mean(np.asarray(task_counts) == 1)),
        "multi_instance_task_fraction": float(
            np.mean(np.asarray(instance_counts) > 1)),
    }
