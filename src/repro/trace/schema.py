"""Column schemas of the Alibaba cluster-trace-v2017 tables.

The trace that the paper analyses ships as four headerless CSV files.  The
column layouts below follow the official ``trace_2017`` documentation of the
Alibaba Open Cluster Trace Program; the loader and writer use them to parse
and emit files that are drop-in compatible with the real dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TraceFormatError


@dataclass(frozen=True)
class ColumnSpec:
    """One column of a trace table."""

    name: str
    kind: str  # "int", "float" or "str"
    nullable: bool = False

    def parse(self, raw: str):
        """Parse one CSV cell according to the column type."""
        text = raw.strip()
        if text == "":
            if self.nullable:
                return None
            raise TraceFormatError(f"column {self.name!r} may not be empty")
        try:
            if self.kind == "int":
                return int(float(text))
            if self.kind == "float":
                return float(text)
            if self.kind == "str":
                return text
        except ValueError as exc:
            raise TraceFormatError(
                f"column {self.name!r}: cannot parse {raw!r} as {self.kind}") from exc
        raise TraceFormatError(f"column {self.name!r} has unknown kind {self.kind!r}")

    def format(self, value) -> str:
        """Format one value back into a CSV cell."""
        if value is None:
            if not self.nullable:
                raise TraceFormatError(f"column {self.name!r} may not be null")
            return ""
        if self.kind == "int":
            return str(int(value))
        if self.kind == "float":
            return f"{float(value):.2f}"
        return str(value)


@dataclass(frozen=True)
class TableSchema:
    """Schema of one trace table (CSV file)."""

    name: str
    filename: str
    columns: tuple[ColumnSpec, ...] = field(default_factory=tuple)

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(col.name for col in self.columns)

    def parse_row(self, cells: list[str], line_number: int | None = None) -> dict:
        """Parse one CSV row into a ``{column: value}`` dict."""
        if len(cells) != len(self.columns):
            raise TraceFormatError(
                f"expected {len(self.columns)} columns, got {len(cells)}",
                table=self.name, line_number=line_number)
        row = {}
        for col, cell in zip(self.columns, cells):
            try:
                row[col.name] = col.parse(cell)
            except TraceFormatError as exc:
                raise TraceFormatError(str(exc), table=self.name,
                                       line_number=line_number) from exc
        return row

    def format_row(self, row: dict) -> list[str]:
        """Format a ``{column: value}`` dict back into CSV cells."""
        return [col.format(row.get(col.name)) for col in self.columns]


MACHINE_EVENTS = TableSchema(
    name="machine_events",
    filename="machine_events.csv",
    columns=(
        ColumnSpec("timestamp", "int"),
        ColumnSpec("machine_id", "str"),
        ColumnSpec("event_type", "str"),
        ColumnSpec("event_detail", "str", nullable=True),
        ColumnSpec("capacity_cpu", "float", nullable=True),
        ColumnSpec("capacity_mem", "float", nullable=True),
        ColumnSpec("capacity_disk", "float", nullable=True),
    ),
)

BATCH_TASK = TableSchema(
    name="batch_task",
    filename="batch_task.csv",
    columns=(
        ColumnSpec("create_timestamp", "int"),
        ColumnSpec("modify_timestamp", "int"),
        ColumnSpec("job_id", "str"),
        ColumnSpec("task_id", "str"),
        ColumnSpec("instance_num", "int"),
        ColumnSpec("status", "str"),
        ColumnSpec("plan_cpu", "float", nullable=True),
        ColumnSpec("plan_mem", "float", nullable=True),
    ),
)

BATCH_INSTANCE = TableSchema(
    name="batch_instance",
    filename="batch_instance.csv",
    columns=(
        ColumnSpec("start_timestamp", "int"),
        ColumnSpec("end_timestamp", "int"),
        ColumnSpec("job_id", "str"),
        ColumnSpec("task_id", "str"),
        ColumnSpec("machine_id", "str", nullable=True),
        ColumnSpec("status", "str"),
        ColumnSpec("seq_no", "int"),
        ColumnSpec("total_seq_no", "int"),
        ColumnSpec("cpu_avg", "float", nullable=True),
        ColumnSpec("cpu_max", "float", nullable=True),
        ColumnSpec("mem_avg", "float", nullable=True),
        ColumnSpec("mem_max", "float", nullable=True),
    ),
)

SERVER_USAGE = TableSchema(
    name="server_usage",
    filename="server_usage.csv",
    columns=(
        ColumnSpec("timestamp", "int"),
        ColumnSpec("machine_id", "str"),
        ColumnSpec("cpu_util", "float"),
        ColumnSpec("mem_util", "float"),
        ColumnSpec("disk_util", "float"),
    ),
)

#: Registry of every table by name.
SCHEMAS: dict[str, TableSchema] = {
    schema.name: schema
    for schema in (MACHINE_EVENTS, BATCH_TASK, BATCH_INSTANCE, SERVER_USAGE)
}

#: Instance / task terminal statuses used by the generator and validator.
STATUS_TERMINATED = "Terminated"
STATUS_RUNNING = "Running"
STATUS_FAILED = "Failed"
STATUS_WAITING = "Waiting"
VALID_STATUSES = (STATUS_TERMINATED, STATUS_RUNNING, STATUS_FAILED, STATUS_WAITING)

#: Machine event types.
EVENT_ADD = "add"
EVENT_REMOVE = "remove"
EVENT_SOFT_ERROR = "softerror"
EVENT_HARD_ERROR = "harderror"
VALID_EVENT_TYPES = (EVENT_ADD, EVENT_REMOVE, EVENT_SOFT_ERROR, EVENT_HARD_ERROR)
