"""Synthetic Alibaba-style trace generation (facade).

The public entry point :func:`generate_trace` wires the workload model and
the cluster simulator together and returns a ready-to-analyse
:class:`~repro.trace.records.TraceBundle`.  See DESIGN.md for why a
generator stands in for the real cluster-trace-v2017 download in this
environment, and :mod:`repro.trace.loader` for loading the real CSVs when
they are available.
"""

from __future__ import annotations

from repro.config import TraceConfig, paper_scale_config, small_config
from repro.trace.records import TraceBundle


def generate_trace(config: TraceConfig | None = None, *,
                   scenario=None, seed: int | None = None,
                   scheduler: str = "least-loaded") -> TraceBundle:
    """Generate a synthetic trace bundle.

    ``scenario`` and ``seed`` override the corresponding fields of ``config``
    (or of the default configuration when ``config`` is omitted), which keeps
    the common call sites short::

        bundle = generate_trace(scenario="hotjob", seed=3)

    ``scenario`` accepts any form the scenario registry understands: a legacy
    alias (``"healthy"``, ``"hotjob"``, ``"thrashing"``, ``"none"``), a
    registered fault-injector name, a composed spec string such as
    ``"diurnal(amplitude=40)+network-storm"``, or an already-built
    :class:`~repro.cluster.anomalies.Scenario` / injector stack (see
    :mod:`repro.scenarios`).  Scenarios built from fault injectors record a
    ground-truth manifest into ``bundle.meta["ground_truth"]``.
    """
    from dataclasses import replace

    from repro.cluster.simulator import simulate

    if config is None:
        config = TraceConfig()
    overrides = {}
    resolved = None
    if scenario is not None:
        if isinstance(scenario, str):
            overrides["scenario"] = scenario
        else:
            from repro.scenarios.registry import resolve_scenario

            resolved = resolve_scenario(scenario)
            overrides["scenario"] = resolved.name
    if seed is not None:
        overrides["seed"] = seed
    if overrides:
        config = replace(config, **overrides)
    return simulate(config, scheduler=scheduler, scenario=resolved)


def generate_case_study_traces(*, paper_scale: bool = False,
                               seed: int = 2022) -> dict[str, TraceBundle]:
    """Generate the three Fig. 3 regimes in one call.

    Returns ``{"healthy": ..., "hotjob": ..., "thrashing": ...}``.  With
    ``paper_scale=True`` each bundle uses the 1300-machine / 24-hour
    configuration; otherwise a faster medium-sized configuration is used.
    """
    bundles: dict[str, TraceBundle] = {}
    for scenario in ("healthy", "hotjob", "thrashing"):
        if paper_scale:
            config = paper_scale_config(scenario=scenario, seed=seed)
        else:
            config = TraceConfig(scenario=scenario, seed=seed)
        bundles[scenario] = generate_trace(config)
    return bundles


__all__ = [
    "generate_case_study_traces",
    "generate_trace",
    "paper_scale_config",
    "small_config",
]
