"""Trace substrate: Alibaba v2017 schemas, records, I/O and synthesis."""

from repro.trace.loader import (
    load_batch_instances,
    load_batch_tasks,
    load_machine_events,
    load_server_usage,
    load_trace,
)
from repro.trace.records import (
    BatchInstanceRecord,
    BatchTaskRecord,
    MachineEvent,
    ServerUsageRecord,
    TraceBundle,
)
from repro.trace.schema import SCHEMAS, TableSchema
from repro.trace.synthetic import generate_case_study_traces, generate_trace
from repro.trace.validate import ValidationReport, validate_bundle
from repro.trace.workload import JobSpec, TaskSpec, WorkloadGenerator, workload_summary
from repro.trace.writer import write_table, write_trace

__all__ = [
    "BatchInstanceRecord",
    "BatchTaskRecord",
    "JobSpec",
    "MachineEvent",
    "SCHEMAS",
    "ServerUsageRecord",
    "TableSchema",
    "TaskSpec",
    "TraceBundle",
    "ValidationReport",
    "WorkloadGenerator",
    "generate_case_study_traces",
    "generate_trace",
    "load_batch_instances",
    "load_batch_tasks",
    "load_machine_events",
    "load_server_usage",
    "load_trace",
    "validate_bundle",
    "workload_summary",
    "write_table",
    "write_trace",
]
