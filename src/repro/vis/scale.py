"""Scales: mapping data coordinates onto pixel coordinates.

Axes in the line charts and the timeline use :class:`LinearScale` with
"nice" tick values; the small-multiple layouts use :class:`BandScale`.
Time axes format seconds-since-trace-start as ``H:MM:SS`` labels, matching
how the paper labels timestamps (e.g. 47400, 46200 ... are shown both raw
and as clock offsets).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import RenderError


@dataclass(frozen=True)
class Tick:
    """One axis tick: data value, pixel position and label."""

    value: float
    position: float
    label: str


class LinearScale:
    """An affine map from a data domain onto a pixel range."""

    def __init__(self, domain: tuple[float, float],
                 range_: tuple[float, float]) -> None:
        d0, d1 = float(domain[0]), float(domain[1])
        if d0 == d1:
            # degenerate domain: widen it slightly so the scale stays usable
            d0 -= 0.5
            d1 += 0.5
        self._d0, self._d1 = d0, d1
        self._r0, self._r1 = float(range_[0]), float(range_[1])

    @property
    def domain(self) -> tuple[float, float]:
        return (self._d0, self._d1)

    @property
    def range(self) -> tuple[float, float]:
        return (self._r0, self._r1)

    def __call__(self, value: float) -> float:
        t = (float(value) - self._d0) / (self._d1 - self._d0)
        return self._r0 + t * (self._r1 - self._r0)

    def invert(self, position: float) -> float:
        """Map a pixel position back to a data value."""
        if self._r1 == self._r0:
            raise RenderError("cannot invert a zero-width range")
        t = (float(position) - self._r0) / (self._r1 - self._r0)
        return self._d0 + t * (self._d1 - self._d0)

    def clamp(self, value: float) -> float:
        """Clamp a data value into the domain."""
        lo, hi = sorted((self._d0, self._d1))
        return min(hi, max(lo, float(value)))

    # -- ticks ------------------------------------------------------------------
    def ticks(self, count: int = 5,
              formatter=None) -> list[Tick]:
        """Roughly ``count`` ticks at nice (1/2/5 × 10^k) data values."""
        if count < 2:
            raise RenderError("tick count must be at least 2")
        lo, hi = sorted((self._d0, self._d1))
        step = nice_step(hi - lo, count)
        first = math.ceil(lo / step) * step
        values: list[float] = []
        value = first
        while value <= hi + 1e-9:
            values.append(round(value, 10))
            value += step
        fmt = formatter if formatter is not None else format_number
        return [Tick(v, self(v), fmt(v)) for v in values]


def nice_step(span: float, count: int) -> float:
    """A step size of the form 1/2/5 × 10^k producing about ``count`` steps."""
    if span <= 0:
        return 1.0
    raw = span / max(1, count)
    magnitude = 10.0 ** math.floor(math.log10(raw))
    residual = raw / magnitude
    if residual < 1.5:
        factor = 1.0
    elif residual < 3.5:
        factor = 2.0
    elif residual < 7.5:
        factor = 5.0
    else:
        factor = 10.0
    return factor * magnitude


def format_number(value: float) -> str:
    """Compact numeric label (drops trailing ``.0``, adds thousands separator)."""
    if abs(value - round(value)) < 1e-9:
        return f"{int(round(value)):,}"
    return f"{value:g}"


def format_seconds(value: float) -> str:
    """Format seconds since trace start as ``H:MM:SS``."""
    total = int(round(value))
    sign = "-" if total < 0 else ""
    total = abs(total)
    hours, remainder = divmod(total, 3600)
    minutes, seconds = divmod(remainder, 60)
    return f"{sign}{hours}:{minutes:02d}:{seconds:02d}"


def format_percent(value: float) -> str:
    """Format a utilisation value as a percentage label."""
    return f"{value:.0f}%"


class TimeScale(LinearScale):
    """A linear scale whose ticks are formatted as clock offsets."""

    def ticks(self, count: int = 5, formatter=None) -> list[Tick]:
        fmt = formatter if formatter is not None else format_seconds
        return super().ticks(count, formatter=fmt)


class BandScale:
    """Maps discrete categories onto evenly-spaced bands of a pixel range."""

    def __init__(self, categories: Sequence[str], range_: tuple[float, float],
                 *, padding: float = 0.1) -> None:
        if not categories:
            raise RenderError("band scale needs at least one category")
        if not 0.0 <= padding < 1.0:
            raise RenderError("padding must be within [0, 1)")
        self._categories = list(categories)
        self._r0, self._r1 = float(range_[0]), float(range_[1])
        self._padding = padding
        count = len(self._categories)
        step = (self._r1 - self._r0) / count
        self._step = step
        self._bandwidth = step * (1.0 - padding)
        self._index = {cat: i for i, cat in enumerate(self._categories)}

    @property
    def categories(self) -> list[str]:
        return list(self._categories)

    @property
    def bandwidth(self) -> float:
        return abs(self._bandwidth)

    def __call__(self, category: str) -> float:
        """Left edge (or top edge) of the category's band."""
        try:
            index = self._index[category]
        except KeyError:
            raise RenderError(f"unknown category {category!r}") from None
        return self._r0 + index * self._step + self._step * self._padding / 2.0

    def center(self, category: str) -> float:
        """Centre of the category's band."""
        return self(category) + self._bandwidth / 2.0
