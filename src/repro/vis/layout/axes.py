"""Axis rendering: ticks, labels, gridlines and axis titles."""

from __future__ import annotations

from repro.vis.scale import LinearScale
from repro.vis.svg import Element, group, line, text


def bottom_axis(scale: LinearScale, y: float, *, tick_count: int = 6,
                label: str | None = None, tick_formatter=None,
                color: str = "#444") -> Element:
    """A horizontal axis drawn at pixel row ``y``."""
    axis = group(cls="axis axis-x")
    x0, x1 = scale.range
    axis.add(line(min(x0, x1), y, max(x0, x1), y, stroke=color))
    for tick in scale.ticks(tick_count, formatter=tick_formatter):
        axis.add(line(tick.position, y, tick.position, y + 5, stroke=color))
        axis.add(text(tick.position, y + 17, tick.label, size=10,
                      fill=color, anchor="middle"))
    if label:
        axis.add(text((x0 + x1) / 2, y + 32, label, size=11, fill=color,
                      anchor="middle", weight="bold"))
    return axis


def left_axis(scale: LinearScale, x: float, *, tick_count: int = 5,
              label: str | None = None, tick_formatter=None,
              grid_to: float | None = None, color: str = "#444") -> Element:
    """A vertical axis drawn at pixel column ``x``.

    With ``grid_to`` set, faint horizontal gridlines are drawn from the axis
    to that x position (the right edge of the plot area).
    """
    axis = group(cls="axis axis-y")
    y0, y1 = scale.range
    axis.add(line(x, min(y0, y1), x, max(y0, y1), stroke=color))
    for tick in scale.ticks(tick_count, formatter=tick_formatter):
        axis.add(line(x - 5, tick.position, x, tick.position, stroke=color))
        axis.add(text(x - 8, tick.position + 3, tick.label, size=10,
                      fill=color, anchor="end"))
        if grid_to is not None:
            axis.add(line(x, tick.position, grid_to, tick.position,
                          stroke="#ddd", stroke_width=0.5))
    if label:
        title = text(0, 0, label, size=11, fill=color, anchor="middle",
                     weight="bold")
        mid_y = (y0 + y1) / 2
        title.set("transform", f"translate({x - 38:.1f},{mid_y:.1f}) rotate(-90)")
        axis.add(title)
    return axis


def vertical_annotation(x: float, y_top: float, y_bottom: float, *,
                        color: str, label: str | None = None,
                        dashed: bool = True, cls: str = "annotation") -> Element:
    """A vertical annotation line (job start / end markers of Fig. 2)."""
    annotation = group(cls=cls)
    annotation.add(line(x, y_top, x, y_bottom, stroke=color, stroke_width=1.4,
                        dashed=dashed, opacity=0.9))
    if label:
        tag = text(x + 3, y_top + 10, label, size=9, fill=color)
        annotation.add(tag)
    return annotation
