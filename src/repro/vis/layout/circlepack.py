"""Hierarchical circle packing.

This is the layout behind the hierarchical bubble chart of Fig. 1: leaf
circles (compute nodes) are packed tightly inside their parent circle
(task), task circles inside their job circle, and job circles inside the
view.  The sibling-packing step follows the front-chain algorithm used by
d3-hierarchy (Wang et al., "Visualization of large hierarchical data by
circle packing"), and parent circles are the smallest enclosing circle of
their children (Welzl's algorithm) plus padding.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import LayoutError


@dataclass
class PackNode:
    """A node of the hierarchy to lay out.

    Leaves must carry a positive ``value`` (it determines their area);
    internal nodes derive their size from their children.  After calling
    :func:`pack`, ``x``, ``y`` and ``r`` hold the layout in the target
    coordinate system.
    """

    id: str
    value: float = 0.0
    children: list["PackNode"] = field(default_factory=list)
    #: Arbitrary payload the chart code wants back (utilisation, labels, ...).
    data: dict = field(default_factory=dict)
    x: float = 0.0
    y: float = 0.0
    r: float = 0.0
    depth: int = 0

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def iter(self) -> Iterator["PackNode"]:
        """Depth-first traversal of the subtree rooted here."""
        yield self
        for child in self.children:
            yield from child.iter()

    def leaves(self) -> list["PackNode"]:
        return [node for node in self.iter() if node.is_leaf]


@dataclass(frozen=True)
class _Circle:
    x: float
    y: float
    r: float


def _distance2(a: _Circle, b: _Circle) -> float:
    dx, dy = b.x - a.x, b.y - a.y
    return dx * dx + dy * dy


def _encloses(a: _Circle, b: _Circle, epsilon: float = 1e-9) -> bool:
    dr = a.r - b.r + epsilon
    return dr > 0 and _distance2(a, b) < dr * dr


def _enclose_basis_2(a: _Circle, b: _Circle) -> _Circle:
    x1, y1, r1 = a.x, a.y, a.r
    x2, y2, r2 = b.x, b.y, b.r
    dx, dy = x2 - x1, y2 - y1
    d = math.hypot(dx, dy)
    r = (d + r1 + r2) / 2.0
    if d <= 1e-12:
        return _Circle(x1, y1, max(r1, r2))
    t = (r - r1) / d
    return _Circle(x1 + dx * t, y1 + dy * t, r)


def _enclose_basis_3(a: _Circle, b: _Circle, c: _Circle) -> _Circle:
    # Solve for the circle tangent (internally) to three circles: linear system
    # derived from equalising the three tangency constraints.
    x1, y1, r1 = a.x, a.y, a.r
    x2, y2, r2 = b.x, b.y, b.r
    x3, y3, r3 = c.x, c.y, c.r
    a2, b2 = 2 * (x1 - x2), 2 * (y1 - y2)
    c2 = 2 * (r2 - r1)
    d2 = x1 * x1 + y1 * y1 - r1 * r1 - x2 * x2 - y2 * y2 + r2 * r2
    a3, b3 = 2 * (x1 - x3), 2 * (y1 - y3)
    c3 = 2 * (r3 - r1)
    d3 = x1 * x1 + y1 * y1 - r1 * r1 - x3 * x3 - y3 * y3 + r3 * r3
    ab = a3 * b2 - a2 * b3
    if abs(ab) < 1e-12:
        return _enclose_basis_2(a, b if b.r >= c.r else c)
    xa = (b2 * d3 - b3 * d2) / ab - x1
    xb = (b3 * c2 - b2 * c3) / ab
    ya = (a3 * d2 - a2 * d3) / ab - y1
    yb = (a2 * c3 - a3 * c2) / ab
    qa = xb * xb + yb * yb - 1
    qb = 2 * (r1 + xa * xb + ya * yb)
    qc = xa * xa + ya * ya - r1 * r1
    if abs(qa) > 1e-12:
        disc = qb * qb - 4 * qa * qc
        r = -(qb + math.sqrt(max(0.0, disc))) / (2 * qa)
    else:
        r = -qc / qb if abs(qb) > 1e-12 else 0.0
    return _Circle(x1 + xa + xb * r, y1 + ya + yb * r, r)


def _enclose_basis(basis: list[_Circle]) -> _Circle:
    if not basis:
        return _Circle(0.0, 0.0, 0.0)
    if len(basis) == 1:
        return basis[0]
    if len(basis) == 2:
        return _enclose_basis_2(basis[0], basis[1])
    return _enclose_basis_3(basis[0], basis[1], basis[2])


def _encloses_weak_all(circle: _Circle, basis: list[_Circle]) -> bool:
    return all(_encloses(_Circle(circle.x, circle.y, circle.r + 1e-6), b)
               or abs(circle.r - b.r) < 1e-6 and _distance2(circle, b) < 1e-6
               for b in basis)


def _fallback_enclosing(circles: Sequence[_Circle]) -> _Circle:
    """A guaranteed (not necessarily minimal) enclosing circle.

    Used when the move-to-front iteration fails to converge on numerically
    degenerate input (nearly-identical circles, extreme coordinates): the
    centroid of the centres with a radius reaching the farthest circle edge
    always encloses everything and keeps the layout finite.
    """
    count = len(circles)
    cx = sum(c.x for c in circles) / count
    cy = sum(c.y for c in circles) / count
    radius = max(math.hypot(c.x - cx, c.y - cy) + c.r for c in circles)
    return _Circle(cx, cy, radius)


def smallest_enclosing_circle(circles: Sequence[_Circle]) -> _Circle:
    """Welzl's algorithm over circles (move-to-front heuristic, iterative)."""
    items = list(circles)
    if not items:
        return _Circle(0.0, 0.0, 0.0)
    enclosing: _Circle | None = None
    basis: list[_Circle] = []
    i = 0
    # The move-to-front heuristic needs O(n) basis changes on well-conditioned
    # input; the cap below only trips when floating-point cancellation makes
    # the basis oscillate, in which case the conservative fallback circle is
    # returned instead of looping forever.
    steps = 0
    max_steps = 10 * len(items) * len(items) + 200
    while i < len(items):
        steps += 1
        if steps > max_steps:
            return _fallback_enclosing(items)
        circle = items[i]
        if enclosing is not None and _encloses(enclosing, circle):
            i += 1
            continue
        # extend the basis with this circle
        basis = _extend_basis(basis, circle)
        enclosing = _enclose_basis(basis)
        # move-to-front and restart scanning
        items.pop(i)
        items.insert(0, circle)
        i = 0
    return enclosing if enclosing is not None else items[0]


def _extend_basis(basis: list[_Circle], circle: _Circle) -> list[_Circle]:
    if _encloses_weak(_enclose_basis(basis), circle):
        return basis
    # try basis of size 1 and 2 including the new circle
    for existing in basis:
        if _encloses_weak(_enclose_basis_2(existing, circle), basis):
            return [existing, circle]
    for j in range(len(basis)):
        for k in range(j + 1, len(basis)):
            candidate = _enclose_basis_3(basis[j], basis[k], circle)
            if _encloses_weak(candidate, basis):
                return [basis[j], basis[k], circle]
    return [circle]


def _encloses_weak(a: _Circle, b) -> bool:
    if isinstance(b, list):
        return all(_encloses_weak(a, item) for item in b)
    dr = a.r - b.r + max(a.r, b.r, 1.0) * 1e-9
    return dr > 0 and _distance2(a, b) < dr * dr


def _tangent_positions(a: _Circle, b: _Circle, r: float) -> list[tuple[float, float]]:
    """Centres of circles of radius ``r`` externally tangent to both a and b."""
    ra, rb = a.r + r, b.r + r
    dx, dy = b.x - a.x, b.y - a.y
    d = math.hypot(dx, dy)
    if d < 1e-12 or d > ra + rb or d < abs(ra - rb):
        return []
    # intersection of circles (a.center, ra) and (b.center, rb)
    along = (d * d + ra * ra - rb * rb) / (2 * d)
    h2 = ra * ra - along * along
    if h2 < 0:
        return []
    h = math.sqrt(h2)
    ux, uy = dx / d, dy / d
    px, py = a.x + along * ux, a.y + along * uy
    return [(px - h * uy, py + h * ux), (px + h * uy, py - h * ux)]


def pack_siblings(radii: Sequence[float]) -> list[tuple[float, float]]:
    """Pack non-overlapping circles of the given radii around the origin.

    Returns the centre of each circle, in input order.  Circles are placed
    greedily from largest to smallest: each circle takes the collision-free
    position (tangent to one or two already-placed circles) closest to the
    origin, which yields a compact, roughly round cluster.  Unlike a strict
    front-chain implementation this is guaranteed overlap-free, which is the
    property the bubble chart actually relies on.
    """
    n = len(radii)
    if n == 0:
        return []
    for r in radii:
        if r <= 0:
            raise LayoutError(f"sibling radius must be positive, got {r}")
    if n == 1:
        return [(0.0, 0.0)]

    order = sorted(range(n), key=lambda i: -radii[i])
    placed: list[_Circle] = []
    result: list[tuple[float, float] | None] = [None] * n

    def overlaps_any(x: float, y: float, r: float) -> bool:
        for other in placed:
            dr = r + other.r - 1e-7
            dx, dy = x - other.x, y - other.y
            if dx * dx + dy * dy < dr * dr:
                return True
        return False

    for rank, index in enumerate(order):
        r = float(radii[index])
        if rank == 0:
            placed.append(_Circle(0.0, 0.0, r))
            result[index] = (0.0, 0.0)
            continue
        if rank == 1:
            x = placed[0].r + r
            placed.append(_Circle(x, 0.0, r))
            result[index] = (x, 0.0)
            continue
        candidates: list[tuple[float, float]] = []
        # tangent to a single placed circle, pushed toward the origin
        for c in placed:
            d = math.hypot(c.x, c.y)
            if d < 1e-12:
                candidates.append((c.r + r, 0.0))
            else:
                scale = (d - c.r - r) / d if d > c.r + r else (d + c.r + r) / d
                candidates.append((c.x * (c.r + r + d) / d,
                                   c.y * (c.r + r + d) / d))
                candidates.append((c.x * scale, c.y * scale))
        # tangent to pairs of nearby placed circles
        for i in range(len(placed)):
            for j in range(i + 1, len(placed)):
                a, b = placed[i], placed[j]
                max_reach = a.r + b.r + 2 * r
                dx, dy = b.x - a.x, b.y - a.y
                if dx * dx + dy * dy > max_reach * max_reach:
                    continue
                candidates.extend(_tangent_positions(a, b, r))
        best: tuple[float, float] | None = None
        best_cost = math.inf
        for x, y in candidates:
            if overlaps_any(x, y, r):
                continue
            cost = math.hypot(x, y)
            if cost < best_cost:
                best_cost = cost
                best = (x, y)
        if best is None:
            # defensive fallback: push outward past the current extent
            extent = max(math.hypot(c.x, c.y) + c.r for c in placed)
            best = (extent + r, 0.0)
        placed.append(_Circle(best[0], best[1], r))
        result[index] = best
    return [pos for pos in result]  # type: ignore[return-value]


def pack(root: PackNode, *, radius: float, padding: float = 3.0,
         leaf_radius_floor: float = 2.0) -> PackNode:
    """Lay out a hierarchy inside a circle of the given radius.

    Leaf radii are proportional to ``sqrt(value)``; each parent becomes the
    smallest circle enclosing its packed children plus ``padding``.  The
    whole layout is finally scaled and centred so the root has exactly the
    requested ``radius`` centred at the origin.
    """
    if radius <= 0:
        raise LayoutError(f"pack radius must be positive, got {radius}")
    if padding < 0:
        raise LayoutError("padding must be non-negative")

    def assign_depth(node: PackNode, depth: int) -> None:
        node.depth = depth
        for child in node.children:
            assign_depth(child, depth + 1)

    assign_depth(root, 0)

    def layout(node: PackNode) -> None:
        if node.is_leaf:
            if node.value < 0:
                raise LayoutError(f"leaf {node.id!r} has negative value")
            node.r = max(leaf_radius_floor, math.sqrt(max(node.value, 1e-9)))
            return
        for child in node.children:
            layout(child)
        radii = [child.r + padding for child in node.children]
        centers = pack_siblings(radii)
        for child, (x, y) in zip(node.children, centers):
            child.x, child.y = x, y
        enclosing = smallest_enclosing_circle(
            [_Circle(child.x, child.y, child.r + padding)
             for child in node.children])
        # recentre children on the enclosing circle's centre
        for child in node.children:
            child.x -= enclosing.x
            child.y -= enclosing.y
        node.r = enclosing.r + padding

    layout(root)

    scale = radius / root.r if root.r > 0 else 1.0

    def apply(node: PackNode, cx: float, cy: float) -> None:
        node.x = cx
        node.y = cy
        node.r *= scale
        for child in node.children:
            apply(child, cx + child.x * scale, cy + child.y * scale)

    # apply() reads child offsets before overwriting them, so walk top-down
    def apply_tree(node: PackNode, cx: float, cy: float) -> None:
        offsets = [(child, child.x, child.y) for child in node.children]
        node.x, node.y = cx, cy
        node.r *= scale
        for child, ox, oy in offsets:
            apply_tree(child, cx + ox * scale, cy + oy * scale)

    root_r = root.r
    apply_tree(root, 0.0, 0.0)
    root.r = root_r * scale
    return root
