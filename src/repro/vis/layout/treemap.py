"""Squarified treemap layout for the batch hierarchy.

The second alternative of DESIGN.md's layout ablation: jobs, tasks and
nodes become nested rectangles whose areas are proportional to instance
counts (Bruls, Huizing & van Wijk, "Squarified treemaps").  Treemaps use
the display area more densely than circle packing but lose the visual
containment cue of nested circles; the ablation benchmark reports both the
layout cost and the fraction of area actually used by leaves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LayoutError
from repro.vis.layout.circlepack import PackNode


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle."""

    x: float
    y: float
    width: float
    height: float

    @property
    def area(self) -> float:
        return self.width * self.height

    def contains(self, other: "Rect", *, epsilon: float = 1e-6) -> bool:
        return (other.x >= self.x - epsilon
                and other.y >= self.y - epsilon
                and other.x + other.width <= self.x + self.width + epsilon
                and other.y + other.height <= self.y + self.height + epsilon)

    def overlaps(self, other: "Rect", *, epsilon: float = 1e-6) -> bool:
        return not (other.x >= self.x + self.width - epsilon
                    or other.x + other.width <= self.x + epsilon
                    or other.y >= self.y + self.height - epsilon
                    or other.y + other.height <= self.y + epsilon)


def _node_weight(node: PackNode) -> float:
    if node.is_leaf:
        return max(node.value, 1e-9)
    return sum(_node_weight(child) for child in node.children)


def _worst_aspect(row_weights: list[float], side: float, scale: float) -> float:
    """Worst aspect ratio of a row of items laid along a side of length ``side``."""
    total = sum(row_weights) * scale
    if total <= 0 or side <= 0:
        return float("inf")
    thickness = total / side
    worst = 1.0
    for weight in row_weights:
        length = weight * scale / thickness
        if length <= 0:
            return float("inf")
        worst = max(worst, thickness / length, length / thickness)
    return worst


def _squarify(weights: list[float], rect: Rect) -> list[Rect]:
    """Split ``rect`` into one sub-rectangle per weight, squarified."""
    if not weights:
        return []
    total = sum(weights)
    if total <= 0:
        raise LayoutError("treemap weights must sum to a positive value")
    scale = rect.area / total

    rects: list[Rect] = []
    remaining = rect
    row: list[float] = []
    index = 0
    while index < len(weights):
        side = min(remaining.width, remaining.height)
        candidate = row + [weights[index]]
        if not row or (_worst_aspect(candidate, side, scale)
                       <= _worst_aspect(row, side, scale)):
            row = candidate
            index += 1
            continue
        rects.extend(_layout_row(row, remaining, scale))
        remaining = _shrink(remaining, row, scale)
        row = []
    if row:
        rects.extend(_layout_row(row, remaining, scale))
    return rects


def _layout_row(row: list[float], rect: Rect, scale: float) -> list[Rect]:
    total = sum(row) * scale
    out: list[Rect] = []
    if rect.width >= rect.height:
        # lay the row as a vertical strip on the left edge
        strip_width = total / rect.height if rect.height > 0 else 0.0
        y = rect.y
        for weight in row:
            height = (weight * scale / strip_width) if strip_width > 0 else 0.0
            out.append(Rect(rect.x, y, strip_width, height))
            y += height
    else:
        strip_height = total / rect.width if rect.width > 0 else 0.0
        x = rect.x
        for weight in row:
            width = (weight * scale / strip_height) if strip_height > 0 else 0.0
            out.append(Rect(x, rect.y, width, strip_height))
            x += width
    return out


def _shrink(rect: Rect, row: list[float], scale: float) -> Rect:
    total = sum(row) * scale
    if rect.width >= rect.height:
        strip_width = total / rect.height if rect.height > 0 else 0.0
        return Rect(rect.x + strip_width, rect.y,
                    max(0.0, rect.width - strip_width), rect.height)
    strip_height = total / rect.width if rect.width > 0 else 0.0
    return Rect(rect.x, rect.y + strip_height,
                rect.width, max(0.0, rect.height - strip_height))


def treemap(root: PackNode, *, width: float, height: float,
            padding: float = 2.0) -> dict[str, Rect]:
    """Compute nested rectangles for every node of the hierarchy.

    Returns a mapping from node id to its rectangle; the root spans the full
    extent.  Node ids must therefore be unique within the tree.  The
    :class:`PackNode` positions are also updated (circle inscribed in the
    rectangle) so chart code written against the packing API keeps working.
    """
    if width <= 0 or height <= 0:
        raise LayoutError("treemap needs a positive extent")
    if padding < 0:
        raise LayoutError("padding must be non-negative")
    ids = [node.id for node in root.iter()]
    if len(ids) != len(set(ids)):
        raise LayoutError("treemap requires unique node ids")

    rects: dict[str, Rect] = {}

    def place(node: PackNode, rect: Rect, depth: int) -> None:
        rects[node.id] = rect
        node.x = rect.x + rect.width / 2.0
        node.y = rect.y + rect.height / 2.0
        node.r = min(rect.width, rect.height) / 2.0
        node.depth = depth
        if node.is_leaf:
            return
        inner = Rect(rect.x + padding, rect.y + padding,
                     max(1e-9, rect.width - 2 * padding),
                     max(1e-9, rect.height - 2 * padding))
        weights = [_node_weight(child) for child in node.children]
        for child, child_rect in zip(node.children, _squarify(weights, inner)):
            place(child, child_rect, depth + 1)

    place(root, Rect(0.0, 0.0, float(width), float(height)), 0)
    return rects


def leaf_area_fraction(root: PackNode, rects: dict[str, Rect]) -> float:
    """Fraction of the root area covered by leaf rectangles (density metric)."""
    root_rect = rects[root.id]
    if root_rect.area <= 0:
        return 0.0
    leaf_area = sum(rects[leaf.id].area for leaf in root.leaves() if leaf.id in rects)
    return leaf_area / root_rect.area
