"""Layout algorithms: circle packing, grid / treemap alternatives, axes."""

from repro.vis.layout.axes import bottom_axis, left_axis, vertical_annotation
from repro.vis.layout.circlepack import PackNode, pack, pack_siblings, smallest_enclosing_circle
from repro.vis.layout.grid import grid_pack, layout_extent
from repro.vis.layout.treemap import Rect, leaf_area_fraction, treemap

__all__ = [
    "PackNode",
    "Rect",
    "bottom_axis",
    "grid_pack",
    "layout_extent",
    "leaf_area_fraction",
    "left_axis",
    "pack",
    "pack_siblings",
    "smallest_enclosing_circle",
    "treemap",
    "vertical_annotation",
]
