"""Grid layout fallback for the batch hierarchy.

DESIGN.md's layout ablation compares the paper's circle packing against two
simpler layouts.  This one is the cheapest possible: jobs occupy cells of a
regular grid, tasks split each job cell into vertical bands, and compute
nodes fill their task band as a mini-grid of equal circles.  It loses the
area-encodes-size property of circle packing but is O(n) and trivially
stable, which is exactly the trade-off the ablation benchmark measures.
"""

from __future__ import annotations

import math

from repro.errors import LayoutError
from repro.vis.layout.circlepack import PackNode


def _grid_dimensions(count: int, aspect: float = 1.0) -> tuple[int, int]:
    """(columns, rows) of the smallest grid holding ``count`` cells."""
    if count <= 0:
        raise LayoutError("cannot lay out an empty collection")
    columns = max(1, math.ceil(math.sqrt(count * aspect)))
    rows = math.ceil(count / columns)
    return columns, rows


def _fill_cell_with_leaves(leaves: list[PackNode], x0: float, y0: float,
                           width: float, height: float, padding: float) -> None:
    """Place leaf circles on a regular mini-grid inside one rectangle."""
    columns, rows = _grid_dimensions(len(leaves), aspect=width / max(height, 1e-9))
    cell_w = width / columns
    cell_h = height / rows
    radius = max(0.5, min(cell_w, cell_h) / 2.0 - padding / 2.0)
    for index, leaf in enumerate(leaves):
        row, col = divmod(index, columns)
        leaf.x = x0 + col * cell_w + cell_w / 2.0
        leaf.y = y0 + row * cell_h + cell_h / 2.0
        leaf.r = radius


def grid_pack(root: PackNode, *, width: float, height: float,
              padding: float = 4.0) -> PackNode:
    """Assign positions to a job → task → node tree on a regular grid.

    The same :class:`PackNode` tree circle packing consumes is used, so the
    bubble chart can swap layouts without changing its model.  Internal
    nodes receive the centre and the inscribed radius of their rectangle.
    """
    if width <= 0 or height <= 0:
        raise LayoutError("grid layout needs a positive extent")
    if padding < 0:
        raise LayoutError("padding must be non-negative")
    jobs = root.children if root.children else [root]
    columns, rows = _grid_dimensions(len(jobs), aspect=width / height)
    cell_w = width / columns
    cell_h = height / rows

    root.x, root.y = width / 2.0, height / 2.0
    root.r = min(width, height) / 2.0
    root.depth = 0

    for job_index, job in enumerate(jobs):
        row, col = divmod(job_index, columns)
        jx0 = col * cell_w + padding
        jy0 = row * cell_h + padding
        jw = max(1e-6, cell_w - 2 * padding)
        jh = max(1e-6, cell_h - 2 * padding)
        job.x = jx0 + jw / 2.0
        job.y = jy0 + jh / 2.0
        job.r = min(jw, jh) / 2.0
        job.depth = 1

        tasks = job.children if job.children else []
        if not tasks:
            continue
        band_w = jw / len(tasks)
        for task_index, task in enumerate(tasks):
            tx0 = jx0 + task_index * band_w
            tw = max(1e-6, band_w - padding)
            task.x = tx0 + tw / 2.0
            task.y = job.y
            task.r = min(tw, jh) / 2.0
            task.depth = 2
            leaves = task.children if task.children else []
            for leaf in leaves:
                leaf.depth = 3
            if leaves:
                _fill_cell_with_leaves(leaves, tx0, jy0, tw, jh, padding)
    return root


def layout_extent(root: PackNode) -> tuple[float, float, float, float]:
    """Bounding box ``(min_x, min_y, max_x, max_y)`` of every laid-out circle."""
    nodes = list(root.iter())
    if not nodes:
        raise LayoutError("cannot measure an empty layout")
    return (min(n.x - n.r for n in nodes), min(n.y - n.r for n in nodes),
            max(n.x + n.r for n in nodes), max(n.y + n.r for n in nodes))
