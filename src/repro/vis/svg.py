"""A tiny SVG document model.

The chart code builds an element tree with the helpers below and renders it
to standalone SVG markup (optionally embedded into the HTML dashboard).
Keeping the model explicit — rather than string concatenation inside chart
code — makes the charts testable: tests can walk the tree and assert on
structure instead of regex-matching markup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator
from xml.sax.saxutils import escape, quoteattr

from repro.errors import RenderError


def _format_value(value) -> str:
    """Format an attribute value, trimming float noise."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e12:
            return str(int(value))
        return f"{value:.2f}"
    return str(value)


@dataclass
class Element:
    """One SVG element with attributes, children and optional text."""

    tag: str
    attrib: dict[str, str] = field(default_factory=dict)
    children: list["Element"] = field(default_factory=list)
    text: str | None = None

    def set(self, key: str, value) -> "Element":
        """Set one attribute, returning ``self`` for chaining."""
        self.attrib[key] = _format_value(value)
        return self

    def get(self, key: str, default: str | None = None) -> str | None:
        return self.attrib.get(key, default)

    def add(self, child: "Element") -> "Element":
        """Append a child element and return the child."""
        self.children.append(child)
        return child

    def extend(self, children: list["Element"]) -> "Element":
        self.children.extend(children)
        return self

    # -- queries (used by tests and interaction wiring) -----------------------
    def iter(self, tag: str | None = None) -> Iterator["Element"]:
        """Depth-first iteration over this element and its descendants."""
        if tag is None or self.tag == tag:
            yield self
        for child in self.children:
            yield from child.iter(tag)

    def find_all(self, tag: str, **attrs: str) -> list["Element"]:
        """All descendants with the given tag and attribute values."""
        out = []
        for element in self.iter(tag):
            if all(element.attrib.get(k.replace("_", "-")) == v
                   for k, v in attrs.items()):
                out.append(element)
        return out

    # -- rendering -------------------------------------------------------------
    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        attrs = "".join(
            f" {key}={quoteattr(value)}" for key, value in self.attrib.items())
        if not self.children and self.text is None:
            return f"{pad}<{self.tag}{attrs}/>"
        parts = [f"{pad}<{self.tag}{attrs}>"]
        if self.text is not None:
            parts[0] += escape(self.text)
        if self.children:
            for child in self.children:
                parts.append(child.render(indent + 1))
            parts.append(f"{pad}</{self.tag}>")
        else:
            parts[0] += f"</{self.tag}>"
        return "\n".join(parts)


# -- element helpers ------------------------------------------------------------
def group(*, cls: str | None = None, transform: str | None = None,
          **attrs) -> Element:
    """A ``<g>`` container."""
    element = Element("g")
    if cls:
        element.set("class", cls)
    if transform:
        element.set("transform", transform)
    for key, value in attrs.items():
        element.set(key.replace("_", "-"), value)
    return element


def circle(cx: float, cy: float, r: float, *, fill: str = "none",
           stroke: str | None = None, stroke_width: float = 1.0,
           dashed: bool = False, opacity: float | None = None,
           cls: str | None = None, **attrs) -> Element:
    """A ``<circle>``."""
    if r < 0:
        raise RenderError(f"circle radius must be non-negative, got {r}")
    element = Element("circle")
    element.set("cx", cx).set("cy", cy).set("r", r).set("fill", fill)
    if stroke is not None:
        element.set("stroke", stroke).set("stroke-width", stroke_width)
    if dashed:
        element.set("stroke-dasharray", "4 3")
    if opacity is not None:
        element.set("opacity", opacity)
    if cls:
        element.set("class", cls)
    for key, value in attrs.items():
        element.set(key.replace("_", "-"), value)
    return element


def rect(x: float, y: float, width: float, height: float, *,
         fill: str = "none", stroke: str | None = None,
         opacity: float | None = None, rx: float | None = None,
         cls: str | None = None, **attrs) -> Element:
    """A ``<rect>``."""
    if width < 0 or height < 0:
        raise RenderError("rect width/height must be non-negative")
    element = Element("rect")
    element.set("x", x).set("y", y).set("width", width).set("height", height)
    element.set("fill", fill)
    if stroke is not None:
        element.set("stroke", stroke)
    if opacity is not None:
        element.set("opacity", opacity)
    if rx is not None:
        element.set("rx", rx)
    if cls:
        element.set("class", cls)
    for key, value in attrs.items():
        element.set(key.replace("_", "-"), value)
    return element


def line(x1: float, y1: float, x2: float, y2: float, *, stroke: str = "#333",
         stroke_width: float = 1.0, dashed: bool = False,
         opacity: float | None = None, cls: str | None = None, **attrs) -> Element:
    """A ``<line>``."""
    element = Element("line")
    element.set("x1", x1).set("y1", y1).set("x2", x2).set("y2", y2)
    element.set("stroke", stroke).set("stroke-width", stroke_width)
    if dashed:
        element.set("stroke-dasharray", "5 4")
    if opacity is not None:
        element.set("opacity", opacity)
    if cls:
        element.set("class", cls)
    for key, value in attrs.items():
        element.set(key.replace("_", "-"), value)
    return element


def text(x: float, y: float, content: str, *, size: float = 11.0,
         fill: str = "#222", anchor: str = "start", weight: str = "normal",
         cls: str | None = None, **attrs) -> Element:
    """A ``<text>`` label."""
    element = Element("text", text=content)
    element.set("x", x).set("y", y).set("font-size", size).set("fill", fill)
    element.set("text-anchor", anchor).set("font-weight", weight)
    element.set("font-family", "Helvetica, Arial, sans-serif")
    if cls:
        element.set("class", cls)
    for key, value in attrs.items():
        element.set(key.replace("_", "-"), value)
    return element


def title(content: str) -> Element:
    """A ``<title>`` child (renders as a native browser tooltip)."""
    return Element("title", text=content)


class PathBuilder:
    """Incremental builder for ``d`` attributes of ``<path>`` elements."""

    def __init__(self) -> None:
        self._parts: list[str] = []

    def move_to(self, x: float, y: float) -> "PathBuilder":
        self._parts.append(f"M {x:.2f} {y:.2f}")
        return self

    def line_to(self, x: float, y: float) -> "PathBuilder":
        self._parts.append(f"L {x:.2f} {y:.2f}")
        return self

    def close(self) -> "PathBuilder":
        self._parts.append("Z")
        return self

    def build(self) -> str:
        if not self._parts:
            raise RenderError("path has no segments")
        return " ".join(self._parts)


def polyline_path(points: list[tuple[float, float]], *, stroke: str,
                  stroke_width: float = 1.5, opacity: float | None = None,
                  cls: str | None = None, **attrs) -> Element:
    """An open ``<path>`` through the given points (used for line charts)."""
    if len(points) < 2:
        raise RenderError("a polyline needs at least two points")
    builder = PathBuilder()
    builder.move_to(*points[0])
    for point in points[1:]:
        builder.line_to(*point)
    element = Element("path")
    element.set("d", builder.build()).set("fill", "none")
    element.set("stroke", stroke).set("stroke-width", stroke_width)
    if opacity is not None:
        element.set("opacity", opacity)
    if cls:
        element.set("class", cls)
    for key, value in attrs.items():
        element.set(key.replace("_", "-"), value)
    return element


class SVGDocument:
    """A top-level ``<svg>`` document."""

    def __init__(self, width: float, height: float, *,
                 background: str | None = "#ffffff") -> None:
        if width <= 0 or height <= 0:
            raise RenderError("document dimensions must be positive")
        self.width = width
        self.height = height
        self.root = Element("svg", {
            "xmlns": "http://www.w3.org/2000/svg",
            "width": _format_value(float(width)),
            "height": _format_value(float(height)),
            "viewBox": f"0 0 {_format_value(float(width))} "
                       f"{_format_value(float(height))}",
        })
        if background is not None:
            self.root.add(rect(0, 0, width, height, fill=background,
                               cls="background"))

    def add(self, element: Element) -> Element:
        return self.root.add(element)

    def iter(self, tag: str | None = None) -> Iterator[Element]:
        return self.root.iter(tag)

    def render(self) -> str:
        """Render the full document as SVG markup."""
        return self.root.render()

    def save(self, path) -> None:
        """Write the SVG markup to ``path``."""
        from pathlib import Path

        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.render(), encoding="utf-8")
