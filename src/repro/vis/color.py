"""Colours, colour interpolation and the BatchLens colour scales.

The paper encodes machine utilisation with a continuous ramp from calm
(green) through warning (yellow/orange) to saturated (red) — the legend of
Fig. 1 ("0 %, 50 %, 100 %").  Jobs and tasks get categorical colours in the
line charts so per-task line clusters and their end-annotation lines share a
hue.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RenderError


@dataclass(frozen=True)
class Color:
    """An RGB colour with float components in [0, 1]."""

    r: float
    g: float
    b: float

    def __post_init__(self) -> None:
        for name, value in (("r", self.r), ("g", self.g), ("b", self.b)):
            if not 0.0 <= value <= 1.0:
                raise RenderError(f"colour component {name}={value} outside [0, 1]")

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_hex(cls, text: str) -> "Color":
        """Parse ``#rgb`` or ``#rrggbb`` hex notation."""
        value = text.strip().lstrip("#")
        if len(value) == 3:
            value = "".join(ch * 2 for ch in value)
        if len(value) != 6:
            raise RenderError(f"invalid hex colour: {text!r}")
        try:
            r = int(value[0:2], 16) / 255.0
            g = int(value[2:4], 16) / 255.0
            b = int(value[4:6], 16) / 255.0
        except ValueError as exc:
            raise RenderError(f"invalid hex colour: {text!r}") from exc
        return cls(r, g, b)

    @classmethod
    def from_bytes(cls, r: int, g: int, b: int) -> "Color":
        """Build from 0-255 integer components."""
        return cls(r / 255.0, g / 255.0, b / 255.0)

    # -- conversions ---------------------------------------------------------
    def to_hex(self) -> str:
        """Render as ``#rrggbb``."""
        return "#{:02x}{:02x}{:02x}".format(
            round(self.r * 255), round(self.g * 255), round(self.b * 255))

    def with_alpha(self, alpha: float) -> str:
        """Render as an ``rgba(...)`` CSS string."""
        if not 0.0 <= alpha <= 1.0:
            raise RenderError(f"alpha {alpha} outside [0, 1]")
        return (f"rgba({round(self.r * 255)},{round(self.g * 255)},"
                f"{round(self.b * 255)},{alpha:g})")

    def luminance(self) -> float:
        """Relative luminance (used to pick readable label colours)."""
        return 0.2126 * self.r + 0.7152 * self.g + 0.0722 * self.b

    def readable_text_color(self) -> "Color":
        """Black or white, whichever contrasts better with this colour."""
        return Color(0, 0, 0) if self.luminance() > 0.5 else Color(1, 1, 1)

    def lighten(self, amount: float) -> "Color":
        """Blend toward white by ``amount`` in [0, 1]."""
        return lerp(self, Color(1, 1, 1), amount)

    def darken(self, amount: float) -> "Color":
        """Blend toward black by ``amount`` in [0, 1]."""
        return lerp(self, Color(0, 0, 0), amount)


def lerp(a: Color, b: Color, t: float) -> Color:
    """Linear interpolation between two colours, ``t`` clamped to [0, 1]."""
    t = min(1.0, max(0.0, t))
    return Color(a.r + (b.r - a.r) * t,
                 a.g + (b.g - a.g) * t,
                 a.b + (b.b - a.b) * t)


class LinearColormap:
    """A piecewise-linear colour ramp over [0, 1] defined by colour stops."""

    def __init__(self, stops: list[tuple[float, Color]]) -> None:
        if len(stops) < 2:
            raise RenderError("a colormap needs at least two stops")
        ordered = sorted(stops, key=lambda s: s[0])
        positions = [p for p, _ in ordered]
        if positions[0] != 0.0 or positions[-1] != 1.0:
            raise RenderError("colormap stops must start at 0 and end at 1")
        if any(b <= a for a, b in zip(positions, positions[1:])):
            raise RenderError("colormap stop positions must be strictly increasing")
        self._stops = ordered

    def __call__(self, t: float) -> Color:
        """Colour at position ``t`` (clamped into [0, 1])."""
        t = min(1.0, max(0.0, float(t)))
        for (p0, c0), (p1, c1) in zip(self._stops, self._stops[1:]):
            if t <= p1:
                span = p1 - p0
                local = 0.0 if span == 0 else (t - p0) / span
                return lerp(c0, c1, local)
        return self._stops[-1][1]

    def sample(self, count: int) -> list[Color]:
        """Evenly-spaced colours along the ramp (for legends)."""
        if count < 2:
            raise RenderError("sample count must be at least 2")
        return [self(i / (count - 1)) for i in range(count)]


#: The utilisation ramp of Fig. 1: green (idle) → yellow (busy) → red (saturated).
UTILISATION_CMAP = LinearColormap([
    (0.0, Color.from_hex("#2f9e44")),
    (0.35, Color.from_hex("#94d82d")),
    (0.55, Color.from_hex("#ffd43b")),
    (0.75, Color.from_hex("#ff922b")),
    (1.0, Color.from_hex("#e03131")),
])


def utilisation_color(value: float, *, vmin: float = 0.0,
                      vmax: float = 100.0) -> Color:
    """Map a utilisation percentage onto the Fig. 1 colour ramp."""
    if vmax <= vmin:
        raise RenderError(f"invalid colour domain [{vmin}, {vmax}]")
    return UTILISATION_CMAP((value - vmin) / (vmax - vmin))


#: Categorical palette for tasks / jobs (10 well-separated hues).
CATEGORICAL_PALETTE: tuple[Color, ...] = tuple(
    Color.from_hex(code) for code in (
        "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
        "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
    )
)


def categorical_color(index: int) -> Color:
    """Colour for the ``index``-th category (wraps around the palette)."""
    return CATEGORICAL_PALETTE[index % len(CATEGORICAL_PALETTE)]


#: Structural colours used by the bubble chart (Fig. 1 dotted outlines).
JOB_OUTLINE = Color.from_hex("#1c7ed6")       # blue dotted circles = jobs
TASK_OUTLINE = Color.from_hex("#9c36b5")      # purple dotted circles = tasks
START_ANNOTATION = Color.from_hex("#2f9e44")  # green start lines (Fig. 2)
LINK_COLORS: tuple[Color, ...] = tuple(
    Color.from_hex(code) for code in ("#2f9e44", "#f76707", "#9c36b5"))
