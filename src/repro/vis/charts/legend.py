"""Legends: the utilisation colour ramp and categorical swatches."""

from __future__ import annotations

from typing import Sequence

from repro.errors import RenderError
from repro.vis.color import Color, LinearColormap, UTILISATION_CMAP
from repro.vis.svg import Element, group, rect, text


def colorbar(*, width: float = 220.0, height: float = 14.0,
             cmap: LinearColormap = UTILISATION_CMAP, segments: int = 40,
             labels: Sequence[str] = ("0", "50%", "100%"),
             title: str = "utilisation") -> Element:
    """A horizontal colour ramp legend (the Fig. 1 "0 / 50% / 100%" bar)."""
    if segments < 2:
        raise RenderError("colorbar needs at least two segments")
    legend = group(cls="legend colorbar")
    legend.add(text(0, -6, title, size=10, fill="#333"))
    segment_width = width / segments
    for index in range(segments):
        color = cmap(index / (segments - 1))
        legend.add(rect(index * segment_width, 0, segment_width + 0.5, height,
                        fill=color.to_hex()))
    legend.add(rect(0, 0, width, height, stroke="#868e96"))
    if labels:
        positions = [0.0, width / 2, width] if len(labels) == 3 else [
            width * i / (len(labels) - 1) for i in range(len(labels))]
        anchors = ["start", "middle", "end"] if len(labels) == 3 else (
            ["middle"] * len(labels))
        for label, x, anchor in zip(labels, positions, anchors):
            legend.add(text(x, height + 12, label, size=9, fill="#333",
                            anchor=anchor))
    return legend


def categorical_legend(entries: Sequence[tuple[str, Color]], *,
                       swatch: float = 10.0, row_height: float = 16.0) -> Element:
    """A vertical list of colour swatches with labels (tasks, jobs, ...)."""
    if not entries:
        raise RenderError("categorical legend needs at least one entry")
    legend = group(cls="legend categorical")
    for index, (label, color) in enumerate(entries):
        y = index * row_height
        legend.add(rect(0, y, swatch, swatch, fill=color.to_hex()))
        legend.add(text(swatch + 6, y + swatch - 1, label, size=10, fill="#333"))
    return legend


def hierarchy_legend() -> Element:
    """The Fig. 1 structural legend: job / task / node ring meanings."""
    from repro.vis.color import JOB_OUTLINE, TASK_OUTLINE
    from repro.vis.svg import circle

    legend = group(cls="legend hierarchy")
    rows = [
        ("Job (blue dotted circle)", JOB_OUTLINE.to_hex(), 9.0),
        ("Task (purple dotted circle)", TASK_OUTLINE.to_hex(), 7.0),
    ]
    for index, (label, color, radius) in enumerate(rows):
        y = index * 22 + 10
        legend.add(circle(10, y, radius, stroke=color, dashed=True,
                          stroke_width=1.4))
        legend.add(text(26, y + 3, label, size=10, fill="#333"))
    y = len(rows) * 22 + 10
    legend.add(circle(10, y, 8, fill="#ffd43b", stroke="#fff"))
    legend.add(circle(10, y, 5.3, fill="#94d82d", stroke="#fff"))
    legend.add(circle(10, y, 2.6, fill="#2f9e44", stroke="#fff"))
    legend.add(text(26, y + 3,
                    "Node: rings = CPU (outer), MEM (middle), DISK (inner)",
                    size=10, fill="#333"))
    return legend
