"""Job co-allocation matrix view.

The dotted cross-links of Fig. 3(b) show *which* machines serve several jobs
at once; this companion view summarises the same information at the job
level: a symmetric matrix whose cell (i, j) is coloured by the number of
machines jobs i and j share.  It is the "hidden patterns of the batch job
co-allocation" of the introduction made directly visible, and complements
the bubble chart when the number of shared machines grows too large for
individual dotted lines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.correlation import coallocation_matrix
from repro.cluster.hierarchy import BatchHierarchy
from repro.errors import RenderError
from repro.vis.charts.base import Chart, Margins
from repro.vis.color import Color, lerp
from repro.vis.svg import SVGDocument, group, rect, text, title


@dataclass
class CoAllocationMatrixModel:
    """Job ids and the symmetric shared-machine-count matrix."""

    job_ids: list[str]
    counts: np.ndarray
    timestamp: float | None = None

    @classmethod
    def from_hierarchy(cls, hierarchy: BatchHierarchy,
                       timestamp: float | None = None,
                       *, max_jobs: int | None = None) -> "CoAllocationMatrixModel":
        job_ids, counts = coallocation_matrix(hierarchy, timestamp)
        if max_jobs is not None and len(job_ids) > max_jobs:
            # keep the jobs with the most sharing so the view stays readable
            totals = counts.sum(axis=1)
            keep = np.argsort(-totals)[:max_jobs]
            keep = np.sort(keep)
            job_ids = [job_ids[i] for i in keep]
            counts = counts[np.ix_(keep, keep)]
        return cls(job_ids=job_ids, counts=counts, timestamp=timestamp)

    @property
    def max_count(self) -> int:
        return int(self.counts.max()) if self.counts.size else 0


class CoAllocationMatrix(Chart):
    """Renders a :class:`CoAllocationMatrixModel` as a shaded grid."""

    def __init__(self, model: CoAllocationMatrixModel, *, width: float = 520.0,
                 height: float = 520.0, title: str | None = None) -> None:
        super().__init__(width=width, height=height,
                         title=title if title is not None else
                         "Job co-allocation (shared machines)",
                         margins=Margins(top=90, right=20, bottom=20, left=110))
        if not model.job_ids:
            raise RenderError("co-allocation matrix has no jobs")
        self.model = model

    def _cell_color(self, count: int) -> str:
        if count <= 0:
            return "#f1f3f5"
        intensity = count / max(1, self.model.max_count)
        return lerp(Color.from_hex("#d0ebff"), Color.from_hex("#1864ab"),
                    intensity).to_hex()

    def _draw(self, doc: SVGDocument) -> None:
        jobs = self.model.job_ids
        n = len(jobs)
        cell = min(self.plot_width, self.plot_height) / n
        x0, y0 = self.margins.left, self.margins.top

        cells = doc.add(group(cls="coallocation-cells"))
        for i, job_a in enumerate(jobs):
            for j, job_b in enumerate(jobs):
                count = int(self.model.counts[i, j]) if i != j else 0
                element = rect(x0 + j * cell, y0 + i * cell, cell - 1, cell - 1,
                               fill=self._cell_color(count), cls="coallocation-cell")
                element.set("data-job-a", job_a)
                element.set("data-job-b", job_b)
                element.set("data-count", str(count))
                if count:
                    element.add(title(f"{job_a} and {job_b} share {count} machine(s)"))
                cells.add(element)

        labels = doc.add(group(cls="coallocation-labels"))
        for i, job_id in enumerate(jobs):
            labels.add(text(x0 - 6, y0 + i * cell + cell / 2 + 3, job_id,
                            size=9, anchor="end"))
            column = text(x0 + i * cell + cell / 2, y0 - 6, job_id, size=9,
                          anchor="start")
            column.set("transform",
                       f"rotate(-45 {x0 + i * cell + cell / 2:.1f} {y0 - 6:.1f})")
            labels.add(column)
