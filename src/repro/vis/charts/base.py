"""Shared chart infrastructure: figure sizing, margins and rendering."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.errors import RenderError
from repro.vis.svg import SVGDocument, text


@dataclass(frozen=True)
class Margins:
    """Whitespace around the plot area, in pixels."""

    top: float = 30.0
    right: float = 20.0
    bottom: float = 45.0
    left: float = 55.0


class Chart:
    """Base class for every BatchLens chart.

    Subclasses implement :meth:`_draw`, receiving an :class:`SVGDocument`
    whose plot area is ``self.plot_width`` × ``self.plot_height`` pixels
    starting at ``(margins.left, margins.top)``.
    """

    def __init__(self, *, width: float = 640.0, height: float = 360.0,
                 margins: Margins | None = None, title: str | None = None) -> None:
        if width <= 0 or height <= 0:
            raise RenderError("chart dimensions must be positive")
        self.width = float(width)
        self.height = float(height)
        self.margins = margins if margins is not None else Margins()
        self.title = title
        if self.plot_width <= 0 or self.plot_height <= 0:
            raise RenderError("margins leave no plot area")

    @property
    def plot_width(self) -> float:
        return self.width - self.margins.left - self.margins.right

    @property
    def plot_height(self) -> float:
        return self.height - self.margins.top - self.margins.bottom

    # -- rendering ----------------------------------------------------------------
    def _draw(self, doc: SVGDocument) -> None:
        raise NotImplementedError

    def render(self) -> SVGDocument:
        """Build and return the SVG document for this chart."""
        doc = SVGDocument(self.width, self.height)
        if self.title:
            doc.add(text(self.margins.left, self.margins.top - 10, self.title,
                         size=13, weight="bold", cls="chart-title"))
        self._draw(doc)
        return doc

    def to_svg(self) -> str:
        """Render to SVG markup."""
        return self.render().render()

    def save(self, path: str | Path) -> Path:
        """Render and write the chart to an ``.svg`` file."""
        target = Path(path)
        self.render().save(target)
        return target
