"""CPU-vs-memory scatter plot of machines at one timestamp.

Fig. 3(c)'s thrashing finding is a relationship between two metrics: memory
stays committed while CPU collapses.  The scatter plot makes that relation
explicit — each machine is one dot positioned by its CPU and memory
utilisation, sized by disk utilisation and coloured by the hotter of the two
axes — so the thrashing population shows up as a cluster in the
"high-memory, low-CPU" corner.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RenderError
from repro.metrics.store import MetricStore
from repro.vis.charts.base import Chart, Margins
from repro.vis.color import utilisation_color
from repro.vis.layout.axes import bottom_axis, left_axis
from repro.vis.scale import LinearScale, format_percent
from repro.vis.svg import SVGDocument, circle, group, rect, text, title


@dataclass(frozen=True)
class ScatterPoint:
    """One machine at the selected timestamp."""

    machine_id: str
    cpu: float
    mem: float
    disk: float
    #: Optional flag set by the caller (e.g. "thrashing", "hot-job").
    highlight: str | None = None


@dataclass
class ScatterModel:
    """The machines to plot, plus the snapshot's timestamp for the title."""

    timestamp: float
    points: list[ScatterPoint] = field(default_factory=list)

    @classmethod
    def from_store(cls, store: MetricStore, timestamp: float, *,
                   highlight: dict[str, str] | None = None) -> "ScatterModel":
        """Build one point per machine from a snapshot of the store."""
        highlight = highlight or {}
        points = []
        for machine_id in store.machine_ids:
            values = store.machine_snapshot(machine_id, timestamp)
            points.append(ScatterPoint(
                machine_id=machine_id,
                cpu=values.get("cpu", 0.0),
                mem=values.get("mem", 0.0),
                disk=values.get("disk", 0.0),
                highlight=highlight.get(machine_id)))
        return cls(timestamp=float(timestamp), points=points)

    def corner_counts(self, *, level: float = 80.0,
                      low: float = 40.0) -> dict[str, int]:
        """How many machines sit in each interesting corner of the plot.

        ``thrashing`` is the high-memory / low-CPU corner the Fig. 3(c)
        narrative describes; ``saturated`` is high on both axes.
        """
        counts = {"saturated": 0, "thrashing": 0, "idle": 0, "normal": 0}
        for point in self.points:
            if point.mem >= level and point.cpu <= low:
                counts["thrashing"] += 1
            elif point.mem >= level and point.cpu >= level:
                counts["saturated"] += 1
            elif point.mem <= low and point.cpu <= low:
                counts["idle"] += 1
            else:
                counts["normal"] += 1
        return counts


class MachineScatterChart(Chart):
    """Renders a :class:`ScatterModel`."""

    def __init__(self, model: ScatterModel, *, width: float = 480.0,
                 height: float = 440.0, title_: str | None = None,
                 min_radius: float = 2.5, max_radius: float = 7.0) -> None:
        super().__init__(width=width, height=height,
                         title=title_ if title_ is not None else
                         f"Machines at t={model.timestamp:.0f}s",
                         margins=Margins(top=34, right=24, bottom=50, left=58))
        if not model.points:
            raise RenderError("scatter chart has no points")
        if not 0 < min_radius <= max_radius:
            raise RenderError("invalid radius bounds")
        self.model = model
        self.min_radius = min_radius
        self.max_radius = max_radius

    def scales(self) -> tuple[LinearScale, LinearScale]:
        x = LinearScale((0.0, 100.0), (self.margins.left,
                                       self.margins.left + self.plot_width))
        y = LinearScale((0.0, 100.0), (self.margins.top + self.plot_height,
                                       self.margins.top))
        return x, y

    def _radius(self, disk: float) -> float:
        fraction = min(1.0, max(0.0, disk / 100.0))
        return self.min_radius + fraction * (self.max_radius - self.min_radius)

    def _draw(self, doc: SVGDocument) -> None:
        x_scale, y_scale = self.scales()
        bottom = self.margins.top + self.plot_height

        doc.add(rect(self.margins.left, self.margins.top, self.plot_width,
                     self.plot_height, fill="#fcfcfd", stroke="#dee2e6"))
        doc.add(bottom_axis(x_scale, bottom, label="CPU utilisation",
                            tick_formatter=format_percent))
        doc.add(left_axis(y_scale, self.margins.left, label="memory utilisation",
                          tick_formatter=format_percent,
                          grid_to=self.margins.left + self.plot_width))

        # guide lines at 80% marking the saturated / thrashing corners
        guides = doc.add(group(cls="scatter-guides"))
        for value in (80.0,):
            guides.add(rect(self.margins.left, y_scale(value),
                            self.plot_width, 0.6, fill="#adb5bd", opacity=0.6))
            guides.add(rect(x_scale(value), self.margins.top, 0.6,
                            self.plot_height, fill="#adb5bd", opacity=0.6))

        dots = doc.add(group(cls="scatter-points"))
        for point in self.model.points:
            color = utilisation_color(max(point.cpu, point.mem)).to_hex()
            dot = circle(x_scale(point.cpu), y_scale(point.mem),
                         self._radius(point.disk), fill=color, opacity=0.75,
                         stroke="#495057" if point.highlight else None,
                         stroke_width=1.4, cls="scatter-point")
            dot.set("data-machine", point.machine_id)
            if point.highlight:
                dot.set("data-highlight", point.highlight)
            dot.add(title(f"{point.machine_id}: CPU {point.cpu:.0f}%, "
                          f"MEM {point.mem:.0f}%, DISK {point.disk:.0f}%"))
            dots.add(dot)

        counts = self.model.corner_counts()
        doc.add(text(self.margins.left + 6, self.margins.top + 14,
                     f"thrashing corner: {counts['thrashing']} machine(s)",
                     size=9, fill="#e03131"))
