"""The system timeline: cluster-aggregate metrics with brush and cursor.

"A simple timeline is used to represent the metrics aggregated across the
entire cloud systems over time.  Each layer of the graph represents one
metric." (§III-C).  The timeline is the entry point of the analysis: the
user brushes a time range or picks a timestamp, and the other views update.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RenderError
from repro.metrics.series import TimeSeries
from repro.vis.charts.base import Chart, Margins
from repro.vis.color import categorical_color
from repro.vis.layout.axes import bottom_axis, left_axis, vertical_annotation
from repro.vis.scale import LinearScale, TimeScale, format_percent, format_seconds
from repro.vis.svg import SVGDocument, group, polyline_path, rect, text


@dataclass
class TimelineModel:
    """Cluster-aggregate series per metric, plus the current selection."""

    layers: dict[str, TimeSeries] = field(default_factory=dict)
    selected_timestamp: float | None = None
    brush: tuple[float, float] | None = None

    def time_extent(self) -> tuple[float, float]:
        non_empty = [s for s in self.layers.values() if len(s)]
        if not non_empty:
            raise RenderError("timeline has no data")
        return (min(s.start for s in non_empty), max(s.end for s in non_empty))


class TimelineChart(Chart):
    """Stacked small-multiple line chart, one layer per metric."""

    def __init__(self, model: TimelineModel, *, width: float = 900.0,
                 height: float = 220.0, title: str | None = "Cluster timeline",
                 layer_gap: float = 8.0) -> None:
        super().__init__(width=width, height=height, title=title,
                         margins=Margins(top=34, right=18, bottom=40, left=58))
        if not model.layers:
            raise RenderError("timeline model has no layers")
        self.model = model
        self.layer_gap = layer_gap

    def _layer_rows(self) -> list[tuple[str, float, float]]:
        """(metric, top, height) of each stacked layer."""
        count = len(self.model.layers)
        gap_total = self.layer_gap * (count - 1)
        layer_height = (self.plot_height - gap_total) / count
        if layer_height <= 5:
            raise RenderError("timeline is too short for its layer count")
        rows = []
        for index, metric in enumerate(self.model.layers):
            top = self.margins.top + index * (layer_height + self.layer_gap)
            rows.append((metric, top, layer_height))
        return rows

    def _draw(self, doc: SVGDocument) -> None:
        t0, t1 = self.model.time_extent()
        x_scale = TimeScale((t0, t1), (self.margins.left,
                                       self.margins.left + self.plot_width))

        for index, (metric, top, layer_height) in enumerate(self._layer_rows()):
            series = self.model.layers[metric]
            y_scale = LinearScale((0.0, 100.0), (top + layer_height, top))
            color = categorical_color(index).to_hex()
            layer = doc.add(group(cls=f"timeline-layer timeline-{metric}"))
            layer.add(rect(self.margins.left, top, self.plot_width, layer_height,
                           fill="#f8f9fa", stroke="#dee2e6"))
            if len(series) >= 2:
                points = [(x_scale(t), y_scale(v)) for t, v in series]
                path = polyline_path(points, stroke=color, stroke_width=1.4,
                                     cls="timeline-line")
                path.set("data-metric", metric)
                layer.add(path)
            layer.add(left_axis(y_scale, self.margins.left, tick_count=2,
                                tick_formatter=format_percent))
            layer.add(text(self.margins.left + self.plot_width - 4, top + 12,
                           metric.upper(), size=10, fill=color, anchor="end",
                           weight="bold"))

        bottom = self.margins.top + self.plot_height
        doc.add(bottom_axis(x_scale, bottom, label="time since trace start",
                            tick_formatter=format_seconds))

        if self.model.brush is not None:
            b0, b1 = self.model.brush
            x0, x1 = x_scale(x_scale.clamp(b0)), x_scale(x_scale.clamp(b1))
            brush = rect(min(x0, x1), self.margins.top, abs(x1 - x0),
                         self.plot_height, fill="#74c0fc", opacity=0.2,
                         cls="brush-region")
            brush.set("data-start", f"{b0:.0f}")
            brush.set("data-end", f"{b1:.0f}")
            doc.add(brush)

        if self.model.selected_timestamp is not None:
            x = x_scale(x_scale.clamp(self.model.selected_timestamp))
            doc.add(vertical_annotation(
                x, self.margins.top, bottom, color="#364fc7",
                label=f"t={format_seconds(self.model.selected_timestamp)}",
                cls="annotation annotation-cursor"))
