"""Utilisation distribution (histogram) at one timestamp.

The case study reads utilisation *bands* off the bubble colours: "20 % -
40 %" in Fig. 3(a), "50 % - 80 %" in Fig. 3(b), "a tremendous amount of
nodes ... at high CPU- or memory-utilisation" in Fig. 3(c).  The histogram
is the explicit version of that reading — how many machines sit in each
utilisation bin — and the E4-E6 benchmarks assert the paper's bands on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import RenderError
from repro.metrics.store import MetricStore
from repro.vis.charts.base import Chart, Margins
from repro.vis.color import utilisation_color
from repro.vis.layout.axes import bottom_axis, left_axis
from repro.vis.scale import LinearScale, format_percent
from repro.vis.svg import SVGDocument, group, rect, title


@dataclass
class HistogramModel:
    """Machine counts per utilisation bin for one metric at one timestamp."""

    metric: str
    timestamp: float
    bin_edges: np.ndarray = field(default_factory=lambda: np.linspace(0, 100, 11))
    counts: np.ndarray = field(default_factory=lambda: np.zeros(10, dtype=np.int64))

    def __post_init__(self) -> None:
        self.bin_edges = np.asarray(self.bin_edges, dtype=np.float64)
        self.counts = np.asarray(self.counts, dtype=np.int64)
        if self.bin_edges.ndim != 1 or self.bin_edges.shape[0] < 2:
            raise RenderError("histogram needs at least two bin edges")
        if np.any(np.diff(self.bin_edges) <= 0):
            raise RenderError("histogram bin edges must be strictly increasing")
        if self.counts.shape[0] != self.bin_edges.shape[0] - 1:
            raise RenderError("histogram counts must have one entry per bin")

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def dominant_band(self) -> tuple[float, float]:
        """The bin (lo, hi) containing the most machines."""
        index = int(np.argmax(self.counts))
        return (float(self.bin_edges[index]), float(self.bin_edges[index + 1]))

    def fraction_in_band(self, lo: float, hi: float) -> float:
        """Fraction of machines whose bin midpoint lies in ``[lo, hi]``."""
        if self.total == 0:
            return 0.0
        midpoints = (self.bin_edges[:-1] + self.bin_edges[1:]) / 2.0
        mask = (midpoints >= lo) & (midpoints <= hi)
        return float(self.counts[mask].sum() / self.total)

    @classmethod
    def from_store(cls, store: MetricStore, metric: str, timestamp: float, *,
                   bins: int = 10) -> "HistogramModel":
        """Histogram of one metric across machines at one timestamp."""
        if bins < 1:
            raise RenderError("bins must be at least 1")
        snapshot = store.snapshot(timestamp, metric=metric)
        values = np.asarray(list(snapshot.values()), dtype=np.float64)
        edges = np.linspace(0.0, 100.0, bins + 1)
        counts, _ = np.histogram(values, bins=edges)
        return cls(metric=metric, timestamp=float(timestamp), bin_edges=edges,
                   counts=counts)


class UtilisationHistogram(Chart):
    """Renders a :class:`HistogramModel` as a bar chart."""

    def __init__(self, model: HistogramModel, *, width: float = 420.0,
                 height: float = 260.0, title_: str | None = None) -> None:
        super().__init__(width=width, height=height,
                         title=title_ if title_ is not None else
                         f"{model.metric.upper()} distribution at "
                         f"t={model.timestamp:.0f}s",
                         margins=Margins(top=34, right=16, bottom=50, left=52))
        self.model = model

    def scales(self) -> tuple[LinearScale, LinearScale]:
        x = LinearScale((float(self.model.bin_edges[0]),
                         float(self.model.bin_edges[-1])),
                        (self.margins.left, self.margins.left + self.plot_width))
        top_count = max(1, int(self.model.counts.max()))
        y = LinearScale((0.0, float(top_count)),
                        (self.margins.top + self.plot_height, self.margins.top))
        return x, y

    def _draw(self, doc: SVGDocument) -> None:
        x_scale, y_scale = self.scales()
        bottom = self.margins.top + self.plot_height

        doc.add(bottom_axis(x_scale, bottom, label=f"{self.model.metric} utilisation",
                            tick_formatter=format_percent))
        doc.add(left_axis(y_scale, self.margins.left, label="machines",
                          grid_to=self.margins.left + self.plot_width))

        bars = doc.add(group(cls="histogram-bars"))
        edges = self.model.bin_edges
        for index, count in enumerate(self.model.counts):
            lo, hi = float(edges[index]), float(edges[index + 1])
            x0, x1 = x_scale(lo), x_scale(hi)
            y = y_scale(float(count))
            color = utilisation_color((lo + hi) / 2.0).to_hex()
            bar = rect(x0 + 1, y, max(0.0, x1 - x0 - 2), max(0.0, bottom - y),
                       fill=color, opacity=0.85, stroke="#868e96",
                       cls="histogram-bar")
            bar.set("data-bin", f"{lo:.0f}-{hi:.0f}")
            bar.set("data-count", int(count))
            bar.add(title(f"{lo:.0f}-{hi:.0f}%: {int(count)} machine(s)"))
            bars.add(bar)
