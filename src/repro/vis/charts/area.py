"""Stacked area chart of cluster activity over time.

The timeline of §III-C shows cluster-aggregate utilisation; operators also
want to know *who* the utilisation belongs to.  The stacked area chart
decomposes an aggregate series into per-group layers — typically one layer
per batch job, each the summed utilisation of the machines executing it —
so the "one job eats the cluster" situation of Fig. 3(b) is visible at a
glance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import RenderError
from repro.metrics.series import TimeSeries, align
from repro.metrics.store import MetricStore
from repro.vis.charts.base import Chart, Margins
from repro.vis.color import categorical_color
from repro.vis.layout.axes import bottom_axis, left_axis
from repro.vis.scale import LinearScale, TimeScale, format_seconds
from repro.vis.svg import Element, PathBuilder, SVGDocument, group, rect, text


@dataclass
class StackedAreaModel:
    """Aligned per-group series to stack, in drawing (bottom-up) order."""

    layers: dict[str, TimeSeries] = field(default_factory=dict)
    #: Label of the y axis (what the stacked value measures).
    value_label: str = "summed CPU %"

    def __post_init__(self) -> None:
        if self.layers:
            aligned = align(list(self.layers.values()))
            self.layers = dict(zip(self.layers.keys(), aligned))

    @property
    def group_ids(self) -> list[str]:
        return list(self.layers)

    def time_extent(self) -> tuple[float, float]:
        non_empty = [s for s in self.layers.values() if len(s)]
        if not non_empty:
            raise RenderError("stacked area model has no data")
        return (min(s.start for s in non_empty), max(s.end for s in non_empty))

    def stacked_values(self) -> tuple[np.ndarray, np.ndarray]:
        """``(timestamps, cumulative)`` where cumulative has one row per layer."""
        if not self.layers:
            raise RenderError("stacked area model has no data")
        series_list = list(self.layers.values())
        timestamps = series_list[0].timestamps
        values = np.vstack([s.values for s in series_list])
        return timestamps, np.cumsum(values, axis=0)

    @classmethod
    def from_job_machines(cls, store: MetricStore,
                          job_machines: dict[str, list[str]], *,
                          metric: str = "cpu",
                          max_groups: int = 10) -> "StackedAreaModel":
        """One layer per job: the summed utilisation of its machines.

        Jobs beyond ``max_groups`` (by peak contribution) are merged into an
        ``"other"`` layer so the chart stays readable.
        """
        contributions: dict[str, TimeSeries] = {}
        for job_id, machine_ids in job_machines.items():
            known = [mid for mid in machine_ids if mid in store]
            if not known:
                continue
            total = None
            for machine_id in known:
                series = store.series(machine_id, metric)
                total = series if total is None else total.add(series)
            contributions[job_id] = total
        if not contributions:
            raise RenderError("no job has machines with recorded usage")

        ranked = sorted(contributions, key=lambda j: -contributions[j].max())
        layers: dict[str, TimeSeries] = {}
        other: TimeSeries | None = None
        for rank, job_id in enumerate(ranked):
            if rank < max_groups:
                layers[job_id] = contributions[job_id]
            else:
                other = (contributions[job_id] if other is None
                         else other.add(contributions[job_id]))
        if other is not None:
            layers["other"] = other
        return cls(layers=layers, value_label=f"summed {metric} %")


class StackedAreaChart(Chart):
    """Renders a :class:`StackedAreaModel`."""

    def __init__(self, model: StackedAreaModel, *, width: float = 900.0,
                 height: float = 300.0, title: str | None = "Per-job cluster load",
                 show_legend: bool = True) -> None:
        super().__init__(width=width, height=height, title=title,
                         margins=Margins(top=34, right=140 if show_legend else 20,
                                         bottom=48, left=62))
        if not model.layers:
            raise RenderError("stacked area chart has no layers")
        self.model = model
        self.show_legend = show_legend

    def scales(self) -> tuple[TimeScale, LinearScale]:
        t0, t1 = self.model.time_extent()
        _, cumulative = self.model.stacked_values()
        top_value = float(cumulative[-1].max()) if cumulative.size else 1.0
        x = TimeScale((t0, t1), (self.margins.left,
                                 self.margins.left + self.plot_width))
        y = LinearScale((0.0, max(top_value, 1.0)),
                        (self.margins.top + self.plot_height, self.margins.top))
        return x, y

    def _layer_color(self, index: int) -> str:
        return categorical_color(index).to_hex()

    def _band_element(self, timestamps: np.ndarray, lower: np.ndarray,
                      upper: np.ndarray, x_scale: TimeScale,
                      y_scale: LinearScale, *, fill: str, group_id: str) -> Element:
        builder = PathBuilder()
        builder.move_to(x_scale(float(timestamps[0])), y_scale(float(upper[0])))
        for t, v in zip(timestamps[1:], upper[1:]):
            builder.line_to(x_scale(float(t)), y_scale(float(v)))
        for t, v in zip(timestamps[::-1], lower[::-1]):
            builder.line_to(x_scale(float(t)), y_scale(float(v)))
        builder.close()
        element = Element("path")
        element.set("d", builder.build()).set("fill", fill).set("opacity", 0.8)
        element.set("stroke", "#ffffff").set("stroke-width", 0.5)
        element.set("class", "area-band")
        element.set("data-group", group_id)
        return element

    def _draw(self, doc: SVGDocument) -> None:
        timestamps, cumulative = self.model.stacked_values()
        if timestamps.shape[0] < 2:
            raise RenderError("stacked area chart needs at least two samples")
        x_scale, y_scale = self.scales()

        doc.add(left_axis(y_scale, self.margins.left, label=self.model.value_label,
                          grid_to=self.margins.left + self.plot_width))
        doc.add(bottom_axis(x_scale, self.margins.top + self.plot_height,
                            label="time since trace start",
                            tick_formatter=format_seconds))

        bands = doc.add(group(cls="area-bands"))
        zeros = np.zeros_like(timestamps, dtype=np.float64)
        for index, group_id in enumerate(self.model.group_ids):
            lower = zeros if index == 0 else cumulative[index - 1]
            upper = cumulative[index]
            bands.add(self._band_element(timestamps, lower, upper, x_scale,
                                         y_scale, fill=self._layer_color(index),
                                         group_id=group_id))

        if self.show_legend:
            legend = doc.add(group(cls="legend"))
            x = self.margins.left + self.plot_width + 12
            y = self.margins.top + 6
            for index, group_id in enumerate(self.model.group_ids):
                legend.add(rect(x, y + index * 15 - 8, 10, 9,
                                fill=self._layer_color(index)))
                legend.add(text(x + 14, y + index * 15, group_id, size=9,
                                fill="#333"))
