"""Small-multiples grid of metric sparklines.

Muelder et al.'s behavioural-lines system (cited in §V) draws one small
chart per compute node; BatchLens keeps that idiom for the "compare many
jobs at once" question the single large line chart cannot answer.  Each cell
is a sparkline of one series (a job's mean utilisation, or one machine's
metric), all cells sharing the same time and value scales so heights are
comparable across the grid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import RenderError
from repro.metrics.aggregate import group_series
from repro.metrics.series import TimeSeries
from repro.metrics.store import MetricStore
from repro.vis.charts.base import Chart, Margins
from repro.vis.color import utilisation_color
from repro.vis.scale import LinearScale, TimeScale
from repro.vis.svg import SVGDocument, group, polyline_path, rect, text


@dataclass(frozen=True)
class Sparkline:
    """One cell of the grid."""

    label: str
    series: TimeSeries
    #: Optional vertical marker timestamps (job start / end).
    markers: tuple[float, ...] = ()


@dataclass
class SmallMultiplesModel:
    """The sparklines to draw, in row-major order."""

    cells: list[Sparkline] = field(default_factory=list)
    metric: str = "cpu"

    def time_extent(self) -> tuple[float, float]:
        non_empty = [c.series for c in self.cells if len(c.series)]
        if not non_empty:
            raise RenderError("small multiples have no data")
        return (min(s.start for s in non_empty), max(s.end for s in non_empty))

    def value_extent(self) -> tuple[float, float]:
        highs = [c.series.max() for c in self.cells if len(c.series)]
        return (0.0, max(100.0, max(highs) if highs else 100.0))

    @classmethod
    def per_job(cls, store: MetricStore, job_machines: dict[str, list[str]], *,
                metric: str = "cpu",
                job_windows: dict[str, tuple[float, float]] | None = None) -> "SmallMultiplesModel":
        """One sparkline per job: the mean utilisation of its machines."""
        job_windows = job_windows or {}
        cells: list[Sparkline] = []
        for job_id, machine_ids in job_machines.items():
            known = [mid for mid in machine_ids if mid in store]
            if not known:
                continue
            series = group_series(store, known, metric, reducer="mean")
            markers = job_windows.get(job_id, ())
            cells.append(Sparkline(label=job_id, series=series,
                                   markers=tuple(markers)))
        if not cells:
            raise RenderError("no job has machines with recorded usage")
        return cls(cells=cells, metric=metric)


class SmallMultiplesChart(Chart):
    """Renders a :class:`SmallMultiplesModel` as a grid of sparklines."""

    def __init__(self, model: SmallMultiplesModel, *, columns: int = 4,
                 cell_height: float = 80.0, width: float = 920.0,
                 title: str | None = None, cell_gap: float = 10.0) -> None:
        if not model.cells:
            raise RenderError("small multiples chart has no cells")
        if columns < 1:
            raise RenderError("columns must be at least 1")
        rows = math.ceil(len(model.cells) / columns)
        margins = Margins(top=36, right=16, bottom=20, left=16)
        height = margins.top + margins.bottom + rows * (cell_height + cell_gap)
        super().__init__(width=width, height=height,
                         title=title if title is not None else
                         f"Per-job {model.metric.upper()} utilisation",
                         margins=margins)
        self.model = model
        self.columns = columns
        self.cell_height = cell_height
        self.cell_gap = cell_gap

    @property
    def rows(self) -> int:
        return math.ceil(len(self.model.cells) / self.columns)

    def _cell_geometry(self, index: int) -> tuple[float, float, float, float]:
        """(x, y, width, height) of the ``index``-th cell."""
        cell_width = (self.plot_width - (self.columns - 1) * self.cell_gap) / self.columns
        if cell_width <= 10:
            raise RenderError("too many columns for the chart width")
        row, col = divmod(index, self.columns)
        x = self.margins.left + col * (cell_width + self.cell_gap)
        y = self.margins.top + row * (self.cell_height + self.cell_gap)
        return x, y, cell_width, self.cell_height

    def _draw(self, doc: SVGDocument) -> None:
        t0, t1 = self.model.time_extent()
        v0, v1 = self.model.value_extent()

        cells_group = doc.add(group(cls="small-multiples"))
        for index, cell in enumerate(self.model.cells):
            x, y, w, h = self._cell_geometry(index)
            container = cells_group.add(group(cls="sparkline-cell"))
            container.set("data-label", cell.label)
            container.add(rect(x, y, w, h, fill="#fcfcfd", stroke="#dee2e6"))

            label_color = "#333"
            if len(cell.series):
                label_color = utilisation_color(cell.series.mean()).darken(0.25).to_hex()
            container.add(text(x + 4, y + 12, cell.label, size=9,
                               fill=label_color, weight="bold"))

            if len(cell.series) >= 2:
                x_scale = TimeScale((t0, t1), (x + 3, x + w - 3))
                y_scale = LinearScale((v0, v1), (y + h - 4, y + 16))
                points = [(x_scale(t), y_scale(v)) for t, v in cell.series]
                path = polyline_path(points, stroke="#364fc7", stroke_width=1.1,
                                     opacity=0.9, cls="sparkline")
                path.set("data-label", cell.label)
                container.add(path)
                for marker in cell.markers:
                    mx = x_scale(x_scale.clamp(marker))
                    container.add(rect(mx, y + 16, 0.8, h - 20, fill="#2f9e44",
                                       opacity=0.8, cls="sparkline-marker"))
