"""Machine × time utilisation heat map.

This is the "flat dashboard" style visualisation existing monitoring tools
(Grafana-like) offer and the baseline BatchLens is contrasted against: a
row per machine, a column per time bucket, colour = utilisation.  It shows
*that* machines are busy but not *which batch jobs* make them busy — the
gap the hierarchical bubble chart fills.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import RenderError
from repro.metrics.store import MetricStore
from repro.vis.charts.base import Chart, Margins
from repro.vis.color import utilisation_color
from repro.vis.layout.axes import bottom_axis
from repro.vis.scale import TimeScale, format_seconds
from repro.vis.svg import SVGDocument, group, rect, text, title


@dataclass
class HeatmapModel:
    """Rows (machines), the shared time grid and the value matrix."""

    machine_ids: list[str]
    timestamps: np.ndarray
    values: np.ndarray  # shape (machines, samples)
    metric: str = "cpu"

    @classmethod
    def from_store(cls, store: MetricStore, metric: str = "cpu",
                   machine_ids: list[str] | None = None) -> "HeatmapModel":
        ids = machine_ids if machine_ids is not None else store.machine_ids
        rows = [store.series(mid, metric).values for mid in ids]
        if not rows:
            raise RenderError("heat map needs at least one machine")
        return cls(machine_ids=list(ids), timestamps=store.timestamps,
                   values=np.vstack(rows), metric=metric)


class UtilisationHeatmap(Chart):
    """Renders a :class:`HeatmapModel` as a dense grid of coloured cells."""

    def __init__(self, model: HeatmapModel, *, width: float = 900.0,
                 height: float = 480.0, title: str | None = None,
                 max_columns: int = 200, show_row_labels: bool = True) -> None:
        super().__init__(width=width, height=height,
                         title=title if title is not None else
                         f"Per-machine {model.metric.upper()} utilisation",
                         margins=Margins(top=34, right=16, bottom=42, left=86))
        if model.values.shape[0] != len(model.machine_ids):
            raise RenderError("heat map value matrix does not match machine count")
        if model.values.shape[1] != model.timestamps.shape[0]:
            raise RenderError("heat map value matrix does not match time grid")
        self.model = model
        self.max_columns = max_columns
        self.show_row_labels = show_row_labels

    def _column_bins(self) -> list[tuple[int, int]]:
        """Group time samples into at most ``max_columns`` bins."""
        samples = self.model.timestamps.shape[0]
        columns = min(self.max_columns, samples)
        edges = np.linspace(0, samples, columns + 1).astype(int)
        return [(int(lo), int(hi)) for lo, hi in zip(edges, edges[1:]) if hi > lo]

    def _draw(self, doc: SVGDocument) -> None:
        bins = self._column_bins()
        machines = self.model.machine_ids
        row_height = self.plot_height / len(machines)
        column_width = self.plot_width / len(bins)

        cells = doc.add(group(cls="heatmap-cells"))
        for row, machine_id in enumerate(machines):
            y = self.margins.top + row * row_height
            for col, (lo, hi) in enumerate(bins):
                value = float(np.mean(self.model.values[row, lo:hi]))
                x = self.margins.left + col * column_width
                cell = rect(x, y, column_width + 0.5, row_height + 0.5,
                            fill=utilisation_color(value).to_hex(), cls="heat-cell")
                cell.set("data-machine", machine_id)
                cell.set("data-value", f"{value:.1f}")
                cells.add(cell)
            if self.show_row_labels and row_height >= 9:
                doc.add(text(self.margins.left - 6,
                             y + row_height / 2 + 3, machine_id, size=8,
                             fill="#495057", anchor="end"))

        t0 = float(self.model.timestamps[0])
        t1 = float(self.model.timestamps[-1])
        x_scale = TimeScale((t0, t1), (self.margins.left,
                                       self.margins.left + self.plot_width))
        doc.add(bottom_axis(x_scale, self.margins.top + self.plot_height,
                            label="time since trace start",
                            tick_formatter=format_seconds))
        hover = title(f"{len(machines)} machines × {len(bins)} time buckets")
        cells.add(hover)
