"""BatchLens chart types."""

from repro.vis.charts.area import StackedAreaChart, StackedAreaModel
from repro.vis.charts.base import Chart, Margins
from repro.vis.charts.bubble import (
    BubbleChartModel,
    HierarchicalBubbleChart,
    JobBubble,
    NodeGlyph,
    TaskBubble,
)
from repro.vis.charts.distribution import HistogramModel, UtilisationHistogram
from repro.vis.charts.heatmap import HeatmapModel, UtilisationHeatmap
from repro.vis.charts.legend import categorical_legend, colorbar, hierarchy_legend
from repro.vis.charts.line import Annotation, LineChartModel, LineSeries, MultiLineChart
from repro.vis.charts.matrix import CoAllocationMatrix, CoAllocationMatrixModel
from repro.vis.charts.scatter import MachineScatterChart, ScatterModel, ScatterPoint
from repro.vis.charts.smallmultiples import (
    SmallMultiplesChart,
    SmallMultiplesModel,
    Sparkline,
)
from repro.vis.charts.timeline import TimelineChart, TimelineModel

__all__ = [
    "Annotation",
    "BubbleChartModel",
    "Chart",
    "CoAllocationMatrix",
    "CoAllocationMatrixModel",
    "HeatmapModel",
    "HierarchicalBubbleChart",
    "HistogramModel",
    "JobBubble",
    "LineChartModel",
    "LineSeries",
    "MachineScatterChart",
    "Margins",
    "MultiLineChart",
    "NodeGlyph",
    "ScatterModel",
    "ScatterPoint",
    "SmallMultiplesChart",
    "SmallMultiplesModel",
    "Sparkline",
    "StackedAreaChart",
    "StackedAreaModel",
    "TaskBubble",
    "TimelineChart",
    "TimelineModel",
    "UtilisationHeatmap",
    "UtilisationHistogram",
    "categorical_legend",
    "colorbar",
    "hierarchy_legend",
]
