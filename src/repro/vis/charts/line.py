"""Multi-line charts with start/end annotation lines (Fig. 2).

A line chart shows one metric for every compute node executing a selected
job.  Lines are coloured by task, green vertical annotation lines mark the
start of the job's execution on each node, and per-task-coloured annotation
lines mark the end timestamps — so tasks that finish at different times show
up as separate clusters of end annotations, exactly like job 7399 in Fig. 2.
A brushed time range renders as a shaded region, and
:meth:`MultiLineChart.zoomed` builds the detail view of the selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import RenderError
from repro.metrics.series import TimeSeries
from repro.vis.charts.base import Chart, Margins
from repro.vis.color import START_ANNOTATION, categorical_color
from repro.vis.layout.axes import bottom_axis, left_axis, vertical_annotation
from repro.vis.scale import LinearScale, TimeScale, format_percent, format_seconds
from repro.vis.svg import SVGDocument, group, polyline_path, rect, text


@dataclass(frozen=True)
class LineSeries:
    """One line: the metric series of one machine under one task."""

    machine_id: str
    task_id: str
    series: TimeSeries


@dataclass(frozen=True)
class Annotation:
    """A vertical annotation line (start or end of execution)."""

    timestamp: float
    kind: str  # "start" or "end"
    task_id: str | None = None
    label: str | None = None


@dataclass
class LineChartModel:
    """Everything needed to draw the per-job multi-line chart."""

    job_id: str
    metric: str
    lines: list[LineSeries] = field(default_factory=list)
    annotations: list[Annotation] = field(default_factory=list)
    #: Optional brushed time range (start, end) to highlight.
    brush: tuple[float, float] | None = None

    @property
    def task_ids(self) -> list[str]:
        seen: dict[str, None] = {}
        for line_ in self.lines:
            seen.setdefault(line_.task_id, None)
        return list(seen)

    def time_extent(self) -> tuple[float, float]:
        starts = [line_.series.start for line_ in self.lines if len(line_.series)]
        ends = [line_.series.end for line_ in self.lines if len(line_.series)]
        if not starts:
            raise RenderError(f"line chart for {self.job_id} has no data")
        return (min(starts), max(ends))

    def value_extent(self) -> tuple[float, float]:
        highs = [line_.series.max() for line_ in self.lines if len(line_.series)]
        return (0.0, max(100.0, max(highs) if highs else 100.0))

    def sliced(self, start: float, end: float) -> "LineChartModel":
        """Restrict every line and annotation to ``[start, end]``."""
        if end <= start:
            raise RenderError(f"invalid slice range [{start}, {end}]")
        lines = [replace(line_, series=line_.series.slice(start, end))
                 for line_ in self.lines]
        lines = [line_ for line_ in lines if len(line_.series) >= 2]
        annotations = [a for a in self.annotations if start <= a.timestamp <= end]
        return LineChartModel(job_id=self.job_id, metric=self.metric,
                              lines=lines, annotations=annotations, brush=None)


class MultiLineChart(Chart):
    """Renders a :class:`LineChartModel`."""

    def __init__(self, model: LineChartModel, *, width: float = 680.0,
                 height: float = 300.0, title: str | None = None,
                 color_by_task: bool = True, show_legend: bool = True) -> None:
        super().__init__(width=width, height=height,
                         title=title if title is not None else
                         f"{model.job_id} — {model.metric.upper()} utilisation",
                         margins=Margins(top=34, right=18, bottom=48, left=58))
        if not model.lines:
            raise RenderError(f"line chart for {model.job_id} has no lines")
        self.model = model
        self.color_by_task = color_by_task
        self.show_legend = show_legend

    # -- scales ------------------------------------------------------------------
    def scales(self) -> tuple[TimeScale, LinearScale]:
        t0, t1 = self.model.time_extent()
        v0, v1 = self.model.value_extent()
        x = TimeScale((t0, t1), (self.margins.left,
                                 self.margins.left + self.plot_width))
        y = LinearScale((v0, v1), (self.margins.top + self.plot_height,
                                   self.margins.top))
        return x, y

    def _task_color(self, task_id: str) -> str:
        if not self.color_by_task:
            return "#555555"
        index = self.model.task_ids.index(task_id)
        return categorical_color(index).to_hex()

    # -- drawing -----------------------------------------------------------------
    def _draw(self, doc: SVGDocument) -> None:
        x_scale, y_scale = self.scales()
        top = self.margins.top
        bottom = self.margins.top + self.plot_height

        doc.add(left_axis(y_scale, self.margins.left, label=f"{self.model.metric} %",
                          tick_formatter=format_percent,
                          grid_to=self.margins.left + self.plot_width))
        doc.add(bottom_axis(x_scale, bottom, label="time since trace start",
                            tick_formatter=format_seconds))

        if self.model.brush is not None:
            b0, b1 = self.model.brush
            x0, x1 = x_scale(x_scale.clamp(b0)), x_scale(x_scale.clamp(b1))
            brush = rect(min(x0, x1), top, abs(x1 - x0), self.plot_height,
                         fill="#74c0fc", opacity=0.18, cls="brush-region")
            brush.set("data-start", f"{b0:.0f}")
            brush.set("data-end", f"{b1:.0f}")
            doc.add(brush)

        lines_group = doc.add(group(cls="metric-lines"))
        for line_ in self.model.lines:
            if len(line_.series) < 2:
                continue
            points = [(x_scale(t), y_scale(v)) for t, v in line_.series]
            path = polyline_path(points, stroke=self._task_color(line_.task_id),
                                 stroke_width=1.3, opacity=0.75, cls="metric-line")
            path.set("data-machine", line_.machine_id)
            path.set("data-task", line_.task_id)
            path.set("data-job", self.model.job_id)
            lines_group.add(path)

        annotations_group = doc.add(group(cls="annotations"))
        for annotation in self.model.annotations:
            x = x_scale(x_scale.clamp(annotation.timestamp))
            if annotation.kind == "start":
                color = START_ANNOTATION.to_hex()
            else:
                color = (self._task_color(annotation.task_id)
                         if annotation.task_id is not None else "#e03131")
            element = vertical_annotation(x, top, bottom, color=color,
                                          label=annotation.label,
                                          cls=f"annotation annotation-{annotation.kind}")
            annotations_group.add(element)

        if self.show_legend and self.color_by_task and len(self.model.task_ids) > 1:
            self._draw_legend(doc)

    def _draw_legend(self, doc: SVGDocument) -> None:
        legend = doc.add(group(cls="legend"))
        x = self.margins.left + 8
        y = self.margins.top + 8
        for index, task_id in enumerate(self.model.task_ids):
            color = self._task_color(task_id)
            legend.add(rect(x, y + index * 14 - 7, 10, 8, fill=color))
            legend.add(text(x + 14, y + index * 14, task_id, size=9, fill="#333"))

    # -- linked detail view --------------------------------------------------------
    def zoomed(self, start: float, end: float, **kwargs) -> "MultiLineChart":
        """The detail view of a brushed range (Fig. 2(b))."""
        model = self.model.sliced(start, end)
        if not model.lines:
            raise RenderError(
                f"brushed range [{start}, {end}] contains no samples for "
                f"{self.model.job_id}")
        kwargs.setdefault("width", self.width)
        kwargs.setdefault("height", self.height)
        kwargs.setdefault("title",
                          f"{self.model.job_id} — {self.model.metric.upper()} "
                          f"(zoom {format_seconds(start)}–{format_seconds(end)})")
        return MultiLineChart(model, color_by_task=self.color_by_task,
                              show_legend=self.show_legend, **kwargs)
