"""The hierarchical bubble chart (Fig. 1 / main view of Fig. 3).

Three nested layers of circles encode the batch hierarchy at one timestamp:

* outer circles with a blue dotted outline are **jobs**;
* circles with a purple dotted outline inside a job are its **tasks**;
* leaves are **compute nodes** drawn as three concentric annuli whose
  colours encode CPU (outer ring), memory (middle ring) and disk I/O
  (inner disc) utilisation on the green→yellow→red ramp.

Machines running instances of several jobs at once appear under each of
those jobs; such duplicates are connected with coloured dotted lines
(the Fig. 3(b) interaction) and tagged with ``data-machine`` attributes so
the HTML dashboard can also highlight them on hover.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RenderError
from repro.vis.charts.base import Chart, Margins
from repro.vis.color import (
    JOB_OUTLINE,
    LINK_COLORS,
    TASK_OUTLINE,
    utilisation_color,
)
from repro.vis.layout.circlepack import PackNode, pack
from repro.vis.svg import SVGDocument, circle, group, line, text, title


@dataclass(frozen=True)
class NodeGlyph:
    """One compute node inside a task bubble, with its current utilisation."""

    machine_id: str
    cpu: float
    mem: float
    disk: float
    #: Relative size of the leaf (e.g. number of instances on the node).
    weight: float = 1.0

    def metric(self, name: str) -> float:
        return {"cpu": self.cpu, "mem": self.mem, "disk": self.disk}[name]


@dataclass
class TaskBubble:
    """One task and the nodes executing its instances."""

    task_id: str
    nodes: list[NodeGlyph] = field(default_factory=list)


@dataclass
class JobBubble:
    """One batch job and its tasks."""

    job_id: str
    tasks: list[TaskBubble] = field(default_factory=list)

    @property
    def node_count(self) -> int:
        return sum(len(task.nodes) for task in self.tasks)


@dataclass
class BubbleChartModel:
    """Everything the bubble chart needs for one timestamp."""

    timestamp: float
    jobs: list[JobBubble] = field(default_factory=list)
    #: machine_id -> [(job_id, task_id), ...] for nodes shared across jobs.
    shared_machines: dict[str, list[tuple[str, str]]] = field(default_factory=dict)

    @property
    def job_ids(self) -> list[str]:
        return [job.job_id for job in self.jobs]


class HierarchicalBubbleChart(Chart):
    """Renders a :class:`BubbleChartModel` as nested bubbles."""

    def __init__(self, model: BubbleChartModel, *, width: float = 760.0,
                 height: float = 720.0, title: str | None = None,
                 show_labels: bool = True, show_links: bool = True) -> None:
        super().__init__(width=width, height=height, title=title,
                         margins=Margins(top=40, right=15, bottom=15, left=15))
        if not model.jobs:
            raise RenderError("bubble chart model contains no jobs")
        self.model = model
        self.show_labels = show_labels
        self.show_links = show_links

    # -- layout ----------------------------------------------------------------
    def build_hierarchy(self) -> PackNode:
        """Translate the model into a packable hierarchy."""
        root = PackNode("cluster")
        for job in self.model.jobs:
            job_node = PackNode(f"job:{job.job_id}", data={"kind": "job",
                                                           "job_id": job.job_id})
            for task in job.tasks:
                task_node = PackNode(
                    f"task:{job.job_id}:{task.task_id}",
                    data={"kind": "task", "job_id": job.job_id,
                          "task_id": task.task_id})
                for node in task.nodes:
                    task_node.children.append(PackNode(
                        f"node:{job.job_id}:{task.task_id}:{node.machine_id}",
                        value=max(node.weight, 0.25) * 40.0,
                        data={"kind": "node", "glyph": node,
                              "job_id": job.job_id, "task_id": task.task_id}))
                if task_node.children:
                    job_node.children.append(task_node)
            if job_node.children:
                root.children.append(job_node)
        if not root.children:
            raise RenderError("bubble chart model has no nodes to draw")
        return root

    def layout(self) -> PackNode:
        """Run circle packing sized to the plot area."""
        radius = min(self.plot_width, self.plot_height) / 2.0
        return pack(self.build_hierarchy(), radius=radius, padding=2.5)

    # -- drawing -----------------------------------------------------------------
    def _node_glyph_elements(self, node: PackNode, cx: float, cy: float) -> list:
        glyph: NodeGlyph = node.data["glyph"]
        r = node.r
        rings = [
            ("cpu", r, glyph.cpu),
            ("mem", r * 0.66, glyph.mem),
            ("disk", r * 0.33, glyph.disk),
        ]
        elements = []
        for metric, radius, value in rings:
            ring = circle(cx, cy, radius,
                          fill=utilisation_color(value).to_hex(),
                          stroke="#ffffff", stroke_width=0.6,
                          cls=f"node-ring node-ring-{metric}")
            ring.set("data-machine", glyph.machine_id)
            ring.set("data-metric", metric)
            ring.set("data-value", f"{value:.1f}")
            ring.set("data-job", node.data["job_id"])
            elements.append(ring)
        tooltip = (f"{glyph.machine_id} — CPU {glyph.cpu:.0f}%, "
                   f"MEM {glyph.mem:.0f}%, DISK {glyph.disk:.0f}% "
                   f"(job {node.data['job_id']}, task {node.data['task_id']})")
        elements[0].add(title(tooltip))
        return elements

    def _draw_links(self, doc_group, packed: PackNode,
                    offset_x: float, offset_y: float) -> int:
        """Dotted lines between duplicates of the same machine across jobs."""
        if not self.show_links or not self.model.shared_machines:
            return 0
        position_index: dict[str, list[tuple[float, float]]] = {}
        for node in packed.iter():
            if node.data.get("kind") == "node":
                glyph: NodeGlyph = node.data["glyph"]
                position_index.setdefault(glyph.machine_id, []).append(
                    (node.x + offset_x, node.y + offset_y))
        links = group(cls="machine-links")
        drawn = 0
        for index, machine_id in enumerate(sorted(self.model.shared_machines)):
            points = position_index.get(machine_id, [])
            if len(points) < 2:
                continue
            color = LINK_COLORS[index % len(LINK_COLORS)].to_hex()
            for (x1, y1), (x2, y2) in zip(points, points[1:]):
                link = line(x1, y1, x2, y2, stroke=color, stroke_width=1.2,
                            dashed=True, opacity=0.85, cls="machine-link")
                link.set("data-machine", machine_id)
                links.add(link)
                drawn += 1
        if drawn:
            doc_group.add(links)
        return drawn

    def _draw(self, doc: SVGDocument) -> None:
        packed = self.layout()
        offset_x = self.margins.left + self.plot_width / 2.0
        offset_y = self.margins.top + self.plot_height / 2.0
        canvas = doc.add(group(cls="bubble-chart"))

        for node in packed.iter():
            kind = node.data.get("kind")
            cx, cy = node.x + offset_x, node.y + offset_y
            if kind == "job":
                bubble = circle(cx, cy, node.r, fill="#f1f3f5",
                                stroke=JOB_OUTLINE.to_hex(), stroke_width=1.6,
                                dashed=True, opacity=0.9, cls="job-bubble")
                bubble.set("data-job", node.data["job_id"])
                bubble.add(title(f"{node.data['job_id']} "
                                 f"({len(node.children)} task(s))"))
                canvas.add(bubble)
                if self.show_labels:
                    canvas.add(text(cx, cy - node.r - 4, node.data["job_id"],
                                    size=10, fill=JOB_OUTLINE.darken(0.2).to_hex(),
                                    anchor="middle", cls="job-label"))
            elif kind == "task":
                bubble = circle(cx, cy, node.r, fill="#ffffff",
                                stroke=TASK_OUTLINE.to_hex(), stroke_width=1.2,
                                dashed=True, opacity=0.9, cls="task-bubble")
                bubble.set("data-job", node.data["job_id"])
                bubble.set("data-task", node.data["task_id"])
                canvas.add(bubble)
            elif kind == "node":
                for element in self._node_glyph_elements(node, cx, cy):
                    canvas.add(element)

        self._draw_links(canvas, packed, offset_x, offset_y)
