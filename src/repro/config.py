"""Top-level configuration objects shared across subsystems.

The configuration mirrors the shape of the Alibaba cluster-trace-v2017
dataset the paper uses: ~1300 machines observed for 24 hours, batch
scheduler records at a 300-second resolution and server usage at a finer
resolution.  Every knob is overridable so tests and benchmarks can build
small, fast traces while the case-study examples can build paper-scale
ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError

#: Metric names used throughout the library, in canonical order.
METRICS: tuple[str, str, str] = ("cpu", "mem", "disk")

#: Duration of the trace reported in the paper (24 hours), in seconds.
PAPER_HORIZON_S: int = 24 * 3600

#: Number of machines in the Alibaba cluster-trace-v2017 dataset.
PAPER_MACHINE_COUNT: int = 1300

#: Resolution of the batch scheduler tables in the paper (seconds).
PAPER_BATCH_RESOLUTION_S: int = 300

#: Fraction of batch jobs that contain a single task (reported in §II).
PAPER_SINGLE_TASK_JOB_FRACTION: float = 0.75

#: Fraction of tasks that have more than one instance (reported in §II).
PAPER_MULTI_INSTANCE_TASK_FRACTION: float = 0.94


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of the simulated cluster."""

    num_machines: int = 64
    cpu_cores: int = 96
    memory_gb: float = 512.0
    disk_gb: float = 4096.0
    #: Background (non-batch) utilisation level each machine idles at, in
    #: percent.  The paper's figures show machines are never fully idle.
    baseline_cpu: float = 8.0
    baseline_mem: float = 15.0
    baseline_disk: float = 5.0

    def validate(self) -> None:
        if self.num_machines <= 0:
            raise ConfigError("num_machines must be positive")
        if self.cpu_cores <= 0 or self.memory_gb <= 0 or self.disk_gb <= 0:
            raise ConfigError("machine capacities must be positive")
        for name in ("baseline_cpu", "baseline_mem", "baseline_disk"):
            value = getattr(self, name)
            if not 0.0 <= value <= 100.0:
                raise ConfigError(f"{name} must be within [0, 100], got {value}")


@dataclass(frozen=True)
class WorkloadConfig:
    """Statistical shape of the batch workload."""

    num_jobs: int = 60
    #: Fraction of jobs that are scheduled as exactly one task.
    single_task_job_fraction: float = PAPER_SINGLE_TASK_JOB_FRACTION
    #: Fraction of tasks that run more than one instance.
    multi_instance_task_fraction: float = PAPER_MULTI_INSTANCE_TASK_FRACTION
    #: Maximum number of tasks a multi-task job may have.
    max_tasks_per_job: int = 5
    #: Bounds on the number of instances of a multi-instance task.
    min_instances: int = 2
    max_instances: int = 16
    #: Job duration bounds in seconds.
    min_duration_s: int = 600
    max_duration_s: int = 2 * 3600
    #: Mean requested resources per instance, in percent of one machine.
    mean_cpu_request: float = 9.0
    mean_mem_request: float = 11.0
    mean_disk_request: float = 6.0

    def validate(self) -> None:
        if self.num_jobs <= 0:
            raise ConfigError("num_jobs must be positive")
        for name in ("single_task_job_fraction", "multi_instance_task_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be within [0, 1], got {value}")
        if self.max_tasks_per_job < 2:
            raise ConfigError("max_tasks_per_job must be at least 2")
        if not 1 <= self.min_instances <= self.max_instances:
            raise ConfigError("instance bounds must satisfy 1 <= min <= max")
        if not 0 < self.min_duration_s <= self.max_duration_s:
            raise ConfigError("duration bounds must satisfy 0 < min <= max")
        for name in ("mean_cpu_request", "mean_mem_request", "mean_disk_request"):
            value = getattr(self, name)
            if not 0.0 < value <= 100.0:
                raise ConfigError(f"{name} must be within (0, 100], got {value}")


@dataclass(frozen=True)
class UsageConfig:
    """How server usage series are sampled and perturbed."""

    #: Sampling period of the server-usage table, in seconds.  The paper
    #: quotes one second; the default here is coarser so that unit tests stay
    #: fast, and the paper-scale examples override it.
    resolution_s: int = 60
    #: Standard deviation of the multiplicative measurement noise (percent).
    noise_std: float = 1.5
    #: Smoothing factor applied to utilisation ramps at job start/end.
    ramp_fraction: float = 0.08

    def validate(self) -> None:
        if self.resolution_s <= 0:
            raise ConfigError("resolution_s must be positive")
        if self.noise_std < 0:
            raise ConfigError("noise_std must be non-negative")
        if not 0.0 <= self.ramp_fraction < 0.5:
            raise ConfigError("ramp_fraction must be within [0, 0.5)")


@dataclass(frozen=True)
class TraceConfig:
    """Everything needed to synthesise one trace bundle."""

    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    usage: UsageConfig = field(default_factory=UsageConfig)
    #: Length of the observation window, in seconds.
    horizon_s: int = 6 * 3600
    #: Resolution of batch-scheduler timestamps, in seconds.
    batch_resolution_s: int = PAPER_BATCH_RESOLUTION_S
    #: Name of the anomaly scenario to inject ("healthy", "hotjob",
    #: "thrashing", or "none"); see :mod:`repro.cluster.anomalies`.
    scenario: str = "healthy"
    seed: int = 2022

    def validate(self) -> None:
        self.cluster.validate()
        self.workload.validate()
        self.usage.validate()
        if self.horizon_s <= 0:
            raise ConfigError("horizon_s must be positive")
        if self.batch_resolution_s <= 0:
            raise ConfigError("batch_resolution_s must be positive")
        if self.horizon_s < self.batch_resolution_s:
            raise ConfigError("horizon_s must be at least one batch interval")
        if self.usage.resolution_s > self.horizon_s:
            raise ConfigError("usage resolution cannot exceed the horizon")


def paper_scale_config(scenario: str = "healthy", seed: int = 2022) -> TraceConfig:
    """Return a :class:`TraceConfig` matching the scale reported in the paper.

    1300 machines over 24 hours with 300-second batch records.  Usage is
    sampled at 300 s rather than 1 s so the bundle stays tractable in memory;
    the roll-up benchmark (E8) measures the cost of finer resolutions.
    """
    return TraceConfig(
        cluster=ClusterConfig(num_machines=PAPER_MACHINE_COUNT),
        workload=WorkloadConfig(num_jobs=400),
        usage=UsageConfig(resolution_s=PAPER_BATCH_RESOLUTION_S),
        horizon_s=PAPER_HORIZON_S,
        scenario=scenario,
        seed=seed,
    )


def small_config(scenario: str = "healthy", seed: int = 7) -> TraceConfig:
    """Return a configuration sized for unit tests (sub-second generation)."""
    return TraceConfig(
        cluster=ClusterConfig(num_machines=12),
        workload=WorkloadConfig(num_jobs=10, max_instances=6),
        usage=UsageConfig(resolution_s=120),
        horizon_s=2 * 3600,
        scenario=scenario,
        seed=seed,
    )
