"""Exception hierarchy for the BatchLens reproduction.

Every error raised by the library derives from :class:`BatchLensError`, so
callers can catch one base class.  More specific subclasses carry enough
context (the offending table, column, entity id, ...) to make failure
messages actionable without a debugger.
"""

from __future__ import annotations


class BatchLensError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class TraceFormatError(BatchLensError):
    """A trace file or record does not follow the Alibaba v2017 schema."""

    def __init__(self, message: str, *, table: str | None = None,
                 line_number: int | None = None) -> None:
        self.table = table
        self.line_number = line_number
        prefix = ""
        if table is not None:
            prefix += f"[{table}] "
        if line_number is not None:
            prefix += f"line {line_number}: "
        super().__init__(prefix + message)


class TraceValidationError(BatchLensError):
    """A trace bundle violates a structural invariant (dangling ids, ...)."""


class UnknownEntityError(BatchLensError):
    """Lookup of a job, task, instance or machine id failed."""

    def __init__(self, kind: str, entity_id: str) -> None:
        self.kind = kind
        self.entity_id = entity_id
        super().__init__(f"unknown {kind}: {entity_id!r}")


class SchedulingError(BatchLensError):
    """The cluster scheduler could not place an instance."""


class SimulationError(BatchLensError):
    """The cluster simulator was configured inconsistently."""


class SeriesError(BatchLensError):
    """A time-series operation received incompatible or malformed input."""


class LayoutError(BatchLensError):
    """A chart layout could not be computed (e.g. circle packing failure)."""


class RenderError(BatchLensError):
    """An SVG/HTML rendering step received invalid drawing parameters."""


class ConfigError(BatchLensError):
    """A configuration object carries out-of-range or inconsistent values."""


class ServeError(BatchLensError):
    """A detection-service request is invalid, or the service is draining.

    Raised by :mod:`repro.serve` for malformed wire payloads, duplicate
    tenant ids, and requests arriving while the server shuts down.  The
    HTTP layer maps it (like every :class:`BatchLensError`) to a 400
    response carrying the message verbatim.
    """


class ServiceUnavailableError(ServeError):
    """The service cannot take the request *right now* — retry later.

    Raised while the server drains (shutdown in progress) or when its
    shared worker pool is gone: unlike a plain :class:`ServeError` the
    request itself was fine, so the HTTP layer maps this to **503** with
    a ``Retry-After`` header instead of 400 — a well-behaved client backs
    off and retries against the restarted server rather than treating the
    drain as a hard failure or seeing a connection reset.
    """

    def __init__(self, message: str, *, retry_after_s: float = 1.0) -> None:
        self.retry_after_s = float(retry_after_s)
        super().__init__(message)


class TransientWorkerError(RuntimeError):
    """Marker: an infrastructure failure a sharded sweep may retry.

    Deliberately *not* a :class:`BatchLensError` — it models machinery
    breaking underneath the library (a dying pool worker, a failing
    disk), not a request the library judged invalid.
    :class:`~repro.analysis.shard.ShardExecutor` treats it like
    ``concurrent.futures.BrokenExecutor``: the unit is retried and, past
    the retry budget, degraded to in-process serial execution.  The test
    harness's :class:`~repro.testing.faults.InjectedFault` inherits this
    marker, so production code never needs to import the testing package
    to recognise an injected chaos failure as retryable.
    """


class ExecutionError(BatchLensError):
    """A sharded execution unit failed or exceeded its time budget.

    Raised by :class:`~repro.analysis.shard.ShardExecutor` when a sweep
    unit times out (a hung worker) or keeps failing after the retry
    budget and serial degradation cannot apply; the message names the
    detector, metric and shard so the failing unit is identifiable
    without a debugger.
    """


class UnknownTenantError(ServeError):
    """A request named a tenant the registry does not hold.

    Mapped to a 404 response; like the pipeline registry errors, the
    message lists the registered ids so a typo is a one-line fix.
    """

    def __init__(self, tenant_id: str, registered: "list[str]") -> None:
        self.tenant_id = tenant_id
        super().__init__(
            f"unknown tenant {tenant_id!r}; registered: {sorted(registered)}")

    @classmethod
    def from_message(cls, message: str) -> "UnknownTenantError":
        """Rebuild from a server-side message (the client's 404 path)."""
        exc = cls.__new__(cls)
        exc.tenant_id = None
        ServeError.__init__(exc, message)
        return exc


class PipelineError(BatchLensError):
    """A pipeline spec is malformed or names unknown components.

    Raised by :mod:`repro.pipeline` when a declarative spec cannot be
    resolved (unknown detector, sink or source kind, missing required
    fields); the message always lists the registered names, so a typo is a
    one-line fix instead of a traceback hunt.
    """
