"""Deterministic fault injection for chaos-testing the durability layer.

Production code marks its failure-prone seams with **fault points** —
named call sites such as ``persist.journal.append`` (the WAL write),
``persist.snapshot.rename`` (the snapshot commit point) or
``client.request.send`` (the wire) — via :func:`fault_point`.  With no
injector installed the hook is a single ``is None`` check, so shipping
the seams costs nothing.  A test installs a :class:`FaultInjector` built
from a plan mapping point names to :class:`FaultSpec`\\ s::

    from repro.testing import faults

    with faults.inject({"persist.journal.append": {"at": 3}}):
        tenant.ingest(payload)          # 3rd journal write raises

Injection is **deterministic**: a spec either names the exact 1-based
hit indices that fail (``at``) or draws per hit from a ``random.Random``
seeded with ``(seed, point name)`` (``p``), so the same plan and the
same call sequence always fail at the same places — chaos tests are
replayable, never flaky.

Actions:

``raise``
    raise the configured exception class at the fault point —
    :class:`InjectedFault` (infrastructure failure), ``OSError`` (disk),
    or ``ConnectionError`` (wire);
``kill``
    ``SIGKILL`` the current process — the real crash, for subprocess
    recovery tests.  Combined with the ``REPRO_FAULTS`` environment
    variable (a JSON plan installed on import), a ``repro serve``
    subprocess can be killed at an exact journal write, which no amount
    of signal timing from the outside can reproduce deterministically.

:class:`FaultyDetector` is the executor-facing half of the harness: a
:class:`~repro.analysis.detectors.ThresholdDetector` that fails (or
kills its worker process) when swept off the thread or process that
built it, so :class:`~repro.analysis.shard.ShardExecutor`'s retry and
serial-degradation paths can be driven without ever breaking a real
workload — the serial fallback, running on the constructing thread,
computes the genuine verdict.
"""

from __future__ import annotations

import json
import os
import signal
import threading
from dataclasses import dataclass, field
from random import Random
from typing import Iterable, Mapping

from repro.analysis.detectors import ThresholdDetector
from repro.errors import TransientWorkerError

#: Environment variable holding a JSON fault plan, installed on import so
#: subprocesses (``repro serve``) pick it up with zero wiring.
FAULTS_ENV = "REPRO_FAULTS"

_ACTIONS = ("raise", "kill")
_ERRORS = {"injected": None, "os": OSError, "conn": ConnectionError}


class InjectedFault(TransientWorkerError):
    """An artificial failure raised by the fault-injection harness.

    Deliberately *not* a :class:`~repro.errors.BatchLensError`: an
    injected fault models infrastructure breaking underneath the library
    (a dying worker, a failing disk), not a request the library judged
    invalid — so it takes the same paths a real crash would.  Inheriting
    :class:`~repro.errors.TransientWorkerError` is what makes the shard
    executor's retry path treat it as retryable without ever importing
    this testing module.
    """


@dataclass(frozen=True)
class FaultSpec:
    """When and how one named fault point fails."""

    #: Exact 1-based hit indices that fail (deterministic schedule).
    at: tuple[int, ...] = ()
    #: Per-hit failure probability, drawn from a seeded per-point rng.
    p: float = 0.0
    #: Maximum number of firings (``None`` = unbounded).
    times: int | None = None
    #: ``raise`` or ``kill`` (SIGKILL the current process).
    action: str = "raise"
    #: Exception family for ``raise``: ``injected``, ``os`` or ``conn``.
    error: str = "injected"

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(
                f"fault action must be one of {list(_ACTIONS)}, got "
                f"{self.action!r}")
        if self.error not in _ERRORS:
            raise ValueError(
                f"fault error must be one of {sorted(_ERRORS)}, got "
                f"{self.error!r}")
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"fault probability must be in [0, 1], got {self.p}")

    @classmethod
    def from_dict(cls, raw: Mapping | "FaultSpec") -> "FaultSpec":
        if isinstance(raw, FaultSpec):
            return raw
        if not isinstance(raw, Mapping):
            raise ValueError(f"fault spec must be a mapping, got {raw!r}")
        unknown = set(raw) - {"at", "p", "times", "action", "error"}
        if unknown:
            raise ValueError(f"unknown fault spec key(s) {sorted(unknown)}")
        at = raw.get("at", ())
        if isinstance(at, int):
            at = (at,)
        return cls(at=tuple(int(n) for n in at), p=float(raw.get("p", 0.0)),
                   times=(None if raw.get("times") is None
                          else int(raw["times"])),
                   action=str(raw.get("action", "raise")),
                   error=str(raw.get("error", "injected")))

    def make_error(self, point: str, hit: int) -> Exception:
        exc_type = _ERRORS[self.error] or InjectedFault
        return exc_type(f"injected fault at {point!r} (hit {hit})")


@dataclass
class FaultInjector:
    """Fires the faults of one plan; counts every hit, records every firing."""

    plan: dict[str, FaultSpec] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        self.plan = {str(name): FaultSpec.from_dict(spec)
                     for name, spec in dict(self.plan).items()}
        self._lock = threading.Lock()
        self._hits: dict[str, int] = {}
        self._fired_count: dict[str, int] = {}
        self._rngs: dict[str, Random] = {}
        #: Every firing as ``(point, hit_index)``, for test assertions.
        self.fired: list[tuple[str, int]] = []

    def hits(self, point: str) -> int:
        """How many times ``point`` has been reached (fired or not)."""
        with self._lock:
            return self._hits.get(point, 0)

    def hit(self, point: str) -> None:
        """Register one arrival at ``point``; fail if the plan says so."""
        spec = self.plan.get(point)
        if spec is None:
            return
        with self._lock:
            count = self._hits.get(point, 0) + 1
            self._hits[point] = count
            fired = self._fired_count.get(point, 0)
            if spec.times is not None and fired >= spec.times:
                return
            fire = count in spec.at
            if not fire and spec.p > 0.0:
                rng = self._rngs.get(point)
                if rng is None:
                    rng = self._rngs[point] = Random(f"{self.seed}:{point}")
                fire = rng.random() < spec.p
            if not fire:
                return
            self._fired_count[point] = fired + 1
            self.fired.append((point, count))
        if spec.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        raise spec.make_error(point, count)


_ACTIVE: FaultInjector | None = None

#: Guards FaultyDetector failure counters (a lock attribute would make the
#: detector unpicklable for the process backend).
_COUNTER_LOCK = threading.Lock()


def fault_point(name: str) -> None:
    """Mark a failure-prone seam; no-op unless an injector is installed."""
    injector = _ACTIVE
    if injector is not None:
        injector.hit(name)


def install(injector: FaultInjector) -> FaultInjector:
    """Make ``injector`` the process-wide active injector."""
    global _ACTIVE
    _ACTIVE = injector
    return injector


def uninstall() -> None:
    global _ACTIVE
    _ACTIVE = None


class inject:
    """Context manager: install a plan, uninstall on exit.

    ``plan`` maps fault-point names to :class:`FaultSpec`\\ s (or their
    dict form).  The constructed injector is available as the ``as``
    target for hit/firing assertions.
    """

    def __init__(self, plan: Mapping, *, seed: int = 0) -> None:
        self.injector = FaultInjector(dict(plan), seed=seed)

    def __enter__(self) -> FaultInjector:
        return install(self.injector)

    def __exit__(self, *exc_info) -> None:
        uninstall()


def install_from_env(environ: Mapping[str, str] | None = None) -> FaultInjector | None:
    """Install the plan in ``$REPRO_FAULTS`` (JSON), if any.

    Called at import time so a chaos test can point a ``repro serve``
    subprocess at an exact crash site::

        REPRO_FAULTS='{"persist.journal.append": {"at": 5, "action": "kill"}}'

    A malformed plan raises immediately — a chaos run silently testing
    nothing is worse than a loud one.
    """
    raw = (os.environ if environ is None else environ).get(FAULTS_ENV)
    if not raw:
        return None
    try:
        plan = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ValueError(f"${FAULTS_ENV} is not valid JSON: {exc}") from None
    return install(FaultInjector(plan))


class FaultyDetector(ThresholdDetector):
    """A threshold detector that fails when swept away from home.

    ``fail_in="thread"`` raises :class:`InjectedFault` whenever
    ``detect_block`` runs on a thread other than the one that constructed
    the detector (a stand-in for a crashing thread-pool worker);
    ``fail_in="process"`` hard-kills any *other* process that sweeps it
    (``os._exit``), which breaks a :class:`ProcessPoolExecutor` exactly
    the way a segfaulting worker does.  The constructing thread/process
    always computes the real verdict, so an executor that degrades to
    in-process serial execution still produces bit-identical results.
    ``times`` bounds thread-mode failures (per process), letting tests
    exercise the transient-failure retry path.
    """

    def __init__(self, threshold: float = 85.0, *, fail_in: str = "thread",
                 times: int | None = None) -> None:
        super().__init__(threshold)
        if fail_in not in ("thread", "process"):
            raise ValueError(
                f"fail_in must be 'thread' or 'process', got {fail_in!r}")
        self.fail_in = fail_in
        self.times = times
        self._home_pid = os.getpid()
        self._home_thread = threading.get_ident()
        self._failures = 0

    def _maybe_fail(self) -> None:
        if self.fail_in == "process":
            if os.getpid() != self._home_pid:
                os._exit(17)   # kill the pool worker, not a clean raise
            return
        if threading.get_ident() == self._home_thread:
            return
        with _COUNTER_LOCK:
            if self.times is not None and self._failures >= self.times:
                return
            self._failures += 1
            count = self._failures
        raise InjectedFault(
            f"injected worker failure #{count} in FaultyDetector")

    def _block_mask(self, timestamps, values):
        self._maybe_fail()
        return super()._block_mask(timestamps, values)


install_from_env()


__all__ = [
    "FAULTS_ENV",
    "FaultInjector",
    "FaultSpec",
    "FaultyDetector",
    "InjectedFault",
    "fault_point",
    "inject",
    "install",
    "install_from_env",
    "uninstall",
]
