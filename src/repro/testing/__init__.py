"""``repro.testing`` — reusable test harnesses shipped with the library.

The modules here are imported by production code only through cheap,
no-op-by-default hooks (:func:`repro.testing.faults.fault_point`), so the
package costs nothing in a deployment that never injects a fault.  The
chaos suites (`tests/test_serve_recovery_golden.py`,
`tests/test_shard_faults.py`) and any downstream integration harness
drive the same injection points.
"""

from repro.testing.faults import (
    FaultInjector,
    FaultSpec,
    InjectedFault,
    fault_point,
    inject,
)

__all__ = [
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "fault_point",
    "inject",
]
