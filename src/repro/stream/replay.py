"""Trace replay harness for the real-time extension.

A live BatchLens deployment would subscribe to the cluster's metrics bus;
this repository has no cluster, so :class:`TraceReplayer` plays an offline
:class:`~repro.trace.records.TraceBundle` back sample by sample in
*simulated* time.  It drives the :class:`~repro.stream.monitor.OnlineMonitor`
and :class:`~repro.stream.alerts.AlertManager`, supports stepping and
checkpointing (so a demo can pause at the case-study timestamps), and
produces a :class:`ReplayReport` summarising what a live deployment would
have surfaced.

No wall-clock sleeping happens here — the "speed" of the replay only decides
how many trace samples are folded per :meth:`TraceReplayer.step` call, which
keeps the harness deterministic and test-friendly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import SeriesError
from repro.stream.alerts import AlertManager, ManagedAlert
from repro.stream.monitor import MonitorAlert, MonitorConfig, OnlineMonitor
from repro.stream.online_stats import P2Quantile, RunningStats
from repro.trace.records import TraceBundle


@dataclass(frozen=True)
class ReplayCheckpoint:
    """State snapshot taken at one point of the replay."""

    timestamp: float
    samples_replayed: int
    alerts_so_far: int
    regime: str | None
    mean_cpu: float
    p95_cpu: float


@dataclass(frozen=True)
class ReplayReport:
    """What a live deployment would have reported over the replayed window."""

    samples_replayed: int
    duration_s: float
    alerts_by_kind: dict[str, int]
    pending_alerts: int
    final_regime: str | None
    mean_cpu: float
    p95_cpu: float
    checkpoints: tuple[ReplayCheckpoint, ...] = field(default_factory=tuple)


class TraceReplayer:
    """Replays a bundle's usage through the online monitoring stack."""

    def __init__(self, bundle: TraceBundle, *,
                 monitor_config: MonitorConfig | None = None,
                 alert_manager: AlertManager | None = None,
                 window_samples: int = 128,
                 samples_per_step: int = 1,
                 on_sample: Callable[[float, dict], None] | None = None) -> None:
        if bundle.usage is None or bundle.usage.num_samples == 0:
            raise SeriesError("bundle carries no usage data to replay")
        if samples_per_step < 1:
            raise SeriesError("samples_per_step must be at least 1")
        self.bundle = bundle
        self.monitor = OnlineMonitor(bundle.usage.machine_ids,
                                     config=monitor_config,
                                     window_samples=window_samples)
        self.alerts = alert_manager if alert_manager is not None else AlertManager()
        self.samples_per_step = samples_per_step
        self._on_sample = on_sample
        self._store = bundle.usage
        self._cursor = 0
        # Dense columns feed the monitor directly when the layouts line up
        # (the normal case: the monitor was just built from this store);
        # otherwise fall back to the dict-sample path.
        self._dense = self.monitor.accepts_frames_of(self._store)
        self._samples_replayed = 0
        self._last_timestamp: float | None = None
        self._cpu_stats = RunningStats()
        self._cpu_p95 = P2Quantile(0.95)
        self._checkpoints: list[ReplayCheckpoint] = []
        self._exhausted = False

    # -- progress ---------------------------------------------------------------
    @property
    def samples_replayed(self) -> int:
        return self._samples_replayed

    @property
    def current_timestamp(self) -> float | None:
        """Timestamp of the most recently replayed sample."""
        return self._last_timestamp

    @property
    def finished(self) -> bool:
        return self._exhausted

    # -- stepping ---------------------------------------------------------------
    def _sample_dict(self, index: int) -> dict:
        """The dict form of one trace column (callbacks, fallback path)."""
        from repro.stream.monitor import sample_dict

        return sample_dict(self._store, index)

    def step(self) -> list[MonitorAlert]:
        """Replay up to ``samples_per_step`` samples; returns the new alerts."""
        new_alerts: list[MonitorAlert] = []
        store = self._store
        has_cpu = "cpu" in store.metrics
        for _ in range(self.samples_per_step):
            if self._cursor >= store.num_samples:
                self._exhausted = True
                break
            index = self._cursor
            self._cursor += 1
            timestamp = float(store.timestamps[index])
            self._samples_replayed += 1
            self._last_timestamp = timestamp
            cpu_column = (store.metric_block("cpu")[:, index] if has_cpu
                          else np.zeros(store.num_machines))
            self._cpu_stats.update_many(cpu_column)
            self._cpu_p95.update_many(cpu_column)
            if self._dense:
                alerts = self.monitor.observe_frame(timestamp,
                                                    store.data[:, :, index])
            else:
                alerts = self.monitor.observe(timestamp,
                                              self._sample_dict(index))
            self.alerts.ingest_many(alerts)
            new_alerts.extend(alerts)
            if self._on_sample is not None:
                self._on_sample(timestamp, self._sample_dict(index))
        return new_alerts

    def run_until(self, timestamp: float) -> list[MonitorAlert]:
        """Replay until the trace clock passes ``timestamp`` (or the end)."""
        collected: list[MonitorAlert] = []
        while not self._exhausted and (self._last_timestamp is None
                                       or self._last_timestamp < timestamp):
            alerts = self.step()
            collected.extend(alerts)
            if not alerts and self._exhausted:
                break
        return collected

    def run_to_end(self) -> ReplayReport:
        """Replay every remaining sample and return the final report."""
        while not self._exhausted:
            self.step()
        return self.report()

    # -- checkpoints -----------------------------------------------------------------
    def checkpoint(self) -> ReplayCheckpoint:
        """Record (and return) a snapshot of the replay state."""
        if self._samples_replayed == 0:
            raise SeriesError("cannot checkpoint before any sample is replayed")
        regime = self.monitor.current_regime
        snapshot = ReplayCheckpoint(
            timestamp=float(self._last_timestamp),
            samples_replayed=self._samples_replayed,
            alerts_so_far=len(self.monitor.alerts),
            regime=regime.value if regime is not None else None,
            mean_cpu=self._cpu_stats.mean,
            p95_cpu=self._cpu_p95.value,
        )
        self._checkpoints.append(snapshot)
        return snapshot

    # -- reporting -------------------------------------------------------------------
    def report(self) -> ReplayReport:
        """Summarise everything replayed so far."""
        start, _ = self.bundle.time_range()
        duration = 0.0
        if self._last_timestamp is not None:
            duration = float(self._last_timestamp) - float(start)
        regime = self.monitor.current_regime
        return ReplayReport(
            samples_replayed=self._samples_replayed,
            duration_s=max(0.0, duration),
            alerts_by_kind=self.monitor.summary(),
            pending_alerts=len(self.alerts.pending()),
            final_regime=regime.value if regime is not None else None,
            mean_cpu=self._cpu_stats.mean if self._cpu_stats.count else 0.0,
            p95_cpu=self._cpu_p95.value if self._cpu_p95.count else 0.0,
            checkpoints=tuple(self._checkpoints),
        )


def replay_with_alerts(bundle: TraceBundle, *,
                       monitor_config: MonitorConfig | None = None,
                       checkpoints_at: list[float] | None = None,
                       window_samples: int = 128) -> tuple[ReplayReport, AlertManager]:
    """Convenience wrapper: replay a whole bundle and return report + alerts.

    ``checkpoints_at`` lists trace timestamps at which a state snapshot is
    recorded — the examples use the paper's three case-study timestamps.
    """
    replayer = TraceReplayer(bundle, monitor_config=monitor_config,
                             window_samples=window_samples)
    remaining = sorted(checkpoints_at) if checkpoints_at else []
    while not replayer.finished:
        replayer.step()
        while (remaining and replayer.current_timestamp is not None
               and replayer.current_timestamp >= remaining[0]):
            replayer.checkpoint()
            remaining.pop(0)
    return replayer.report(), replayer.alerts


def replay_scenario(scenario, *, config=None, seed: int | None = None,
                    monitor_config: MonitorConfig | None = None,
                    checkpoints_at: list[float] | None = None,
                    window_samples: int = 128):
    """Generate a scenario and replay it through the monitoring stack.

    ``scenario`` accepts everything the scenario registry resolves: a legacy
    alias, a registered fault-injector name, a composed spec string such as
    ``"diurnal+network-storm"``, or an already-built scenario object (see
    :mod:`repro.scenarios`).  Returns ``(report, alert_manager, bundle)`` —
    the bundle's ground-truth manifest
    (``bundle.ground_truth()``) tells callers which machines the alerts
    *should* have fired on.
    """
    from repro.trace.synthetic import generate_trace

    bundle = generate_trace(config, scenario=scenario, seed=seed)
    report, manager = replay_with_alerts(bundle, monitor_config=monitor_config,
                                         checkpoints_at=checkpoints_at,
                                         window_samples=window_samples)
    return report, manager, bundle


def alert_timeline(manager: AlertManager) -> list[tuple[float, str, str]]:
    """Flatten a manager's history into ``(timestamp, kind, subject)`` rows."""
    rows = [(managed.alert.timestamp, managed.alert.kind, managed.alert.subject)
            for managed in manager.history]
    return sorted(rows)


__all__ = [
    "ManagedAlert",
    "ReplayCheckpoint",
    "ReplayReport",
    "TraceReplayer",
    "alert_timeline",
    "replay_scenario",
    "replay_with_alerts",
]
